"""Benchmark + regeneration harness for paper artifact 'table5'.

Runs the table5 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_table5.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_table5(benchmark):
    run_experiment_once(benchmark, "table5")

"""Benchmark + regeneration harness for paper artifact 'fig7'.

Runs the fig7 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig07.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig07(benchmark):
    run_experiment_once(benchmark, "fig7")

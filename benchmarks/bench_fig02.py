"""Benchmark + regeneration harness for paper artifact 'fig2'.

Runs the fig2 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig02.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig02(benchmark):
    run_experiment_once(benchmark, "fig2")

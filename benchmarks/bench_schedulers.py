"""Epoch-level benchmarks of the scheduling schemes on the host engine."""

import pytest

from repro.baselines.libmf import LIBMFSolver
from repro.core.hogwild import BatchHogwild
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.wavefront import WavefrontScheduler
from repro.metrics.throughput import updates_per_second


def _model(problem):
    return FactorModel.initialize(
        problem.spec.m, problem.spec.n, problem.spec.k, seed=0
    )


def test_hogwild_epoch(benchmark, bench_problem):
    sched = BatchHogwild(workers=128, f=256, seed=0)
    model = _model(bench_problem)
    result = benchmark.pedantic(
        lambda: sched.run_epoch(model, bench_problem.train, 0.05, 0.05),
        rounds=3,
        iterations=1,
    )
    assert result == bench_problem.train.nnz
    mean = benchmark.stats.stats.mean
    rate = updates_per_second(1, bench_problem.train.nnz, mean)
    print(f"\nhost batch-Hogwild!: {rate / 1e6:.1f}M updates/s")


def test_wavefront_epoch(benchmark, bench_problem):
    sched = WavefrontScheduler(workers=16, seed=0)
    model = _model(bench_problem)
    result = benchmark.pedantic(
        lambda: sched.run_epoch(model, bench_problem.train, 0.05, 0.05),
        rounds=3,
        iterations=1,
    )
    assert result == bench_problem.train.nnz


def test_multi_device_epoch(benchmark, bench_problem):
    sched = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=64, seed=0)
    model = _model(bench_problem)
    result = benchmark.pedantic(
        lambda: sched.run_epoch(model, bench_problem.train, 0.05, 0.05),
        rounds=3,
        iterations=1,
    )
    assert result == bench_problem.train.nnz


def test_libmf_epoch(benchmark, bench_problem):
    est = LIBMFSolver(k=bench_problem.spec.k, threads=8, a=24, seed=0)
    benchmark.pedantic(
        lambda: est.fit(bench_problem.train, epochs=1), rounds=2, iterations=1
    )

"""Benchmark + regeneration harness for the Eq. 8 locality experiment.

Simulates the rating-stream L1 over a sweep of batch-Hogwild! chunk sizes
and asserts the paper's threshold behaviour (f >> 11 suffices; f = 256 and
f = 32 equivalent).
"""

from conftest import run_experiment_once


def test_eq8(benchmark):
    run_experiment_once(benchmark, "eq8")

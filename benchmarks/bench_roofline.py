"""Benchmark + regeneration harness for paper artifact 'roofline'.

Runs the roofline experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_roofline.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_roofline(benchmark):
    run_experiment_once(benchmark, "roofline")

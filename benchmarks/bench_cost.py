"""Benchmark + regeneration harness for the cost-efficiency experiment.

Runs the cost experiment (quick mode), prints the cost-to-converge table,
and asserts all shape checks hold.
"""

from conftest import run_experiment_once


def test_cost(benchmark):
    run_experiment_once(benchmark, "cost")

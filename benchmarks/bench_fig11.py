"""Benchmark + regeneration harness for paper artifact 'fig11'.

Runs the fig11 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig11.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig11(benchmark):
    run_experiment_once(benchmark, "fig11")

"""Benchmark + regeneration harness for paper artifact 'table4'.

Runs the table4 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_table4.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_table4(benchmark):
    run_experiment_once(benchmark, "table4")

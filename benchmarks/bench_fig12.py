"""Benchmark + regeneration harness for paper artifact 'fig12'.

Runs the fig12 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig12.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig12(benchmark):
    run_experiment_once(benchmark, "fig12")

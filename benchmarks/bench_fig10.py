"""Benchmark + regeneration harness for paper artifact 'fig10'.

Runs the fig10 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig10.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig10(benchmark):
    run_experiment_once(benchmark, "fig10")

"""Benchmark + regeneration harness for paper artifact 'fig13'.

Runs the fig13 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig13.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig13(benchmark):
    run_experiment_once(benchmark, "fig13")

"""Hot-path benchmark: compiled epoch plans + zero-allocation wave kernels.

Measures what the plan/workspace layer buys on the batch-Hogwild! hot path
(the paper's Eq. 7 quantity, #updates/s) by racing two implementations of
the same epoch over the same data:

* **plan path** — :class:`repro.core.hogwild.BatchHogwild` as shipped: the
  epoch schedule compiled once into an ``EpochPlan`` matrix, kernels running
  through a preallocated ``WaveWorkspace``;
* **naive reference** — the pre-plan implementation, embedded below: slice
  one wave's indices per launch and run the allocating kernel.

Both draw the identical RNG stream, so the final factors must match
bit-for-bit — the benchmark asserts it and records the result in the emitted
document. Timing: shared runners show *multiplicative* noise (CPU frequency
drift), so the headline speedup is the median of per-round paired ratios —
each round times one epoch of both variants back to back, alternating which
goes first to cancel drift within the round.

Run::

    PYTHONPATH=src python benchmarks/bench_hot_path.py [--quick] [--out PATH]

Emits a ``BENCH_hot_path.json`` trajectory point (default at the repo
root, the canonical location CI archives) whose schema is pinned by
:func:`validate_result` and smoked by ``tests/test_perf_smoke.py``
(marker: ``perf``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.hogwild import BatchHogwild
from repro.core.kernels import sgd_wave_update
from repro.core.model import FactorModel
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.obs.ledger import PerfLedger, bench_meta
from repro.obs.profiler import PhaseTimer
from repro.obs.relay import WorkerTelemetry

# v2: +meta provenance stamp (bench_meta), +profiler_overhead budget gate
# v3: +sanitizer_overhead budget gate (reprosan --sanitize all)
SCHEMA_VERSION = 3
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_hot_path.json"

#: Worker-side profiling (phase timer + telemetry span + spool flush per
#: epoch) must cost < 5% of a serial epoch — same budget discipline as
#: ``bench_obs_overhead.py``. Enforced by :func:`validate_result`.
MAX_PROFILER_OVERHEAD = 0.05
_PROF_MIN_ROUNDS = 6
_PROF_MAX_ROUNDS = 30
_PROF_CONFIDENT = 0.03

#: Full ``--sanitize all`` instrumentation (shadow access log + sampled
#: numeric checks + epoch-end model sweep) must cost < 10% of a serial
#: epoch. Enforced by :func:`validate_result`.
MAX_SANITIZER_OVERHEAD = 0.10
_SAN_CONFIDENT = 0.06

#: The acceptance configuration: nnz >= 1e6, k = 32, s = 128 workers.
REFERENCE_CONFIG = {
    "m": 8_000, "n": 4_000, "k": 32, "nnz": 1_000_000,
    "workers": 128, "f": 256, "epochs": 5, "seed": 7,
}
#: Tiny variant for smoke tests — same code path, seconds not minutes.
QUICK_CONFIG = {
    "m": 800, "n": 400, "k": 16, "nnz": 40_000,
    "workers": 64, "f": 64, "epochs": 2, "seed": 7,
}


class NaiveBatchHogwild:
    """The pre-plan epoch loop, kept verbatim as the benchmark's reference.

    This is ``BatchHogwild`` as it existed before the plan/workspace layer:
    per-wave index arrays built in Python (reshape per group, boolean-mask
    copy per wave), gathered per wave, run through the allocating kernel.
    Same schedule semantics and RNG stream as the shipped executor, so the
    two must agree bit-for-bit.
    """

    def __init__(self, workers: int, f: int, seed: int) -> None:
        self.workers = workers
        self.f = f
        self._rng = np.random.default_rng(seed)
        self._order: np.ndarray | None = None

    def _epoch_order(self, nnz: int) -> np.ndarray:
        if self._order is None or len(self._order) != nnz:
            self._order = self._rng.permutation(nnz).astype(np.int64)
        else:
            self._rng.shuffle(self._order)
        return self._order

    def wave_indices(self, nnz: int) -> list:
        order = self._epoch_order(nnz)
        waves: list = []
        group_span = self.workers * self.f
        for lo in range(0, nnz, group_span):
            group = order[lo : lo + group_span]
            g = len(group)
            n_chunks = -(-g // self.f)  # ceil
            pad = n_chunks * self.f - g
            if pad:
                group = np.concatenate(
                    [group, np.full(pad, -1, dtype=group.dtype)]
                )
            grid = group.reshape(n_chunks, self.f)
            for t in range(self.f):
                wave = grid[:, t]
                wave = wave[wave >= 0]
                if len(wave):
                    waves.append(wave)
        return waves

    def run_epoch(self, model, ratings, lr, lam_p, lam_q=None) -> int:
        lam_q = lam_p if lam_q is None else lam_q
        rows, cols, vals = ratings.rows, ratings.cols, ratings.vals
        updates = 0
        for wave in self.wave_indices(ratings.nnz):
            wr, wc = rows[wave], cols[wave]
            sgd_wave_update(
                model.p, model.q, wr, wc, vals[wave], lr, lam_p, lam_q
            )
            updates += len(wave)
        return updates


def _timed(fn, *args) -> tuple[float, int]:
    t0 = time.perf_counter()
    result = fn(*args)
    seconds = time.perf_counter() - t0
    return seconds, result


def _profiler_overhead(sched, model, train) -> float:
    """Relative cost of per-epoch profiling on the serial hot path.

    Interleaves bare epochs with epochs wrapped in exactly the worker-side
    instrumentation the parallel executors pay per epoch — a
    :class:`PhaseTimer` compute phase, a :class:`WorkerTelemetry` span, and
    a JSONL spool flush — and compares the per-variant *minima* (the
    bench_obs_overhead.py methodology: additive noise cannot lower a
    minimum, so each variant's best shot converges to its true cost).
    Sampling is adaptive: stops early once the bound is comfortably met.
    """
    timer = PhaseTimer()
    base = prof = float("inf")
    with tempfile.TemporaryDirectory(prefix="bench-hot-prof-") as tmp:
        telemetry = WorkerTelemetry(
            0, origin=time.perf_counter(),
            spool_path=Path(tmp) / "worker_0000.jsonl",
        )

        def bare() -> float:
            t0 = time.perf_counter()
            sched.run_epoch(model, train, 0.05, 0.05)
            return time.perf_counter() - t0

        def profiled(epoch: int) -> float:
            t0 = time.perf_counter()
            with timer.phase("compute"):
                with telemetry.span(f"epoch {epoch} compute") as span_args:
                    n = sched.run_epoch(model, train, 0.05, 0.05)
                    span_args["updates"] = n
            telemetry.flush()
            return time.perf_counter() - t0

        bare(), profiled(0)  # warm both paths
        rounds = 0
        while rounds < _PROF_MAX_ROUNDS:
            base = min(base, bare())
            prof = min(prof, profiled(rounds + 1))
            rounds += 1
            if rounds >= _PROF_MIN_ROUNDS and prof / base - 1.0 < _PROF_CONFIDENT:
                break
    return prof / base - 1.0


def _sanitizer_overhead(sched, model, train) -> float:
    """Relative cost of ``--sanitize all`` on the serial hot path.

    Pairs each bare epoch with an adjacent epoch run under an ambient
    :class:`~repro.san.core.Sanitizer` in full mode — every wave's
    row/col coverage appended to the shadow access log, one residual
    check per ``sample_stride`` waves, and the deterministic epoch-end
    model sweep — and reports the **median of per-round ratios**.
    Unlike the ratio-of-minima used by :func:`_profiler_overhead`, a
    paired ratio compares two runs executed back to back, so sustained
    clock-speed drift (common on shared runners) hits both sides of
    each ratio equally instead of inflating whichever variant hit the
    slow window; alternating which variant goes first cancels the
    residual within-round bias, and the median rejects GC/interrupt
    outliers. The access log is cleared between sanitized rounds so the
    measurement stays allocation-bounded. Sampling is adaptive: stops
    early once the bound is comfortably met.
    """
    from repro.san import Sanitizer, activate_sanitizer

    san = Sanitizer("all")

    def bare() -> float:
        t0 = time.perf_counter()
        sched.run_epoch(model, train, 0.05, 0.05)
        return time.perf_counter() - t0

    def sanitized() -> float:
        san.race_log.clear()
        t0 = time.perf_counter()
        with activate_sanitizer(san):
            sched.run_epoch(model, train, 0.05, 0.05)
        return time.perf_counter() - t0

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    bare(), sanitized()  # warm both paths
    ratios: list[float] = []
    while len(ratios) < _PROF_MAX_ROUNDS:
        if len(ratios) % 2:
            instrumented, base = sanitized(), bare()
        else:
            base, instrumented = bare(), sanitized()
        ratios.append(instrumented / base)
        if len(ratios) >= _PROF_MIN_ROUNDS and (
            median(ratios) - 1.0 < _SAN_CONFIDENT
        ):
            break
    return median(ratios) - 1.0


def run_config(config: dict) -> dict:
    """Race both implementations over one dataset; return the result doc."""
    spec = DatasetSpec(
        name="hot-path", m=config["m"], n=config["n"], k=config["k"],
        n_train=config["nnz"], n_test=1_000,
    )
    problem = make_synthetic(spec, seed=1)
    train = problem.train

    model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
    sched = BatchHogwild(
        workers=config["workers"], f=config["f"], seed=config["seed"]
    )
    reference = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
    naive = NaiveBatchHogwild(config["workers"], config["f"], config["seed"])

    # one epoch of each per round, alternating who goes first; every epoch
    # advances both executors' (identical) RNG streams in lockstep
    plan_times: list[float] = []
    naive_times: list[float] = []
    for r in range(config["epochs"]):
        runs = [
            lambda: _timed(sched.run_epoch, model, train, 0.05, 0.05),
            lambda: _timed(naive.run_epoch, reference, train, 0.05, 0.05),
        ]
        if r % 2:
            runs.reverse()
        pair = [run() for run in runs]
        if r % 2:
            pair.reverse()
        (tp, up), (tn, un) = pair
        assert up == train.nnz and un == train.nnz
        plan_times.append(tp)
        naive_times.append(tn)

    bit_identical = (
        model.p.tobytes() == reference.p.tobytes()
        and model.q.tobytes() == reference.q.tobytes()
    )
    ratios = sorted(n / p for n, p in zip(naive_times, plan_times))
    speedup = ratios[len(ratios) // 2]  # paired-ratio median
    epoch_seconds = min(plan_times)
    naive_epoch_seconds = min(naive_times)
    ws = sched.workspace
    plan_compiles = sched.plan_stats.compiles
    plan_repermutes = sched.plan_stats.repermutes
    # after bit-identity capture: extra epochs only advance the plan RNG
    profiler_overhead = _profiler_overhead(sched, model, train)
    sanitizer_overhead = _sanitizer_overhead(sched, model, train)
    return {
        "benchmark": "hot_path",
        "schema_version": SCHEMA_VERSION,
        "config": dict(config),
        "meta": bench_meta(),
        "metrics": {
            "epoch_seconds": epoch_seconds,
            "naive_epoch_seconds": naive_epoch_seconds,
            "speedup": speedup,
            "updates_per_sec": train.nnz / epoch_seconds,
            "profiler_overhead": profiler_overhead,
            "sanitizer_overhead": sanitizer_overhead,
            "plan_compiles": plan_compiles,
            "plan_repermutes": plan_repermutes,
            "workspace_allocations": ws.allocations,
            "workspace_bytes": ws.nbytes,
        },
        "bit_identical": bit_identical,
    }


def validate_result(doc: dict) -> None:
    """Schema check for a BENCH_hot_path.json document; raises ValueError."""
    def fail(msg: str):
        raise ValueError(f"invalid BENCH_hot_path document: {msg}")

    if not isinstance(doc, dict):
        fail("not a mapping")
    if doc.get("benchmark") != "hot_path":
        fail(f"benchmark is {doc.get('benchmark')!r}, expected 'hot_path'")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    config = doc.get("config")
    if not isinstance(config, dict):
        fail("config missing or not a mapping")
    for key in ("m", "n", "k", "nnz", "workers", "f", "epochs", "seed"):
        if not isinstance(config.get(key), int) or (
            key != "seed" and config[key] <= 0
        ):
            fail(f"config.{key} must be a positive int, got {config.get(key)!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics missing or not a mapping")
    for key in ("epoch_seconds", "naive_epoch_seconds", "speedup",
                "updates_per_sec"):
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"metrics.{key} must be a positive number, got {value!r}")
    overhead = metrics.get("profiler_overhead")
    if not isinstance(overhead, (int, float)):
        fail(f"metrics.profiler_overhead must be a number, got {overhead!r}")
    if overhead >= MAX_PROFILER_OVERHEAD:
        fail(f"metrics.profiler_overhead {overhead:.1%} exceeds the "
             f"{MAX_PROFILER_OVERHEAD:.0%} budget")
    san_overhead = metrics.get("sanitizer_overhead")
    if not isinstance(san_overhead, (int, float)):
        fail(f"metrics.sanitizer_overhead must be a number, "
             f"got {san_overhead!r}")
    if san_overhead >= MAX_SANITIZER_OVERHEAD:
        fail(f"metrics.sanitizer_overhead {san_overhead:.1%} exceeds the "
             f"{MAX_SANITIZER_OVERHEAD:.0%} budget")
    for key in ("plan_compiles", "plan_repermutes",
                "workspace_allocations", "workspace_bytes"):
        value = metrics.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"metrics.{key} must be a non-negative int, got {value!r}")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail("meta missing or not a mapping")
    for key in ("git_sha", "timestamp_utc", "hostname", "cpu_count"):
        if key not in meta:
            fail(f"meta.{key} missing")
    if not isinstance(doc.get("bit_identical"), bool):
        fail("bit_identical must be a bool")


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny config (smoke-test scale) instead of the reference config",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None,
        help="also append the result to this perf ledger JSONL "
             "(e.g. results/perf_ledger.jsonl)",
    )
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else REFERENCE_CONFIG
    doc = run_config(config)
    validate_result(doc)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    if args.ledger is not None:
        PerfLedger(args.ledger).append(doc)
        print(f"appended to ledger {args.ledger}")

    m = doc["metrics"]
    print(f"nnz={config['nnz']:,} k={config['k']} workers={config['workers']} "
          f"f={config['f']}")
    print(f"plan path   : {m['epoch_seconds'] * 1e3:9.2f} ms/epoch "
          f"({m['updates_per_sec'] / 1e6:.2f} M updates/s)")
    print(f"naive path  : {m['naive_epoch_seconds'] * 1e3:9.2f} ms/epoch")
    print(f"speedup     : {m['speedup']:.2f}x   "
          f"bit-identical: {doc['bit_identical']}")
    print(f"profiler overhead: {m['profiler_overhead'] * 100:+.2f}% "
          f"(budget {MAX_PROFILER_OVERHEAD:.0%})")
    print(f"sanitizer overhead: {m['sanitizer_overhead'] * 100:+.2f}% "
          f"(budget {MAX_SANITIZER_OVERHEAD:.0%})")
    print(f"wrote {args.out}")
    return doc


if __name__ == "__main__":
    main()

"""Benchmark + regeneration harness for the Fig. 4 kernel verification.

Runs the warp-level functional model against the serial reference and
asserts the §4 optimization claims (shuffle count, coalescing, registers).
"""

from conftest import run_experiment_once


def test_fig04(benchmark):
    run_experiment_once(benchmark, "fig4")

"""Benchmark + regeneration harness for paper artifact 'fig16'.

Runs the fig16 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig16.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig16(benchmark):
    run_experiment_once(benchmark, "fig16")

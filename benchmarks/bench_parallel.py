"""Executor benchmark: serial vs threaded vs multiprocess Hogwild.

Races the three CPU executors over the same synthetic problem and reports
epochs/sec for each, plus ``ooc_vs_procs`` — the paired-ratio median of
out-of-core over in-core procs epoch time (< 1 ⇒ streaming from the
BlockStore is *faster* than in-core; the pre-v2 name ``ooc_overhead`` was
a deprecated alias for one release and is gone in schema v3). v3 also
scores the **auto** policy: :func:`repro.parallel.policy.choose_executor`
is resolved against the ratios this run just measured, its pick is aliased
into the timing table, and ``auto_vs_serial`` records how the policy's
choice fares against serial — exactly 1.0 when it (correctly) stays
serial, ≥ the policy margin when it goes parallel, so the ≥ 1.0 acceptance
bar holds without special-casing the host. ``oversubscribed`` flags runs
with more workers than cores (their speedup ratios measure contention, not
capacity; perf-diff skips speedup gating on them). Each document also
embeds the procs executors' :class:`~repro.obs.profiler.StallReport` phase
attribution (``stall_report`` / ``stall_report_ooc``) and a ``meta``
provenance stamp (git SHA, UTC timestamp, hostname, cpu count) for the
perf ledger:

* **serial** — :class:`repro.core.hogwild.BatchHogwild`, the compiled-plan
  single-core path (the bench_hot_path.py subject);
* **threads** — :class:`repro.parallel.ThreadedHogwild`, per-thread
  ``SerialPlan`` replay over shared P/Q;
* **procs** — :class:`repro.parallel.ProcessHogwild`, shared-memory
  multiprocess batch-Hogwild! (each ``fit`` pays process spawn + shared
  segment setup, amortized over the run's epochs — recorded as measured);
* **procs (out-of-core)** — the same executor streaming mmap'd
  :class:`repro.data.BlockStore` shards through the double-buffered
  prefetcher instead of holding the ratings in shared memory.

Timing: shared runners show *multiplicative* noise, so each headline ratio
is the median of per-round paired ratios — every round times one full run
of each variant back to back, rotating which goes first to cancel drift
(the bench_hot_path.py methodology extended from pairs to a rotation).

Scaling expectations depend on physical cores: the emitted document records
``os.cpu_count()`` so a 1-core container's honest ~1x threads/procs ratios
are not mistaken for a regression. The cross-executor *correctness*
contract — ``ProcessHogwild(n_procs=1)`` bit-identical to the serial
compiled-plan loop — is asserted on a fixed tiny problem regardless of the
timing config and recorded as ``bit_identical``.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick] [--out PATH]

Emits a ``BENCH_parallel.json`` trajectory point (default at the repo root)
whose schema is pinned by :func:`validate_result` and smoked by
``tests/test_perf_smoke.py`` (marker: ``perf``).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.hogwild import BatchHogwild
from repro.core.lr_schedule import NomadSchedule
from repro.core.model import FactorModel
from repro.data.blockstore import BlockStore
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.obs.ledger import PerfLedger, bench_meta
from repro.obs.profiler import StallReport
from repro.parallel import ProcessHogwild, ThreadedHogwild
from repro.parallel.policy import choose_executor
from repro.san import MODES, SanReport, activate_sanitizer, sanitizer_from_mode

# v2: +meta provenance stamp (bench_meta), +stall_report / stall_report_ooc
# phase attribution, ooc_overhead renamed ooc_vs_procs (deprecated alias
# kept one release)
# v3: +auto policy variant (auto_vs_serial + the auto decision block),
# +oversubscribed flag, deprecated ooc_overhead alias removed
SCHEMA_VERSION = 3
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: The acceptance configuration: nnz >= 1e6, k = 32, s = 128 workers.
REFERENCE_CONFIG = {
    "m": 8_000, "n": 4_000, "k": 32, "nnz": 1_000_000,
    "workers": 128, "f": 256, "epochs": 3, "rounds": 3,
    "n_threads": 4, "n_procs": 4, "grid": 4, "seed": 7,
}
#: Tiny variant for smoke tests — same code paths, seconds not minutes.
QUICK_CONFIG = {
    "m": 800, "n": 400, "k": 16, "nnz": 40_000,
    "workers": 64, "f": 64, "epochs": 2, "rounds": 2,
    "n_threads": 2, "n_procs": 2, "grid": 2, "seed": 7,
}

#: Variant keys in canonical order; ``metrics.{key}_epoch_seconds`` et al.
VARIANTS = ("serial", "threads", "procs", "procs_ooc")


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _run_serial(config: dict, train) -> None:
    """``epochs`` epochs of the compiled-plan serial executor."""
    sched = BatchHogwild(
        workers=config["workers"], f=config["f"], seed=config["seed"]
    )
    model = FactorModel.initialize(
        config["m"], config["n"], config["k"], seed=config["seed"]
    )
    schedule = NomadSchedule()
    for epoch in range(config["epochs"]):
        sched.run_epoch(model, train, schedule(epoch), 0.05)


def _run_threads(config: dict, train) -> None:
    est = ThreadedHogwild(
        k=config["k"], n_threads=config["n_threads"], lam=0.05,
        seed=config["seed"], intra_batch=config["f"],
    )
    est.fit(train, epochs=config["epochs"])


def _run_procs(config: dict, train, store: BlockStore | None = None) -> ProcessHogwild:
    est = ProcessHogwild(
        k=config["k"], n_procs=config["n_procs"], lam=0.05,
        seed=config["seed"], workers=config["workers"], f=config["f"],
        store=store,
    )
    est.fit(train if store is None else None, epochs=config["epochs"])
    return est


def _sanitized_probe(config: dict, mode: str) -> dict:
    """One sanitized :class:`ProcessHogwild` fit over the bench dataset.

    Runs outside the timing loops (the sanitizer's cost is gated
    separately, by ``bench_hot_path``); the report — findings, benign
    race rate, lifecycle pairing — is embedded as the result doc's
    optional ``sanitizer`` block, where :func:`validate_result` fails
    the run on any finding.
    """
    spec = DatasetSpec(
        name="parallel-san", m=config["m"], n=config["n"], k=config["k"],
        n_train=config["nnz"], n_test=1_000,
    )
    train = make_synthetic(spec, seed=1).train
    san = sanitizer_from_mode(mode)
    est = ProcessHogwild(
        k=config["k"], n_procs=config["n_procs"], lam=0.05,
        seed=config["seed"], workers=config["workers"], f=config["f"],
    )
    with activate_sanitizer(san):
        est.fit(train, epochs=config["epochs"])
    return san.finalize().as_dict()


def _bit_identity_check() -> bool:
    """``ProcessHogwild(n_procs=1)`` vs the serial compiled-plan loop.

    Fixed tiny problem (independent of the timing config): same seed, same
    schedule, two epochs — the single-shard process path must reproduce the
    serial executor's factors bit for bit.
    """
    spec = DatasetSpec(name="bitcheck", m=120, n=80, k=8,
                       n_train=4_000, n_test=400)
    train = make_synthetic(spec, seed=3).train
    epochs, seed, workers, f = 2, 11, 32, 16

    ref = FactorModel.initialize(spec.m, spec.n, spec.k, seed=seed)
    sched = BatchHogwild(workers=workers, f=f, seed=seed)
    schedule = NomadSchedule()
    for epoch in range(epochs):
        sched.run_epoch(ref, train, schedule(epoch), 0.05)

    est = ProcessHogwild(k=spec.k, n_procs=1, lam=0.05, seed=seed,
                         workers=workers, f=f)
    est.fit(train, epochs=epochs)
    return (
        est.model.p.tobytes() == ref.p.tobytes()
        and est.model.q.tobytes() == ref.q.tobytes()
    )


def run_config(config: dict) -> dict:
    """Race all executor variants over one dataset; return the result doc."""
    spec = DatasetSpec(
        name="parallel", m=config["m"], n=config["n"], k=config["k"],
        n_train=config["nnz"], n_test=1_000,
    )
    train = make_synthetic(spec, seed=1).train

    times: dict[str, list[float]] = {key: [] for key in VARIANTS}
    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as tmp:
        store = BlockStore.create(
            train, config["grid"], config["grid"], tmp,
            seed=config["seed"],
        )
        # keep the last fitted procs estimators: their StallReports (phase
        # accounting is always on, spooling only under a tracer — no timing
        # skew) become the doc's stall_report / stall_report_ooc
        fitted: dict[str, ProcessHogwild] = {}
        runs = [
            ("serial", lambda: _run_serial(config, train)),
            ("threads", lambda: _run_threads(config, train)),
            ("procs",
             lambda: fitted.__setitem__("procs", _run_procs(config, train))),
            ("procs_ooc",
             lambda: fitted.__setitem__(
                 "procs_ooc", _run_procs(config, train, store=store))),
        ]
        for r in range(config["rounds"]):
            # rotate who goes first so frequency drift cancels in the medians
            rotated = runs[r % len(runs):] + runs[:r % len(runs)]
            for key, fn in rotated:
                times[key].append(_timed(fn))

    epochs = config["epochs"]

    def ratio(num: str, den: str) -> float:
        pairs = sorted(n / d for n, d in zip(times[num], times[den]))
        return pairs[len(pairs) // 2]  # paired-ratio median

    metrics: dict[str, float | int] = {}
    for key in VARIANTS:
        best = min(times[key])
        metrics[f"{key}_epoch_seconds"] = best / epochs
        metrics[f"{key}_updates_per_sec"] = train.nnz * epochs / best
    metrics["threads_vs_serial"] = ratio("serial", "threads")
    metrics["procs_vs_serial"] = ratio("serial", "procs")
    # t(procs_ooc) / t(procs): < 1 means the out-of-core pipeline is
    # *faster* than in-core procs, > 1 means staging costs wall time
    metrics["ooc_vs_procs"] = ratio("procs_ooc", "procs")
    cpu_count = os.cpu_count() or 1
    # auto variant: resolve the policy against the ratios just measured on
    # this host (the strongest evidence there is) and alias its pick into
    # the timing table — auto_vs_serial is exactly 1.0 when the policy
    # (correctly) stays serial, >= the policy margin when it goes parallel
    choice = choose_executor(
        config["nnz"], config["k"], cpu_count=cpu_count,
        evidence={
            "threads_vs_serial": metrics["threads_vs_serial"],
            "procs_vs_serial": metrics["procs_vs_serial"],
            "n_threads": config["n_threads"],
            "n_procs": config["n_procs"],
        },
    )
    times["auto"] = times[choice.executor]
    metrics["auto_vs_serial"] = ratio("serial", "auto")
    # more workers than cores: the speedup ratios above measure contention,
    # not capacity — perf-diff skips speedup gating on flagged runs
    metrics["oversubscribed"] = (
        max(config["n_threads"], config["n_procs"]) > cpu_count
    )
    metrics["cpu_count"] = cpu_count
    return {
        "benchmark": "parallel",
        "schema_version": SCHEMA_VERSION,
        "config": dict(config),
        "meta": bench_meta(),
        "metrics": metrics,
        "auto": choice.as_dict(),
        "stall_report": fitted["procs"].stall_report.as_dict(),
        "stall_report_ooc": fitted["procs_ooc"].stall_report.as_dict(),
        "bit_identical": _bit_identity_check(),
    }


def validate_result(doc: dict) -> None:
    """Schema check for a BENCH_parallel.json document; raises ValueError."""
    def fail(msg: str):
        raise ValueError(f"invalid BENCH_parallel document: {msg}")

    if not isinstance(doc, dict):
        fail("not a mapping")
    if doc.get("benchmark") != "parallel":
        fail(f"benchmark is {doc.get('benchmark')!r}, expected 'parallel'")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    config = doc.get("config")
    if not isinstance(config, dict):
        fail("config missing or not a mapping")
    for key in ("m", "n", "k", "nnz", "workers", "f", "epochs", "rounds",
                "n_threads", "n_procs", "grid", "seed"):
        if not isinstance(config.get(key), int) or (
            key != "seed" and config[key] <= 0
        ):
            fail(f"config.{key} must be a positive int, got {config.get(key)!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics missing or not a mapping")
    positive = [f"{key}_epoch_seconds" for key in VARIANTS]
    positive += [f"{key}_updates_per_sec" for key in VARIANTS]
    positive += ["threads_vs_serial", "procs_vs_serial", "ooc_vs_procs",
                 "auto_vs_serial"]
    for key in positive:
        value = metrics.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value <= 0:
            fail(f"metrics.{key} must be a positive number, got {value!r}")
    if "ooc_overhead" in metrics:
        fail("metrics.ooc_overhead was removed in schema v3 "
             "(use metrics.ooc_vs_procs)")
    # the auto acceptance bar: never lose to serial. Exactly 1.0 when the
    # policy stays serial (auto aliases the serial timings), >= the policy
    # margin when it picked a parallel executor on measured evidence.
    if metrics["auto_vs_serial"] < 1.0 - 1e-9:
        fail(f"metrics.auto_vs_serial = {metrics['auto_vs_serial']!r} < 1.0: "
             "the auto policy lost to serial")
    if not isinstance(metrics.get("oversubscribed"), bool):
        fail("metrics.oversubscribed must be a bool")
    cpus = metrics.get("cpu_count")
    if not isinstance(cpus, int) or cpus <= 0:
        fail(f"metrics.cpu_count must be a positive int, got {cpus!r}")
    auto = doc.get("auto")
    if not isinstance(auto, dict):
        fail("auto decision block missing or not a mapping")
    if auto.get("executor") not in ("serial", "threads", "procs"):
        fail(f"auto.executor {auto.get('executor')!r} unknown")
    if not isinstance(auto.get("n_workers"), int) or auto["n_workers"] <= 0:
        fail(f"auto.n_workers must be a positive int, got {auto.get('n_workers')!r}")
    for key in ("backend", "reason"):
        if not isinstance(auto.get(key), str) or not auto[key]:
            fail(f"auto.{key} must be a non-empty string")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail("meta missing or not a mapping")
    for key in ("git_sha", "timestamp_utc", "hostname", "cpu_count"):
        if key not in meta:
            fail(f"meta.{key} missing")
    for key in ("stall_report", "stall_report_ooc"):
        report = doc.get(key)
        if not isinstance(report, dict):
            fail(f"{key} missing or not a mapping")
        try:
            StallReport.validate_dict(report)
        except ValueError as exc:
            fail(f"{key}: {exc}")
    ooc = doc["stall_report_ooc"]
    if doc["stall_report"].get("executor") != "procs":
        fail("stall_report.executor must be 'procs'")
    if ooc.get("executor") != "procs_ooc":
        fail("stall_report_ooc.executor must be 'procs_ooc'")
    if not isinstance(doc.get("bit_identical"), bool):
        fail("bit_identical must be a bool")
    if "sanitizer" in doc:  # optional block, present under --sanitize
        try:
            SanReport.validate_dict(doc["sanitizer"])
        except ValueError as exc:
            fail(f"sanitizer: {exc}")
        if not doc["sanitizer"]["clean"]:
            found = doc["sanitizer"]["findings"]
            fail(f"sanitizer reported {len(found)} finding(s): "
                 + "; ".join(f["message"] for f in found[:3]))


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny config (smoke-test scale) instead of the reference config",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None,
        help="also append the result to this perf ledger JSONL "
             "(e.g. results/perf_ledger.jsonl)",
    )
    parser.add_argument(
        "--sanitize", choices=MODES, default="off",
        help="also run one reprosan-instrumented procs fit and embed its "
             "report; any finding fails validation (default: off)",
    )
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else REFERENCE_CONFIG
    doc = run_config(config)
    if args.sanitize != "off":
        doc["sanitizer"] = _sanitized_probe(config, args.sanitize)
    validate_result(doc)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    if args.ledger is not None:
        PerfLedger(args.ledger).append(doc)
        print(f"appended to ledger {args.ledger}")

    m = doc["metrics"]
    print(f"nnz={config['nnz']:,} k={config['k']} "
          f"threads={config['n_threads']} procs={config['n_procs']} "
          f"cpus={m['cpu_count']}")
    for key in VARIANTS:
        print(f"{key:11s}: {m[f'{key}_epoch_seconds'] * 1e3:9.2f} ms/epoch "
              f"({m[f'{key}_updates_per_sec'] / 1e6:.2f} M updates/s)")
    print(f"threads vs serial: {m['threads_vs_serial']:.2f}x   "
          f"procs vs serial: {m['procs_vs_serial']:.2f}x   "
          f"out-of-core vs procs: {m['ooc_vs_procs']:.2f}x (<1 means ooc faster)")
    auto = doc["auto"]
    print(f"auto policy: {auto['executor']} / {auto['backend']} -> "
          f"{m['auto_vs_serial']:.2f}x vs serial ({auto['reason']})")
    if m["oversubscribed"]:
        print("WARNING: oversubscribed (workers > cores) — speedup ratios "
              "measure contention, not capacity; perf-diff will not gate "
              "on them")
    print(f"n_procs=1 bit-identical to serial: {doc['bit_identical']}")
    if "sanitizer" in doc:
        s = doc["sanitizer"]
        rate = s["race"]["race_rate"]
        print(f"sanitizer ({s['mode']}): clean={s['clean']} "
              f"findings={len(s['findings'])} benign race rate={rate:.2%}")
    agg = doc["stall_report"]["aggregate"]["fractions"]
    print("procs stall attribution: " + "  ".join(
        f"{phase}={agg[phase]:.1%}" for phase in doc["stall_report"]["phases"]
    ))
    print(f"wrote {args.out}")
    return doc


if __name__ == "__main__":
    main()

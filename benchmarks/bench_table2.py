"""Benchmark + regeneration harness for paper artifact 'table2'.

Runs the table2 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_table2(benchmark):
    run_experiment_once(benchmark, "table2")

"""Benchmark + regeneration harness for paper artifact 'fig14'.

Runs the fig14 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig14.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig14(benchmark):
    run_experiment_once(benchmark, "fig14")

"""Instrumentation overhead budget: telemetry must cost < 5% of an epoch.

Two variants of one small synthetic Hogwild run:

* **null path** — hooks resolve to ``NULL_HOOKS``; per wave the producer
  pays one attribute check, nothing else (the zero-cost discipline of
  ``repro.obs.hooks``);
* **collector path** — a ``TelemetryCollector`` attached; producers honor
  its ``kernel_stride`` hint, so per-wave emission amortizes and the Eq. 6
  collision fraction is a 1-in-stride sample.

Timing method: interleave many short epochs of both variants and compare the
per-variant *minima*. Shared runners show correlated noise bursts of 30-50%
lasting several runs — long enough to poison any mean, and a burst landing
inside one A/B pair poisons a median of ratios too. The minimum over many
interleaved shots is robust: noise is strictly additive, so each variant's
best observed time converges to its true cost.
"""

import time

import pytest

from repro.core.hogwild import BatchHogwild
from repro.core.model import FactorModel
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.obs import NULL_HOOKS, TelemetryCollector

pytestmark = pytest.mark.obs

#: Overhead budget from the issue: attached telemetry must stay under 5%.
MAX_OVERHEAD = 0.05
#: Stop sampling once the observed bound is comfortably inside the budget.
CONFIDENT_OVERHEAD = 0.03
MIN_ROUNDS = 10
MAX_ROUNDS = 60


@pytest.fixture(scope="module")
def obs_bench_setup():
    # Epochs of ~70 ms: large enough that the collector's fixed per-epoch
    # costs (a handful of sampled Eq. 6 fractions) sit well under the budget,
    # small enough that 2 x ROUNDS epochs stay a few seconds.
    spec = DatasetSpec(
        name="obs-bench", m=2_000, n=1_200, k=32, n_train=200_000, n_test=1_000
    )
    problem = make_synthetic(spec, seed=1)
    model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
    sched = BatchHogwild(workers=128, f=256, seed=0)
    return sched, model, problem


def _epoch_seconds(sched, model, problem, hooks) -> float:
    t0 = time.perf_counter()
    sched.run_epoch(model, problem.train, 0.05, 0.05, hooks=hooks)
    return time.perf_counter() - t0


def test_collector_overhead_under_budget(obs_bench_setup):
    sched, model, problem = obs_bench_setup
    collector = TelemetryCollector()
    # warm both paths (imports, allocator, branch caches)
    _epoch_seconds(sched, model, problem, NULL_HOOKS)
    _epoch_seconds(sched, model, problem, collector)
    base = inst = float("inf")
    rounds = 0
    # Adaptive: noise bursts can hide one variant's clean window for dozens
    # of shots, so keep sampling until the bound is clearly met (or we run
    # out of patience and report the honest, possibly noisy, figure).
    while rounds < MAX_ROUNDS:
        base = min(base, _epoch_seconds(sched, model, problem, NULL_HOOKS))
        inst = min(inst, _epoch_seconds(sched, model, problem, collector))
        rounds += 1
        if rounds >= MIN_ROUNDS and inst / base - 1.0 < CONFIDENT_OVERHEAD:
            break
    overhead = inst / base - 1.0
    print(f"\nbest of {rounds}: null {base * 1e3:.2f} ms, "
          f"collector {inst * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%")
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} budget"
    )
    # the collector really did collect while staying under budget
    assert collector.registry.value("repro.kernel.waves") > 0
    assert collector.registry.get("repro.kernel.wave_collision_fraction").total > 0


def test_stride_keeps_wave_count_exact(obs_bench_setup):
    """Sampling may thin events, never the accounting."""
    sched, model, problem = obs_bench_setup
    collector = TelemetryCollector(kernel_sample_every=64)
    sched.run_epoch(model, problem.train, 0.05, 0.05, hooks=collector)
    n_waves = sum(1 for _ in sched.wave_indices(problem.train.nnz))
    assert collector.registry.value("repro.kernel.waves") == n_waves

"""Micro-benchmarks of the SGD kernels and metrics.

These measure the *host implementation's* throughput (updates/s of the
vectorized wave engine), which is also reported so the simulated GPU
numbers can be put in context.
"""

import numpy as np
import pytest

from repro.core.kernels import conflict_free_segments, sgd_serial_update, sgd_wave_update
from repro.core.model import FactorModel
from repro.metrics.rmse import rmse


@pytest.fixture(scope="module")
def wave_inputs(bench_problem):
    model = FactorModel.initialize(
        bench_problem.spec.m, bench_problem.spec.n, bench_problem.spec.k, seed=0
    )
    train = bench_problem.train
    wave = np.arange(512)
    return model, train.rows[wave], train.cols[wave], train.vals[wave]


def test_wave_update_512(benchmark, wave_inputs):
    model, rows, cols, vals = wave_inputs
    benchmark(sgd_wave_update, model.p, model.q, rows, cols, vals, 0.05, 0.05)


def test_wave_update_fp16_512(benchmark, wave_inputs):
    model, rows, cols, vals = wave_inputs
    half = model.to_half()
    benchmark(sgd_wave_update, half.p, half.q, rows, cols, vals, 0.05, 0.05)


def test_serial_update_4096(benchmark, bench_problem):
    model = FactorModel.initialize(
        bench_problem.spec.m, bench_problem.spec.n, bench_problem.spec.k, seed=0
    )
    train = bench_problem.train
    idx = np.arange(4096)
    benchmark(
        sgd_serial_update,
        model.p,
        model.q,
        train.rows[idx],
        train.cols[idx],
        train.vals[idx],
        0.05,
        0.05,
    )


def test_conflict_free_segmentation_4096(benchmark, bench_problem):
    train = bench_problem.train
    idx = np.arange(4096)
    benchmark(conflict_free_segments, train.rows[idx], train.cols[idx], 64)


def test_rmse_full_test_set(benchmark, bench_problem):
    model = FactorModel.initialize(
        bench_problem.spec.m, bench_problem.spec.n, bench_problem.spec.k, seed=0
    )
    p, q = model.as_float32()
    benchmark(rmse, p, q, bench_problem.test)

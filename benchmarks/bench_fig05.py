"""Benchmark + regeneration harness for paper artifact 'fig5b'.

Runs the fig5b experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig05.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig05(benchmark):
    run_experiment_once(benchmark, "fig5b")

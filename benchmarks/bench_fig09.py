"""Benchmark + regeneration harness for paper artifact 'fig9'.

Runs the fig9 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig09.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig09(benchmark):
    run_experiment_once(benchmark, "fig9")

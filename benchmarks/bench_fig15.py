"""Benchmark + regeneration harness for paper artifact 'fig15'.

Runs the fig15 experiment (quick mode), prints the same rows/series the
paper reports, and asserts all shape checks hold. Run with::

    pytest benchmarks/bench_fig15.py --benchmark-only -s
"""

from conftest import run_experiment_once


def test_fig15(benchmark):
    run_experiment_once(benchmark, "fig15")

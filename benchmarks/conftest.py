"""Shared benchmark fixtures."""

from __future__ import annotations

import pytest

from repro.data.synthetic import DatasetSpec, make_synthetic


@pytest.fixture(scope="session")
def bench_problem():
    """Mid-size problem for kernel/scheduler benchmarks."""
    spec = DatasetSpec(name="bench", m=2_000, n=1_200, k=32, n_train=200_000, n_test=10_000)
    return make_synthetic(spec, seed=1)


def run_experiment_once(benchmark, exp_id: str):
    """Benchmark one quick experiment run and assert its shape checks."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, quick=True), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.all_checks_pass, f"failed checks: {result.failed_checks()}"
    return result

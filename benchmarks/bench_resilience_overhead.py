"""Resilience overhead budget: the no-fault path must cost < 5% extra.

Two comparisons on one small synthetic workload:

* **executor path** — ``MultiDeviceSGD.run_epoch`` bare vs. with an empty
  :class:`~repro.resilience.faults.FaultPlan` attached. With no faults
  planned, the injector adds one liveness check and one ordinal bump per
  dispatch — nothing else (and the RNG stream is untouched, so the
  resulting factors are byte-identical; ``tests/test_resilience.py``
  asserts that separately);
* **trainer path** — ``CuMFSGD.fit`` vs. :class:`ResilientTrainer.fit`
  on a stable configuration. The per-epoch divergence gate must be near
  free; checkpoint writes are the *deliberate* cost and amortize over
  ``checkpoint_every`` (~9 ms per write here — at the default every-epoch
  cadence that is a conscious durability/throughput trade, so the budget
  is enforced on a sparse cadence plus the mandatory epoch-0 safety net).

Timing method (same rationale as ``bench_obs_overhead.py``): interleave
many short shots of both variants and compare per-variant *minima* — noise
is strictly additive, so each minimum converges to the true cost, where a
mean or a median of ratios is poisoned by multi-shot noise bursts.
"""

import time

import pytest

from repro.core.lr_schedule import ConstantSchedule
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.trainer import CuMFSGD
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.resilience import FaultPlan, ResilientTrainer

pytestmark = pytest.mark.resilience

#: Overhead budget from the issue: the no-fault path must stay under 5%.
MAX_OVERHEAD = 0.05
#: Stop sampling once the observed bound is comfortably inside the budget.
CONFIDENT_OVERHEAD = 0.03
MIN_ROUNDS = 10
MAX_ROUNDS = 60


@pytest.fixture(scope="module")
def resilience_bench_setup():
    # ~50 ms epochs: large enough that per-dispatch injector checks and the
    # per-epoch checkpoint/guard amortize, small enough to sample many shots.
    spec = DatasetSpec(
        name="resilience-bench", m=2_000, n=1_200, k=32,
        n_train=150_000, n_test=1_000,
    )
    problem = make_synthetic(spec, seed=1)
    model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
    return model, problem


def _min_of_interleaved(run_a, run_b):
    """Interleaved best-of-N for two thunks; returns (min_a, min_b, rounds)."""
    run_a(), run_b()  # warm both paths
    best_a = best_b = float("inf")
    rounds = 0
    while rounds < MAX_ROUNDS:
        t0 = time.perf_counter()
        run_a()
        t1 = time.perf_counter()
        run_b()
        t2 = time.perf_counter()
        best_a = min(best_a, t1 - t0)
        best_b = min(best_b, t2 - t1)
        rounds += 1
        if rounds >= MIN_ROUNDS and best_b / best_a - 1.0 < CONFIDENT_OVERHEAD:
            break
    return best_a, best_b, rounds


def test_empty_fault_plan_overhead_under_budget(resilience_bench_setup):
    model, problem = resilience_bench_setup
    bare = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=64, seed=0)
    armed = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=64, seed=0)
    armed.attach_faults(FaultPlan())

    base, inst, rounds = _min_of_interleaved(
        lambda: bare.run_epoch(model, problem.train, 0.05, 0.05),
        lambda: armed.run_epoch(model, problem.train, 0.05, 0.05),
    )
    overhead = inst / base - 1.0
    print(f"\nbest of {rounds}: bare {base * 1e3:.2f} ms, "
          f"injector {inst * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%")
    assert overhead < MAX_OVERHEAD, (
        f"no-fault injector overhead {overhead:.1%} exceeds "
        f"the {MAX_OVERHEAD:.0%} budget"
    )
    assert not armed.injector.events  # nothing fired on the empty plan


def test_resilient_trainer_overhead_under_budget(resilience_bench_setup, tmp_path):
    _, problem = resilience_bench_setup

    def plain():
        est = CuMFSGD(k=16, workers=64, schedule=ConstantSchedule(0.05), seed=0)
        est.fit(problem.train, epochs=5)

    def resilient():
        est = CuMFSGD(k=16, workers=64, schedule=ConstantSchedule(0.05), seed=0)
        # sparse cadence: the timed overhead is the divergence gate plus
        # the epoch-0 safety-net checkpoint, i.e. the mandatory minimum
        ResilientTrainer(est, tmp_path, checkpoint_every=6).fit(
            problem.train, epochs=5
        )

    base, inst, rounds = _min_of_interleaved(plain, resilient)
    overhead = inst / base - 1.0
    print(f"\nbest of {rounds}: plain fit {base * 1e3:.2f} ms, "
          f"resilient {inst * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%")
    assert overhead < MAX_OVERHEAD, (
        f"resilient-loop overhead {overhead:.1%} exceeds "
        f"the {MAX_OVERHEAD:.0%} budget"
    )

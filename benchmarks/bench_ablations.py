"""Ablation benches for the design decisions DESIGN.md calls out.

1. Half-precision storage (§4): modelled throughput doubles; measured RMSE
   unaffected.
2. Batch-Hogwild! chunk size ``f`` (Eq. 8): convergence insensitive above
   the cache-line bound.
3. Wavefront grid shape: ``s x 2s`` vs tighter grids — wait events and
   convergence.
4. Stream pipeline depth (§6.2): deeper staging hides more transfer.
5. Scheduler policy ladder: O(a²) table -> O(a) rowcol -> wavefront ->
   hogwild, modelled at 768 workers.
6. ``ThreadedHogwild.intra_batch`` (the executor-level ``f``): segment
   replay is serial-equivalent, so the knob is pure throughput — at
   ``n_threads=1`` every value must yield bit-identical factors.
"""

import numpy as np
import pytest

from repro.core.hogwild import BatchHogwild
from repro.core.model import FactorModel
from repro.core.trainer import CuMFSGD
from repro.core.wavefront import WavefrontScheduler
from repro.data.synthetic import PAPER_DATASETS
from repro.gpusim.simulator import cumf_throughput, staged_epoch_seconds
from repro.gpusim.specs import MAXWELL_TITAN_X
from repro.gpusim.streams import StagedBlock, StreamPipeline
from repro.metrics.rmse import rmse

NETFLIX = PAPER_DATASETS["netflix"]


def test_ablation_half_precision(benchmark, bench_problem):
    """fp16 halves modelled bytes -> 2x modelled updates/s; measured RMSE
    within 2% of fp32."""
    finals = {}

    def run():
        for half in (False, True):
            est = CuMFSGD(k=16, workers=64, lam=0.05, seed=0, half_precision=half)
            hist = est.fit(bench_problem.train, epochs=4, test=bench_problem.test)
            finals[half] = hist.final_test_rmse
        return finals

    benchmark.pedantic(run, rounds=1, iterations=1)
    model_ratio = (
        cumf_throughput(MAXWELL_TITAN_X, NETFLIX, half_precision=True).updates_per_sec
        / cumf_throughput(MAXWELL_TITAN_X, NETFLIX, half_precision=False).updates_per_sec
    )
    print(f"\nmodelled fp16/fp32 throughput ratio: {model_ratio:.2f}")
    print(f"measured RMSE fp32={finals[False]:.4f} fp16={finals[True]:.4f}")
    assert model_ratio == pytest.approx(2.0, rel=0.02)
    assert finals[True] == pytest.approx(finals[False], rel=0.02)


def test_ablation_hogwild_f(benchmark, bench_problem):
    """Paper: f values beyond the Eq. 8 bound 'yield similar benefit'."""
    finals = {}

    def run():
        for f in (16, 64, 256, 1024):
            sched = BatchHogwild(workers=64, f=f, seed=0)
            model = FactorModel.initialize(
                bench_problem.spec.m, bench_problem.spec.n, 16, seed=0
            )
            for _ in range(3):
                sched.run_epoch(model, bench_problem.train, 0.08, 0.05)
            p, q = model.as_float32()
            finals[f] = rmse(p, q, bench_problem.test)
        return finals

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRMSE by f: {finals}")
    values = list(finals.values())
    assert max(values) - min(values) < 0.02


def test_ablation_wavefront_grid(benchmark, bench_problem):
    """c = 2s (paper) vs c = s: the tight grid forces far more waiting."""
    waits = {}

    def run():
        for c_mult in (1, 2, 4):
            sched = WavefrontScheduler(workers=8, col_blocks=8 * c_mult, seed=0)
            model = FactorModel.initialize(
                bench_problem.spec.m, bench_problem.spec.n, 16, seed=0
            )
            sched.run_epoch(model, bench_problem.train, 0.08, 0.05)
            waits[c_mult] = sched.wait_events
        return waits

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nwait events by c/s: {waits}")
    assert waits[1] > waits[2]


def test_ablation_pipeline_depth(benchmark):
    """Deeper staging monotonically shrinks the Hugewiki epoch makespan."""
    hugewiki = PAPER_DATASETS["hugewiki"]
    rate = cumf_throughput(MAXWELL_TITAN_X, hugewiki).updates_per_sec

    def run():
        return {
            depth: staged_epoch_seconds(MAXWELL_TITAN_X, hugewiki, rate, depth=depth)
            for depth in (1, 2, 4, 8)
        }

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nHugewiki epoch seconds by depth: {spans}")
    assert spans[1] >= spans[2] >= spans[4] >= spans[8]
    assert spans[2] < 0.9 * spans[1]  # paper's two-resident-blocks choice pays


def test_ablation_scheduler_ladder(benchmark):
    """Modelled updates/s at full Maxwell occupancy across the policy
    ladder; each rung removes scheduling overhead."""

    def run():
        ladder = {}
        for scheme in ("libmf_gpu", "wavefront", "batch_hogwild"):
            ladder[scheme] = cumf_throughput(
                MAXWELL_TITAN_X, NETFLIX, scheme=scheme, half_precision=False
            ).mupdates
        return ladder

    ladder = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMupdates/s at 768 workers (fp32): {ladder}")
    assert ladder["libmf_gpu"] < ladder["wavefront"] <= ladder["batch_hogwild"]


def test_ablation_threaded_intra_batch(benchmark, bench_problem):
    """``intra_batch`` (default 256 = the paper's ``f``) only changes how
    the per-thread shard is segmented, never the update order — with one
    thread the factors must match bit for bit across the sweep."""
    from repro.parallel import ThreadedHogwild

    factors = {}

    def run():
        for intra_batch in (64, 256, 1024):
            est = ThreadedHogwild(
                k=16, n_threads=1, lam=0.05, seed=0, intra_batch=intra_batch
            )
            est.fit(bench_problem.train, epochs=2)
            factors[intra_batch] = (
                est.model.p.tobytes(), est.model.q.tobytes()
            )
        return factors

    benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = factors[256]
    assert all(pair == baseline for pair in factors.values())


def test_ablation_minibatch_size(benchmark, bench_problem):
    """§3's argument against batch SGD: growing the mini-batch to saturate
    a GPU hurts per-epoch convergence — why cuMF_SGD avoids the BIDMach
    design entirely."""
    from repro.baselines.bidmach import BIDMachSGD

    finals = {}

    def run():
        for batch in (512, 4096, 32_768):
            est = BIDMachSGD(k=16, batch=batch, lam=0.05, seed=0)
            hist = est.fit(bench_problem.train, epochs=3, test=bench_problem.test)
            finals[batch] = hist.final_test_rmse
        return finals

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRMSE after 3 epochs by mini-batch size: {finals}")
    assert finals[512] < finals[32_768]


def test_ablation_race_wave_width(benchmark, bench_problem):
    """The engine's own knob: wider concurrent waves = more collisions and
    slower convergence per epoch — the s vs min(m, n) story end-to-end."""
    finals = {}

    def run():
        for workers in (8, 64, 512):
            est = CuMFSGD(k=16, workers=workers, lam=0.05, seed=0)
            hist = est.fit(bench_problem.train, epochs=3, test=bench_problem.test)
            finals[workers] = hist.final_test_rmse
        return finals

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRMSE after 3 epochs by wave width: {finals}")
    assert finals[8] <= finals[512]

#!/usr/bin/env python
"""Quickstart: factorize a synthetic rating matrix with cuMF_SGD.

Generates a Netflix-shaped low-rank problem, trains the batch-Hogwild!
engine with the paper's Eq. 9 learning-rate schedule, and reports the
test-RMSE trajectory plus a few predictions.

Run:  python examples/quickstart.py
"""

from repro import CuMFSGD
from repro.core.lr_schedule import NomadSchedule
from repro.data.synthetic import DatasetSpec, make_synthetic


def main() -> None:
    # 1. a laptop-sized problem with known ground truth ------------------
    spec = DatasetSpec(
        name="quickstart", m=3_000, n=1_200, k=32,
        n_train=250_000, n_test=15_000,
    )
    problem = make_synthetic(spec, seed=0)
    print(f"data set: {problem.train}")
    print(f"best achievable test RMSE (noise floor): {problem.rmse_floor:.3f}\n")

    # 2. train ------------------------------------------------------------
    model = CuMFSGD(
        k=32,
        scheme="batch_hogwild",   # the paper's default single-GPU scheme
        workers=48,               # concurrent parallel workers (thread blocks)
        lam=0.05,                 # Table 3 regularization
        schedule=NomadSchedule(alpha=0.08, beta=0.05),  # Eq. 9
        half_precision=True,      # fp16 feature storage (§4)
        seed=0,
    )
    history = model.fit(
        problem.train, epochs=25, test=problem.test, target_rmse=0.56, verbose=True
    )

    # 3. inspect ------------------------------------------------------------
    status = "converged to" if history.final_test_rmse <= 0.56 else "reached"
    print(f"\n{status} test RMSE {history.final_test_rmse:.4f} "
          f"in {history.epochs[-1]} epochs "
          f"({history.total_updates / 1e6:.1f}M SGD updates)")
    print(f"parallelism safety: {model.safety}")

    rows = problem.test.rows[:5]
    cols = problem.test.cols[:5]
    preds = model.predict(rows, cols)
    print("\nsample predictions vs observed:")
    for u, v, pred, obs in zip(rows, cols, preds, problem.test.vals[:5]):
        print(f"  user {u:5d} item {v:5d}: predicted {pred:+.3f}  observed {obs:+.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scaling study: schedulers, GPU generations, and real threads.

Walks through the paper's performance story with the model substrate:

1. the roofline diagnosis (Eq. 5) — why MF-SGD is memory-bound;
2. scheduler scaling on Maxwell (Fig. 5b / 7a): global table vs wavefront
   vs batch-Hogwild!;
3. Maxwell vs Pascal at full occupancy (Fig. 11);
4. the host engine on real OS threads (genuine Hogwild! races).

Run:  python examples/scaling_study.py
"""

import time

from repro.data.synthetic import PAPER_DATASETS, DatasetSpec, make_synthetic
from repro.gpusim.roofline import roofline_point
from repro.gpusim.simulator import cumf_throughput, libmf_cpu_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL
from repro.parallel.threads import ThreadedHogwild

NETFLIX = PAPER_DATASETS["netflix"]


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("1. roofline: why SGD-MF wants bandwidth, not flops")
    for device in (XEON_E5_2670_DUAL, MAXWELL_TITAN_X, PASCAL_P100):
        pt = roofline_point(device, k=128, feature_bytes=2)
        print(f"{pt.device:22s} intensity {pt.intensity:4.2f} flops/B  "
              f"bw-bound {pt.bandwidth_bound_updates_per_sec / 1e6:6.0f} M upd/s  "
              f"(uses {pt.efficiency:.1%} of peak flops)")

    section("2. scheduler scaling on Maxwell (Netflix, fp32)")
    print(f"{'workers':>8s} {'LIBMF-GPU':>10s} {'wavefront':>10s} {'hogwild':>10s}")
    for w in (64, 128, 240, 480, 768):
        row = [
            cumf_throughput(MAXWELL_TITAN_X, NETFLIX, workers=w, scheme=s,
                            half_precision=False).mupdates
            for s in ("libmf_gpu", "wavefront", "batch_hogwild")
        ]
        print(f"{w:8d} {row[0]:10.1f} {row[1]:10.1f} {row[2]:10.1f}")
    cpu = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX)
    print(f"(reference: LIBMF on 40 CPU threads = {cpu.mupdates:.1f} M upd/s)")

    section("3. Maxwell vs Pascal at full occupancy (fp16 features)")
    for spec in (MAXWELL_TITAN_X, PASCAL_P100):
        pt = cumf_throughput(spec, NETFLIX)
        print(f"{spec.name:16s} {pt.workers:5d} workers  "
              f"{pt.mupdates:6.0f} M upd/s  "
              f"{pt.effective_bandwidth_gbs:5.0f} GB/s effective")

    section("4. the host engine on real OS threads")
    problem = make_synthetic(
        DatasetSpec(name="threads", m=2_000, n=1_000, k=16,
                    n_train=150_000, n_test=8_000),
        seed=0,
    )
    for n_threads in (1, 2, 4):
        est = ThreadedHogwild(k=16, n_threads=n_threads, lam=0.05, seed=0)
        start = time.perf_counter()
        hist = est.fit(problem.train, epochs=5, test=problem.test)
        elapsed = time.perf_counter() - start
        rate = hist.total_updates / elapsed / 1e6
        print(f"{n_threads} thread(s): {elapsed:5.2f}s  {rate:5.2f} M upd/s  "
              f"final RMSE {hist.final_test_rmse:.4f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A production-style training pipeline around cuMF_SGD.

Chains the library's data-hygiene, training, diagnostics, and persistence
APIs the way a deployed recommender would:

1. ingest raw ratings on a 0-100 scale with sparse, gappy ids;
2. compact ids, filter cold users/items, normalize the scale, strip biases;
3. check the parallelism configuration against the §7.5 safety rule;
4. train with early stopping, classify the curve with the diagnostics;
5. checkpoint, reload, and resume for two more epochs;
6. serve final predictions on the original rating scale.

Run:  python examples/production_pipeline.py
"""

import numpy as np

from repro import CuMFSGD, RatingMatrix
from repro.analysis.diagnostics import detect_divergence, profile_collisions
from repro.core.checkpoint import load_model, save_model
from repro.core.lr_schedule import NomadSchedule
from repro.data.preprocess import (
    ScaleNormalizer,
    compact_ids,
    filter_min_counts,
    remove_biases,
)
from repro.data.split import train_test_split


def make_raw_ratings(seed: int = 0) -> RatingMatrix:
    """Raw feed: 0-100 ratings, ids sparse in [0, 5000) x [0, 3000)."""
    rng = np.random.default_rng(seed)
    n_users, n_items, k_true = 5_000, 3_000, 6
    active_users = rng.choice(n_users, size=1_800, replace=False)
    active_items = rng.choice(n_items, size=900, replace=False)
    taste = rng.normal(0, 1, (n_users, k_true)).astype(np.float32)
    appeal = rng.normal(0, 1, (n_items, k_true)).astype(np.float32)
    rows = rng.choice(active_users, size=120_000)
    cols = rng.choice(active_items, size=120_000)
    keys, keep = np.unique(rows.astype(np.int64) * n_items + cols, return_index=True)
    rows, cols = rows[keep], cols[keep]
    signal = np.einsum("ij,ij->i", taste[rows], appeal[cols]) / np.sqrt(k_true)
    raw = 50 + 18 * signal + rng.normal(0, 6, size=len(rows))
    vals = np.clip(raw, 0, 100).astype(np.float32)
    return RatingMatrix(rows.astype(np.int32), cols.astype(np.int32), vals,
                        n_users, n_items, name="raw-feed")


def main() -> None:
    raw = make_raw_ratings()
    print(f"ingested: {raw}")

    # 1-2. hygiene ---------------------------------------------------------
    filtered = filter_min_counts(raw, min_user=3, min_item=3)
    compacted, mapping = compact_ids(filtered)
    print(f"after filtering + compaction: {compacted}")

    normalizer = ScaleNormalizer.fit(compacted, 0.0, 1.0)
    normalized = normalizer.transform(compacted)
    residual, biases = remove_biases(normalized, damping=5.0)
    train, test = train_test_split(residual, 0.1, np.random.default_rng(1))

    # 3. parallelism audit ---------------------------------------------------
    workers = 32
    profile = profile_collisions(train, workers=workers, waves=100)
    print(f"\ncollision audit at s={workers}: measured {profile.measured_mean:.3f} "
          f"vs expected {profile.expected:.3f} "
          f"({'theory holds' if profile.matches_theory else 'anomalous'})")

    # 4. train ---------------------------------------------------------------
    model = CuMFSGD(k=24, workers=workers, lam=0.03,
                    schedule=NomadSchedule(alpha=0.1, beta=0.1), seed=1)
    history = model.fit(train, epochs=14, test=test)
    verdict = detect_divergence(history)
    print(f"trained {len(history.epochs)} epochs -> residual RMSE "
          f"{history.final_test_rmse:.4f} [{verdict}]")
    assert model.safety.safe, "refused to ship an unsafe configuration"

    # 5. checkpoint / resume --------------------------------------------------
    path = save_model("/tmp/cumf_pipeline_ck", model.model,
                      epoch=len(history.epochs),
                      metadata={"lam": 0.03, "scale": normalizer.scale})
    ck = load_model(path)
    print(f"checkpoint round-trip: epoch {ck.epoch}, metadata {ck.metadata}")
    resumed = CuMFSGD(k=24, workers=workers, lam=0.03,
                      schedule=NomadSchedule(alpha=0.02, beta=0.1), seed=1)
    resumed.model = ck.model
    more = resumed.fit(train, epochs=2, test=test, warm_start=True)
    print(f"resumed 2 epochs -> {more.final_test_rmse:.4f}")

    # 6. serve on the original 0-100 scale ------------------------------------
    sample = slice(0, 5)
    r, c = test.rows[sample], test.cols[sample]
    residual_pred = resumed.predict(r, c)
    norm_pred = biases.add_back(residual_pred, r, c)
    final = normalizer.inverse(norm_pred)
    observed = normalizer.inverse(biases.add_back(test.vals[sample], r, c))
    print("\nserved predictions (original 0-100 scale):")
    for ru, cv, pred, obs in zip(r, c, final, observed):
        orig_user = mapping.row_new_to_old[ru]
        orig_item = mapping.col_new_to_old[cv]
        print(f"  user {orig_user:5d} item {orig_item:5d}: "
              f"predicted {pred:5.1f}  observed {obs:5.1f}")


if __name__ == "__main__":
    main()

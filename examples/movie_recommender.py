#!/usr/bin/env python
"""End-to-end recommender: train, rank, and evaluate top-N quality.

The paper's motivating application (§1) is collaborative filtering. This
example builds a complete recommendation loop on a synthetic catalogue:

1. generate users/items with ground-truth taste vectors;
2. train cuMF_SGD on the observed ratings;
3. produce top-N recommendations per user from the learned factors;
4. evaluate hit-rate against the ground-truth preferences, and compare
   against a popularity baseline.

Run:  python examples/movie_recommender.py
"""

import numpy as np

from repro import CuMFSGD
from repro.core.lr_schedule import NomadSchedule
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.metrics.ranking import ndcg_at_n, precision_at_n, top_n

TOP_N = 10


def ground_truth_top(problem, user: int, n: int) -> np.ndarray:
    """The items this user would truly rate highest."""
    scores = problem.q_true @ problem.p_true[user]
    return np.argsort(scores)[::-1][:n]


def main() -> None:
    spec = DatasetSpec(
        name="movies", m=2_000, n=800, k=32, n_train=160_000, n_test=10_000
    )
    problem = make_synthetic(spec, seed=1, noise_sigma=0.3)
    train, test = problem.train, problem.test
    print(f"catalogue: {spec.m} users x {spec.n} movies, {train.nnz} ratings\n")

    # ------------------------------------------------------------------
    model = CuMFSGD(
        k=32, workers=128, lam=0.05,
        schedule=NomadSchedule(alpha=0.08, beta=0.3), seed=1,
    )
    history = model.fit(train, epochs=20, test=test)
    print(f"trained to test RMSE {history.final_test_rmse:.4f} "
          f"(noise floor {problem.rmse_floor:.2f})\n")

    # ------------------------------------------------------------------
    # top-N recommendation: exclude already-rated items per user
    rated_by: dict[int, set] = {}
    for u, v in zip(train.rows.tolist(), train.cols.tolist()):
        rated_by.setdefault(u, set()).add(v)

    p, q = model.model.as_float32()
    popularity = train.col_counts().astype(np.float64)

    def recommend(user: int, scores: np.ndarray) -> np.ndarray:
        seen = np.fromiter(rated_by.get(user, ()), dtype=np.int64)
        return top_n(scores, TOP_N, exclude=seen)

    rng = np.random.default_rng(0)
    eval_users = rng.choice(spec.m, size=200, replace=False)
    prec = {"model": [], "popularity": []}
    ndcg = {"model": [], "popularity": []}
    for user in eval_users:
        truth = ground_truth_top(problem, int(user), 50)
        recs = recommend(int(user), q @ p[int(user)])
        pop_recs = recommend(int(user), popularity)
        prec["model"].append(precision_at_n(recs, truth))
        prec["popularity"].append(precision_at_n(pop_recs, truth))
        ndcg["model"].append(ndcg_at_n(recs, truth))
        ndcg["popularity"].append(ndcg_at_n(pop_recs, truth))

    print(f"top-{TOP_N} ranking quality vs ground-truth taste (200 users):")
    for name in ("model", "popularity"):
        label = "cuMF_SGD factors" if name == "model" else "popularity"
        print(f"  {label:17s}: precision {np.mean(prec[name]):6.1%}  "
              f"NDCG {np.mean(ndcg[name]):.3f}")
    if np.mean(prec["model"]) <= np.mean(prec["popularity"]):
        raise SystemExit("model should beat the popularity baseline")

    # show one user's shelf
    user = int(eval_users[0])
    print(f"\nuser {user}: recommended movies {recommend(user, q @ p[user]).tolist()}")
    print(f"user {user}: true favourites    {ground_truth_top(problem, user, TOP_N).tolist()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Learning-rate schedules compared — including the paper's future work.

The paper adopts NOMAD's Eq. 9 decay and names ADAGRAD integration as
future work (§7.2). This example races the three schedules the library
implements on the same problem:

* constant rate (LIBMF's starting point),
* Eq. 9  ``γ_t = α / (1 + β·t^1.5)``,
* element-wise ADAGRAD (the future-work extension, implemented in
  :mod:`repro.core.adagrad`).

Run:  python examples/adaptive_rates.py
"""

from repro import CuMFSGD
from repro.core.lr_schedule import AdaGradSchedule, ConstantSchedule, NomadSchedule
from repro.data.synthetic import DatasetSpec, make_synthetic


def main() -> None:
    spec = DatasetSpec(
        name="rates", m=2_500, n=1_000, k=32, n_train=200_000, n_test=12_000
    )
    problem = make_synthetic(spec, seed=4)
    epochs = 15

    schedules = {
        "constant(0.05)": ConstantSchedule(0.05),
        "Eq.9(0.08, 0.3)": NomadSchedule(alpha=0.08, beta=0.3),
        "ADAGRAD(0.2)": AdaGradSchedule(base_rate=0.2),
    }

    curves = {}
    for name, schedule in schedules.items():
        est = CuMFSGD(k=32, workers=128, lam=0.05, schedule=schedule, seed=4)
        hist = est.fit(problem.train, epochs=epochs, test=problem.test)
        curves[name] = hist.test_rmse
        print(f"{name:16s} final RMSE {hist.final_test_rmse:.4f}")

    print(f"\n{'epoch':>5s}" + "".join(f"{name:>18s}" for name in curves))
    for e in range(epochs):
        row = "".join(f"{curves[name][e]:18.4f}" for name in curves)
        print(f"{e + 1:5d}{row}")

    print(f"\n(noise floor: {problem.rmse_floor:.2f})")
    best_first_epoch = min(curves, key=lambda name: curves[name][0])
    print(f"fastest first-epoch progress: {best_first_epoch}")


if __name__ == "__main__":
    main()

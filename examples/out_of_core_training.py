#!/usr/bin/env python
"""Out-of-core / multi-device training (§6 of the paper).

Demonstrates the full workload-partition machinery on a Hugewiki-shaped
problem:

1. size the partition so every block fits the device memory budget;
2. verify the §7.5 Hogwild safety rule for the chosen grid;
3. train with the multi-device coordinator and inspect the transfer ledger;
4. show the stream-pipeline makespans that make staging affordable.

Run:  python examples/out_of_core_training.py
"""

from repro import CuMFSGD
from repro.core.convergence import check_parallelism, max_safe_partitions
from repro.core.lr_schedule import NomadSchedule
from repro.core.partition import GridPartition
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.gpusim.simulator import cumf_throughput, staged_epoch_seconds
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100
from repro.data.synthetic import PAPER_DATASETS


def main() -> None:
    # a Hugewiki-shaped problem: huge m, small n ------------------------
    spec = DatasetSpec(
        name="bigrows", m=20_000, n=1_024, k=16, n_train=600_000, n_test=30_000
    )
    problem = make_synthetic(spec, seed=2)
    workers = 64

    # 1. partition sizing -------------------------------------------------
    print("partition sizing against a (toy) 3 MB device budget:")
    budget = 3e6
    for i in (1, 2, 4, 8, 16):
        part = GridPartition(problem.train, i, 1)
        worst = part.max_block_bytes(k=spec.k, feature_bytes=2)
        fits = "fits" if worst <= budget else "too big"
        print(f"  grid {i:2d}x1: largest block {worst / 1e6:5.2f} MB  [{fits}]")

    # 2. the convergence side of the grid choice --------------------------
    print("\nHogwild safety (s=64) for candidate grids:")
    for i, j in ((8, 1), (8, 2), (8, 4)):
        print(f"  grid {i}x{j}: {check_parallelism(workers, spec.m, spec.n, i, j)}")
    i_max, j_max = max_safe_partitions(workers, spec.m, spec.n)
    print(f"  safe maximum: {i_max}x{j_max}")

    # 3. train out-of-core on two simulated devices ------------------------
    model = CuMFSGD(
        k=spec.k, scheme="multi_device", workers=workers,
        n_devices=2, grid=(8, 2), lam=0.03,
        schedule=NomadSchedule(alpha=0.08, beta=0.3), seed=2,
    )
    history = model.fit(problem.train, epochs=12, test=problem.test)
    print(f"\ntrained to test RMSE {history.final_test_rmse:.4f} "
          f"(floor {problem.rmse_floor:.2f})")
    # run one more epoch through a standalone coordinator to expose its ledger
    from repro.core.multi_gpu import MultiDeviceSGD

    multi = MultiDeviceSGD(n_devices=2, i=8, j=2, workers=workers, seed=2)
    multi.run_epoch(model.model, problem.train, lr=0.001, lam_p=0.03)
    ledger = multi.ledger
    print(f"transfer ledger for one epoch: {ledger.dispatches} dispatches, "
          f"{ledger.h2d_bytes / 1e6:.1f} MB H2D, {ledger.d2h_bytes / 1e6:.1f} MB D2H "
          f"in {ledger.rounds} rounds")

    # 4. what staging costs at paper scale ----------------------------------
    hugewiki = PAPER_DATASETS["hugewiki"]
    print("\npaper-scale Hugewiki epoch with the 64x1 staging pipeline:")
    for gpu in (MAXWELL_TITAN_X, PASCAL_P100):
        rate = cumf_throughput(gpu, hugewiki).updates_per_sec
        compute_only = hugewiki.n_train / rate
        staged = staged_epoch_seconds(gpu, hugewiki, rate)
        print(f"  {gpu.name:16s}: compute {compute_only:6.2f}s  "
              f"staged {staged:6.2f}s  "
              f"(overlap hides {1 - (staged - compute_only) / compute_only:.0%} "
              f"of transfer)")


if __name__ == "__main__":
    main()

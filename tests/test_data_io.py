"""Tests for repro.data.io, repro.data.split, repro.data.shuffle."""

import numpy as np
import pytest

from repro.data.container import RatingMatrix
from repro.data.io import COO_DTYPE, from_records, load_coo, save_coo, to_records
from repro.data.shuffle import (
    invert_permutation,
    make_permutation,
    model_shuffle,
    random_shuffle,
)
from repro.data.split import train_test_split


class TestIO:
    def test_record_dtype_is_12_bytes(self):
        assert COO_DTYPE.itemsize == 12

    def test_records_round_trip(self, tiny_ratings):
        rec = to_records(tiny_ratings)
        back = from_records(rec, *tiny_ratings.shape)
        assert np.array_equal(back.rows, tiny_ratings.rows)
        assert np.array_equal(back.cols, tiny_ratings.cols)
        assert np.array_equal(back.vals, tiny_ratings.vals)

    def test_from_records_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="expected dtype"):
            from_records(np.zeros(3, dtype=np.float64), 5, 5)

    def test_file_round_trip(self, tiny_ratings, tmp_path):
        path = tmp_path / "ratings.npz"
        save_coo(path, tiny_ratings)
        back = load_coo(path)
        assert back.shape == tiny_ratings.shape
        assert back.name == tiny_ratings.name
        assert np.array_equal(back.vals, tiny_ratings.vals)

    def test_load_without_suffix(self, tiny_ratings, tmp_path):
        save_coo(tmp_path / "r.npz", tiny_ratings)
        back = load_coo(tmp_path / "r")
        assert back.nnz == tiny_ratings.nnz


class TestSplit:
    def test_sizes(self, tiny_ratings, rng):
        train, test = train_test_split(tiny_ratings, 0.2, rng)
        assert test.nnz == round(0.2 * tiny_ratings.nnz)
        assert train.nnz + test.nnz == tiny_ratings.nnz

    def test_disjoint(self, tiny_ratings, rng):
        train, test = train_test_split(tiny_ratings, 0.2, rng)
        assert train.validate_disjoint(test)

    def test_shape_preserved(self, tiny_ratings, rng):
        train, test = train_test_split(tiny_ratings, 0.2, rng)
        assert train.shape == test.shape == tiny_ratings.shape

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.5, 2.0])
    def test_bad_fraction(self, tiny_ratings, frac):
        with pytest.raises(ValueError):
            train_test_split(tiny_ratings, frac)

    def test_degenerate_split_rejected(self):
        r = RatingMatrix(
            np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0]), 3, 3
        )
        with pytest.raises(ValueError, match="empty split"):
            train_test_split(r, 0.01)


class TestShuffle:
    def test_random_shuffle_is_permutation(self, tiny_ratings):
        s = random_shuffle(tiny_ratings, seed=1)
        assert sorted(s.vals) == sorted(tiny_ratings.vals)
        assert not np.array_equal(s.vals, tiny_ratings.vals)

    def test_random_shuffle_deterministic(self, tiny_ratings):
        assert np.array_equal(
            random_shuffle(tiny_ratings, seed=2).vals,
            random_shuffle(tiny_ratings, seed=2).vals,
        )

    def test_make_and_invert_permutation(self, rng):
        perm = make_permutation(20, rng)
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(20))
        assert np.array_equal(inv[perm], np.arange(20))

    def test_model_shuffle_identity(self, rng):
        p = rng.normal(size=(6, 3)).astype(np.float32)
        q = rng.normal(size=(4, 3)).astype(np.float32)
        p2, q2 = model_shuffle(p, q)
        assert p2 is p and q2 is q

    def test_model_shuffle_undoes_relabelling(self, rng):
        p = rng.normal(size=(6, 3)).astype(np.float32)
        perm = make_permutation(6, rng)
        relabelled = np.empty_like(p)
        relabelled[np.arange(6)] = p[perm]  # training stored P under perm ids
        # model_shuffle with row_perm=perm must bring row u back to slot u
        restored, _ = model_shuffle(relabelled, p, row_perm=invert_permutation(perm))
        assert np.allclose(restored[perm], relabelled[np.arange(6)])

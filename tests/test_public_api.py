"""The public API surface: everything advertised in __all__ imports and is
real."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.data",
    "repro.metrics",
    "repro.sched",
    "repro.gpusim",
    "repro.baselines",
    "repro.parallel",
    "repro.analysis",
    "repro.experiments",
    "repro.resilience",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.{symbol} advertised but missing"


def test_top_level_shortcuts():
    import repro

    assert repro.__version__
    assert callable(repro.CuMFSGD)
    assert callable(repro.scaled_dataset)


def test_core_exposes_checkpointing_and_adagrad():
    from repro.core import AdaGradHogwild, Checkpoint, load_model, save_model  # noqa: F401


def test_data_exposes_preprocessing():
    from repro.data import ScaleNormalizer, compact_ids, remove_biases  # noqa: F401


def test_every_public_function_documented():
    """Each advertised symbol carries a docstring (deliverable e)."""
    for name in PACKAGES:
        mod = importlib.import_module(name)
        for symbol in mod.__all__:
            obj = getattr(mod, symbol)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"

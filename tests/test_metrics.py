"""Tests for repro.metrics (rmse, flops, throughput)."""

import numpy as np
import pytest

from repro.data.container import RatingMatrix
from repro.metrics.flops import (
    bytes_per_update,
    flops_byte_ratio,
    flops_per_update,
)
from repro.metrics.rmse import predict, rmse, rmse_objective
from repro.metrics.throughput import (
    ThroughputRecord,
    effective_bandwidth,
    updates_per_second,
)


class TestRMSE:
    def test_perfect_model_zero_rmse(self, rng):
        p = rng.normal(size=(10, 4)).astype(np.float32)
        q = rng.normal(size=(8, 4)).astype(np.float32)
        rows = np.array([0, 3, 7], dtype=np.int32)
        cols = np.array([1, 2, 5], dtype=np.int32)
        vals = np.einsum("ij,ij->i", p[rows], q[cols])
        ratings = RatingMatrix(rows, cols, vals, 10, 8)
        assert rmse(p, q, ratings) == pytest.approx(0.0, abs=1e-6)

    def test_known_value(self):
        p = np.ones((2, 2), dtype=np.float32)
        q = np.ones((2, 2), dtype=np.float32)
        # prediction is always 2.0; ratings 3.0 and 1.0 -> errors 1, -1
        ratings = RatingMatrix(
            np.array([0, 1]), np.array([0, 1]), np.array([3.0, 1.0]), 2, 2
        )
        assert rmse(p, q, ratings) == pytest.approx(1.0)

    def test_empty_rejected(self):
        empty = RatingMatrix(np.array([]), np.array([]), np.array([]), 2, 2)
        with pytest.raises(ValueError, match="empty"):
            rmse(np.ones((2, 2)), np.ones((2, 2)), empty)

    def test_predict_matches_manual(self, rng):
        p = rng.normal(size=(5, 3)).astype(np.float32)
        q = rng.normal(size=(4, 3)).astype(np.float32)
        got = predict(p, q, np.array([2, 0]), np.array([3, 1]))
        assert got[0] == pytest.approx(float(p[2] @ q[3]), rel=1e-6)
        assert got[1] == pytest.approx(float(p[0] @ q[1]), rel=1e-6)

    def test_chunked_equals_direct(self, small_problem, monkeypatch):
        import sys

        import repro.metrics.rmse  # noqa: F401 - ensure module is loaded

        m = sys.modules["repro.metrics.rmse"]

        p = np.zeros((small_problem.spec.m, 4), dtype=np.float32)
        q = np.zeros((small_problem.spec.n, 4), dtype=np.float32)
        full = rmse(p, q, small_problem.test)
        monkeypatch.setattr(m, "_EVAL_CHUNK", 1000)
        assert m.rmse(p, q, small_problem.test) == pytest.approx(full, rel=1e-6)

    def test_objective_decreases_with_better_fit(self, tiny_problem):
        bad_p = np.zeros_like(tiny_problem.p_true)
        bad_q = np.zeros_like(tiny_problem.q_true)
        good = rmse_objective(
            tiny_problem.p_true, tiny_problem.q_true, tiny_problem.train, 0.0
        )
        bad = rmse_objective(bad_p, bad_q, tiny_problem.train, 0.0)
        assert good < bad

    def test_objective_regularization_adds(self, tiny_problem):
        base = rmse_objective(
            tiny_problem.p_true, tiny_problem.q_true, tiny_problem.train, 0.0
        )
        reg = rmse_objective(
            tiny_problem.p_true, tiny_problem.q_true, tiny_problem.train, 0.1
        )
        assert reg > base


class TestFlops:
    def test_eq5_paper_value(self):
        """k=128, 12-byte samples, fp32: the paper computes 0.43 ops/byte."""
        assert flops_byte_ratio(128) == pytest.approx(0.43, abs=0.01)

    def test_flops_structure(self):
        # 6k plus the log-tree reduction sum k/2 + k/4 + ... + 1 = k - 1
        assert flops_per_update(128) == 6 * 128 + 127
        assert flops_per_update(64) == 6 * 64 + 63
        assert flops_per_update(1) == 6

    def test_bytes_structure(self):
        assert bytes_per_update(128) == 12 + 4 * 128 * 4
        assert bytes_per_update(128, feature_bytes=2) == 12 + 4 * 128 * 2

    def test_half_precision_nearly_halves_bytes(self):
        full = bytes_per_update(128)
        half = bytes_per_update(128, feature_bytes=2)
        assert 0.49 < half / full < 0.52

    @pytest.mark.parametrize("k", [0, -3])
    def test_invalid_k(self, k):
        with pytest.raises(ValueError):
            flops_per_update(k)
        with pytest.raises(ValueError):
            bytes_per_update(k)

    def test_intensity_roughly_constant_in_k(self):
        # both numerator and denominator are ~linear in k
        assert flops_byte_ratio(32) == pytest.approx(flops_byte_ratio(256), rel=0.15)


class TestThroughput:
    def test_eq7(self):
        assert updates_per_second(10, 1_000_000, 2.0) == 5_000_000

    def test_invalid_elapsed(self):
        with pytest.raises(ValueError):
            updates_per_second(1, 100, 0.0)

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            updates_per_second(-1, 100, 1.0)

    def test_effective_bandwidth(self):
        # 1M updates/s at k=128 fp32 = 2060 MB/s
        assert effective_bandwidth(1e6, 128) == pytest.approx(2.060e9)

    def test_record_properties(self):
        rec = ThroughputRecord("cuMF", "netflix", 768, 267e6, k=128, feature_bytes=2)
        assert rec.musec == pytest.approx(267.0)
        assert rec.bandwidth_gbs == pytest.approx(267e6 * 1036 / 1e9)

"""Integration tests: every solver trains a realistic synthetic problem to
near the noise floor, and cross-solver behaviour matches the paper's
qualitative claims."""

import numpy as np
import pytest

from repro.baselines.als import ALSSolver
from repro.baselines.bidmach import BIDMachSGD
from repro.baselines.libmf import LIBMFSolver
from repro.baselines.nomad import NOMADSolver
from repro.core.lr_schedule import NomadSchedule
from repro.core.trainer import CuMFSGD
from repro.data.io import load_coo, save_coo
from repro.data.synthetic import DatasetSpec, make_synthetic
from repro.metrics.rmse import rmse


@pytest.fixture(scope="module")
def problem():
    spec = DatasetSpec(name="integ", m=700, n=450, k=16, n_train=50_000, n_test=5_000)
    return make_synthetic(spec, seed=3)


SCHEDULE = NomadSchedule(alpha=0.08, beta=0.3)


class TestAllSolversReachFloorNeighbourhood:
    """Every implementation should close most of the gap between the initial
    RMSE (~0.72 on this problem) and the 0.5 noise floor within 12 epochs."""

    THRESHOLD = 0.58

    def _check(self, hist, problem):
        assert hist.final_test_rmse < self.THRESHOLD
        assert hist.final_test_rmse > problem.rmse_floor * 0.95  # no leakage

    def test_cumf_hogwild(self, problem):
        est = CuMFSGD(k=16, scheme="batch_hogwild", workers=64, lam=0.05,
                      schedule=SCHEDULE, seed=0)
        self._check(est.fit(problem.train, epochs=12, test=problem.test), problem)

    def test_cumf_wavefront(self, problem):
        est = CuMFSGD(k=16, scheme="wavefront", workers=8, lam=0.05,
                      schedule=SCHEDULE, seed=0)
        self._check(est.fit(problem.train, epochs=12, test=problem.test), problem)

    def test_cumf_multi_device(self, problem):
        est = CuMFSGD(k=16, scheme="multi_device", workers=32, n_devices=2,
                      grid=(4, 4), lam=0.05, schedule=SCHEDULE, seed=0)
        self._check(est.fit(problem.train, epochs=12, test=problem.test), problem)

    def test_libmf(self, problem):
        est = LIBMFSolver(k=16, threads=6, a=20, lam=0.05, schedule=SCHEDULE, seed=0)
        self._check(est.fit(problem.train, epochs=12, test=problem.test), problem)

    def test_nomad(self, problem):
        est = NOMADSolver(k=16, nodes=6, lam=0.05, schedule=SCHEDULE, seed=0)
        self._check(est.fit(problem.train, epochs=12, test=problem.test), problem)

    def test_bidmach(self, problem):
        est = BIDMachSGD(k=16, batch=2048, lam=0.05, seed=0)
        self._check(est.fit(problem.train, epochs=12, test=problem.test), problem)

    def test_als(self, problem):
        est = ALSSolver(k=16, lam=0.05, seed=0)
        self._check(est.fit(problem.train, epochs=8, test=problem.test), problem)


class TestCrossSolverClaims:
    def test_als_needs_fewer_epochs_than_sgd(self, problem):
        """§7.4: 'ALS needs fewer epochs to converge'."""
        als = ALSSolver(k=16, lam=0.05, seed=0)
        ha = als.fit(problem.train, epochs=4, test=problem.test)
        sgd = CuMFSGD(k=16, workers=64, lam=0.05, schedule=SCHEDULE, seed=0)
        hs = sgd.fit(problem.train, epochs=4, test=problem.test)
        assert ha.test_rmse[1] < hs.test_rmse[1]

    def test_hogwild_and_wavefront_similar_quality(self, problem):
        """Fig. 7b: the two schemes converge to similar RMSE, hogwild
        marginally ahead."""
        hog = CuMFSGD(k=16, scheme="batch_hogwild", workers=64, lam=0.05,
                      schedule=SCHEDULE, seed=0)
        hh = hog.fit(problem.train, epochs=8, test=problem.test)
        wave = CuMFSGD(k=16, scheme="wavefront", workers=8, lam=0.05,
                       schedule=SCHEDULE, seed=0)
        hw = wave.fit(problem.train, epochs=8, test=problem.test)
        assert hh.final_test_rmse == pytest.approx(hw.final_test_rmse, rel=0.05)

    def test_unsafe_parallelism_hurts(self, problem):
        """§7.5: pushing s toward min(m, n) degrades convergence."""
        safe = CuMFSGD(k=16, workers=16, lam=0.05, schedule=SCHEDULE, seed=0)
        hs = safe.fit(problem.train, epochs=6, test=problem.test)
        unsafe = CuMFSGD(k=16, workers=400, lam=0.05, schedule=SCHEDULE, seed=0)
        hu = unsafe.fit(problem.train, epochs=6, test=problem.test)
        assert hu.final_test_rmse > hs.final_test_rmse


class TestEndToEndPipeline:
    def test_save_train_load_predict(self, problem, tmp_path):
        """Full workflow: persist data, train, score, predict top items."""
        save_coo(tmp_path / "train.npz", problem.train)
        train = load_coo(tmp_path / "train.npz")
        est = CuMFSGD(k=16, workers=64, lam=0.05, schedule=SCHEDULE, seed=0)
        est.fit(train, epochs=8, test=problem.test, target_rmse=0.62)
        assert est.score(problem.test) <= 0.62
        # top-5 recommendations for user 0
        user = np.zeros(problem.spec.n, dtype=np.int64)
        items = np.arange(problem.spec.n)
        scores = est.predict(user, items)
        top = np.argsort(scores)[::-1][:5]
        assert len(set(top.tolist())) == 5
        # predicted scores for top items beat the median item
        assert scores[top].min() >= np.median(scores)

    def test_model_quality_vs_ground_truth(self, problem):
        """The learned factors predict held-out entries almost as well as
        the generating factors."""
        est = CuMFSGD(k=16, workers=64, lam=0.05, schedule=SCHEDULE, seed=0)
        est.fit(problem.train, epochs=15, test=problem.test)
        learned = est.score(problem.test)
        truth = rmse(problem.p_true, problem.q_true, problem.test)
        assert learned < truth * 1.15

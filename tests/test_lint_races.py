"""Property tests for the schedule race checker.

Two directions, both load-bearing:

* **soundness of the compilers** — any plan the real compilers emit passes
  the checkers (hypothesis sweeps sizes, shapes, duplicate densities);
* **sensitivity of the checkers** — deliberately corrupted plans are always
  caught. A checker that never fires proves nothing, so every corruption
  strategy here is constructed to guarantee a genuine violation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import (
    check_epoch_plan,
    check_round_grants,
    check_serial_plan,
    check_wavefront_sequences,
    schedule_selfcheck,
    simulate_wavefront_rounds,
)
from repro.sched.plan import EpochPlan, SerialPlan

pytestmark = pytest.mark.lint


def test_schedule_selfcheck_is_clean():
    assert schedule_selfcheck() == []


# ---------------------------------------------------------------------------
# SerialPlan: compiled plans verify; corrupted plans are caught
# ---------------------------------------------------------------------------
@given(
    n=st.integers(1, 300),
    m=st.integers(1, 40),
    k=st.integers(1, 40),
    max_wave=st.integers(1, 64),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_compiled_serial_plans_are_conflict_free(n, m, k, max_wave, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=n)
    cols = rng.integers(0, k, size=n)
    plan = SerialPlan.compile(rows, cols, max_wave=max_wave)
    assert check_serial_plan(plan, rows, cols) == []


@given(
    n=st.integers(2, 300),
    m=st.integers(1, 20),
    k=st.integers(1, 20),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_merging_conflict_cut_segments_is_caught(n, m, k, seed):
    # with max_wave >= n the compiler only cuts on genuine Eq. 6 conflicts,
    # so merging the first two segments must recreate a repeated row/column
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=n)
    cols = rng.integers(0, k, size=n)
    plan = SerialPlan.compile(rows, cols, max_wave=n)
    if len(plan.starts) < 2:  # wholly conflict-free draw; nothing to merge
        return
    merged = SerialPlan(
        np.delete(plan.starts, 1), np.delete(plan.stops, 0), plan.max_wave
    )
    violations = check_serial_plan(merged, rows, cols)
    assert any("repeats a" in v for v in violations)


@given(
    n=st.integers(2, 200),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_truncated_coverage_is_caught(n, seed):
    rng = np.random.default_rng(seed)
    rows = rng.permutation(n)  # unique rows/cols: a single segment compiles
    cols = rng.permutation(n)
    plan = SerialPlan.compile(rows, cols, max_wave=n)
    truncated = SerialPlan(plan.starts, plan.stops - 1, plan.max_wave)
    violations = check_serial_plan(truncated, rows, cols)
    assert any("never run" in v or "not contiguous" in v for v in violations)


def test_oversized_segment_is_caught():
    rows = np.arange(10)
    cols = np.arange(10)
    plan = SerialPlan.compile(rows, cols, max_wave=4)
    bloated = SerialPlan(plan.starts, plan.stops, max_wave=2)
    assert any("max_wave" in v for v in check_serial_plan(bloated, rows, cols))


# ---------------------------------------------------------------------------
# EpochPlan: compiled plans verify; corrupted matrices are caught
# ---------------------------------------------------------------------------
@given(
    nnz=st.integers(1, 400),
    workers=st.integers(1, 32),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_compiled_epoch_plans_schedule_exactly_once(nnz, workers, seed):
    rng = np.random.default_rng(seed)
    plan = EpochPlan(rng.permutation(nnz).astype(np.int64), workers=workers, f=3)
    assert check_epoch_plan(plan) == []
    plan.repermute(rng)
    assert check_epoch_plan(plan) == []


@given(nnz=st.integers(2, 200), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_corrupted_epoch_plan_is_caught(nnz, seed):
    rng = np.random.default_rng(seed)
    plan = EpochPlan(rng.permutation(nnz).astype(np.int64), workers=4, f=3)
    plan.matrix[0, 0] = -1  # padding where a live sample belongs
    violations = check_epoch_plan(plan)
    assert any("padding inside" in v for v in violations)


def test_duplicated_epoch_sample_is_caught():
    rng = np.random.default_rng(0)
    plan = EpochPlan(rng.permutation(20).astype(np.int64), workers=4, f=3)
    live = plan.matrix[0, : int(plan.lengths[0])]
    other = plan.matrix[-1, 0]
    if other == live[0]:  # pragma: no cover - layout-dependent guard
        other = plan.matrix[-1, int(plan.lengths[-1]) - 1]
    plan.matrix[0, 0] = other  # sample applied twice, another dropped
    violations = check_epoch_plan(plan)
    assert any("multiset mismatch" in v for v in violations)


# ---------------------------------------------------------------------------
# wavefront: coverage + simulated round grants
# ---------------------------------------------------------------------------
@given(
    workers=st.integers(1, 12),
    col_blocks=st.integers(1, 16),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_wavefront_permutations_yield_conflict_free_rounds(
    workers, col_blocks, seed
):
    rng = np.random.default_rng(seed)
    sequences = [rng.permutation(col_blocks) for _ in range(workers)]
    assert check_wavefront_sequences(sequences, col_blocks) == []
    rounds = simulate_wavefront_rounds(sequences, col_blocks)
    assert check_round_grants(rounds) == []
    # every (worker, column) block ran exactly once
    granted = [pair for grants in rounds for pair in grants]
    assert len(granted) == workers * col_blocks
    assert len(set(granted)) == workers * col_blocks


@given(
    col_blocks=st.integers(2, 16),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_nonpermutation_walk_is_caught(col_blocks, seed):
    rng = np.random.default_rng(seed)
    seq = rng.permutation(col_blocks)
    seq[0] = seq[1]  # one column twice, another never
    assert check_wavefront_sequences([seq], col_blocks)


def test_tampered_round_grants_are_caught():
    rounds = [[(0, 3), (1, 3)]]  # two workers on one column: lock failure
    assert any("column" in v for v in check_round_grants(rounds))
    rounds = [[(0, 1), (0, 2)]]  # one worker in two places at once
    assert any("row conflict" in v for v in check_round_grants(rounds))
    rounds = [[(0, 1)], [(0, 1)]]  # a block replayed across rounds
    assert any("granted twice" in v for v in check_round_grants(rounds))


# ---------------------------------------------------------------------------
# the threaded executors really run the verified protocol
# ---------------------------------------------------------------------------
def test_threaded_wavefront_sequences_verify():
    from repro.parallel.wavefront_threads import ThreadedWavefront

    executor = ThreadedWavefront(workers=4)
    rng = np.random.default_rng(1)
    sequences = [rng.permutation(executor.col_blocks) for _ in range(4)]
    assert check_wavefront_sequences(sequences, executor.col_blocks) == []
    rounds = simulate_wavefront_rounds(sequences, executor.col_blocks)
    assert check_round_grants(rounds) == []

"""Tests for repro.core.partition.GridPartition."""

import numpy as np
import pytest

from repro.core.partition import GridPartition


class TestGridPartition:
    def test_coverage(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 4, 3)
        assert part.coverage_check()
        assert part.n_blocks == 12

    def test_block_nnz_sums(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 4, 3)
        assert part.block_nnz().sum() == tiny_problem.train.nnz
        assert part.block_nnz().shape == (4, 3)

    def test_block_bounds_contain_samples(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 3, 3)
        for view in part.blocks():
            rows = tiny_problem.train.rows[view.sample_index]
            cols = tiny_problem.train.cols[view.sample_index]
            if len(rows):
                assert rows.min() >= view.row_lo and rows.max() < view.row_hi
                assert cols.min() >= view.col_lo and cols.max() < view.col_hi

    def test_block_of_matches_sample_assignment(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 4, 4)
        for view in part.blocks():
            for pos in view.sample_index[:3]:
                u = int(tiny_problem.train.rows[pos])
                v = int(tiny_problem.train.cols[pos])
                assert part.block_of(u, v) == (view.bi, view.bj)

    def test_block_of_bounds(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 2, 2)
        with pytest.raises(IndexError):
            part.block_of(10**6, 0)

    def test_block_index_bounds(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 2, 2)
        with pytest.raises(IndexError):
            part.block(2, 0)

    def test_independence(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 4, 4)
        assert part.independent((0, 0), (1, 1))
        assert not part.independent((0, 0), (0, 1))
        assert not part.independent((0, 0), (1, 0))
        assert part.independent_set([(0, 0), (1, 1), (2, 2)])
        assert not part.independent_set([(0, 0), (1, 1), (0, 2)])
        assert part.max_independent_blocks() == 4

    def test_feature_and_coo_bytes(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 2, 2)
        view = part.block(0, 0)
        assert view.coo_bytes() == view.nnz * 12
        rows, cols = view.shape
        assert view.feature_bytes(k=8) == (rows + cols) * 8 * 4
        assert view.feature_bytes(k=8, feature_bytes=2) == (rows + cols) * 8 * 2

    def test_max_block_bytes_covers_largest(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 2, 2)
        worst = part.max_block_bytes(k=8)
        for view in part.blocks():
            assert view.coo_bytes() + view.feature_bytes(8) <= worst

    @pytest.mark.parametrize("grid", [(0, 2), (2, 0), (-1, 1)])
    def test_invalid_grid(self, tiny_problem, grid):
        with pytest.raises(ValueError):
            GridPartition(tiny_problem.train, *grid)

    def test_grid_larger_than_matrix_rejected(self, tiny_problem):
        with pytest.raises(ValueError, match="exceeds"):
            GridPartition(tiny_problem.train, tiny_problem.spec.m + 1, 1)

    def test_single_block_grid(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 1, 1)
        view = part.block(0, 0)
        assert view.nnz == tiny_problem.train.nnz
        assert view.shape == tiny_problem.train.shape

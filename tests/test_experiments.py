"""Tests for the experiment harness: base infrastructure, registry, CLI,
and the fast (model-only) experiments end-to-end."""

import pytest

from repro.experiments import REGISTRY, ExperimentResult, get_experiment, run_experiment
from repro.experiments.base import register
from repro.experiments.cli import main


class TestExperimentResult:
    def _result(self):
        return ExperimentResult("x1", "demo", headers=("a", "b"))

    def test_add_and_column(self):
        r = self._result()
        r.add(1, 2.0)
        r.add(3, 4.0)
        assert r.column("a") == [1, 3]
        assert r.column("b") == [2.0, 4.0]

    def test_add_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            self._result().add(1)

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self._result().column("zzz")

    def test_checks(self):
        r = self._result()
        r.check("ok", True)
        r.check("bad", False)
        assert not r.all_checks_pass
        assert r.failed_checks() == ["bad"]

    def test_to_text_contains_everything(self):
        r = self._result()
        r.add(1, 2.5)
        r.notes.append("hello note")
        r.check("shape", True)
        text = r.to_text()
        assert "x1" in text and "demo" in text
        assert "hello note" in text
        assert "[PASS]: shape" in text
        assert "2.5" in text

    def test_to_csv(self):
        r = self._result()
        r.add(1, 2.0)
        csv_text = r.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert csv_text.splitlines()[1] == "1,2.0"

    def test_bool_formatting(self):
        r = ExperimentResult("x", "t", headers=("flag",))
        r.add(True)
        assert "yes" in r.to_text()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig2", "fig4", "fig5b", "fig7", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "table2", "table4",
            "table5", "roofline", "eq8", "cost",
        }
        assert expected <= set(REGISTRY)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register("fig2")(lambda quick=True: None)

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")


FAST_EXPERIMENTS = [
    "fig2", "fig4", "fig5b", "fig10", "fig11", "fig15",
    "roofline", "table2", "table5", "eq8",
]


class TestFastExperiments:
    """The model-only experiments run in milliseconds; execute them fully."""

    @pytest.mark.parametrize("exp_id", FAST_EXPERIMENTS)
    def test_runs_and_all_checks_pass(self, exp_id):
        result = run_experiment(exp_id, quick=True)
        assert result.experiment_id == exp_id
        assert result.rows, f"{exp_id} produced no rows"
        assert result.all_checks_pass, f"failed: {result.failed_checks()}"

    def test_fig15_exact_counts(self):
        result = run_experiment("fig15")
        rows = {(r[0], r[1]): (r[2], r[3]) for r in result.rows}
        assert rows[(2, 2)] == (8, 24)

    def test_table5_columns(self):
        result = run_experiment("table5")
        assert set(result.column("solver")) == {
            "BIDMach-M", "BIDMach-P", "cuMF_SGD-M", "cuMF_SGD-P"
        }

    @pytest.mark.resilience
    def test_resilience_experiment_checks_pass(self):
        import numpy as np

        with np.errstate(over="ignore", invalid="ignore"):
            result = run_experiment("resilience", quick=True)
        assert result.rows
        assert result.all_checks_pass, f"failed: {result.failed_checks()}"


class TestCLI:
    def test_fault_demo(self, tmp_path, capsys):
        out = tmp_path / "fault.json"
        assert main(["fault-demo", "--seed", "0", "--out", str(out)]) == 0
        assert "epoch completed degraded" in capsys.readouterr().out
        first = out.read_bytes()
        assert main(["fault-demo", "--seed", "0", "--out", str(out)]) == 0
        assert out.read_bytes() == first  # byte-identical for the same seed

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out

    def test_run_fast(self, capsys):
        assert main(["run", "fig15"]) == 0
        assert "8" in capsys.readouterr().out

    def test_run_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        assert main(["run", "roofline", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "device" in csv_path.read_text()

    def test_run_unknown_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

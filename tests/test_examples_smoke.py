"""Smoke tests for the example scripts.

Full example runs take tens of seconds each, so by default only the import
and main-guard structure is checked; set ``RUN_EXAMPLE_SMOKE=1`` to execute
the two fastest examples end-to-end.
"""

import ast
import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    names = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main()"
    # a __main__ guard exists
    assert "__main__" in path.read_text()


def test_six_examples_present():
    assert len(EXAMPLES) >= 6
    assert any(p.name == "quickstart.py" for p in EXAMPLES)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("RUN_EXAMPLE_SMOKE"),
    reason="set RUN_EXAMPLE_SMOKE=1 to execute examples end-to-end",
)
@pytest.mark.parametrize("name", ["quickstart.py", "scaling_study.py"])
def test_example_executes(name):
    path = Path(__file__).parent.parent / "examples" / name
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=600
    )
    assert proc.returncode == 0, proc.stderr[-2000:]

"""Tests for repro.data.preprocess."""

import numpy as np
import pytest

from repro.data.container import RatingMatrix
from repro.data.preprocess import (
    BiasModel,
    ScaleNormalizer,
    compact_ids,
    filter_min_counts,
    remove_biases,
)


def _yahoo_style(rng, n=500):
    rows = rng.integers(0, 40, n).astype(np.int32)
    cols = rng.integers(0, 30, n).astype(np.int32)
    vals = rng.uniform(0, 100, n).astype(np.float32)
    return RatingMatrix(rows, cols, vals, 40, 30, name="yahooish")


class TestScaleNormalizer:
    def test_maps_to_target_interval(self, rng):
        r = _yahoo_style(rng)
        norm = ScaleNormalizer.fit(r, 0.0, 1.0)
        t = norm.transform(r)
        assert float(t.vals.min()) == pytest.approx(0.0, abs=1e-6)
        assert float(t.vals.max()) == pytest.approx(1.0, abs=1e-6)

    def test_inverse_round_trip(self, rng):
        r = _yahoo_style(rng)
        norm = ScaleNormalizer.fit(r, -1.0, 1.0)
        t = norm.transform(r)
        back = norm.inverse(t.vals)
        np.testing.assert_allclose(back, r.vals, rtol=1e-4, atol=1e-3)

    def test_input_not_mutated(self, rng):
        r = _yahoo_style(rng)
        before = r.vals.copy()
        ScaleNormalizer.fit(r).transform(r)
        assert np.array_equal(r.vals, before)

    def test_empty_rejected(self):
        empty = RatingMatrix(np.array([]), np.array([]), np.array([]), 2, 2)
        with pytest.raises(ValueError, match="empty"):
            ScaleNormalizer.fit(empty)

    def test_bad_interval(self, rng):
        with pytest.raises(ValueError, match="interval"):
            ScaleNormalizer.fit(_yahoo_style(rng), 1.0, 0.0)


class TestBiases:
    def test_residual_means_near_zero(self, rng):
        r = _yahoo_style(rng, n=2000)
        resid, bias = remove_biases(r, damping=0.0)
        assert abs(float(resid.vals.mean())) < 1.0
        # per-item residual means shrink dramatically
        item_means = np.bincount(resid.cols, weights=resid.vals, minlength=30)
        counts = np.maximum(resid.col_counts(), 1)
        assert np.abs(item_means / counts).max() < np.abs(
            r.vals.mean() - r.vals
        ).mean()

    def test_bias_prediction_reconstruction(self, rng):
        r = _yahoo_style(rng, n=2000)
        resid, bias = remove_biases(r)
        recon = bias.add_back(resid.vals, resid.rows, resid.cols)
        np.testing.assert_allclose(recon, r.vals, rtol=1e-4, atol=1e-3)

    def test_damping_shrinks_rare_user_bias(self, rng):
        rows = np.array([0] * 50 + [1], dtype=np.int32)
        cols = np.arange(51).astype(np.int32) % 20
        vals = np.concatenate([np.zeros(50), [10.0]]).astype(np.float32)
        r = RatingMatrix(rows, cols, vals, 2, 20)
        _, strong = remove_biases(r, damping=10.0)
        _, weak = remove_biases(r, damping=0.0)
        assert abs(strong.user_bias[1]) < abs(weak.user_bias[1])

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            remove_biases(_yahoo_style(rng), damping=-1.0)
        empty = RatingMatrix(np.array([]), np.array([]), np.array([]), 2, 2)
        with pytest.raises(ValueError):
            remove_biases(empty)


class TestFilterAndCompact:
    def test_filter_min_counts(self):
        rows = np.array([0, 0, 0, 1, 2], dtype=np.int32)
        cols = np.array([0, 1, 2, 0, 3], dtype=np.int32)
        r = RatingMatrix(rows, cols, np.ones(5, np.float32), 3, 4)
        filtered = filter_min_counts(r, min_user=2)
        assert set(filtered.rows.tolist()) == {0}
        filtered2 = filter_min_counts(r, min_item=2)
        assert set(filtered2.cols.tolist()) == {0}

    def test_filter_validation(self, tiny_ratings):
        with pytest.raises(ValueError):
            filter_min_counts(tiny_ratings, min_user=0)

    def test_compact_ids_dense(self):
        rows = np.array([5, 9], dtype=np.int32)
        cols = np.array([100, 7], dtype=np.int32)
        r = RatingMatrix(rows, cols, np.array([1.0, 2.0], np.float32), 20, 200)
        compact, mapping = compact_ids(r)
        assert compact.shape == (2, 2)
        assert compact.nnz == 2
        # round trip via the mapping
        assert mapping.row_new_to_old[compact.rows[0]] == 5
        assert mapping.col_old_to_new[100] == compact.cols[0]
        assert mapping.row_old_to_new[9] == 1

    def test_compact_preserves_values(self, tiny_ratings):
        compact, _ = compact_ids(tiny_ratings)
        assert sorted(compact.vals) == sorted(tiny_ratings.vals)
        assert compact.nnz == tiny_ratings.nnz

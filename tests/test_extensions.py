"""Tests for the extension features: ADAGRAD cuMF_SGD (the paper's stated
future work) and the real-threads Hogwild executor."""

import numpy as np
import pytest

from repro.core.adagrad import AdaGradHogwild
from repro.core.lr_schedule import AdaGradSchedule
from repro.core.model import FactorModel
from repro.core.trainer import CuMFSGD
from repro.parallel.threads import ThreadedHogwild


class TestAdaGradHogwild:
    def test_epoch_processes_all_samples(self, tiny_problem):
        exe = AdaGradHogwild(workers=16, f=32, seed=0, schedule=AdaGradSchedule(0.1))
        model = FactorModel.initialize(tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0)
        n = exe.run_epoch(model, tiny_problem.train, lr=0.0, lam_p=0.05)
        assert n == tiny_problem.train.nnz

    def test_accumulators_grow_only_on_touched_rows(self, tiny_problem):
        sched = AdaGradSchedule(0.1)
        exe = AdaGradHogwild(workers=16, f=32, seed=0, schedule=sched)
        model = FactorModel.initialize(tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0)
        exe.run_epoch(model, tiny_problem.train, 0.0, 0.05)
        touched = np.unique(tiny_problem.train.rows)
        untouched = np.setdiff1d(np.arange(tiny_problem.spec.m), touched)
        assert float(sched._accum_p[touched].sum()) > 0
        if len(untouched):
            assert float(sched._accum_p[untouched].sum()) == 0.0

    def test_converges(self, tiny_problem):
        exe = AdaGradHogwild(workers=16, f=32, seed=0, schedule=AdaGradSchedule(0.2))
        model = FactorModel.initialize(tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0)
        from repro.metrics.rmse import rmse

        p, q = model.as_float32()
        before = rmse(p, q, tiny_problem.test)
        for _ in range(4):
            exe.run_epoch(model, tiny_problem.train, 0.0, 0.05)
        p, q = model.as_float32()
        assert rmse(p, q, tiny_problem.test) < before

    def test_trainer_dispatches_to_adagrad(self, tiny_problem):
        est = CuMFSGD(k=8, workers=16, schedule=AdaGradSchedule(0.2), seed=1)
        assert isinstance(est._make_executor(), AdaGradHogwild)
        hist = est.fit(tiny_problem.train, epochs=4, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]

    def test_adagrad_early_progress_strong(self, tiny_problem):
        """ADAGRAD's adaptive rates give fast first-epoch progress — the
        faster-convergence motivation the paper cites for BIDMach."""
        ada = CuMFSGD(k=8, workers=16, schedule=AdaGradSchedule(0.2), seed=1)
        ha = ada.fit(tiny_problem.train, epochs=2, test=tiny_problem.test)
        assert ha.test_rmse[0] < 0.75


class TestThreadedHogwild:
    def test_converges_with_real_races(self, tiny_problem):
        est = ThreadedHogwild(k=8, n_threads=4, lam=0.05, seed=0)
        hist = est.fit(tiny_problem.train, epochs=4, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]
        assert hist.final_test_rmse < 0.75

    def test_all_threads_participate(self, tiny_problem):
        est = ThreadedHogwild(k=8, n_threads=4, seed=0)
        est.fit(tiny_problem.train, epochs=1)
        assert len(est.thread_updates) == 4
        assert all(c > 0 for c in est.thread_updates)
        assert sum(est.thread_updates) == tiny_problem.train.nnz

    def test_single_thread_equivalent_to_serial(self, tiny_problem):
        est = ThreadedHogwild(k=8, n_threads=1, seed=0)
        hist = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]

    def test_score_and_validation(self, tiny_problem):
        with pytest.raises(ValueError):
            ThreadedHogwild(n_threads=0)
        est = ThreadedHogwild(k=8, n_threads=2, seed=0)
        with pytest.raises(RuntimeError):
            est.score(tiny_problem.test)
        est.fit(tiny_problem.train, epochs=1, test=tiny_problem.test)
        assert est.score(tiny_problem.test) == pytest.approx(
            est.history.final_test_rmse, rel=1e-5
        )

    def test_threaded_matches_simulated_convergence(self, tiny_problem):
        """Real races and simulated races land at comparable RMSE — the
        justification for the deterministic wave engine."""
        threaded = ThreadedHogwild(k=8, n_threads=4, lam=0.05, seed=0)
        ht = threaded.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        simulated = CuMFSGD(k=8, scheme="batch_hogwild", workers=4, lam=0.05, seed=0)
        hs = simulated.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        assert ht.final_test_rmse == pytest.approx(hs.final_test_rmse, rel=0.05)


class TestThreadedWavefront:
    def test_converges_and_counts(self, tiny_problem):
        from repro.parallel.wavefront_threads import ThreadedWavefront

        est = ThreadedWavefront(k=8, workers=4, lam=0.05, seed=0)
        hist = est.fit(tiny_problem.train, epochs=4, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]
        assert hist.updates == [tiny_problem.train.nnz] * 4
        assert est.locks is not None and est.locks.all_free()

    def test_contention_happens_on_tight_grid(self, tiny_problem):
        from repro.parallel.wavefront_threads import ThreadedWavefront

        est = ThreadedWavefront(k=8, workers=6, col_blocks=6, seed=0)
        est.fit(tiny_problem.train, epochs=1)
        assert est.locks.attempts >= 6 * 6  # every (worker, column) acquire

    def test_matches_simulated_wavefront_quality(self, tiny_problem):
        import pytest

        from repro.core.trainer import CuMFSGD
        from repro.parallel.wavefront_threads import ThreadedWavefront

        threaded = ThreadedWavefront(k=8, workers=4, lam=0.05, seed=0)
        ht = threaded.fit(tiny_problem.train, epochs=4, test=tiny_problem.test)
        simulated = CuMFSGD(k=8, scheme="wavefront", workers=4, lam=0.05, seed=0)
        hs = simulated.fit(tiny_problem.train, epochs=4, test=tiny_problem.test)
        assert ht.final_test_rmse == pytest.approx(hs.final_test_rmse, rel=0.05)

    def test_validation(self):
        import pytest

        from repro.parallel.wavefront_threads import ThreadedWavefront

        with pytest.raises(ValueError):
            ThreadedWavefront(workers=0)

"""Tests for repro.gpusim.event_sim — and its agreement with the analytic
contention model."""

import numpy as np
import pytest

from repro.gpusim.contention import ContentionModel, scheduler_throughput
from repro.gpusim.event_sim import simulate_scheduler


class TestMechanics:
    def test_all_updates_issued(self):
        res = simulate_scheduler("lockfree", 4, 100, 1e-6, 10_000)
        assert res.total_updates == 10_000
        assert res.per_worker_updates.sum() == 10_000

    def test_lockfree_perfect_scaling(self):
        r1 = simulate_scheduler("lockfree", 1, 100, 1e-6, 100_000)
        r16 = simulate_scheduler("lockfree", 16, 100, 1e-6, 100_000)
        assert r1.updates_per_sec == pytest.approx(1e6, rel=0.01)
        assert r16.updates_per_sec == pytest.approx(16e6, rel=0.05)
        assert r16.wait_time == 0.0

    def test_lockfree_balanced(self):
        res = simulate_scheduler("lockfree", 8, 100, 1e-6, 80_000)
        assert res.per_worker_updates.max() - res.per_worker_updates.min() <= 100

    def test_critical_section_serializes(self):
        """With t_cs comparable to block time, adding workers stops helping."""
        kw = dict(updates_per_block=100, update_seconds=1e-6,
                  epoch_updates=200_000, t_critical=1e-4)
        r2 = simulate_scheduler("critical", 2, **kw)
        r64 = simulate_scheduler("critical", 64, **kw)
        # ceiling: one grant per t_cs -> 100 updates / 1e-4 s = 1e6/s
        assert r64.updates_per_sec <= 1.1e6
        assert r64.updates_per_sec < 3 * r2.updates_per_sec
        assert r64.wait_time > 0

    def test_column_locks_scale_when_plentiful(self):
        res = simulate_scheduler(
            "column_locks", 16, 100, 1e-6, 160_000, n_columns=1024
        )
        assert res.updates_per_sec > 0.8 * 16e6

    def test_column_locks_contend_when_scarce(self):
        plenty = simulate_scheduler(
            "column_locks", 16, 100, 1e-6, 160_000, n_columns=1024, seed=1
        )
        scarce = simulate_scheduler(
            "column_locks", 16, 100, 1e-6, 160_000, n_columns=16, seed=1
        )
        assert scarce.updates_per_sec < plenty.updates_per_sec
        assert scarce.wait_time > plenty.wait_time

    def test_utilization_bounds(self):
        res = simulate_scheduler("critical", 32, 100, 1e-6, 100_000, t_critical=5e-5)
        assert 0.0 <= res.utilization <= 1.0

    @pytest.mark.parametrize("kw", [
        dict(scheme="magic"),
        dict(workers=0),
        dict(updates_per_block=0),
        dict(epoch_updates=0),
        dict(update_seconds=0.0),
    ])
    def test_validation(self, kw):
        base = dict(scheme="lockfree", workers=2, updates_per_block=10,
                    update_seconds=1e-6, epoch_updates=100)
        base.update(kw)
        with pytest.raises(ValueError):
            simulate_scheduler(**base)

    def test_column_locks_need_enough_columns(self):
        with pytest.raises(ValueError, match="n_columns"):
            simulate_scheduler("column_locks", 8, 10, 1e-6, 100, n_columns=4)


class TestAgreementWithAnalyticModel:
    """The closed-form contention model and the event simulation must tell
    the same story — this is the cross-validation of the Fig. 5b mechanism."""

    UPB = 200
    T_UPD = 2e-6
    T_CS = 1e-4

    def _analytic(self, workers):
        model = ContentionModel("m", t_critical=self.T_CS)
        return scheduler_throughput(model, workers, self.UPB, self.T_UPD)

    def _simulated(self, workers):
        return simulate_scheduler(
            "critical", workers, self.UPB, self.T_UPD,
            epoch_updates=400_000, t_critical=self.T_CS,
        ).updates_per_sec

    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_linear_regime_matches(self, workers):
        assert self._simulated(workers) == pytest.approx(
            self._analytic(workers), rel=0.10
        )

    def test_saturated_regime_matches(self):
        assert self._simulated(64) == pytest.approx(self._analytic(64), rel=0.15)

    def test_knee_location_matches(self):
        """Both mechanisms put the knee near (t_cs + t_block)/t_cs workers."""
        model = ContentionModel("m", t_critical=self.T_CS)
        knee = model.saturation_workers(self.UPB * self.T_UPD)
        below = self._simulated(max(1, int(knee * 0.5)))
        above = self._simulated(int(knee * 2))
        at = self._simulated(int(knee))
        assert at > 0.75 * above  # saturated by the knee
        assert below < 0.7 * above  # clearly rising before it

"""Resilience subsystem tests: fault plans, retries, rollback, degradation.

The contract under test (docs/RESILIENCE.md): faults are deterministic and
seedable; the no-fault path is byte-identical to an uninstrumented run; a
dead device degrades throughput, never correctness; retries are bounded and
typed; divergence rolls back instead of poisoning the model.
"""

import json

import numpy as np
import pytest

from repro.core.checkpoint import load_model, save_model
from repro.core.lr_schedule import ConstantSchedule
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.trainer import CuMFSGD
from repro.obs.context import activate
from repro.obs.hooks import RecordingHooks
from repro.obs.registry import MetricsRegistry
from repro.resilience import (
    DeviceFailure,
    DeviceLostError,
    FaultInjector,
    FaultPlan,
    ResilientTrainer,
    RetryOutcome,
    RetryPolicy,
    Straggler,
    TrainingDivergedError,
    TransferFault,
    TransferFaultError,
)

pytestmark = pytest.mark.resilience


# ---------------------------------------------------------------------------
# FaultPlan: pure data, deterministic, serializable
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(seed=3, n_devices=4, kill_devices=1,
                             straggler_devices=1)
        b = FaultPlan.random(seed=3, n_devices=4, kill_devices=1,
                             straggler_devices=1)
        assert a == b
        assert a != FaultPlan.random(seed=4, n_devices=4, kill_devices=1)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.random(seed=9, n_devices=3, kill_devices=1,
                                straggler_devices=1)
        assert FaultPlan.from_json(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # dumps are canonical: same plan -> same bytes
        assert plan.to_json() == FaultPlan.load(path).to_json()

    def test_transfer_failures_sum_matching_specs(self):
        plan = FaultPlan(transfer_faults=(
            TransferFault(device=0, dispatch=2, direction="h2d", failures=1),
            TransferFault(device=0, dispatch=2, direction="any", failures=2),
            TransferFault(device=1, dispatch=2, direction="h2d", failures=9),
        ))
        assert plan.transfer_failures(0, 2, "h2d") == 3
        assert plan.transfer_failures(0, 2, "d2h") == 2  # "any" applies
        assert plan.transfer_failures(0, 3, "h2d") == 0

    def test_at_most_one_kill_per_device(self):
        with pytest.raises(ValueError, match="device"):
            FaultPlan(device_failures=(DeviceFailure(0, 1), DeviceFailure(0, 2)))

    def test_injector_tracks_dispatch_ordinals_and_death(self):
        plan = FaultPlan(device_failures=(DeviceFailure(device=0, after_dispatches=2),))
        inj = FaultInjector(plan)
        assert inj.begin_dispatch(0) and inj.complete_dispatch(0) is None
        assert inj.begin_dispatch(0) and inj.complete_dispatch(0) is None
        assert not inj.begin_dispatch(0)  # third dispatch refused
        assert not inj.alive(0)
        assert inj.dead_devices == {0}
        assert inj.events["device_lost"] == 1
        assert inj.begin_dispatch(1)  # other devices unaffected

    def test_injector_mirrors_events_into_registry(self):
        reg = MetricsRegistry()
        inj = FaultInjector(FaultPlan(device_failures=(DeviceFailure(0, 0),)),
                            registry=reg)
        assert not inj.begin_dispatch(0)
        data = json.loads(reg.to_json())
        assert any("repro.resilience.device_lost" in json.dumps(entry)
                   for entry in (data if isinstance(data, list) else [data]))


# ---------------------------------------------------------------------------
# RetryPolicy: bounded, exponential, simulated-time backoff
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_seconds=0.01,
                             backoff_multiplier=2.0)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.04)
        assert policy.total_backoff(3) == pytest.approx(0.01 + 0.02 + 0.04)

    def test_charge_within_budget(self):
        outcome = RetryPolicy(max_attempts=3).charge(2)
        assert isinstance(outcome, RetryOutcome)
        assert outcome.attempts == 3 and outcome.failures == 2
        assert outcome.retried
        assert not RetryPolicy(max_attempts=3).charge(0).retried

    def test_charge_exhaustion_raises_typed_error(self):
        with pytest.raises(TransferFaultError, match="3 consecutive attempts"):
            RetryPolicy(max_attempts=3).charge(3, what="d2h transfer")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)


# ---------------------------------------------------------------------------
# MultiDeviceSGD degradation: correctness under faults, identity without
# ---------------------------------------------------------------------------
class TestMultiDeviceDegradation:
    def _run(self, problem, plan=None, n_devices=4, grid=(6, 6)):
        sgd = MultiDeviceSGD(n_devices=n_devices, i=grid[0], j=grid[1],
                             workers=8, seed=0)
        if plan is not None:
            sgd.attach_faults(plan)
        model = FactorModel.initialize(
            problem.train.n_rows, problem.train.n_cols, 4, seed=0
        )
        recorder = RecordingHooks()
        updates = sgd.run_epoch(model, problem.train, 0.05, 0.05, hooks=recorder)
        return sgd, model, updates, recorder

    def test_no_fault_path_is_byte_identical(self, tiny_problem):
        _, base_model, base_updates, _ = self._run(tiny_problem, plan=None)
        _, fault_model, fault_updates, _ = self._run(tiny_problem,
                                                     plan=FaultPlan())
        assert base_updates == fault_updates
        assert np.array_equal(base_model.p, fault_model.p)
        assert np.array_equal(base_model.q, fault_model.q)

    def test_kill_one_of_four_processes_every_block_once(self, tiny_problem):
        plan = FaultPlan(device_failures=(DeviceFailure(2, 3),))
        sgd, _, updates, recorder = self._run(tiny_problem, plan)
        blocks = [e.block for e in recorder.batches]
        assert len(blocks) == 36 and len(set(blocks)) == 36
        assert updates == tiny_problem.train.nnz
        assert sgd.injector.events["device_lost"] == 1
        assert sgd.injector.events["blocks_rebalanced"] > 0
        assert sgd.injector.events["degraded_rounds"] > 0

    def test_all_devices_dead_raises(self, tiny_problem):
        plan = FaultPlan(device_failures=tuple(
            DeviceFailure(d, 0) for d in range(4)
        ))
        with pytest.raises(DeviceLostError, match="pending"):
            self._run(tiny_problem, plan)

    def test_transfer_retries_recharge_ledger(self, tiny_problem):
        plan = FaultPlan(transfer_faults=(
            TransferFault(device=0, dispatch=1, direction="h2d", failures=1),
            TransferFault(device=1, dispatch=0, direction="d2h", failures=2),
        ))
        sgd, _, _, _ = self._run(tiny_problem, plan)
        assert sgd.injector.events["transfer_faults"] == 3
        assert sgd.injector.events["retries"] == 3
        assert sgd.ledger.retried_bytes > 0

    def test_straggler_does_not_change_results(self, tiny_problem):
        plan = FaultPlan(stragglers=(Straggler(device=0, slowdown=4.0),))
        _, base_model, _, _ = self._run(tiny_problem, plan=None)
        _, slow_model, _, _ = self._run(tiny_problem, plan=plan)
        # stragglers cost simulated time, never numerics
        assert np.array_equal(base_model.p, slow_model.p)


# ---------------------------------------------------------------------------
# ResilientTrainer: checkpoints, rollback, budget
# ---------------------------------------------------------------------------
class TestResilientTrainer:
    def test_stable_run_trains_like_plain_fit(self, tiny_problem, tmp_path):
        est = CuMFSGD(k=8, workers=32, seed=0)
        hist = ResilientTrainer(est, tmp_path).fit(
            tiny_problem.train, epochs=3, test=tiny_problem.test
        )
        assert len(hist.epochs) == 3
        assert hist.test_rmse[-1] <= hist.test_rmse[0]
        assert (tmp_path / "last_good.npz").exists()

    def test_divergence_rolls_back_and_recovers(self, tiny_problem, tmp_path):
        est = CuMFSGD(k=8, workers=32, lam=0.0,
                      schedule=ConstantSchedule(8.0), seed=0)
        trainer = ResilientTrainer(est, tmp_path, max_rollbacks=12)
        with np.errstate(over="ignore", invalid="ignore"):
            hist = trainer.fit(tiny_problem.train, epochs=3,
                               test=tiny_problem.test)
        assert trainer.rollbacks >= 1
        assert trainer.lr_scale < 1.0
        assert np.isfinite(hist.final_test_rmse)
        assert list(hist.epochs) == [1, 2, 3]
        kinds = [event.kind for event in trainer.log]
        assert "divergence" in kinds and "rollback" in kinds

    def test_rollback_budget_exhaustion_raises(self, tiny_problem, tmp_path):
        est = CuMFSGD(k=8, workers=32, lam=0.0,
                      schedule=ConstantSchedule(50.0), seed=0)
        trainer = ResilientTrainer(est, tmp_path, max_rollbacks=1)
        with np.errstate(over="ignore", invalid="ignore"), \
                pytest.raises(TrainingDivergedError, match="budget 1"):
            trainer.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)

    def test_counters_reach_ambient_registry(self, tiny_problem, tmp_path):
        from repro.obs import TelemetryCollector

        est = CuMFSGD(k=8, workers=32, lam=0.0,
                      schedule=ConstantSchedule(8.0), seed=0)
        collector = TelemetryCollector()
        with activate(collector), \
                np.errstate(over="ignore", invalid="ignore"):
            ResilientTrainer(est, tmp_path, max_rollbacks=12).fit(
                tiny_problem.train, epochs=2, test=tiny_problem.test
            )
        dump = collector.registry.to_json()
        assert "repro.resilience.rollbacks" in dump
        assert "repro.resilience.checkpoints_saved" in dump

    def test_fault_plan_rides_the_recovering_loop(self, tiny_problem, tmp_path):
        est = CuMFSGD(k=8, workers=8, scheme="multi_device",
                      n_devices=4, grid=(6, 6), seed=0)
        plan = FaultPlan(device_failures=(DeviceFailure(3, 1),))
        trainer = ResilientTrainer(est, tmp_path, fault_plan=plan)
        hist = trainer.fit(tiny_problem.train, epochs=2, test=tiny_problem.test)
        assert np.isfinite(hist.final_test_rmse)
        assert trainer.events["device_lost"] == 1


# ---------------------------------------------------------------------------
# Atomic checkpointing
# ---------------------------------------------------------------------------
class TestAtomicCheckpoint:
    def test_failed_save_preserves_previous_checkpoint(
        self, tmp_path, fresh_model, monkeypatch
    ):
        path = save_model(tmp_path / "ck", fresh_model, epoch=5)
        good = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        other = FactorModel.initialize(m=50, n=40, k=8, seed=2)
        with pytest.raises(OSError, match="disk full"):
            save_model(path, other, epoch=6)
        assert path.read_bytes() == good  # old checkpoint untouched
        assert not list(tmp_path.glob(".*tmp*"))  # temp file cleaned up
        assert load_model(path).epoch == 5

    def test_save_leaves_no_temp_files(self, tmp_path, fresh_model):
        save_model(tmp_path / "ck", fresh_model)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]


# ---------------------------------------------------------------------------
# Simulators under faults
# ---------------------------------------------------------------------------
class TestSimulatorFaults:
    def test_streams_straggler_stretches_makespan(self):
        from repro.gpusim.streams import StagedBlock, StreamPipeline

        blocks = [StagedBlock(0.01, 0.05, 0.01)] * 4
        base = StreamPipeline().simulate(blocks)
        slow = StreamPipeline().simulate(
            blocks, device=0,
            faults=FaultPlan(stragglers=(Straggler(0, 2.0),)),
        )
        assert slow.makespan > base.makespan
        assert len(slow.timeline) == len(base.timeline)

    def test_staging_rebalances_dead_device_blocks(self):
        from repro.gpusim.streams import StagedBlock, simulate_epoch_staging

        per_device = [[StagedBlock(0.01, 0.05, 0.01)] * 4 for _ in range(3)]
        plan = FaultPlan(device_failures=(DeviceFailure(1, 1),))
        makespan, results = simulate_epoch_staging(per_device, faults=plan)
        assert sum(len(r.timeline) for r in results) == 12  # orphans adopted
        assert len(results[1].timeline) == 1  # dead device got its 1 block
        assert makespan > 0

    def test_staging_with_no_survivors_raises(self):
        from repro.gpusim.streams import StagedBlock, simulate_epoch_staging

        per_device = [[StagedBlock(0.01, 0.05, 0.01)] * 2]
        plan = FaultPlan(device_failures=(DeviceFailure(0, 1),))
        with pytest.raises(DeviceLostError):
            simulate_epoch_staging(per_device, faults=plan)

    def test_event_sim_survivors_absorb_killed_workers_budget(self):
        from repro.gpusim.event_sim import simulate_scheduler

        plan = FaultPlan(device_failures=(DeviceFailure(1, 2),))
        result = simulate_scheduler(
            "lockfree", workers=4, updates_per_block=100,
            update_seconds=1e-6, epoch_updates=4_000, faults=plan,
        )
        assert result.total_updates == 4_000
        assert result.per_worker_updates[1] == 200  # 2 grants, then dead

    def test_event_sim_all_workers_dead_raises(self):
        from repro.gpusim.event_sim import simulate_scheduler

        plan = FaultPlan(device_failures=(DeviceFailure(0, 1),
                                          DeviceFailure(1, 1)))
        with pytest.raises(DeviceLostError, match="outstanding"):
            simulate_scheduler(
                "lockfree", workers=2, updates_per_block=10,
                update_seconds=1e-6, epoch_updates=1_000, faults=plan,
            )

    def test_multinode_degradation_is_monotone(self):
        from repro.data.synthetic import PAPER_DATASETS
        from repro.gpusim.multinode import NodeSpec, degraded_epoch_curve
        from repro.gpusim.specs import MAXWELL_TITAN_X

        node = NodeSpec(gpu=MAXWELL_TITAN_X, gpus_per_node=2)
        curve = degraded_epoch_curve(
            PAPER_DATASETS["netflix"], node, n_nodes=2,
            failure_counts=[0, 1, 2, 3],
        )
        slowdowns = [s for _, _, s in curve]
        assert slowdowns[0] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(slowdowns, slowdowns[1:]))
        with pytest.raises(DeviceLostError):
            degraded_epoch_curve(PAPER_DATASETS["netflix"], node, n_nodes=1,
                                 failure_counts=[2])


# ---------------------------------------------------------------------------
# The documented demo scenario: byte-identical reproducibility
# ---------------------------------------------------------------------------
class TestFaultDemo:
    def test_fault_demo_metrics_dump_is_byte_identical(self):
        from repro.experiments.resilience import run_fault_demo

        first, summary = run_fault_demo(seed=0)
        second, _ = run_fault_demo(seed=0)
        assert first.to_json() == second.to_json()
        assert summary["blocks_processed"] == summary["grid_blocks"]
        assert summary["dead_devices"] == [2]

    def test_fault_demo_seed_changes_the_dump(self):
        from repro.experiments.resilience import run_fault_demo

        assert run_fault_demo(seed=0)[0].to_json() != \
            run_fault_demo(seed=1)[0].to_json()

"""Tests for repro.core.convergence — the §7.5 safety rules."""

import pytest

from repro.core.convergence import (
    SAFETY_FACTOR,
    check_parallelism,
    hogwild_safety_bound,
    is_safe_parallelism,
    max_safe_partitions,
)


class TestBound:
    def test_single_device(self):
        assert hogwild_safety_bound(4000, 2000) == 2000 / SAFETY_FACTOR

    def test_partitioned(self):
        assert hogwild_safety_bound(4000, 2000, i=2, j=4) == 500 / SAFETY_FACTOR

    def test_paper_hugewiki_calibration(self):
        """The paper's exact numbers: Hugewiki n=39781, s=768, i=64:
        j<=2 converges, j=4 fails."""
        m, n, s, i = 50_082_604, 39_781, 768, 64
        assert is_safe_parallelism(s, m, n, i, 2)
        assert not is_safe_parallelism(s, m, n, i, 4)

    def test_row_dimension_can_bind(self):
        assert hogwild_safety_bound(100, 10_000) == 100 / SAFETY_FACTOR

    @pytest.mark.parametrize("bad", [
        dict(m=0, n=10), dict(m=10, n=0), dict(m=10, n=10, i=0),
        dict(m=10, n=10, j=0),
    ])
    def test_invalid_dims(self, bad):
        kw = dict(m=10, n=10, i=1, j=1)
        kw.update(bad)
        with pytest.raises(ValueError):
            hogwild_safety_bound(**kw)

    def test_partition_exceeding_shape(self):
        with pytest.raises(ValueError, match="exceeds"):
            hogwild_safety_bound(10, 10, i=11)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            is_safe_parallelism(0, 100, 100)


class TestMaxSafePartitions:
    def test_paper_style(self):
        i_max, j_max = max_safe_partitions(768, 50_082_604, 39_781)
        assert j_max == 2  # the paper's empirical finding
        assert i_max == 50_082_604 // (20 * 768)

    def test_minimum_one(self):
        assert max_safe_partitions(1000, 100, 100) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_safe_partitions(0, 10, 10)


class TestCheckParallelism:
    def test_structure(self):
        ck = check_parallelism(16, 4000, 2000)
        assert ck.s == 16
        assert ck.block_m == 4000 and ck.block_n == 2000
        assert ck.safe == (16 < 2000 / SAFETY_FACTOR)
        assert 0 <= ck.expected_collisions < 1

    def test_unsafe_flagged(self):
        ck = check_parallelism(500, 1000, 1000)
        assert not ck.safe
        assert "UNSAFE" in str(ck)

    def test_safe_flagged(self):
        ck = check_parallelism(4, 10_000, 10_000)
        assert ck.safe
        assert "SAFE" in str(ck)

    def test_collisions_grow_with_partitioning(self):
        base = check_parallelism(64, 10_000, 2_000, 1, 1)
        split = check_parallelism(64, 10_000, 2_000, 1, 8)
        assert split.expected_collisions > base.expected_collisions

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError, match="empty block"):
            check_parallelism(4, 5, 10, i=6, j=1)

"""Failure-injection tests: corrupted inputs, pathological data, and
simulated runtime faults must produce clean, diagnosable errors or
documented recovery — not silent garbage."""

import numpy as np
import pytest

from repro.core.checkpoint import load_model, save_model
from repro.core.lr_schedule import ConstantSchedule
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.trainer import CuMFSGD
from repro.data.container import RatingMatrix
from repro.data.io import load_coo, save_coo
from repro.obs.hooks import RecordingHooks
from repro.resilience import (
    DeviceFailure,
    FaultError,
    FaultPlan,
    ResilientTrainer,
    RetryPolicy,
    TransferFault,
    TransferFaultError,
)


class TestCorruptedFiles:
    def test_truncated_checkpoint(self, tmp_path, fresh_model):
        path = save_model(tmp_path / "ck", fresh_model)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_model(path)

    def test_checkpoint_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")

    def test_checkpoint_future_version(self, tmp_path, fresh_model):
        path = save_model(tmp_path / "ck", fresh_model)
        with np.load(path) as z:
            data = dict(z)
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format 99"):
            load_model(path)

    def test_coo_wrong_contents(self, tmp_path):
        np.savez_compressed(tmp_path / "bogus.npz", junk=np.arange(3))
        with pytest.raises(KeyError):
            load_coo(tmp_path / "bogus.npz")

    def test_coo_out_of_range_indices_rejected_on_load(self, tmp_path, tiny_ratings):
        save_coo(tmp_path / "r.npz", tiny_ratings)
        with np.load(tmp_path / "r.npz") as z:
            data = dict(z)
        data["shape"] = np.array([2, 2], dtype=np.int64)  # lie about the shape
        np.savez_compressed(tmp_path / "r.npz", **data)
        with pytest.raises(ValueError, match="index"):
            load_coo(tmp_path / "r.npz")


class TestPathologicalData:
    def _ratings_with(self, vals):
        n = len(vals)
        return RatingMatrix(
            np.arange(n, dtype=np.int32),
            np.arange(n, dtype=np.int32),
            np.asarray(vals, dtype=np.float32),
            n,
            n,
        )

    def test_nan_ratings_rejected_before_training(self):
        bad = self._ratings_with([1.0, float("nan"), 2.0] + [0.5] * 20)
        est = CuMFSGD(k=4, workers=4, seed=0)
        with pytest.raises(ValueError, match="non-finite"):
            est.fit(bad, epochs=2, test=bad)

    def test_inf_ratings_rejected_with_count(self):
        bad = self._ratings_with([1.0, float("inf"), float("-inf")] + [0.5] * 20)
        est = CuMFSGD(k=4, workers=4, seed=0)
        with pytest.raises(ValueError, match="2 non-finite value"):
            est.fit(bad, epochs=1)

    def test_huge_learning_rate_diverges_and_is_detected(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, lam=0.0,
                      schedule=ConstantSchedule(50.0), seed=0)
        hist = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        assert hist.diverged

    def test_single_sample_matrix_trains(self):
        one = self._ratings_with([1.5])
        est = CuMFSGD(k=2, workers=1, seed=0)
        hist = est.fit(one, epochs=2, test=one)
        assert len(hist.test_rmse) == 2
        assert np.isfinite(hist.test_rmse[-1])

    def test_constant_ratings_fit_exactly(self):
        flat = self._ratings_with([1.0] * 30)
        est = CuMFSGD(k=4, workers=4, lam=0.0,
                      schedule=ConstantSchedule(0.2), seed=0)
        hist = est.fit(flat, epochs=40, test=flat)
        assert hist.final_test_rmse < 0.1

    def test_extreme_rating_scale_with_fp16_stays_finite(self):
        """fp16 storage saturates near 65k; parameter scaling (here: the
        model's own 1/sqrt(k) init plus a modest lr) must keep training
        finite for moderate scales."""
        vals = np.full(50, 100.0, dtype=np.float32)
        r = RatingMatrix(
            np.arange(50, dtype=np.int32) % 10,
            np.arange(50, dtype=np.int32) % 7,
            vals, 10, 7,
        )
        # deduplicate coordinates
        keys = r.rows.astype(np.int64) * 7 + r.cols
        _, first = np.unique(keys, return_index=True)
        r = r.take(first)
        est = CuMFSGD(k=4, workers=4, half_precision=True,
                      schedule=ConstantSchedule(0.001), seed=0)
        hist = est.fit(r, epochs=3, test=r)
        assert np.isfinite(hist.test_rmse[-1])


@pytest.mark.resilience
class TestInjectedRuntimeFaults:
    """End-to-end: the resilience subsystem under injected faults."""

    def test_exhausted_transfer_retries_raise_typed_fault_error(self, tiny_problem):
        # 5 planned failures vs a 3-attempt budget: retries exhaust
        plan = FaultPlan(
            transfer_faults=(TransferFault(device=0, dispatch=0, failures=5),)
        )
        sgd = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=8, seed=0)
        sgd.attach_faults(plan, RetryPolicy(max_attempts=3))
        model = FactorModel.initialize(
            tiny_problem.train.n_rows, tiny_problem.train.n_cols, 4, seed=0
        )
        with pytest.raises(TransferFaultError, match="h2d"):
            sgd.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert issubclass(TransferFaultError, FaultError)

    def test_divergence_rolls_back_to_finite_rmse(self, tiny_problem, tmp_path):
        est = CuMFSGD(k=8, workers=32, lam=0.0,
                      schedule=ConstantSchedule(8.0), seed=0)
        trainer = ResilientTrainer(est, tmp_path, max_rollbacks=12)
        with np.errstate(over="ignore", invalid="ignore"):
            hist = trainer.fit(tiny_problem.train, epochs=4,
                               test=tiny_problem.test)
        assert trainer.rollbacks >= 1
        assert np.isfinite(hist.final_test_rmse)
        assert len(hist.epochs) == 4  # only good epochs survive in history

    def test_one_dead_of_four_devices_completes_epoch(self, tiny_problem):
        plan = FaultPlan(device_failures=(DeviceFailure(device=1, after_dispatches=2),))
        sgd = MultiDeviceSGD(n_devices=4, i=6, j=6, workers=8, seed=0)
        sgd.attach_faults(plan)
        model = FactorModel.initialize(
            tiny_problem.train.n_rows, tiny_problem.train.n_cols, 4, seed=0
        )
        recorder = RecordingHooks()
        updates = sgd.run_epoch(model, tiny_problem.train, 0.05, 0.05,
                                hooks=recorder)
        blocks = [event.block for event in recorder.batches]
        assert len(blocks) == 36 and len(set(blocks)) == 36  # exactly once
        assert updates == tiny_problem.train.nnz
        assert sgd.injector.dead_devices == {1}
        assert sgd.injector.events["device_lost"] == 1
        assert sgd.injector.events["blocks_rebalanced"] > 0
        done_by_dead = sum(1 for e in recorder.batches if e.worker == 1)
        assert done_by_dead == 2

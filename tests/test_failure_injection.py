"""Failure-injection tests: corrupted inputs and pathological data must
produce clean, diagnosable errors — not silent garbage."""

import numpy as np
import pytest

from repro.analysis.diagnostics import detect_divergence
from repro.core.checkpoint import load_model, save_model
from repro.core.lr_schedule import ConstantSchedule
from repro.core.trainer import CuMFSGD
from repro.data.container import RatingMatrix
from repro.data.io import load_coo, save_coo


class TestCorruptedFiles:
    def test_truncated_checkpoint(self, tmp_path, fresh_model):
        path = save_model(tmp_path / "ck", fresh_model)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_model(path)

    def test_checkpoint_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")

    def test_checkpoint_future_version(self, tmp_path, fresh_model):
        path = save_model(tmp_path / "ck", fresh_model)
        with np.load(path) as z:
            data = dict(z)
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format 99"):
            load_model(path)

    def test_coo_wrong_contents(self, tmp_path):
        np.savez_compressed(tmp_path / "bogus.npz", junk=np.arange(3))
        with pytest.raises(KeyError):
            load_coo(tmp_path / "bogus.npz")

    def test_coo_out_of_range_indices_rejected_on_load(self, tmp_path, tiny_ratings):
        save_coo(tmp_path / "r.npz", tiny_ratings)
        with np.load(tmp_path / "r.npz") as z:
            data = dict(z)
        data["shape"] = np.array([2, 2], dtype=np.int64)  # lie about the shape
        np.savez_compressed(tmp_path / "r.npz", **data)
        with pytest.raises(ValueError, match="index"):
            load_coo(tmp_path / "r.npz")


class TestPathologicalData:
    def _ratings_with(self, vals):
        n = len(vals)
        return RatingMatrix(
            np.arange(n, dtype=np.int32),
            np.arange(n, dtype=np.int32),
            np.asarray(vals, dtype=np.float32),
            n,
            n,
        )

    def test_nan_ratings_surface_as_divergence(self):
        bad = self._ratings_with([1.0, float("nan"), 2.0] + [0.5] * 20)
        est = CuMFSGD(k=4, workers=4, seed=0)
        hist = est.fit(bad, epochs=2, test=bad)
        assert hist.diverged
        assert detect_divergence(hist) == "diverging"

    def test_huge_learning_rate_diverges_and_is_detected(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, lam=0.0,
                      schedule=ConstantSchedule(50.0), seed=0)
        hist = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        assert hist.diverged

    def test_single_sample_matrix_trains(self):
        one = self._ratings_with([1.5])
        est = CuMFSGD(k=2, workers=1, seed=0)
        hist = est.fit(one, epochs=2, test=one)
        assert len(hist.test_rmse) == 2
        assert np.isfinite(hist.test_rmse[-1])

    def test_constant_ratings_fit_exactly(self):
        flat = self._ratings_with([1.0] * 30)
        est = CuMFSGD(k=4, workers=4, lam=0.0,
                      schedule=ConstantSchedule(0.2), seed=0)
        hist = est.fit(flat, epochs=40, test=flat)
        assert hist.final_test_rmse < 0.1

    def test_extreme_rating_scale_with_fp16_stays_finite(self):
        """fp16 storage saturates near 65k; parameter scaling (here: the
        model's own 1/sqrt(k) init plus a modest lr) must keep training
        finite for moderate scales."""
        vals = np.full(50, 100.0, dtype=np.float32)
        r = RatingMatrix(
            np.arange(50, dtype=np.int32) % 10,
            np.arange(50, dtype=np.int32) % 7,
            vals, 10, 7,
        )
        # deduplicate coordinates
        keys = r.rows.astype(np.int64) * 7 + r.cols
        _, first = np.unique(keys, return_index=True)
        r = r.take(first)
        est = CuMFSGD(k=4, workers=4, half_precision=True,
                      schedule=ConstantSchedule(0.001), seed=0)
        hist = est.fit(r, epochs=3, test=r)
        assert np.isfinite(hist.test_rmse[-1])

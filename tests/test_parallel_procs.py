"""Tier-1 tests for the multiprocess executor and out-of-core block store.

Covers the contracts the parallel layer is built on:

* ``EpochPlan.shard`` — static column shards that tile every worker lane
  exactly once, with ``live_width`` clipping padded tails;
* ``BlockStore`` — the i x j mmap grid round-trips the COO multiset, and
  the double-buffered prefetcher stages every block with honest stats;
* ``ProcessHogwild`` — ``n_procs=1`` is bit-identical to the serial
  compiled-plan executor (same RNG stream, same kernels, one shard), and
  ``n_procs=4`` still converges despite real cross-process races;
* telemetry — both executors emit epoch events and publish their
  ``repro.proc.*`` / ``repro.thread.*`` metrics into the ambient registry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hogwild import BatchHogwild
from repro.core.lr_schedule import NomadSchedule
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.data.blockstore import BlockPrefetcher, BlockStore
from repro.obs import RecordingHooks, TelemetryCollector, activate
from repro.obs.registry import M
from repro.parallel import ProcessHogwild, ThreadedHogwild
from repro.sched.plan import EpochPlan


def _coo_multiset(rows, cols, vals):
    """Order-independent canonical form of a COO triple."""
    order = np.lexsort((vals, cols, rows))
    return (
        np.asarray(rows)[order],
        np.asarray(cols)[order],
        np.asarray(vals)[order],
    )


class TestPlanShard:
    def test_shards_tile_every_lane_once(self, rng):
        plan = EpochPlan(rng.permutation(1_000).astype(np.int64), workers=16, f=8)
        shards = plan.shard(5)
        assert [s.index for s in shards] == list(range(5))
        assert shards[0].col_lo == 0 and shards[-1].col_hi == plan.width
        for prev, cur in zip(shards, shards[1:]):
            assert prev.col_hi == cur.col_lo  # contiguous, disjoint
        assert sum(s.width for s in shards) == plan.width
        # per wave: the live slices re-cover exactly the wave's samples
        for i, length in enumerate(plan.lengths.tolist()):
            seen = []
            for s in shards:
                live = s.live_width(length)
                seen.append(plan.matrix[i, s.col_lo : s.col_lo + live])
            wave = np.concatenate(seen)
            assert np.array_equal(wave, plan.matrix[i, :length])

    def test_live_width_clips_padded_tails(self, rng):
        plan = EpochPlan(rng.permutation(100).astype(np.int64), workers=8, f=4)
        shards = plan.shard(3)
        for s in shards:
            assert s.live_width(0) == 0
            assert s.live_width(s.col_lo) == 0
            assert s.live_width(plan.width) == s.width
            assert s.live_width(s.col_lo + 1) == min(1, s.width)

    def test_single_shard_spans_full_width(self, rng):
        plan = EpochPlan(rng.permutation(64).astype(np.int64), workers=4, f=4)
        (only,) = plan.shard(1)
        assert (only.col_lo, only.col_hi) == (0, plan.width)

    def test_shard_count_validation(self, rng):
        plan = EpochPlan(rng.permutation(64).astype(np.int64), workers=4, f=4)
        with pytest.raises(ValueError, match="n_shards"):
            plan.shard(0)


class TestBlockStore:
    def test_round_trip_is_multiset_identity(self, tiny_problem, tmp_path):
        train = tiny_problem.train
        store = BlockStore.create(train, 3, 3, tmp_path / "store", seed=0)
        back = store.reassemble()
        assert (back.n_rows, back.n_cols, back.nnz) == (
            train.n_rows, train.n_cols, train.nnz,
        )
        got = _coo_multiset(back.rows, back.cols, back.vals)
        want = _coo_multiset(train.rows, train.cols, train.vals)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_open_rereads_manifest(self, tiny_problem, tmp_path):
        root = tmp_path / "store"
        created = BlockStore.create(tiny_problem.train, 2, 3, root, seed=1)
        opened = BlockStore.open(root)
        assert opened.shape == created.shape
        assert opened.n_blocks == created.n_blocks
        assert np.array_equal(opened.block_nnz, created.block_nnz)
        for bi, bj in created.blocks():
            assert np.array_equal(opened.load(bi, bj), created.load(bi, bj))

    def test_shuffle_within_block_permutes_only_within(self, tiny_problem, tmp_path):
        train = tiny_problem.train
        plain = BlockStore.create(
            train, 2, 2, tmp_path / "plain", shuffle_within=False, seed=0
        )
        mixed = BlockStore.create(
            train, 2, 2, tmp_path / "mixed", shuffle_within=True, seed=0
        )
        for bi, bj in plain.blocks():
            a, b = plain.load(bi, bj), mixed.load(bi, bj)
            assert len(a) == len(b)
            got = _coo_multiset(b["u"], b["v"], b["r"])
            want = _coo_multiset(a["u"], a["v"], a["r"])
            for g, w in zip(got, want):
                assert np.array_equal(g, w)

    def test_assign_partitions_all_blocks(self, tiny_problem, tmp_path):
        store = BlockStore.create(tiny_problem.train, 4, 4, tmp_path / "s", seed=0)
        lanes = store.assign(3)
        assert len(lanes) == 3
        flat = [b for lane in lanes for b in lane]
        assert sorted(flat) == sorted(store.blocks())

    def test_prefetcher_stages_every_block(self, tiny_problem, tmp_path):
        store = BlockStore.create(tiny_problem.train, 3, 2, tmp_path / "s", seed=0)
        sequence = list(store.blocks())
        fetched = {}
        pf = BlockPrefetcher(store, sequence, depth=2)
        for key, rec in pf:
            fetched[key] = int(len(rec))
        assert sorted(fetched) == sorted(sequence)
        assert sum(fetched.values()) == tiny_problem.train.nnz
        assert pf.stats.blocks_loaded == len(sequence)
        assert pf.stats.bytes_loaded > 0
        assert pf.stats.load_seconds >= 0.0


class TestProcessHogwild:
    def test_single_proc_bit_identical_to_serial(self, tiny_problem):
        """One shard over shared memory must replay the serial compiled-plan
        executor exactly: same init, same permutation stream, same kernels."""
        train = tiny_problem.train
        spec = tiny_problem.spec
        workers, f, seed, epochs = 32, 16, 7, 3

        ref = FactorModel.initialize(spec.m, spec.n, 8, seed=seed)
        sched = BatchHogwild(workers=workers, f=f, seed=seed)
        schedule = NomadSchedule()
        for epoch in range(epochs):
            sched.run_epoch(ref, train, schedule(epoch), 0.05)

        est = ProcessHogwild(
            k=8, n_procs=1, lam=0.05, seed=seed, workers=workers, f=f
        )
        est.fit(train, epochs=epochs)
        assert np.array_equal(est.model.p, ref.p)
        assert np.array_equal(est.model.q, ref.q)

    def test_multiproc_converges_and_accounts_updates(self, tiny_problem):
        train, test = tiny_problem.train, tiny_problem.test
        est = ProcessHogwild(k=8, n_procs=4, lam=0.05, seed=0, workers=64, f=16)
        history = est.fit(train, epochs=5, test=test)
        assert sum(est.worker_updates) == train.nnz  # last epoch, exact
        assert len(est.worker_updates) == 4
        final = history.final_test_rmse
        assert np.isfinite(final)

        serial = BatchHogwild(workers=64, f=16, seed=0)
        model = FactorModel.initialize(tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0)
        schedule = NomadSchedule()
        for epoch in range(5):
            serial.run_epoch(model, train, schedule(epoch), 0.05)
        p, q = model.as_float32()
        from repro.metrics.rmse import rmse

        assert final == pytest.approx(rmse(p, q, test), abs=0.05)

    def test_out_of_core_stages_and_converges(self, tiny_problem, tmp_path):
        train = tiny_problem.train
        store = BlockStore.create(train, 3, 3, tmp_path / "store", seed=0)
        est = ProcessHogwild(k=8, n_procs=2, lam=0.05, seed=0, store=store)
        est.fit(None, epochs=2, test=tiny_problem.test)
        assert sum(est.worker_updates) == train.nnz
        assert est.stage_stats is not None
        assert est.stage_stats.blocks_loaded == 2 * len(list(store.blocks()))
        assert est.stage_stats.bytes_loaded > 0
        assert np.isfinite(est.history.final_test_rmse)

    def test_telemetry_and_hooks(self, tiny_problem):
        hooks = RecordingHooks()
        collector = TelemetryCollector()
        est = ProcessHogwild(k=8, n_procs=2, lam=0.05, seed=0, workers=32, f=16)
        with activate(collector):
            est.fit(tiny_problem.train, epochs=2, hooks=hooks)
        assert len(hooks.epochs) == 2
        assert all(e.scheme == "process-hogwild" for e in hooks.epochs)
        assert hooks.epochs[0].extra["n_procs"] == 2
        registry = collector.registry
        assert registry.value(M.PROC_WORKERS) == 2
        assert registry.value(M.PROC_EPOCHS) == 2
        per_worker = sum(
            m.value for m in registry.family(M.PROC_WORKER_UPDATES)
        )
        assert per_worker == 2 * tiny_problem.train.nnz
        assert registry.value(M.PROC_SHM_BYTES) > 0

    def test_validation(self, tiny_problem):
        with pytest.raises(ValueError):
            ProcessHogwild(n_procs=0)
        with pytest.raises(ValueError):
            ProcessHogwild(n_procs=8, workers=4)
        est = ProcessHogwild(n_procs=1)
        with pytest.raises(ValueError):
            est.fit(None, epochs=1)  # no ratings and no store


class TestThreadedHogwild:
    def test_intra_batch_is_pure_throughput_knob(self, tiny_problem):
        """Serial-equivalence of segment replay: with one thread, any
        ``intra_batch`` yields bit-identical factors."""
        results = []
        for intra_batch in (64, 256):
            est = ThreadedHogwild(
                k=8, n_threads=1, lam=0.05, seed=0, intra_batch=intra_batch
            )
            est.fit(tiny_problem.train, epochs=2)
            results.append((est.model.p.copy(), est.model.q.copy()))
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])

    def test_telemetry_and_hooks(self, tiny_problem):
        hooks = RecordingHooks()
        collector = TelemetryCollector()
        est = ThreadedHogwild(k=8, n_threads=3, lam=0.05, seed=0)
        with activate(collector):
            est.fit(tiny_problem.train, epochs=2, hooks=hooks)
        assert len(hooks.epochs) == 2
        assert all(e.scheme == "threaded-hogwild" for e in hooks.epochs)
        assert len(hooks.kernels) == 3 * 2  # one per thread shard per epoch
        assert sum(e.n_updates for e in hooks.kernels) == 2 * tiny_problem.train.nnz
        registry = collector.registry
        assert registry.value(M.THREAD_WORKERS) == 3
        per_thread = sum(
            m.value for m in registry.family(M.THREAD_WORKER_UPDATES)
        )
        assert per_thread == 2 * tiny_problem.train.nnz


class TestMultiDeviceStore:
    def test_attach_store_runs_every_sample(self, tiny_problem, tmp_path):
        train = tiny_problem.train
        store = BlockStore.create(train, 4, 4, tmp_path / "store", seed=0)
        sgd = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=16, seed=0)
        sgd.attach_store(store)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        n = sgd.run_epoch(model, None, 0.05, 0.05)
        assert n == train.nnz
        assert sgd.ledger.dispatches == len(list(store.blocks()))

    def test_attach_store_grid_mismatch_rejected(self, tiny_problem, tmp_path):
        store = BlockStore.create(tiny_problem.train, 2, 2, tmp_path / "s", seed=0)
        sgd = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=16, seed=0)
        with pytest.raises(ValueError):
            sgd.attach_store(store)

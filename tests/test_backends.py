"""Kernel-backend registry and auto-executor policy.

Covers the dispatch layer introduced with :mod:`repro.backends`:

* the NumPy reference backend is *structurally* the pre-registry path —
  ``bind`` returns the workspace's own kernel, and every executor's
  registry-dispatched output is bit-identical to direct kernel calls;
* optional backends gate through verification (exact backends by
  ``tobytes``, accelerated by tolerance) and fall back to NumPy with a
  single per-process warning when absent or failing;
* :mod:`repro.parallel.policy` decisions are pinned over a
  (cpu_count, nnz, evidence) grid — serial is the null hypothesis and
  parallel requires measured evidence beating the margin.
"""

from __future__ import annotations

import importlib.util
import warnings

import numpy as np
import pytest

from repro.backends import (
    BackendType,
    BackendVerificationError,
    available_backends,
    backend_status,
    estimate_memory_bytes,
    get_backend,
    verify_backend,
)
from repro.backends import registry as backend_registry
from repro.backends.numpy_backend import NumpyBackend
from repro.core.kernels import WaveWorkspace, sgd_serial_update, sgd_wave_update

HAVE_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture
def clean_warnings(monkeypatch):
    """Reset the once-per-process warning dedup so each test observes the
    warning behaviour from scratch (instances/verification stay cached —
    they are deterministic)."""
    monkeypatch.setattr(backend_registry, "_warned", set())


def _problem(seed=5, nnz=600, m=60, n=50, k=8):
    rng = np.random.default_rng(seed)
    p = rng.standard_normal((m, k)).astype(np.float32)
    q = rng.standard_normal((n, k)).astype(np.float32)
    rows = rng.integers(0, m, nnz).astype(np.int64)
    cols = rng.integers(0, n, nnz).astype(np.int64)
    vals = rng.standard_normal(nnz).astype(np.float32)
    return p, q, rows, cols, vals


# ---------------------------------------------------------------------------
# resolution + reference backend
# ---------------------------------------------------------------------------
class TestRegistryResolution:
    def test_none_resolves_to_numpy_reference(self):
        backend = get_backend(None)
        assert isinstance(backend, NumpyBackend)
        assert backend.name is BackendType.NUMPY
        assert backend.exact

    def test_name_type_and_instance_requests_agree(self):
        by_name = get_backend("numpy")
        by_type = get_backend(BackendType.NUMPY)
        assert by_name is by_type  # one instance per process
        inst = NumpyBackend()
        assert get_backend(inst) is inst  # instances pass through, verified

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    def test_available_always_includes_numpy(self):
        assert BackendType.NUMPY in available_backends()
        assert (BackendType.NUMBA in available_backends()) == HAVE_NUMBA

    def test_status_map_covers_all_types(self):
        status = backend_status()
        assert set(status) == {b.value for b in BackendType}
        get_backend("numpy")
        assert backend_status()["numpy"] == "verified"

    def test_bind_is_the_workspace_kernel(self):
        """The numpy backend's bound callable IS the workspace method —
        registry dispatch adds literally nothing to the hot loop."""
        ws = WaveWorkspace()
        assert get_backend("numpy").bind(ws) == ws.wave_update

    def test_estimate_memory_scales_sanely(self):
        small = estimate_memory_bytes(1000, 800, 16, 10_000)
        big = estimate_memory_bytes(1000, 800, 16, 1_000_000)
        assert 0 < small < big
        assert estimate_memory_bytes(
            1000, 800, 16, 10_000, n_workers=4
        ) > small


class TestNumpyBitIdentity:
    def test_wave_update_bit_identical_to_reference(self):
        backend = get_backend("numpy")
        p_ref, q_ref, rows, cols, vals = _problem()
        p_got, q_got = p_ref.copy(), q_ref.copy()
        ws = WaveWorkspace()
        bound = backend.bind(ws)
        for lo in range(0, len(rows), 64):
            sl = slice(lo, lo + 64)
            sgd_wave_update(p_ref, q_ref, rows[sl], cols[sl], vals[sl],
                            0.05, 0.02, 0.02)
            bound(p_got, q_got, rows[sl], cols[sl], vals[sl],
                  0.05, 0.02, 0.02)
        assert p_ref.tobytes() == p_got.tobytes()
        assert q_ref.tobytes() == q_got.tobytes()

    def test_serial_update_bit_identical_to_reference(self):
        backend = get_backend("numpy")
        p_ref, q_ref, rows, cols, vals = _problem(seed=6)
        p_got, q_got = p_ref.copy(), q_ref.copy()
        sgd_serial_update(p_ref, q_ref, rows, cols, vals, 0.05, 0.02, 0.02,
                          max_wave=32)
        backend.serial_update(p_got, q_got, rows, cols, vals,
                              0.05, 0.02, 0.02, max_wave=32)
        assert p_ref.tobytes() == p_got.tobytes()
        assert q_ref.tobytes() == q_got.tobytes()

    def test_batch_hogwild_dispatch_is_bit_stable(self, tiny_problem):
        """BatchHogwild through the registry (backend='numpy') matches the
        default (backend=None) run bit for bit."""
        from repro.core.hogwild import BatchHogwild
        from repro.core.model import FactorModel

        results = []
        for backend in (None, "numpy"):
            sched = BatchHogwild(workers=32, f=64, seed=9, backend=backend)
            model = FactorModel.initialize(
                tiny_problem.train.n_rows, tiny_problem.train.n_cols, 8,
                seed=9,
            )
            for _ in range(2):
                sched.run_epoch(model, tiny_problem.train, 0.05, 0.02)
            results.append((model.p.tobytes(), model.q.tobytes()))
        assert results[0] == results[1]


# ---------------------------------------------------------------------------
# verification gate + fallback
# ---------------------------------------------------------------------------
class TestVerificationAndFallback:
    def test_broken_backend_fails_the_gate(self):
        class BrokenBackend(NumpyBackend):
            def bind(self, workspace):
                kernel = workspace.wave_update

                def off_by_lr(p, q, rows, cols, vals, lr, lam_p, lam_q):
                    kernel(p, q, rows, cols, vals, lr * 1.5, lam_p, lam_q)

                return off_by_lr

        with pytest.raises(BackendVerificationError, match="bit identity"):
            verify_backend(BrokenBackend())

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_missing_numba_falls_back_with_single_warning(
        self, clean_warnings
    ):
        with pytest.warns(RuntimeWarning, match="numba"):
            backend = get_backend("numba")
        assert isinstance(backend, NumpyBackend)
        # second request: same fallback, no second warning
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert isinstance(get_backend("numba"), NumpyBackend)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_auto_skips_absent_backends_silently(self, clean_warnings):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert isinstance(get_backend("auto"), NumpyBackend)

    def test_fallbacks_counted_in_ambient_registry(self, clean_warnings):
        if HAVE_NUMBA:
            pytest.skip("numba installed; no fallback to count")
        from repro.obs import TelemetryCollector, activate
        from repro.obs.registry import M

        collector = TelemetryCollector(run_label="backend-fallback")
        with activate(collector), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            get_backend("numba")
            get_backend("numba")  # warning dedups; the counter must not
        assert collector.registry.value(
            M.BACKEND_FALLBACKS, {"backend": "numba"}
        ) == 2

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_passes_tolerance_gate(self):
        backend = get_backend("numba")
        assert backend.name is BackendType.NUMBA
        assert not backend.exact
        # tolerance agreement on a racy problem (duplicates allowed):
        # conflict-free segments of a serial replay must agree closely
        p_ref, q_ref, rows, cols, vals = _problem(seed=8)
        p_got, q_got = p_ref.copy(), q_ref.copy()
        sgd_serial_update(p_ref, q_ref, rows, cols, vals, 0.05, 0.02, 0.02,
                          max_wave=32)
        backend.serial_update(p_got, q_got, rows, cols, vals,
                              0.05, 0.02, 0.02, max_wave=32)
        assert np.allclose(p_ref, p_got, rtol=1e-4, atol=1e-5)
        assert np.allclose(q_ref, q_got, rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# auto-policy decisions
# ---------------------------------------------------------------------------
class TestExecutorPolicy:
    GOOD_EVIDENCE = {"threads_vs_serial": 1.8, "procs_vs_serial": 2.4,
                     "n_threads": 4, "n_procs": 4}

    def test_one_core_is_always_serial(self):
        from repro.parallel.policy import choose_executor

        for nnz in (1_000, 500_000, 50_000_000):
            choice = choose_executor(nnz, 32, cpu_count=1,
                                     evidence=self.GOOD_EVIDENCE)
            assert choice.executor == "serial"
            assert choice.n_workers == 1
            assert "cpu_count=1" in choice.reason

    def test_small_problems_stay_serial_on_any_host(self):
        from repro.parallel.policy import SMALL_NNZ, choose_executor

        choice = choose_executor(SMALL_NNZ - 1, 32, cpu_count=16,
                                 evidence=self.GOOD_EVIDENCE)
        assert choice.executor == "serial"
        assert "too small" in choice.reason

    def test_no_evidence_means_serial(self):
        from repro.parallel.policy import choose_executor

        choice = choose_executor(5_000_000, 32, cpu_count=8, ledger=None)
        assert choice.executor == "serial"
        assert "no measured evidence" in choice.reason

    def test_evidence_below_margin_stays_serial(self):
        from repro.parallel.policy import choose_executor

        choice = choose_executor(
            5_000_000, 32, cpu_count=8,
            evidence={"threads_vs_serial": 1.02, "procs_vs_serial": 0.9},
        )
        assert choice.executor == "serial"
        assert "below" in choice.reason

    def test_best_measured_executor_wins(self):
        from repro.parallel.policy import choose_executor

        choice = choose_executor(5_000_000, 32, cpu_count=8,
                                 evidence=self.GOOD_EVIDENCE)
        assert choice.executor == "procs"  # 2.4 > 1.8
        assert choice.n_workers == 4
        threads_better = dict(self.GOOD_EVIDENCE,
                              threads_vs_serial=3.0)
        assert choose_executor(
            5_000_000, 32, cpu_count=8, evidence=threads_better
        ).executor == "threads"

    def test_workers_clamped_to_cores(self):
        from repro.parallel.policy import choose_executor

        evidence = dict(self.GOOD_EVIDENCE, n_procs=16)
        choice = choose_executor(5_000_000, 32, cpu_count=2,
                                 evidence=evidence)
        assert choice.executor == "procs"
        assert choice.n_workers == 2

    def test_backend_choice_is_size_aware(self):
        from repro.parallel.policy import JIT_NNZ, choose_backend

        # explicit request passes through untouched
        assert choose_backend(100, 8, "numpy")[0] == "numpy"
        assert choose_backend(100, 8, "cupy")[0] == "cupy"
        name, reason = choose_backend(JIT_NNZ * 10, 8, "auto")
        if HAVE_NUMBA:
            assert name == "numba"
            assert choose_backend(JIT_NNZ - 1, 8, "auto")[0] == "numpy"
        else:
            assert name == "numpy"
            assert "no accelerated backend" in reason

    def test_evidence_from_ledger_filters(self, tmp_path):
        from repro.obs.ledger import PerfLedger
        from repro.parallel.policy import evidence_from_ledger

        def entry(cpu_count, threads_ratio, oversubscribed=False):
            return {
                "benchmark": "parallel",
                "schema_version": 3,
                "config": {"n_threads": 4, "n_procs": 4},
                "meta": {"cpu_count": cpu_count},
                "metrics": {
                    "threads_vs_serial": threads_ratio,
                    "procs_vs_serial": 1.0,
                    "oversubscribed": oversubscribed,
                },
            }

        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        ledger.append(entry(8, 1.5))
        ledger.append(entry(4, 2.0))           # wrong cpu_count
        ledger.append(entry(8, 9.9, True))     # oversubscribed: ignored
        ledger.append(entry(8, 1.7))           # newest comparable: wins
        ledger.append({"benchmark": "hot_path", "metrics": {}})
        evidence = evidence_from_ledger(ledger, cpu_count=8)
        assert evidence["threads_vs_serial"] == 1.7
        assert evidence["n_threads"] == 4
        assert "oversubscribed" not in evidence
        assert evidence_from_ledger(ledger, cpu_count=64) is None
        assert evidence_from_ledger(None, cpu_count=8) is None

    def test_publish_choice_emits_policy_metrics(self):
        from repro.obs import TelemetryCollector, activate
        from repro.obs.registry import M
        from repro.parallel.policy import ExecutorChoice, publish_choice

        collector = TelemetryCollector(run_label="policy")
        with activate(collector):
            publish_choice(
                ExecutorChoice("serial", 1, "numpy", "pinned by test")
            )
        assert collector.registry.value(
            M.POLICY_EXECUTOR_SELECTED, {"executor": "serial"}
        ) == 1
        assert collector.registry.value(
            M.BACKEND_SELECTED, {"backend": "numpy", "executor": "serial"}
        ) == 1
        assert collector.registry.value(
            M.BACKEND_AVAILABLE, {"backend": "numpy"}
        ) == 1

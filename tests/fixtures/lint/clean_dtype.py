"""Fixture: fp32 discipline plus a properly tagged fp64 accumulator."""

import numpy as np


def accumulate(xs):
    total = np.zeros(len(xs), dtype=np.float32)
    bias = np.asarray(xs, dtype=np.float64)  # lint: fp64-accumulator -- intentional double-precision sum
    return total, bias

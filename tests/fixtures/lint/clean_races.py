"""Fixture: worker threads respecting a declared SHARED_WRITE_OK discipline."""

import threading

SHARED_WRITE_OK = ("counts", "errors")


def run(n):
    counts = [0] * n
    errors = []

    def work(tid):
        try:
            counts[tid] += 1
        except Exception as exc:  # noqa: BLE001 - fixture
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return counts

"""Fixture: Barrier with a timed wait and an abort on teardown."""

import threading


def make_rendezvous(n):
    barrier = threading.Barrier(n)

    def step():
        barrier.wait(timeout=30.0)

    def teardown():
        barrier.abort()

    return step, teardown

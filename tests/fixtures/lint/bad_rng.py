"""Fixture: legacy module-level numpy RNG — hidden global state."""

import numpy as np


def sample(n):
    np.random.seed(0)
    return np.random.rand(n)

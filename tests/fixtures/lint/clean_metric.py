"""Fixture: manifest constants, literal manifest names, declared dynamic prefix."""

from repro.obs.registry import M


def emit(registry, key):
    registry.counter(M.TRAIN_UPDATES).inc()
    registry.series("repro.train.rmse", {"split": "test"})
    registry.series(f"repro.train.extra.{key}")

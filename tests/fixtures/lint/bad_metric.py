"""Fixture: metric names outside the repro.* manifest."""


def emit(registry, name):
    registry.counter("repro.train.updatez").inc()  # typo'd manifest name
    registry.gauge(f"repro.custom.{name}").set(1.0)  # undeclared dynamic prefix

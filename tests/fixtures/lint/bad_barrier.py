"""Fixture: a Barrier with only untimed waits and no abort path."""

import threading


def make_rendezvous(n):
    barrier = threading.Barrier(n)

    def step():
        barrier.wait()  # untimed: a dead peer hangs this forever

    return step

"""Fixture: fp64 leakage, both src-wide markers and hot-only hazards."""

import numpy as np

from repro.lint.hotpaths import hot_path


def accumulate(xs):
    total = np.zeros(len(xs), dtype=np.float64)
    return total + np.asarray(xs).astype(np.float64)


@hot_path
def hot_sum(out, vals):
    tmp = np.empty(len(vals))  # bare constructor defaults to fp64
    out += vals * 0.5  # Python float literal promotes
    np.add(tmp, out, out)

"""Fixture: every suppression still silences a live finding."""

import numpy as np


def legacy_draw(n):
    return np.random.rand(n)  # lint: rng-legacy -- comparison shim

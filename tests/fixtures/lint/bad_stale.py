"""Fixture: a suppression that outlived the code it excused."""

import numpy as np


def mean(xs):
    return float(np.mean(xs))  # lint: rng-legacy -- the draw was removed

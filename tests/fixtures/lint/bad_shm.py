"""Fixture: creates a SharedMemory segment, never releases it."""

from multiprocessing import shared_memory

import numpy as np


def alloc_block(nbytes):
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return np.ndarray((nbytes,), dtype=np.uint8, buffer=shm.buf)

"""Fixture: worker threads mutating shared state with no declared discipline."""

import threading

totals = {}


def run(n):
    results = []

    def work(tid):
        global totals
        totals[tid] = tid  # undeclared shared write
        results.append(tid)  # undeclared mutating call

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results

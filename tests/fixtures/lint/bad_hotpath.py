"""Fixture: a hot function that allocates every call — reprolint must flag it."""

import numpy as np

from repro.lint.hotpaths import hot_path


@hot_path(index_params=("rows",))
def wave_update(p, q, rows, vals):
    pu = p[rows]  # fancy-index gather copies
    err = vals.astype(np.float32) - np.einsum("ij,ij->i", pu, pu)
    buf = np.zeros(len(rows), dtype=np.float32)
    buf += err
    return buf

"""Fixture: SharedMemory create/attach with the full release protocol."""

from multiprocessing import shared_memory


def alloc_block(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)


def attach_block(name):
    return shared_memory.SharedMemory(name=name)


def release(shm, owner):
    shm.close()
    if owner:
        shm.unlink()

"""Fixture: an allocation-free hot function in the PR-3 style — lints clean."""

import numpy as np

from repro.lint.hotpaths import hot_path


@hot_path(index_params=("rows", "cols"))
def wave_update(p, q, rows, cols, vals, scratch):
    p.take(rows, 0, scratch.pu)
    q.take(cols, 0, scratch.qv)
    np.einsum("ij,ij->i", scratch.pu, scratch.qv, out=scratch.err)
    np.subtract(vals, scratch.err, scratch.err)
    p[rows] = scratch.pu  # in-place scatter store stays legal
    return scratch.err

"""Fixture: explicit seeded Generator machinery — lints clean."""

import numpy as np


def sample(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(n)

"""Tests for repro.core.kernels — the heart of the reproduction.

The critical invariants:
* the wave kernel on one sample is bit-identical to the serial reference;
* conflict-free waves commute with serial execution;
* duplicate rows/columns in a wave exhibit last-writer-wins (Hogwild);
* fp16 storage works with fp32 compute.
"""

import warnings

import numpy as np
import pytest

from repro.core.kernels import (
    conflict_free_segments,
    sgd_serial_update,
    sgd_wave_update,
    single_update,
    wave_gradients,
)
from repro.core.model import FactorModel


def _model(m=20, n=15, k=8, seed=0, half=False):
    return FactorModel.initialize(m, n, k, seed=seed, half_precision=half)


class TestSingleUpdate:
    def test_matches_algorithm1_by_hand(self):
        p = np.array([[1.0, 0.0]], dtype=np.float32)
        q = np.array([[0.5, 0.5]], dtype=np.float32)
        lr, lam, r = 0.1, 0.01, 2.0
        err = single_update(p, q, 0, 0, r, lr, lam)
        # error = 2.0 - 0.5 = 1.5
        assert err == pytest.approx(1.5)
        # p <- p + lr*(err*q - lam*p)
        assert p[0, 0] == pytest.approx(1.0 + 0.1 * (1.5 * 0.5 - 0.01 * 1.0))
        assert p[0, 1] == pytest.approx(0.0 + 0.1 * (1.5 * 0.5 - 0.01 * 0.0))
        # q <- q + lr*(err*p_OLD - lam*q): gradient uses the pre-update p
        assert q[0, 0] == pytest.approx(0.5 + 0.1 * (1.5 * 1.0 - 0.01 * 0.5))
        assert q[0, 1] == pytest.approx(0.5 + 0.1 * (1.5 * 0.0 - 0.01 * 0.5))

    def test_reduces_sample_error(self, rng):
        m = _model()
        u, v, r = 3, 4, 1.7
        before = abs(r - float(m.p[u] @ m.q[v]))
        for _ in range(30):
            single_update(m.p, m.q, u, v, r, 0.1, 0.0)
        after = abs(r - float(m.p[u] @ m.q[v]))
        assert after < before * 0.1

    def test_asymmetric_regularization(self):
        m = _model()
        p0, q0 = m.p.copy(), m.q.copy()
        single_update(m.p, m.q, 0, 0, 0.0, 0.1, lam_p=0.5, lam_q=0.0)
        # with r=0 and a fresh model error is small; lam shrinks p but the
        # lam_q=0 side is shrunk only via the error term
        assert np.linalg.norm(m.p[0]) < np.linalg.norm(p0[0])


class TestWaveSerialEquivalence:
    def test_wave_of_one_matches_single(self, rng):
        m1, m2 = _model(seed=3), _model(seed=3)
        u, v, r = 5, 7, 0.9
        single_update(m1.p, m1.q, u, v, r, 0.05, 0.02)
        sgd_wave_update(
            m2.p, m2.q, np.array([u]), np.array([v]),
            np.array([r], dtype=np.float32), 0.05, 0.02,
        )
        assert np.array_equal(m1.p, m2.p)
        assert np.array_equal(m1.q, m2.q)

    def test_conflict_free_wave_commutes_with_serial(self, rng):
        m1, m2 = _model(seed=4), _model(seed=4)
        rows = np.array([0, 1, 2, 3], dtype=np.int32)
        cols = np.array([4, 5, 6, 7], dtype=np.int32)
        vals = rng.normal(size=4).astype(np.float32)
        sgd_wave_update(m1.p, m1.q, rows, cols, vals, 0.05, 0.02)
        for u, v, r in zip(rows, cols, vals):
            single_update(m2.p, m2.q, int(u), int(v), float(r), 0.05, 0.02)
        np.testing.assert_allclose(m1.p, m2.p, rtol=1e-6)
        np.testing.assert_allclose(m1.q, m2.q, rtol=1e-6)

    def test_serial_update_equals_sample_loop(self, rng):
        m1, m2 = _model(seed=5), _model(seed=5)
        rows = rng.integers(0, 20, size=60).astype(np.int32)
        cols = rng.integers(0, 15, size=60).astype(np.int32)
        vals = rng.normal(size=60).astype(np.float32)
        sgd_serial_update(m1.p, m1.q, rows, cols, vals, 0.05, 0.02, max_wave=8)
        for u, v, r in zip(rows, cols, vals):
            single_update(m2.p, m2.q, int(u), int(v), float(r), 0.05, 0.02)
        np.testing.assert_allclose(m1.p, m2.p, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(m1.q, m2.q, rtol=1e-5, atol=1e-6)


class TestRaceSemantics:
    def test_duplicate_row_last_writer_wins(self):
        """Two updates to the same p row in one wave: one is lost."""
        m = _model(seed=6)
        u = 2
        rows = np.array([u, u], dtype=np.int32)
        cols = np.array([3, 9], dtype=np.int32)
        vals = np.array([1.0, -1.0], dtype=np.float32)
        snapshot_p = m.p[u].copy()
        q3, q9 = m.q[3].copy(), m.q[9].copy()
        sgd_wave_update(m.p, m.q, rows, cols, vals, 0.1, 0.0)
        # the surviving p[u] is the one computed from sample 2 (last writer),
        # using the PRE-wave snapshot of p[u] (stale read)
        err = -1.0 - float(snapshot_p @ q9)
        expected = snapshot_p + np.float32(0.1) * (np.float32(err) * q9)
        np.testing.assert_allclose(m.p[u], expected, rtol=1e-5)

    def test_wave_reads_are_stale(self):
        """All samples see the pre-wave model even when earlier samples in
        the wave updated the same column."""
        m = _model(seed=7)
        v = 4
        rows = np.array([0, 1], dtype=np.int32)
        cols = np.array([v, v], dtype=np.int32)
        vals = np.array([0.5, 0.5], dtype=np.float32)
        q_snapshot = m.q[v].copy()
        p1_snapshot = m.p[1].copy()
        sgd_wave_update(m.p, m.q, rows, cols, vals, 0.1, 0.0)
        err1 = 0.5 - float(p1_snapshot @ q_snapshot)  # stale q read
        expected_p1 = p1_snapshot + np.float32(0.1) * np.float32(err1) * q_snapshot
        np.testing.assert_allclose(m.p[1], expected_p1, rtol=1e-5)

    def test_error_return_uses_snapshot(self, rng):
        m = _model(seed=8)
        rows = np.array([0], dtype=np.int32)
        cols = np.array([0], dtype=np.int32)
        expected = 1.0 - float(m.p[0] @ m.q[0])
        err = sgd_wave_update(
            m.p, m.q, rows, cols, np.array([1.0], dtype=np.float32), 0.1, 0.0
        )
        assert err[0] == pytest.approx(expected, rel=1e-5)


class TestHalfPrecision:
    def test_fp16_storage_fp32_compute(self, rng):
        m = _model(half=True)
        assert m.p.dtype == np.float16
        rows = rng.integers(0, 20, size=10).astype(np.int32)
        cols = rng.integers(0, 15, size=10).astype(np.int32)
        vals = rng.normal(size=10).astype(np.float32)
        sgd_wave_update(m.p, m.q, rows, cols, vals, 0.1, 0.01)
        assert m.p.dtype == np.float16  # storage unchanged
        assert np.isfinite(m.p.astype(np.float32)).all()

    def test_fp16_tracks_fp32_closely(self, rng):
        m16 = _model(seed=9, half=True)
        m32 = FactorModel(
            m16.p.astype(np.float32).copy(), m16.q.astype(np.float32).copy()
        )
        rows = rng.integers(0, 20, size=200).astype(np.int32)
        cols = rng.integers(0, 15, size=200).astype(np.int32)
        vals = rng.normal(size=200).astype(np.float32)
        for lo in range(0, 200, 20):
            sl = slice(lo, lo + 20)
            sgd_wave_update(m16.p, m16.q, rows[sl], cols[sl], vals[sl], 0.05, 0.01)
            sgd_wave_update(m32.p, m32.q, rows[sl], cols[sl], vals[sl], 0.05, 0.01)
        # fp16 storage quantizes each write; drift stays small over 10 waves
        np.testing.assert_allclose(
            m16.p.astype(np.float32), m32.p, atol=0.02, rtol=0.05
        )

    def test_single_update_on_fp16(self):
        m = _model(half=True)
        err = single_update(m.p, m.q, 0, 0, 1.0, 0.1, 0.01)
        assert np.isfinite(err)
        assert m.p.dtype == np.float16


class TestConflictFreeSegments:
    def test_no_conflicts_single_segment(self):
        segs = conflict_free_segments(np.arange(10), np.arange(10) + 20, max_wave=64)
        assert segs == [(0, 10)]

    def test_max_wave_respected(self):
        segs = conflict_free_segments(np.arange(10), np.arange(10), max_wave=4)
        assert segs == [(0, 4), (4, 8), (8, 10)]

    def test_cut_at_repeated_row(self):
        rows = np.array([0, 1, 0, 2])
        cols = np.array([0, 1, 2, 3])
        segs = conflict_free_segments(rows, cols)
        assert segs[0] == (0, 2)

    def test_cut_at_repeated_col(self):
        rows = np.array([0, 1, 2, 3])
        cols = np.array([5, 6, 5, 7])
        segs = conflict_free_segments(rows, cols)
        assert segs[0] == (0, 2)

    def test_all_same_gives_unit_segments(self):
        segs = conflict_free_segments(np.zeros(4, int), np.zeros(4, int))
        assert segs == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_segments_partition_sequence(self, rng):
        rows = rng.integers(0, 6, size=100)
        cols = rng.integers(0, 6, size=100)
        segs = conflict_free_segments(rows, cols, max_wave=16)
        assert segs[0][0] == 0 and segs[-1][1] == 100
        for (a1, b1), (a2, _) in zip(segs, segs[1:]):
            assert b1 == a2
        for a, b in segs:
            assert len(np.unique(rows[a:b])) == b - a
            assert len(np.unique(cols[a:b])) == b - a

    def test_empty(self):
        assert conflict_free_segments(np.array([]), np.array([])) == []


class TestWaveGradients:
    def test_gradients_match_update_direction(self, rng):
        m = _model(seed=10)
        rows = np.array([1, 2], dtype=np.int32)
        cols = np.array([3, 4], dtype=np.int32)
        vals = rng.normal(size=2).astype(np.float32)
        err, gp, gq = wave_gradients(m.p, m.q, rows, cols, vals, 0.02, 0.02)
        m2 = FactorModel(m.p.copy(), m.q.copy())
        sgd_wave_update(m2.p, m2.q, rows, cols, vals, 0.1, 0.02)
        np.testing.assert_allclose(m2.p[rows], m.p[rows] + 0.1 * gp, rtol=1e-5)
        np.testing.assert_allclose(m2.q[cols], m.q[cols] + 0.1 * gq, rtol=1e-5)

    def test_no_mutation(self, rng):
        m = _model(seed=11)
        p0, q0 = m.p.copy(), m.q.copy()
        wave_gradients(
            m.p, m.q, np.array([0]), np.array([0]),
            np.array([1.0], dtype=np.float32), 0.1, 0.1,
        )
        assert np.array_equal(m.p, p0)
        assert np.array_equal(m.q, q0)


class TestDivergenceSemantics:
    """Diverging arithmetic must stay silent (documented NaN propagation).

    An absurd learning rate blows the factors up to inf and then NaN within
    a few waves; the kernel must not spray RuntimeWarnings (overflow /
    invalid value) on every launch — divergence is detected downstream via
    ``TrainHistory.diverged``, not stderr noise.
    """

    def _diverge(self, fn, *extra, **kw):
        m = _model(m=30, n=25, k=8, seed=2)
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 30, size=64).astype(np.int32)
        cols = rng.integers(0, 25, size=64).astype(np.int32)
        vals = rng.normal(size=64).astype(np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for _ in range(60):
                fn(m.p, m.q, rows, cols, vals, 1e20, 0.05, 0.05,
                   *extra, **kw)
        return m

    def test_wave_update_warning_free(self):
        m = self._diverge(sgd_wave_update)
        assert np.isnan(m.p).any()  # NaN propagated, not raised

    def test_wave_update_workspace_warning_free(self):
        from repro.core.kernels import WaveWorkspace

        m = self._diverge(sgd_wave_update, workspace=WaveWorkspace())
        assert np.isnan(m.p).any()

    def test_serial_update_warning_free(self):
        m = self._diverge(sgd_serial_update)
        assert np.isnan(m.p).any()

    def test_single_update_warning_free(self):
        m = _model(m=5, n=5, k=4, seed=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for _ in range(80):
                single_update(m.p, m.q, 1, 2, 3.0, 1e20, 0.05)
        assert not np.isfinite(m.p[1]).all()

    def test_hogwild_epoch_warning_free(self, tiny_problem):
        from repro.core.hogwild import BatchHogwild

        spec = tiny_problem.spec
        m = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
        sched = BatchHogwild(workers=16, f=8, seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for _ in range(2):
                sched.run_epoch(m, tiny_problem.train, 1e20, 0.05)
        assert np.isnan(m.p).any()

"""Tests for repro.core.incremental — the paper's incremental-training
future work."""

import numpy as np
import pytest

from repro.core.incremental import (
    expand_model,
    fold_in_items,
    fold_in_users,
    incremental_fit,
)
from repro.core.model import FactorModel
from repro.core.trainer import CuMFSGD
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse


@pytest.fixture(scope="module")
def trained(small_problem):
    est = CuMFSGD(k=16, workers=32, lam=0.05, seed=0)
    est.fit(small_problem.train, epochs=8, test=small_problem.test)
    return est.model, small_problem


class TestExpandModel:
    def test_preserves_existing_factors(self, trained):
        model, _ = trained
        grown = expand_model(model, model.m + 10, model.n + 5, seed=1)
        assert grown.m == model.m + 10 and grown.n == model.n + 5
        assert np.array_equal(grown.p[: model.m], model.p)
        assert np.array_equal(grown.q[: model.n], model.q)

    def test_new_rows_in_init_range(self, trained):
        model, _ = trained
        grown = expand_model(model, model.m + 50, model.n, seed=1)
        new = grown.p[model.m :]
        hi = np.sqrt(1.0 / model.k)
        assert float(new.min()) >= 0.0 and float(new.max()) < hi

    def test_shrink_rejected(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="grow"):
            expand_model(model, model.m - 1, model.n)

    def test_noop_growth(self, trained):
        model, _ = trained
        same = expand_model(model, model.m, model.n)
        assert np.array_equal(same.p, model.p)


class TestFoldIn:
    def _new_user_ratings(self, problem, model, n_new=5, per_user=30, seed=3):
        """Synth ratings for brand-new users drawn from the true factors."""
        rng = np.random.default_rng(seed)
        spec = problem.spec
        k_true = problem.p_true.shape[1]
        new_p = rng.normal(0, 1 / np.sqrt(k_true), (n_new, k_true)).astype(np.float32)
        rows, cols, vals = [], [], []
        for i in range(n_new):
            items = rng.choice(spec.n, size=per_user, replace=False)
            r = problem.q_true[items] @ new_p[i] + rng.normal(0, 0.2, per_user)
            rows.extend([model.m + i] * per_user)
            cols.extend(items.tolist())
            vals.extend(r.tolist())
        return RatingMatrix(
            np.array(rows, np.int32), np.array(cols, np.int32),
            np.array(vals, np.float32), model.m + n_new, spec.n,
        ), n_new

    def test_fold_in_users_predicts_new_users(self, trained):
        model, problem = trained
        new_ratings, n_new = self._new_user_ratings(problem, model)
        grown = expand_model(model, model.m + n_new, model.n, seed=1)
        folded = fold_in_users(grown, new_ratings, np.arange(model.m, model.m + n_new))
        p, q = folded.as_float32()
        err = rmse(p, q, new_ratings)
        # the random-initialized rows would predict near zero -> large error
        p0, q0 = grown.as_float32()
        assert err < 0.6 * rmse(p0, q0, new_ratings)

    def test_fold_in_leaves_q_untouched(self, trained):
        model, problem = trained
        new_ratings, n_new = self._new_user_ratings(problem, model)
        grown = expand_model(model, model.m + n_new, model.n, seed=1)
        folded = fold_in_users(grown, new_ratings, np.arange(model.m, model.m + n_new))
        assert np.array_equal(folded.q, grown.q)

    def test_fold_in_items_symmetric(self, trained):
        model, problem = trained
        # reuse: treat columns as the new side by transposing coordinates
        rng = np.random.default_rng(5)
        n_new = 4
        grown = expand_model(model, model.m, model.n + n_new, seed=1)
        rows = rng.choice(model.m, 80).astype(np.int32)
        cols = (model.n + rng.integers(0, n_new, 80)).astype(np.int32)
        p32 = grown.p.astype(np.float32)
        target_q = rng.normal(0, 0.3, (n_new, model.k)).astype(np.float32)
        vals = np.einsum("ij,ij->i", p32[rows], target_q[cols - model.n])
        ratings = RatingMatrix(rows, cols, vals.astype(np.float32),
                               model.m, model.n + n_new)
        folded = fold_in_items(grown, ratings, np.arange(model.n, model.n + n_new),
                               lam=1e-4)
        p, q = folded.as_float32()
        assert rmse(p, q, ratings) < 0.1

    def test_validation(self, trained):
        model, problem = trained
        with pytest.raises(ValueError, match="no user ids"):
            fold_in_users(model, problem.train, np.array([]))
        with pytest.raises(ValueError, match="expand_model"):
            fold_in_users(model, problem.train, np.array([model.m + 1]))
        with pytest.raises(ValueError, match="no samples"):
            # user 0 filtered out of an empty-selection rating set
            empty_sel = problem.train.take(np.array([], dtype=np.int64))
            fold_in_users(model, empty_sel, np.array([0]))


class TestIncrementalFit:
    def test_new_samples_improve_without_forgetting(self, trained):
        model, problem = trained
        # hold out a slice of training data as the "new" stream
        rng = np.random.default_rng(7)
        sel = rng.choice(problem.test.nnz, size=2000, replace=False)
        new = problem.test.take(sel)
        work = model.copy()
        p0, q0 = work.as_float32()
        before_new = rmse(p0, q0, new)
        before_old = rmse(p0, q0, problem.train)
        incremental_fit(work, new, epochs=3, lam=0.05,
                        replay=problem.train, replay_fraction=0.5, seed=1)
        p1, q1 = work.as_float32()
        assert rmse(p1, q1, new) < before_new
        assert rmse(p1, q1, problem.train) < before_old * 1.05  # no forgetting

    def test_returns_same_object(self, trained):
        model, problem = trained
        work = model.copy()
        out = incremental_fit(work, problem.test, epochs=1, seed=0)
        assert out is work

    def test_validation(self, trained):
        model, problem = trained
        with pytest.raises(ValueError, match="epochs"):
            incremental_fit(model.copy(), problem.test, epochs=0)
        with pytest.raises(ValueError, match="replay_fraction"):
            incremental_fit(model.copy(), problem.test, replay_fraction=2.0)
        big = RatingMatrix(np.array([0]), np.array([0]),
                           np.array([1.0], np.float32),
                           model.m + 5, model.n)
        with pytest.raises(ValueError, match="expand_model"):
            incremental_fit(model.copy(), big)

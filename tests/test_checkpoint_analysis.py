"""Tests for repro.core.checkpoint and repro.analysis."""

import numpy as np
import pytest

from repro.analysis.diagnostics import (
    compare_histories,
    detect_divergence,
    profile_collisions,
)
from repro.core.checkpoint import load_model, save_model
from repro.core.model import FactorModel
from repro.core.trainer import CuMFSGD, TrainHistory


class TestCheckpoint:
    def test_round_trip_fp32(self, tmp_path, fresh_model):
        path = save_model(tmp_path / "m.npz", fresh_model, epoch=7,
                          metadata={"dataset": "tiny", "lam": 0.05})
        ck = load_model(path)
        assert np.array_equal(ck.model.p, fresh_model.p)
        assert np.array_equal(ck.model.q, fresh_model.q)
        assert ck.epoch == 7
        assert ck.metadata == {"dataset": "tiny", "lam": 0.05}

    def test_round_trip_fp16_stays_half(self, tmp_path):
        model = FactorModel.initialize(10, 8, 4, half_precision=True)
        ck = load_model(save_model(tmp_path / "h", model))
        assert ck.model.half_precision
        assert np.array_equal(ck.model.p, model.p)

    def test_suffix_added(self, tmp_path, fresh_model):
        path = save_model(tmp_path / "noext", fresh_model)
        assert path.suffix == ".npz"
        assert load_model(tmp_path / "noext").epoch == 0

    def test_negative_epoch_rejected(self, tmp_path, fresh_model):
        with pytest.raises(ValueError):
            save_model(tmp_path / "x", fresh_model, epoch=-1)

    def test_resume_training(self, tmp_path, tiny_problem):
        est = CuMFSGD(k=8, workers=32, seed=1)
        h1 = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        path = save_model(tmp_path / "ck", est.model, epoch=3)
        # new estimator resumes from the checkpoint
        est2 = CuMFSGD(k=8, workers=32, seed=1)
        est2.model = load_model(path).model
        h2 = est2.fit(tiny_problem.train, epochs=2, test=tiny_problem.test,
                      warm_start=True)
        assert h2.test_rmse[-1] <= h1.test_rmse[-1] + 0.01


class TestCollisionProfile:
    def test_matches_theory_on_uniform_data(self, small_problem):
        profile = profile_collisions(small_problem.train, workers=64, waves=100)
        assert profile.matches_theory
        assert 0 <= profile.measured_mean <= profile.measured_max <= 1

    def test_more_workers_more_collisions(self, small_problem):
        p8 = profile_collisions(small_problem.train, workers=8, waves=100)
        p256 = profile_collisions(small_problem.train, workers=256, waves=100)
        assert p256.measured_mean > p8.measured_mean

    def test_validation(self, tiny_ratings):
        with pytest.raises(ValueError):
            profile_collisions(tiny_ratings, workers=0)
        with pytest.raises(ValueError, match="at least"):
            profile_collisions(tiny_ratings, workers=10_000)


def _history(curve):
    h = TrainHistory()
    for e, r in enumerate(curve, start=1):
        h.record(e, 0.1, 10, None, r)
    return h


class TestDivergenceDetection:
    def test_converging(self):
        assert detect_divergence(_history([0.9, 0.8, 0.7, 0.65, 0.6])) == "converging"

    def test_stalled(self):
        assert detect_divergence(_history([0.9, 0.7, 0.7, 0.7, 0.7])) == "stalled"

    def test_diverging_rising(self):
        assert detect_divergence(_history([0.7, 0.6, 0.65, 0.7, 0.8])) == "diverging"

    def test_diverging_nan(self):
        assert detect_divergence(_history([0.7, float("nan")])) == "diverging"

    def test_short_history_is_converging(self):
        assert detect_divergence(_history([0.9])) == "converging"

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_divergence(_history([0.5]), patience=0)
        with pytest.raises(ValueError):
            detect_divergence(_history([]))


class TestCompareHistories:
    def test_winner_reaches_target_first(self):
        fast = _history([0.8, 0.6, 0.5])
        slow = _history([0.9, 0.8, 0.6])
        cmp = compare_histories({"fast": fast, "slow": slow}, target=0.65)
        assert cmp.winner == "fast"
        assert cmp.epochs_to["fast"] == 2
        assert cmp.epochs_to["slow"] == 3
        assert "winner: fast" in cmp.to_text()

    def test_default_target_reachable_by_all(self):
        a = _history([0.8, 0.5])
        b = _history([0.9, 0.7])
        cmp = compare_histories({"a": a, "b": b})
        assert all(v is not None for v in cmp.epochs_to.values())

    def test_unreached_target_loses(self):
        good = _history([0.8, 0.4])
        bad = _history([0.9, 0.85])
        cmp = compare_histories({"good": good, "bad": bad}, target=0.5)
        assert cmp.winner == "good"
        assert cmp.epochs_to["bad"] is None

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_histories({})
        with pytest.raises(ValueError):
            compare_histories({"empty": TrainHistory()})

"""Tests for repro.core.trainer.CuMFSGD and TrainHistory."""

import numpy as np
import pytest

from repro.core.convergence import ParallelismCheck
from repro.core.lr_schedule import ConstantSchedule, NomadSchedule
from repro.core.trainer import CuMFSGD, TrainHistory


class TestTrainHistory:
    def test_record_and_accessors(self):
        h = TrainHistory()
        h.record(1, 0.1, 100, 0.9, 0.8)
        h.record(2, 0.05, 100, 0.7, 0.6)
        assert h.final_test_rmse == 0.6
        assert h.best_test_rmse == 0.6
        assert h.total_updates == 200
        assert h.learning_rates == [0.1, 0.05]

    def test_epochs_to_target(self):
        h = TrainHistory()
        for e, r in enumerate([0.9, 0.7, 0.5], start=1):
            h.record(e, 0.1, 10, None, r)
        assert h.epochs_to_target(0.7) == 2
        assert h.epochs_to_target(0.95) == 1
        assert h.epochs_to_target(0.1) is None

    def test_epochs_to_target_intermittent_eval(self):
        """Regression: with eval_every > 1 the test RMSE list is shorter
        than the epoch list; zipping them positionally reported the wrong
        (too early) epoch. Epoch numbers must come from the epochs the
        evaluations actually happened in."""
        h = TrainHistory()
        rmse_by_epoch = {3: 0.9, 6: 0.65, 9: 0.5}
        for e in range(1, 10):
            h.record(e, 0.1, 10, None, rmse_by_epoch.get(e))
        assert h.test_rmse == [0.9, 0.65, 0.5]
        assert h.test_epochs == [3, 6, 9]
        assert h.epochs_to_target(0.7) == 6  # positional zip said epoch 2
        assert h.epochs_to_target(0.9) == 3
        assert h.epochs_to_target(0.4) is None

    def test_epochs_to_target_hand_built_history(self):
        """Histories with lists assigned directly (no record calls) keep
        the legacy positional pairing."""
        h = TrainHistory()
        h.epochs = [1, 2, 3]
        h.test_rmse = [0.9, 0.7, 0.5]
        assert h.epochs_to_target(0.7) == 2

    def test_empty_history_errors(self):
        h = TrainHistory()
        with pytest.raises(ValueError):
            _ = h.final_test_rmse
        with pytest.raises(ValueError):
            _ = h.best_test_rmse

    def test_diverged(self):
        h = TrainHistory()
        h.record(1, 0.1, 10, None, 1.0)
        h.record(2, 0.1, 10, None, 10.0)
        assert h.diverged
        h2 = TrainHistory()
        h2.record(1, 0.1, 10, None, 1.0)
        h2.record(2, 0.1, 10, None, float("nan"))
        assert h2.diverged
        h3 = TrainHistory()
        h3.record(1, 0.1, 10, None, 1.0)
        assert not h3.diverged


class TestCuMFSGDValidation:
    def test_bad_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            CuMFSGD(scheme="magic")

    def test_bad_k(self):
        with pytest.raises(ValueError, match="k must be positive"):
            CuMFSGD(k=0)

    def test_bad_epochs(self, tiny_problem):
        with pytest.raises(ValueError, match="epochs"):
            CuMFSGD(k=4).fit(tiny_problem.train, epochs=0)

    def test_target_requires_test(self, tiny_problem):
        with pytest.raises(ValueError, match="test set"):
            CuMFSGD(k=4).fit(tiny_problem.train, epochs=1, target_rmse=0.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            CuMFSGD(k=4).predict(np.array([0]), np.array([0]))
        with pytest.raises(RuntimeError, match="fit"):
            CuMFSGD(k=4).score(None)

    def test_strict_safety_raises(self, tiny_problem):
        est = CuMFSGD(k=4, workers=10_000, strict_safety=True)
        with pytest.raises(ValueError, match="unsafe parallelism"):
            est.fit(tiny_problem.train, epochs=1)

    def test_safety_recorded_without_strict(self, tiny_problem):
        est = CuMFSGD(k=4, workers=10_000, strict_safety=False)
        est.fit(tiny_problem.train, epochs=1)
        assert isinstance(est.safety, ParallelismCheck)
        assert not est.safety.safe


class TestFit:
    def test_default_schedule_is_eq9(self):
        assert isinstance(CuMFSGD().schedule, NomadSchedule)

    @pytest.mark.parametrize("scheme,kw", [
        ("batch_hogwild", {}),
        ("wavefront", {"workers": 4}),
        ("multi_device", {"n_devices": 2, "grid": (4, 4)}),
    ])
    def test_all_schemes_converge(self, tiny_problem, scheme, kw):
        est = CuMFSGD(k=8, scheme=scheme, workers=kw.pop("workers", 32),
                      lam=0.05, seed=1, **kw)
        hist = est.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]
        assert hist.total_updates == 5 * tiny_problem.train.nnz

    def test_early_stop_on_target(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, seed=1)
        hist = est.fit(
            tiny_problem.train, epochs=50, test=tiny_problem.test, target_rmse=0.75
        )
        assert len(hist.epochs) < 50
        assert hist.final_test_rmse <= 0.75

    def test_learning_rates_follow_schedule(self, tiny_problem):
        sched = NomadSchedule(alpha=0.08, beta=0.3)
        est = CuMFSGD(k=4, workers=16, schedule=sched, seed=1)
        hist = est.fit(tiny_problem.train, epochs=3)
        assert hist.learning_rates == [sched(0), sched(1), sched(2)]

    def test_warm_start_continues(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, seed=1, schedule=ConstantSchedule(0.05))
        h1 = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        h2 = est.fit(tiny_problem.train, epochs=2, test=tiny_problem.test, warm_start=True)
        assert h2.test_rmse[-1] <= h1.test_rmse[-1] + 0.01

    def test_cold_start_resets(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, seed=1)
        est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        h2 = est.fit(tiny_problem.train, epochs=1, test=tiny_problem.test)
        # first epoch from scratch is worse than 3 epochs in
        assert h2.test_rmse[0] > 0.5

    def test_eval_train_records_train_rmse(self, tiny_problem):
        est = CuMFSGD(k=4, workers=16, seed=1)
        hist = est.fit(tiny_problem.train, epochs=2, eval_train=True)
        assert len(hist.train_rmse) == 2
        assert not hist.test_rmse

    def test_predict_and_score(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, seed=1)
        est.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        preds = est.predict(tiny_problem.test.rows[:10], tiny_problem.test.cols[:10])
        assert preds.shape == (10,)
        assert np.isfinite(preds).all()
        score = est.score(tiny_problem.test)
        assert score == pytest.approx(est.history.final_test_rmse, rel=1e-5)

    def test_half_precision_fit(self, tiny_problem):
        est = CuMFSGD(k=8, workers=32, seed=1, half_precision=True)
        hist = est.fit(tiny_problem.train, epochs=4, test=tiny_problem.test)
        assert est.model.half_precision
        assert hist.test_rmse[-1] < hist.test_rmse[0]

    def test_half_precision_no_accuracy_loss(self, tiny_problem):
        """§4's claim: fp16 feature storage does not hurt RMSE."""
        finals = {}
        for half in (False, True):
            est = CuMFSGD(k=8, workers=32, seed=1, half_precision=half)
            hist = est.fit(tiny_problem.train, epochs=6, test=tiny_problem.test)
            finals[half] = hist.final_test_rmse
        assert finals[True] == pytest.approx(finals[False], rel=0.02)

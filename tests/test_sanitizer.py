"""Adversarial suite for reprosan (``repro.san``).

The sanitizer's acceptance bar has two sides, and both are tested here:

* **clean runs never report** — serial, threaded and process executors
  under ``--sanitize all`` produce zero findings, full coverage
  accounting (``samples == epochs * nnz``), and a paired shm lifecycle
  ledger; a hypothesis sweep randomizes the schedule geometry;
* **seeded faults are always caught** — a tampered
  :class:`~repro.sched.plan.EpochPlan` (a lane duplicated within a wave,
  overlapping process shards), a NaN injected into Q, an fp64 model, and
  a leaked shared-memory segment each surface as the documented typed
  finding or :class:`~repro.san.errors.SanitizerError`, deterministically.

Also covers the crash-surfacing contract of the process pool (a worker
killed mid-epoch raises promptly instead of hanging the barrier) and the
narrowed resource-tracker shim it relies on.
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hogwild import BatchHogwild
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.parallel import ProcessHogwild, ThreadedHogwild
from repro.parallel.procs import _register_skipping_shm, _SharedCluster
from repro.san import (
    SanitizerError,
    SanReport,
    activate_sanitizer,
    sanitizer_from_mode,
)
from repro.san.core import Sanitizer
from repro.san.lifecycle import track_shm
from repro.sched.plan import EpochPlan, PlanShard


def _serial_epochs(train, san, epochs=2, seed=3, workers=8, f=8,
                   model=None, shuffle=True):
    """Run serial batch-Hogwild epochs under ``san``; returns the model."""
    if model is None:
        model = FactorModel.initialize(train.n_rows, train.n_cols, 8,
                                       seed=seed)
    sched = BatchHogwild(workers=workers, f=f, seed=seed,
                         shuffle_each_epoch=shuffle)
    with activate_sanitizer(san):
        for _ in range(epochs):
            sched.run_epoch(model, train, 0.008, 0.05)
    return model


# ---------------------------------------------------------------------------
# clean runs never report
# ---------------------------------------------------------------------------
class TestCleanRuns:
    def test_serial_all_modes_clean(self, tiny_problem):
        train = tiny_problem.train
        san = Sanitizer("all")
        _serial_epochs(train, san, epochs=2)
        report = san.finalize(publish=False)
        assert report.clean, "\n".join(f.format() for f in report.findings)
        # coverage accounting: every sample of every epoch was logged
        assert report.race_stats.samples == 2 * train.nnz
        assert report.race_stats.epochs == 2
        # one serial worker cannot race with itself
        assert report.race_stats.race_rate == 0.0
        assert report.numeric["wave_checks"] > 0
        assert report.numeric["model_checks"] == 2

    def test_threads_clean(self, tiny_problem):
        train = tiny_problem.train
        san = Sanitizer("all")
        est = ThreadedHogwild(k=8, n_threads=4, lam=0.05, seed=0)
        with activate_sanitizer(san):
            est.fit(train, epochs=2)
        report = san.finalize(publish=False)
        assert report.clean, "\n".join(f.format() for f in report.findings)

    def test_procs_clean_with_full_accounting(self, tiny_problem):
        train = tiny_problem.train
        san = Sanitizer("all")
        est = ProcessHogwild(
            k=8, n_procs=2, lam=0.05, seed=0, workers=32, f=16
        )
        with activate_sanitizer(san):
            est.fit(train, epochs=2)
        report = san.finalize(publish=False)
        assert report.clean, "\n".join(f.format() for f in report.findings)
        # both workers spooled their shadow logs; nothing was lost
        assert report.race_stats.samples == 2 * train.nnz
        assert len(report.race_stats.workers) == 2
        assert 0.0 <= report.race_stats.race_rate <= 1.0
        # the shm ledger is fully paired once fit tears the cluster down
        lc = report.lifecycle
        assert lc["segments_created"] > 0
        assert lc["segments_created"] == lc["segments_unlinked"]
        assert lc["segment_opens"] == lc["segment_closes"]

    def test_report_round_trips_and_validates(self, tiny_problem):
        san = Sanitizer("all")
        _serial_epochs(tiny_problem.train, san, epochs=1)
        report = san.finalize(publish=False)
        state = report.as_dict()
        SanReport.validate_dict(state)  # benchmark embedding contract
        back = SanReport.from_dict(state)
        assert back.clean is report.clean
        assert back.race_stats.samples == report.race_stats.samples

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        workers=st.integers(2, 12),
        f=st.integers(1, 9),
        nnz=st.integers(20, 70),
    )
    def test_clean_runs_never_report(self, seed, workers, f, nnz):
        """No schedule geometry makes a healthy serial run dirty."""
        rng = np.random.default_rng(seed)
        m, n = 12, 10
        keys = rng.choice(m * n, size=nnz, replace=False)
        train = RatingMatrix(
            rows=(keys // n).astype(np.int32),
            cols=(keys % n).astype(np.int32),
            vals=rng.normal(size=nnz).astype(np.float32),
            n_rows=m, n_cols=n, name="hyp",
        )
        model = FactorModel.initialize(m, n, 4, seed=seed)
        san = Sanitizer("all")
        _serial_epochs(train, san, epochs=1, seed=seed, workers=workers,
                       f=f, model=model)
        report = san.finalize(publish=False)
        assert report.clean, "\n".join(f.format() for f in report.findings)
        assert report.race_stats.samples == nnz


# ---------------------------------------------------------------------------
# seeded faults are always caught
# ---------------------------------------------------------------------------
class TestSeededFaults:
    def test_tampered_plan_duplicate_lane_is_caught(self, tiny_problem):
        """Duplicating one lane of a compiled plan = the same sample
        executed twice in one epoch; the checker must see it."""
        train = tiny_problem.train
        model = FactorModel.initialize(train.n_rows, train.n_cols, 8, seed=3)
        sched = BatchHogwild(workers=8, f=8, seed=3,
                             shuffle_each_epoch=False)
        plan = sched.compiled_plan(train.nnz)
        plan.matrix[0, 1] = plan.matrix[0, 0]  # duplicate a wave lane
        san = Sanitizer("races")
        with activate_sanitizer(san):
            sched.run_epoch(model, train, 0.008, 0.05)
        report = san.finalize(publish=False)
        kinds = {f.kind for f in report.findings}
        assert "race-double-execution" in kinds, kinds

    def test_overlapping_proc_shards_are_caught(self, tiny_problem,
                                                monkeypatch):
        """Shard tampering: widen worker 1's column shard to also cover
        worker 0's lanes. Both processes then execute the same samples —
        a cross-shard ownership violation and a within-wave overlap."""
        train = tiny_problem.train
        original = EpochPlan.shard

        def overlapping(self, n_shards):
            shards = original(self, n_shards)
            last = shards[-1]
            shards[-1] = PlanShard(index=last.index, col_lo=0,
                                   col_hi=last.col_hi)
            return shards

        monkeypatch.setattr(EpochPlan, "shard", overlapping)
        san = Sanitizer("races")
        est = ProcessHogwild(
            k=8, n_procs=2, lam=0.05, seed=0, workers=32, f=16
        )
        with activate_sanitizer(san):
            est.fit(train, epochs=1)
        report = san.finalize(publish=False)
        kinds = {f.kind for f in report.findings}
        assert "race-ownership" in kinds, kinds
        assert "race-overlap" in kinds, kinds

    def test_nan_injected_into_q_raises_typed_error(self, tiny_problem):
        train = tiny_problem.train
        model = FactorModel.initialize(train.n_rows, train.n_cols, 8, seed=3)
        model.q[5, :] = np.nan
        san = Sanitizer("numeric")
        with pytest.raises(SanitizerError) as excinfo:
            _serial_epochs(train, san, epochs=1, model=model)
        assert excinfo.value.kind == "numeric-nonfinite"
        # the error pins the offending execution point
        assert excinfo.value.epoch is not None

    def test_fp64_model_raises_leak_error(self, tiny_problem):
        train = tiny_problem.train
        base = FactorModel.initialize(train.n_rows, train.n_cols, 8, seed=3)
        model = FactorModel(
            p=base.p.astype(np.float64), q=base.q.astype(np.float64)
        )
        san = Sanitizer("numeric")
        with pytest.raises(SanitizerError) as excinfo:
            _serial_epochs(train, san, epochs=1, model=model)
        assert excinfo.value.kind == "numeric-fp64-leak"

    def test_leaked_shm_segment_is_reported(self):
        san = Sanitizer("races")  # lifecycle rides with race checking
        with activate_sanitizer(san):
            shm = track_shm(shared_memory.SharedMemory(create=True, size=64))
            shm.close()  # mapping released — but the name never unlinked
        report = san.finalize(publish=False)
        try:
            leaks = [f for f in report.findings
                     if f.kind == "lifecycle-shm-leak"]
            assert leaks, [f.format() for f in report.findings]
            assert any("never unlinked" in f.message for f in leaks)
        finally:
            shm.unlink()


# ---------------------------------------------------------------------------
# process-pool failure modes
# ---------------------------------------------------------------------------
class TestProcessPoolFailureModes:
    def test_worker_death_surfaces_promptly_not_a_hang(self, tiny_ratings):
        """SIGKILLing a worker mid-epoch must raise a diagnostic naming
        the worker within seconds — not stall until the 600 s barrier
        timeout."""
        init = FactorModel.initialize(10, 8, 4, seed=0)
        order = np.random.default_rng(0).permutation(
            tiny_ratings.nnz
        ).astype(np.int64)
        plan = EpochPlan(order, workers=4, f=4)
        cluster = _SharedCluster(2, None)
        try:
            cluster.start(init, plan, tiny_ratings, None, 2, 4, False, 0)
            os.kill(cluster._procs[0].pid, signal.SIGKILL)
            t0 = time.perf_counter()
            with pytest.raises(RuntimeError, match="worker 0 .*died"):
                cluster.run_epoch(plan, 0.01, 0.05, 0.05, epoch=1)
            assert time.perf_counter() - t0 < 30.0
        finally:
            cluster.close()

    def test_register_shim_drops_only_shm_rtype(self):
        calls = []
        register = _register_skipping_shm(
            lambda name, rtype: calls.append((name, rtype))
        )
        register("/psm_deadbeef", "shared_memory")
        register("/mp-sem", "semaphore")
        assert calls == [("/mp-sem", "semaphore")]

    def test_worker_sanitizer_error_reraised_in_parent(self, tiny_problem,
                                                       monkeypatch):
        """A numeric failure inside a worker process travels back to the
        parent as the same typed SanitizerError, not a bare RuntimeError."""
        train = tiny_problem.train
        bad = RatingMatrix(
            rows=train.rows, cols=train.cols,
            vals=train.vals.copy(), n_rows=train.n_rows,
            n_cols=train.n_cols, name="poisoned",
        )
        bad.vals[0] = np.float32("inf")  # poisons residuals immediately
        san = sanitizer_from_mode("numeric")
        est = ProcessHogwild(
            k=8, n_procs=2, lam=0.05, seed=0, workers=32, f=16
        )
        with activate_sanitizer(san):
            with pytest.raises(SanitizerError) as excinfo:
                est.fit(bad, epochs=1)
        assert excinfo.value.kind.startswith("numeric-")
        assert excinfo.value.worker is not None

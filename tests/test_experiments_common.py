"""Tests for repro.experiments.common and CLI failure paths."""

import pytest

from repro.experiments.base import REGISTRY, ExperimentResult, register
from repro.experiments.cli import main
from repro.experiments.common import (
    NUMERIC_SOLVERS,
    PLATFORM_SOLVERS,
    QUICK_DATASETS,
    dataset_problem,
    modelled_epoch_seconds,
    paper_spec_for,
    run_numeric_solver,
)


class TestDatasets:
    def test_quick_specs_cover_all_workloads(self):
        assert set(QUICK_DATASETS) == {"netflix", "yahoo", "hugewiki"}

    def test_problem_caching(self):
        a = dataset_problem("netflix", quick=True)
        b = dataset_problem("netflix", quick=True)
        assert a is b  # lru_cache

    def test_quick_shapes(self):
        prob = dataset_problem("netflix", quick=True)
        assert prob.train.nnz == QUICK_DATASETS["netflix"].n_train

    def test_paper_spec(self):
        assert paper_spec_for("netflix").n_train == 99_072_112
        with pytest.raises(KeyError):
            paper_spec_for("imdb")


class TestSolverDispatch:
    def test_all_numeric_solvers_run_one_epoch(self):
        prob = dataset_problem("netflix", quick=True)
        for solver in NUMERIC_SOLVERS:
            hist = run_numeric_solver(solver, prob, epochs=1)
            assert len(hist.test_rmse) == 1
            assert hist.test_rmse[0] < 1.5

    def test_unknown_solver(self):
        prob = dataset_problem("netflix", quick=True)
        with pytest.raises(KeyError, match="unknown numeric solver"):
            run_numeric_solver("svd++", prob, epochs=1)


class TestEpochSecondsModel:
    @pytest.mark.parametrize("display", [d for d, _, _ in PLATFORM_SOLVERS])
    def test_all_platform_solvers_priced(self, display):
        for workload in ("netflix", "yahoo", "hugewiki"):
            t = modelled_epoch_seconds(display, workload)
            assert t > 0

    def test_als_platforms_priced(self):
        assert modelled_epoch_seconds("cuMF_ALS-4", "netflix") < modelled_epoch_seconds(
            "cuMF_ALS-1", "netflix"
        )

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="unknown platform solver"):
            modelled_epoch_seconds("cuMF_SGD-Volta", "netflix")

    def test_gpu_epochs_beat_cpu_everywhere(self):
        for workload in ("netflix", "yahoo", "hugewiki"):
            assert modelled_epoch_seconds("cuMF_SGD-P", workload) < modelled_epoch_seconds(
                "LIBMF", workload
            )


class TestCLIFailurePath:
    def test_failing_experiment_sets_exit_code(self, capsys):
        def failing(quick: bool = True) -> ExperimentResult:
            result = ExperimentResult("zz-fail", "always fails", headers=("x",))
            result.add(1)
            result.check("impossible", False)
            return result

        REGISTRY["zz-fail"] = failing
        try:
            # argparse choices are bound at parser build time, so route
            # through the registry-level runner instead
            from repro.experiments import run_experiment

            result = run_experiment("zz-fail")
            assert not result.all_checks_pass
            assert main(["run", "fig15"]) == 0  # sanity: good one still passes
        finally:
            del REGISTRY["zz-fail"]

"""Tests for repro.gpusim.specs, occupancy, roofline."""

import pytest

from repro.gpusim.occupancy import (
    BLOCK_THREADS,
    KERNEL_REGISTERS_PER_THREAD,
    max_parallel_workers,
    occupancy_fraction,
    register_limited_blocks,
)
from repro.gpusim.roofline import attainable_flops, machine_balance, roofline_point
from repro.gpusim.specs import (
    MAXWELL_TITAN_X,
    NOMAD_HPC_CLUSTER,
    NVLINK,
    PASCAL_P100,
    PCIE3_X16,
    XEON_E5_2670_DUAL,
)


class TestTable1Values:
    def test_maxwell(self):
        assert MAXWELL_TITAN_X.sms == 24
        assert MAXWELL_TITAN_X.cuda_cores_per_sm == 128
        assert MAXWELL_TITAN_X.mem_gb == 12.0
        assert MAXWELL_TITAN_X.mem_bw_gbs == 360.0
        assert MAXWELL_TITAN_X.max_resident_blocks == 768

    def test_pascal(self):
        assert PASCAL_P100.sms == 56
        assert PASCAL_P100.cuda_cores_per_sm == 64
        assert PASCAL_P100.mem_bw_gbs == 780.0
        assert PASCAL_P100.max_resident_blocks == 1792

    def test_links(self):
        assert PCIE3_X16.peak_gbs == 16.0
        assert PCIE3_X16.achieved_gbs == 5.5  # the paper's measured value
        assert NVLINK.peak_gbs == 80.0
        assert NVLINK.achieved_gbs == 29.1
        assert MAXWELL_TITAN_X.link is PCIE3_X16
        assert PASCAL_P100.link is NVLINK

    def test_cpu(self):
        assert XEON_E5_2670_DUAL.physical_cores == 24
        assert XEON_E5_2670_DUAL.max_threads == 48  # "up to 48 threads"

    def test_cluster(self):
        assert NOMAD_HPC_CLUSTER.nodes == 64
        assert NOMAD_HPC_CLUSTER.cores_per_node == 4

    def test_achieved_bandwidth_matches_paper(self):
        """Fig. 11b: up to 266 GB/s on Maxwell, 567+ on Pascal."""
        assert MAXWELL_TITAN_X.achieved_bw_gbs == pytest.approx(266.4)
        assert 560 <= PASCAL_P100.achieved_bw_gbs <= 640


class TestTransfer:
    def test_transfer_seconds(self):
        t = PCIE3_X16.transfer_seconds(5.5e9)
        assert t == pytest.approx(1.0 + 10e-6, rel=1e-4)

    def test_latency_only_for_zero_bytes(self):
        assert PCIE3_X16.transfer_seconds(0) == pytest.approx(10e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PCIE3_X16.transfer_seconds(-1)

    def test_nvlink_faster(self):
        assert NVLINK.transfer_seconds(1e9) < PCIE3_X16.transfer_seconds(1e9)


class TestOccupancy:
    def test_paper_worker_caps(self):
        assert max_parallel_workers(MAXWELL_TITAN_X) == 768
        assert max_parallel_workers(PASCAL_P100) == 1792

    def test_register_cap_not_binding_at_33(self):
        """33 regs x 32 threads = 1056 regs/block; 65536/1056 = 62 blocks/SM
        — above the architectural 32, so registers do not limit concurrency,
        exactly the §4 claim."""
        assert register_limited_blocks(KERNEL_REGISTERS_PER_THREAD) >= 32

    def test_register_cap_binds_for_fat_kernels(self):
        assert max_parallel_workers(MAXWELL_TITAN_X, registers_per_thread=128) < 768

    def test_block_threads_is_warp(self):
        assert BLOCK_THREADS == 32

    def test_occupancy_fraction(self):
        assert occupancy_fraction(384, MAXWELL_TITAN_X) == pytest.approx(0.5)
        assert occupancy_fraction(10_000, MAXWELL_TITAN_X) == 1.0
        with pytest.raises(ValueError):
            occupancy_fraction(0, MAXWELL_TITAN_X)

    def test_invalid_registers(self):
        with pytest.raises(ValueError):
            register_limited_blocks(0)


class TestRoofline:
    def test_attainable_min(self):
        assert attainable_flops(0.5, 6000, 360) == pytest.approx(180)
        assert attainable_flops(100, 6000, 360) == 6000

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            attainable_flops(0, 100, 100)

    def test_machine_balance(self):
        assert machine_balance(600, 60) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            machine_balance(100, 0)

    def test_sgd_mf_memory_bound_everywhere(self):
        for device in (MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL):
            for fb in (2, 4):
                assert roofline_point(device, k=128, feature_bytes=fb).memory_bound

    def test_bandwidth_bound_rate_matches_hand_calc(self):
        pt = roofline_point(MAXWELL_TITAN_X, k=128, feature_bytes=2)
        assert pt.bandwidth_bound_updates_per_sec == pytest.approx(
            266.4e9 / 1036, rel=1e-3
        )

    def test_efficiency_below_10_percent(self):
        """The silicon-usage story: SGD-MF can use only a few % of peak."""
        pt = roofline_point(PASCAL_P100, k=128)
        assert pt.efficiency < 0.1

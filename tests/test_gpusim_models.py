"""Tests for repro.gpusim: memory, contention, interconnect, streams,
simulator."""

import pytest

from repro.core.partition import GridPartition
from repro.data.synthetic import PAPER_DATASETS, DatasetSpec
from repro.gpusim.contention import ContentionModel, scheduler_throughput
from repro.gpusim.interconnect import TransferModel
from repro.gpusim.memory import CacheModel, libmf_dram_bytes_per_update
from repro.gpusim.simulator import (
    cumf_throughput,
    dataset_fits_gpu,
    epoch_seconds,
    libmf_cpu_throughput,
    multi_gpu_epoch_seconds,
    scaling_curve,
    staged_epoch_seconds,
)
from repro.gpusim.specs import (
    MAXWELL_TITAN_X,
    PASCAL_P100,
    PCIE3_X16,
    XEON_E5_2670_DUAL,
)
from repro.gpusim.streams import (
    PipelineResult,
    StagedBlock,
    StreamPipeline,
    simulate_epoch_staging,
)

NETFLIX = PAPER_DATASETS["netflix"]
YAHOO = PAPER_DATASETS["yahoo"]
HUGEWIKI = PAPER_DATASETS["hugewiki"]


class TestCacheModel:
    def test_netflix_hugewiki_ordering(self):
        """Fig. 2a: effective bandwidth drops for the large data set, i.e.
        DRAM bytes per update rise."""
        nf = libmf_dram_bytes_per_update(NETFLIX, XEON_E5_2670_DUAL)
        hw = libmf_dram_bytes_per_update(HUGEWIKI, XEON_E5_2670_DUAL)
        assert hw.dram_bytes_per_update > nf.dram_bytes_per_update

    def test_amplification_above_one_when_cache_helps(self):
        nf = libmf_dram_bytes_per_update(NETFLIX, XEON_E5_2670_DUAL)
        assert nf.amplification > 1.0

    def test_hugewiki_p_misses_everything(self):
        hw = libmf_dram_bytes_per_update(HUGEWIKI, XEON_E5_2670_DUAL)
        assert hw.miss_p == pytest.approx(1.0)
        assert hw.miss_q < 0.1  # Q fits: n is small

    def test_processed_bytes_constant(self):
        nf = libmf_dram_bytes_per_update(NETFLIX, XEON_E5_2670_DUAL)
        assert nf.processed_bytes_per_update == 12 + 4 * 128 * 4

    def test_miss_rates_in_unit_interval(self):
        for spec in (NETFLIX, YAHOO, HUGEWIKI):
            cm = libmf_dram_bytes_per_update(spec, XEON_E5_2670_DUAL)
            assert 0.0 <= cm.miss_p <= 1.0
            assert 0.0 <= cm.miss_q <= 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            libmf_dram_bytes_per_update(NETFLIX, XEON_E5_2670_DUAL, a=0)


class TestContention:
    def test_lock_free_scales_linearly(self):
        model = ContentionModel("free", t_critical=0.0)
        r1 = scheduler_throughput(model, 1, 100, 1e-6)
        r64 = scheduler_throughput(model, 64, 100, 1e-6)
        assert r64 == pytest.approx(64 * r1)

    def test_critical_section_caps_grant_rate(self):
        model = ContentionModel("table", t_critical=1e-4)
        capped = scheduler_throughput(model, 10_000, 100, 1e-6)
        assert capped == pytest.approx(100 / 1e-4, rel=0.01)

    def test_saturation_workers(self):
        model = ContentionModel("table", t_critical=1e-4)
        w_star = model.saturation_workers(t_block=2.9e-3)
        assert w_star == pytest.approx(30, rel=0.05)
        assert ContentionModel("free", 0.0).saturation_workers(1.0) == float("inf")

    def test_bandwidth_cap_applies(self):
        model = ContentionModel("free", t_critical=0.0)
        assert scheduler_throughput(model, 64, 100, 1e-6, bandwidth_updates_cap=5e6) == 5e6

    def test_invalid(self):
        model = ContentionModel("x", 0.0)
        with pytest.raises(ValueError):
            scheduler_throughput(model, 0, 100, 1e-6)
        with pytest.raises(ValueError):
            scheduler_throughput(model, 1, 0, 1e-6)


class TestTransferModel:
    def test_segment_accounting(self, tiny_problem):
        part = GridPartition(tiny_problem.train, 2, 2)
        tm = TransferModel(PCIE3_X16, k=8, feature_bytes=2)
        view = part.block(0, 1)
        assert tm.h2d_bytes(view) == view.coo_bytes() + view.feature_bytes(8, 2)
        assert tm.d2h_bytes(view) == view.feature_bytes(8, 2)
        assert tm.round_trip_seconds(view) == pytest.approx(
            tm.h2d_seconds(view) + tm.d2h_seconds(view)
        )

    def test_shape_based(self):
        tm = TransferModel(PCIE3_X16, k=128, feature_bytes=2)
        t = tm.shape_h2d_seconds(1000, 100, 50)
        expected_bytes = 1000 * 12 + 150 * 128 * 2
        assert t == pytest.approx(PCIE3_X16.transfer_seconds(expected_bytes))


class TestStreams:
    def test_single_block(self):
        res = StreamPipeline().simulate([StagedBlock(1.0, 2.0, 0.5)])
        assert res.makespan == pytest.approx(3.5)
        assert res.compute_utilization == pytest.approx(2.0 / 3.5)
        assert res.exposed_transfer == pytest.approx(1.5)

    def test_transfer_hidden_under_compute(self):
        """Long compute hides later H2Ds: N blocks of (t, C, t) with C >> t."""
        blocks = [StagedBlock(0.1, 1.0, 0.1) for _ in range(10)]
        res = StreamPipeline(depth=2).simulate(blocks)
        # first H2D exposed + 10 computes + last D2H
        assert res.makespan == pytest.approx(0.1 + 10.0 + 0.1, abs=1e-9)
        assert res.compute_utilization > 0.95

    def test_transfer_bound_pipeline(self):
        blocks = [StagedBlock(1.0, 0.1, 0.0) for _ in range(10)]
        res = StreamPipeline(depth=2).simulate(blocks)
        assert res.makespan == pytest.approx(10.0 + 0.1, abs=1e-9)

    def test_depth_one_serializes(self):
        """depth=1: block b+1's H2D waits for block b's D2H."""
        blocks = [StagedBlock(1.0, 1.0, 1.0) for _ in range(3)]
        serial = StreamPipeline(depth=1).simulate(blocks)
        deep = StreamPipeline(depth=2).simulate(blocks)
        assert serial.makespan == pytest.approx(9.0)
        assert deep.makespan < serial.makespan

    def test_monotone_in_depth(self):
        blocks = [StagedBlock(0.7, 1.0, 0.7) for _ in range(8)]
        spans = [StreamPipeline(depth=d).simulate(blocks).makespan for d in (1, 2, 4)]
        assert spans[0] >= spans[1] >= spans[2]

    def test_empty_pipeline(self):
        res = StreamPipeline().simulate([])
        assert res.makespan == 0.0
        assert res.compute_utilization == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            StagedBlock(-1.0, 0.0, 0.0)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            StreamPipeline(depth=0)

    def test_multi_device_takes_max(self):
        fast = [StagedBlock(0.0, 1.0, 0.0)]
        slow = [StagedBlock(0.0, 5.0, 0.0)]
        makespan, results = simulate_epoch_staging([fast, slow])
        assert makespan == 5.0
        assert len(results) == 2
        with pytest.raises(ValueError):
            simulate_epoch_staging([])


class TestSimulator:
    def test_maxwell_headline_number(self):
        """Paper: ~267M updates/s, ~266 GB/s effective on Maxwell."""
        pt = cumf_throughput(MAXWELL_TITAN_X, NETFLIX)
        assert pt.mupdates == pytest.approx(257, rel=0.08)
        assert pt.effective_bandwidth_gbs == pytest.approx(266, rel=0.05)

    def test_pascal_headline_number(self):
        pt = cumf_throughput(PASCAL_P100, NETFLIX)
        assert 500 <= pt.mupdates <= 710  # paper: 613

    def test_half_precision_doubles_throughput(self):
        half = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, half_precision=True)
        full = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, half_precision=False)
        assert half.updates_per_sec / full.updates_per_sec == pytest.approx(2.0, rel=0.02)

    def test_workers_clamped_to_cap(self):
        pt = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, workers=10_000)
        assert pt.workers == 768

    def test_linear_regime(self):
        lo = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, workers=96)
        hi = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, workers=192)
        assert hi.updates_per_sec == pytest.approx(2 * lo.updates_per_sec, rel=0.01)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown GPU scheme"):
            cumf_throughput(MAXWELL_TITAN_X, NETFLIX, scheme="magic")

    def test_libmf_cpu_saturation(self):
        r30 = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX, threads=30)
        r48 = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX, threads=48)
        assert r48.updates_per_sec < 1.1 * r30.updates_per_sec

    def test_dataset_fits(self):
        assert dataset_fits_gpu(NETFLIX, MAXWELL_TITAN_X)
        assert dataset_fits_gpu(YAHOO, PASCAL_P100)
        assert not dataset_fits_gpu(HUGEWIKI, MAXWELL_TITAN_X)
        assert not dataset_fits_gpu(HUGEWIKI, PASCAL_P100)

    def test_epoch_seconds_in_memory(self):
        t = epoch_seconds(MAXWELL_TITAN_X, NETFLIX)
        pt = cumf_throughput(MAXWELL_TITAN_X, NETFLIX)
        assert t == pytest.approx(NETFLIX.n_train / pt.updates_per_sec)

    def test_epoch_seconds_staged_longer_than_compute(self):
        t = epoch_seconds(MAXWELL_TITAN_X, HUGEWIKI)
        pt = cumf_throughput(MAXWELL_TITAN_X, HUGEWIKI)
        compute_only = HUGEWIKI.n_train / pt.updates_per_sec
        assert t > compute_only
        assert t < 2.0 * compute_only  # overlap hides most of the staging

    def test_staged_invalid_rate(self):
        with pytest.raises(ValueError):
            staged_epoch_seconds(MAXWELL_TITAN_X, HUGEWIKI, 0.0)

    def test_pascal_hugewiki_speedup_larger_than_netflix(self):
        """§7.3: NVLink's 5.3x link advantage makes Hugewiki's M->P speedup
        exceed Netflix's."""
        nf = epoch_seconds(MAXWELL_TITAN_X, NETFLIX) / epoch_seconds(PASCAL_P100, NETFLIX)
        hw = epoch_seconds(MAXWELL_TITAN_X, HUGEWIKI) / epoch_seconds(PASCAL_P100, HUGEWIKI)
        assert hw >= nf * 0.95

    def test_scaling_curve_monotone(self):
        curve = scaling_curve(MAXWELL_TITAN_X, NETFLIX)
        rates = [p.updates_per_sec for p in curve]
        assert all(a <= b + 1e-6 for a, b in zip(rates, rates[1:]))

    def test_scaling_curve_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            scaling_curve(MAXWELL_TITAN_X, NETFLIX, workers_list=[0, 5])

    def test_multi_gpu_sub_linear(self):
        e1 = multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 1, 8, 8)
        e2 = multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 2, 8, 8)
        assert 1.0 < e1 / e2 < 2.0

    def test_multi_gpu_validation(self):
        with pytest.raises(ValueError):
            multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 0, 8, 8)
        with pytest.raises(ValueError, match="independent"):
            multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 4, 2, 8)

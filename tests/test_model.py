"""Tests for repro.core.model.FactorModel."""

import numpy as np
import pytest

from repro.core.model import FactorModel


class TestInitialize:
    def test_shapes_and_dtype(self):
        m = FactorModel.initialize(30, 20, 8, seed=0)
        assert m.p.shape == (30, 8)
        assert m.q.shape == (20, 8)
        assert m.p.dtype == np.float32
        assert (m.m, m.n, m.k) == (30, 20, 8)

    def test_algorithm1_range(self):
        """Line 3: entries uniform in [0, sqrt(1/(k*scale_factor)))."""
        k, sf = 16, 2.0
        m = FactorModel.initialize(200, 200, k, seed=1, scale_factor=sf)
        hi = np.sqrt(1.0 / (k * sf))
        assert float(m.p.min()) >= 0.0
        assert float(m.p.max()) < hi
        assert float(m.q.max()) < hi
        # actually fills the range
        assert float(m.p.max()) > 0.9 * hi

    def test_expected_initial_prediction_independent_of_k(self):
        preds = []
        for k in (8, 64):
            m = FactorModel.initialize(500, 500, k, seed=2)
            p, q = m.as_float32()
            preds.append(float(np.mean(p[:100] @ q[:100].T)))
        # E[p.q] = k * (hi/2)^2 = k * 1/(4k) = 0.25 for both
        assert preds[0] == pytest.approx(0.25, rel=0.1)
        assert preds[1] == pytest.approx(0.25, rel=0.1)

    def test_deterministic(self):
        a = FactorModel.initialize(10, 10, 4, seed=9)
        b = FactorModel.initialize(10, 10, 4, seed=9)
        assert np.array_equal(a.p, b.p)

    @pytest.mark.parametrize("bad", [(0, 5, 3), (5, 0, 3), (5, 5, 0)])
    def test_invalid_dims(self, bad):
        with pytest.raises(ValueError):
            FactorModel.initialize(*bad)

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError, match="scale_factor"):
            FactorModel.initialize(5, 5, 2, scale_factor=0.0)


class TestPrecision:
    def test_half_initialize(self):
        m = FactorModel.initialize(10, 10, 4, half_precision=True)
        assert m.half_precision
        assert m.p.dtype == np.float16

    def test_nbytes_halved(self):
        full = FactorModel.initialize(100, 80, 16)
        half = FactorModel.initialize(100, 80, 16, half_precision=True)
        assert half.nbytes == full.nbytes // 2

    def test_to_half_and_back(self):
        m = FactorModel.initialize(10, 10, 4, seed=3)
        h = m.to_half()
        assert h.half_precision
        s = h.to_single()
        assert not s.half_precision
        np.testing.assert_allclose(s.p, m.p, atol=1e-3)

    def test_conversions_are_noop_when_already_there(self):
        m = FactorModel.initialize(10, 10, 4)
        assert m.to_single() is m
        h = m.to_half()
        assert h.to_half() is h

    def test_as_float32_returns_fp32(self):
        h = FactorModel.initialize(10, 10, 4, half_precision=True)
        p, q = h.as_float32()
        assert p.dtype == np.float32 and q.dtype == np.float32


class TestValidation:
    def test_k_mismatch(self):
        with pytest.raises(ValueError, match="feature dimensions disagree"):
            FactorModel(np.zeros((3, 4), np.float32), np.zeros((3, 5), np.float32))

    def test_dtype_mismatch(self):
        with pytest.raises(ValueError, match="storage dtype"):
            FactorModel(np.zeros((3, 4), np.float32), np.zeros((3, 4), np.float16))

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            FactorModel(np.zeros(4, np.float32), np.zeros((3, 4), np.float32))


class TestPredictAndCopy:
    def test_predict(self, fresh_model):
        rows = np.array([0, 1])
        cols = np.array([2, 3])
        got = fresh_model.predict(rows, cols)
        p, q = fresh_model.as_float32()
        assert got[0] == pytest.approx(float(p[0] @ q[2]), rel=1e-6)

    def test_copy_independent(self, fresh_model):
        c = fresh_model.copy()
        c.p[0, 0] = 42.0
        assert fresh_model.p[0, 0] != 42.0

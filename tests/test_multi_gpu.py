"""Tests for repro.core.multi_gpu.MultiDeviceSGD."""

import numpy as np
import pytest

from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD, TransferLedger
from repro.core.partition import GridPartition
from repro.metrics.rmse import rmse


class TestValidation:
    def test_devices_bounded_by_grid(self):
        with pytest.raises(ValueError, match="independent"):
            MultiDeviceSGD(n_devices=3, i=2, j=4)

    @pytest.mark.parametrize("kw", [dict(n_devices=0), dict(workers=0)])
    def test_positive_params(self, kw):
        base = dict(n_devices=1, i=2, j=2, workers=8)
        base.update(kw)
        with pytest.raises(ValueError):
            MultiDeviceSGD(**base)


class TestEpoch:
    def _model(self, problem, k=8):
        return FactorModel.initialize(problem.spec.m, problem.spec.n, k, seed=0)

    def test_every_block_visited_once(self, tiny_problem):
        sgd = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=16, seed=0)
        model = self._model(tiny_problem)
        n = sgd.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert n == tiny_problem.train.nnz
        assert sgd.ledger.dispatches == 16

    def test_round_blocks_are_independent(self, tiny_problem):
        """_pick_round must return pairwise-independent blocks."""
        sgd = MultiDeviceSGD(n_devices=3, i=4, j=4, workers=8, seed=1)
        part = sgd.partition_for(tiny_problem.train)
        pending = {(i, j) for i in range(4) for j in range(4)}
        for _ in range(20):
            chosen = sgd._pick_round(pending)
            assert 1 <= len(chosen) <= 3
            assert part.independent_set(chosen)

    def test_transfer_ledger_accounting(self, tiny_problem):
        sgd = MultiDeviceSGD(n_devices=2, i=2, j=2, workers=8, seed=0)
        model = self._model(tiny_problem)
        sgd.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        ledger = sgd.ledger
        part = GridPartition(tiny_problem.train, 2, 2)
        expected_h2d = sum(
            v.coo_bytes() + v.feature_bytes(8, 4) for v in part.blocks()
        )
        expected_d2h = sum(v.feature_bytes(8, 4) for v in part.blocks())
        assert ledger.h2d_bytes == expected_h2d
        assert ledger.d2h_bytes == expected_d2h
        assert ledger.total_bytes == expected_h2d + expected_d2h
        assert ledger.rounds >= 2  # 4 blocks / 2 devices

    def test_half_precision_halves_feature_traffic(self, tiny_problem):
        traffic = {}
        for half in (False, True):
            sgd = MultiDeviceSGD(n_devices=1, i=2, j=2, workers=8, seed=0)
            model = FactorModel.initialize(
                tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0,
                half_precision=half,
            )
            sgd.run_epoch(model, tiny_problem.train, 0.05, 0.05)
            traffic[half] = sgd.ledger.d2h_bytes
        assert traffic[True] == traffic[False] // 2

    def test_convergence(self, tiny_problem):
        sgd = MultiDeviceSGD(n_devices=2, i=4, j=4, workers=16, seed=0)
        model = self._model(tiny_problem)
        p, q = model.as_float32()
        before = rmse(p, q, tiny_problem.test)
        for _ in range(4):
            sgd.run_epoch(model, tiny_problem.train, 0.08, 0.05)
        p, q = model.as_float32()
        assert rmse(p, q, tiny_problem.test) < before

    def test_multi_device_matches_single_device_statistically(self, tiny_problem):
        """2 devices on independent blocks converge like 1 device (Fig. 16's
        'convergence is preserved' premise)."""
        finals = []
        for devices in (1, 2):
            sgd = MultiDeviceSGD(n_devices=devices, i=4, j=4, workers=16, seed=0)
            model = self._model(tiny_problem)
            for _ in range(4):
                sgd.run_epoch(model, tiny_problem.train, 0.08, 0.05)
            p, q = model.as_float32()
            finals.append(rmse(p, q, tiny_problem.test))
        assert finals[0] == pytest.approx(finals[1], rel=0.05)


class TestLedger:
    def test_empty_ledger(self):
        ledger = TransferLedger()
        assert ledger.total_bytes == 0
        assert ledger.dispatches == 0

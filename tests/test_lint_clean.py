"""Tier-1 gate: the shipped source tree lints clean.

This is the whole point of the tentpole — the invariants PR 1-3 established
by construction (allocation-free hot path, fp32 kernels, seeded RNG,
manifest-checked metric names, conflict-free schedules) are now *enforced*:
any regression turns into a failing finding here, with the offending
file:line in the assertion message.
"""

from pathlib import Path

import pytest

from repro.lint import DEFAULT_PASSES, run_lint

pytestmark = pytest.mark.lint

SRC = Path(__file__).resolve().parents[1] / "src"


def test_src_lints_clean():
    report = run_lint([SRC])
    assert report.errors == []
    assert not report.findings, "\n" + "\n".join(
        f.format() for f in report.findings
    )
    assert report.exit_code == 0


def test_all_passes_ran_over_src():
    report = run_lint([SRC])
    assert report.passes == [p().rule for p in DEFAULT_PASSES]
    assert len(report.files) > 50  # the whole package, not a subset


def test_suppressions_are_counted_not_invisible():
    # the tree is clean *with* annotations; the annotations stay visible
    report = run_lint([SRC])
    assert len(report.suppressed) >= 10
    rules = {f.rule for f in report.suppressed}
    assert "hotpath-alloc" in rules  # kernels.py cold branches
    assert "dtype-fp64" in rules  # tagged fp64 accumulators

"""Per-pass behaviour on fixture snippets, suppression semantics, the
baseline workflow, and the CLI exit-code contract."""

import json
from pathlib import Path

import pytest

from repro.experiments.cli import main as cumf_main
from repro.lint import load_baseline, run_lint, write_baseline
from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

BAD_FIXTURES = {
    "bad_hotpath.py": "hotpath-alloc",
    "bad_dtype.py": "dtype-fp64",
    "bad_rng.py": "rng-legacy",
    "bad_metric.py": "metric-name",
    "bad_races.py": "race-shared-write",
    "bad_shm.py": "shm-lifecycle",
    "bad_barrier.py": "barrier-pairing",
    "bad_stale.py": "suppression-stale",
}
CLEAN_FIXTURES = [
    "clean_hotpath.py",
    "clean_dtype.py",
    "clean_rng.py",
    "clean_metric.py",
    "clean_races.py",
    "clean_shm.py",
    "clean_barrier.py",
    "clean_stale.py",
]


# ---------------------------------------------------------------------------
# every bad fixture is flagged by its pass; every clean fixture is clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,rule", sorted(BAD_FIXTURES.items()))
def test_bad_fixture_is_flagged(name, rule):
    report = run_lint([FIXTURES / name])
    assert any(f.rule == rule for f in report.findings), (
        f"{name} should trip {rule}; got "
        + "; ".join(f.format() for f in report.findings)
    )
    assert report.exit_code == 1


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_fixture_is_clean(name):
    report = run_lint([FIXTURES / name])
    assert not report.findings, "\n".join(f.format() for f in report.findings)
    assert report.exit_code == 0


def test_bad_hotpath_flags_all_three_shapes():
    report = run_lint([FIXTURES / "bad_hotpath.py"])
    messages = " ".join(
        f.message for f in report.findings if f.rule == "hotpath-alloc"
    )
    assert "fancy-index load" in messages
    assert ".astype" in messages
    assert "np.zeros" in messages


def test_bad_dtype_flags_hot_only_hazards():
    report = run_lint([FIXTURES / "bad_dtype.py"])
    messages = [f.message for f in report.findings if f.rule == "dtype-fp64"]
    assert any("without an explicit dtype" in m for m in messages)
    assert any("float literal" in m for m in messages)
    assert any("explicit float64" in m for m in messages)


def test_clean_dtype_counts_the_tagged_accumulator():
    report = run_lint([FIXTURES / "clean_dtype.py"])
    assert any(f.rule == "dtype-fp64" for f in report.suppressed)


def test_bad_races_flags_write_call_and_global():
    report = run_lint([FIXTURES / "bad_races.py"])
    messages = " ".join(
        f.message for f in report.findings if f.rule == "race-shared-write"
    )
    assert "writes shared state" in messages
    assert "mutating" in messages
    assert "global" in messages


def test_bad_shm_names_both_missing_calls():
    report = run_lint([FIXTURES / "bad_shm.py"])
    messages = [f.message for f in report.findings if f.rule == "shm-lifecycle"]
    assert messages and all(".close() or .unlink()" in m for m in messages)


def test_shm_attach_only_needs_close(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "from multiprocessing import shared_memory\n"
        "def attach(name):\n"
        "    return shared_memory.SharedMemory(name=name)\n"
    )
    report = run_lint([target])
    assert any(
        f.rule == "shm-lifecycle" and "attach" in f.message
        for f in report.findings
    )
    target.write_text(
        target.read_text() + "def release(shm):\n    shm.close()\n"
    )
    report = run_lint([target])
    assert not any(f.rule == "shm-lifecycle" for f in report.findings)


def test_bad_barrier_names_each_gap():
    report = run_lint([FIXTURES / "bad_barrier.py"])
    messages = " ".join(
        f.message for f in report.findings if f.rule == "barrier-pairing"
    )
    assert "timed" in messages
    assert ".abort()" in messages


def test_stale_suppression_points_at_the_comment():
    report = run_lint([FIXTURES / "bad_stale.py"])
    stale = [f for f in report.findings if f.rule == "suppression-stale"]
    assert len(stale) == 1
    assert "rng-legacy" in stale[0].message
    # the flagged location is the comment itself, not the finding it missed
    source = (FIXTURES / "bad_stale.py").read_text().splitlines()
    assert "# lint: rng-legacy" in source[stale[0].line - 1]


def test_live_suppression_is_not_stale():
    report = run_lint([FIXTURES / "clean_stale.py"])
    assert not any(f.rule == "suppression-stale" for f in report.findings)
    assert any(f.rule == "rng-legacy" for f in report.suppressed)


def test_stale_check_sees_standalone_coverage(tmp_path):
    # a standalone comment covering a firing next line is live
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "# lint: rng-legacy -- shim\n"
        "x = np.random.rand(3)\n"
    )
    report = run_lint([target])
    assert not any(f.rule == "suppression-stale" for f in report.findings)


def test_stale_findings_are_themselves_suppressible(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "# lint: suppression-stale -- kept while the kernel is ported\n"
        "x = 1  # lint: hotpath-alloc -- nothing fires here\n"
    )
    report = run_lint([target])
    assert not any(f.rule == "suppression-stale" for f in report.findings)


# ---------------------------------------------------------------------------
# suppression semantics
# ---------------------------------------------------------------------------
def test_suppression_needs_a_tag_the_pass_accepts(tmp_path):
    bad = "import numpy as np\nx = np.random.rand(3)"
    target = tmp_path / "mod.py"

    target.write_text(bad + "  # lint: fp64-accumulator -- wrong pass\n")
    report = run_lint([target])
    assert any(f.rule == "rng-legacy" for f in report.findings)

    target.write_text(bad + "  # lint: rng-legacy -- seeded upstream\n")
    report = run_lint([target])
    assert not any(f.rule == "rng-legacy" for f in report.findings)
    assert any(f.rule == "rng-legacy" for f in report.suppressed)


def test_standalone_suppression_covers_next_line(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "# lint: rng-legacy -- legacy shim kept for comparison plots\n"
        "x = np.random.rand(3)\n"
    )
    report = run_lint([target])
    assert not report.findings
    assert report.suppressed


def test_lint_all_silences_everything(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "x = np.random.rand(3)  # lint: all -- vendored example\n"
    )
    report = run_lint([target])
    assert not report.findings


# ---------------------------------------------------------------------------
# baseline workflow
# ---------------------------------------------------------------------------
def test_baseline_grandfathers_existing_findings(tmp_path):
    dirty = run_lint([FIXTURES / "bad_rng.py"])
    assert dirty.findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, dirty)

    rerun = run_lint(
        [FIXTURES / "bad_rng.py"], baseline=load_baseline(baseline_path)
    )
    assert not rerun.findings
    assert rerun.baselined
    assert rerun.exit_code == 0


def test_baseline_does_not_hide_new_findings(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, run_lint([FIXTURES / "bad_rng.py"]))
    report = run_lint(
        [FIXTURES / "bad_metric.py"], baseline=load_baseline(baseline_path)
    )
    assert any(f.rule == "metric-name" for f in report.findings)
    assert report.exit_code == 1


# ---------------------------------------------------------------------------
# CLI contract: cumf-sgd lint / repro-lint / python -m repro.lint
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BAD_FIXTURES))
def test_cli_exits_nonzero_on_bad_fixture(name, capsys):
    code = cumf_main(["lint", str(FIXTURES / name)])
    assert code == 1
    assert BAD_FIXTURES[name] in capsys.readouterr().out


def test_cli_exits_zero_on_clean_fixture(capsys):
    code = cumf_main(["lint", str(FIXTURES / "clean_hotpath.py")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_format_is_parseable(capsys):
    code = cumf_main(["lint", str(FIXTURES / "bad_dtype.py"), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["counts"]["findings"] == len(payload["findings"])
    assert {"path", "line", "col", "rule", "message", "symbol"} <= set(
        payload["findings"][0]
    )


def test_cli_list_passes(capsys):
    assert lint_main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "hotpath-alloc", "dtype-fp64", "rng-legacy", "metric-name",
        "race-shared-write",
    ):
        assert rule in out


def test_cli_usage_error_on_missing_path(capsys):
    assert lint_main([str(FIXTURES / "no_such_file.py")]) == 2


def test_cli_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(FIXTURES / "bad_rng.py"), "--write-baseline", str(baseline)]
    ) == 0
    capsys.readouterr()
    assert lint_main(
        [str(FIXTURES / "bad_rng.py"), "--baseline", str(baseline)]
    ) == 0
    assert "baselined" in capsys.readouterr().out


def test_syntax_errors_are_reported_not_crashes(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = run_lint([bad])
    assert report.errors and not report.clean
    assert lint_main([str(bad)]) == 1
    assert "syntax error" in capsys.readouterr().out

"""Cross-worker profiling: trace relay, stall attribution, perf ledger.

Covers the observability additions around the parallel executors:

* `repro.obs.relay` — per-worker span spools, torn-line crash tolerance,
  deterministic multi-pid merge into one Chrome trace;
* `repro.obs.profiler` — the StallReport phase taxonomy (fractions sum to
  1 by construction), serialization round-trip, `repro.profile.*`
  publication;
* `repro.obs.ledger` — provenance stamps, config-matched baselines, and
  the >15% `perf-diff` regression gate (plus its CLI exit codes);
* the executor wiring — a `ProcessHogwild` fit under a collector yields
  one schema-valid trace with >= n_procs+1 lanes, per-worker barrier-wait
  histograms, and an embedded-able stall report.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    TelemetryCollector,
    activate,
    validate_chrome_trace,
)
from repro.obs.ledger import (
    PerfLedger,
    bench_meta,
    git_sha,
    perf_diff,
)
from repro.obs.profiler import PHASES, PhaseTimer, StallReport, WorkerPhases
from repro.obs.registry import METRIC_MANIFEST, M, MetricsRegistry
from repro.obs.relay import (
    THREAD_TID_BASE,
    WORKER_PID_BASE,
    TraceRelay,
    WorkerTelemetry,
    merge_records,
    read_spool,
)
from repro.obs.tracer import WALL_PID, Tracer

pytestmark = pytest.mark.obs


# ---------------------------------------------------------------------------
# relay: spools, crash tolerance, merge
# ---------------------------------------------------------------------------
class TestWorkerTelemetry:
    def test_spool_round_trip(self, tmp_path):
        spool = tmp_path / "worker_0000.jsonl"
        wt = WorkerTelemetry(3, origin=0.0, spool_path=spool)
        wt.add_span("epoch 1 compute", 0.5, 0.25, args={"updates": 10})
        wt.instant("mark", 0.6)
        wt.counter("repro.test", {"v": 1.0}, ts_seconds=0.7)
        assert wt.flush() == 3
        assert wt.records == []  # buffer cleared
        records, corrupt = read_spool(spool)
        assert corrupt == 0
        assert [r["kind"] for r in records] == ["span", "instant", "counter"]
        assert records[0]["wid"] == 3
        assert records[0]["dur"] == 0.25

    def test_flush_appends_across_calls(self, tmp_path):
        spool = tmp_path / "w.jsonl"
        wt = WorkerTelemetry(0, spool_path=spool)
        wt.add_span("a", 0.0, 0.1)
        wt.flush()
        wt.add_span("b", 0.2, 0.1)
        wt.flush()
        records, _ = read_spool(spool)
        assert [r["name"] for r in records] == ["a", "b"]

    def test_in_memory_mode_drain(self):
        wt = WorkerTelemetry(1)
        wt.add_span("x", 0.0, 0.1)
        assert wt.flush() == 0  # no spool path: flush is a no-op
        drained = wt.drain()
        assert len(drained) == 1
        assert wt.records == []

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        """A worker killed mid-write leaves a truncated final line; the
        spool must still yield every complete record."""
        spool = tmp_path / "w.jsonl"
        wt = WorkerTelemetry(0, spool_path=spool)
        for i in range(4):
            wt.add_span(f"span {i}", float(i), 0.5)
        wt.flush()
        text = spool.read_text()
        spool.write_text(text + '{"wid": 0, "kind": "span", "name": "to')
        records, corrupt = read_spool(spool)
        assert len(records) == 4
        assert corrupt == 1

    def test_missing_spool_reads_empty(self, tmp_path):
        records, corrupt = read_spool(tmp_path / "never_written.jsonl")
        assert records == [] and corrupt == 0


class TestMergeRecords:
    def _records(self):
        return [
            {"wid": 1, "kind": "span", "name": "late", "ts": 2.0, "dur": 0.5},
            {"wid": 0, "kind": "span", "name": "early", "ts": 1.0, "dur": 0.5},
            {"wid": 1, "kind": "span", "name": "first", "ts": 0.5, "dur": 0.1},
        ]

    def test_process_layout_lanes_and_ordering(self):
        tracer = Tracer()
        n = merge_records(tracer, self._records(), label="proc")
        assert n == 3
        events = tracer.to_chrome()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # lane metadata first (sorted wids), then events sorted by (ts, wid)
        assert events[: len(meta)] == meta
        pids = [e["pid"] for e in spans]
        assert pids == [WORKER_PID_BASE + 1, WORKER_PID_BASE, WORKER_PID_BASE + 1]
        assert [e["name"] for e in spans] == ["first", "early", "late"]
        named = {
            (e["pid"], e["args"]["name"])
            for e in meta if e["name"] == "process_name"
        }
        assert named == {(WORKER_PID_BASE, "proc 0"), (WORKER_PID_BASE + 1, "proc 1")}

    def test_thread_layout_shares_parent_pid(self):
        tracer = Tracer()
        merge_records(
            tracer, self._records(), label="thread",
            pid=WALL_PID, tid_base=THREAD_TID_BASE,
        )
        spans = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {WALL_PID}
        assert {e["tid"] for e in spans} == {THREAD_TID_BASE, THREAD_TID_BASE + 1}

    def test_rejects_both_layouts_at_once(self):
        with pytest.raises(ValueError, match="at most one"):
            merge_records(Tracer(), [], pid_base=200, pid=1)

    def test_negative_timestamps_clamped(self):
        tracer = Tracer()
        merge_records(
            tracer,
            [{"wid": 0, "kind": "span", "name": "pre", "ts": -0.5, "dur": 0.1}],
        )
        trace = tracer.to_chrome()
        validate_chrome_trace(trace)  # schema rejects ts < 0
        span = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert span["ts"] == 0

    def test_relay_merges_all_spools(self, tmp_path):
        relay = TraceRelay(tmp_path / "spools")
        for wid in (0, 2):
            wt = relay.worker_telemetry(wid)
            wt.add_span(f"work {wid}", 0.1 * (wid + 1), 0.05)
            wt.flush()
        # sabotage one spool with a torn line
        with relay.spool_path(2).open("a") as fh:
            fh.write('{"wid": 2, "kind"')
        tracer = Tracer()
        assert relay.merge_into(tracer) == 2
        assert relay.corrupt_lines == 1
        validate_chrome_trace(tracer.to_chrome())
        relay.cleanup()
        assert not (tmp_path / "spools").exists()


class TestTracerLaneNaming:
    def test_name_process_emits_deduped_metadata(self):
        tracer = Tracer()
        tracer.name_process(200, "proc 0")
        tracer.name_process(200, "proc 0")  # dedup
        tracer.name_thread(200, 0, "proc:0")
        meta = [
            e for e in tracer.to_chrome()["traceEvents"]
            if e["name"] == "process_name"
        ]
        assert len(meta) == 1
        assert meta[0]["pid"] == 200 and meta[0]["args"]["name"] == "proc 0"
        validate_chrome_trace(tracer.to_chrome())

    def test_origin_is_raw_clock_value(self):
        import time

        before = time.perf_counter()
        tracer = Tracer()
        after = time.perf_counter()
        assert before <= tracer.origin <= after


# ---------------------------------------------------------------------------
# profiler: taxonomy, report invariants, publication
# ---------------------------------------------------------------------------
class TestStallReport:
    def _report(self):
        return StallReport(
            "procs",
            [
                WorkerPhases(0, 2.0, {"compute": 1.2, "barrier": 0.4,
                                      "spawn": 0.2}),
                WorkerPhases(1, 2.0, {"compute": 1.6, "barrier": 0.1,
                                      "prefetch": 0.2}),
            ],
        )

    def test_fractions_sum_to_one_with_replay_residual(self):
        report = self._report()
        for w in report.workers:
            att = w.attributed()
            assert att["replay"] == pytest.approx(
                w.wall_seconds - sum(
                    v for p, v in att.items() if p != "replay"
                )
            )
            assert math.fsum(w.fractions().values()) == pytest.approx(1.0)
        assert math.fsum(report.aggregate_fractions().values()) == (
            pytest.approx(1.0)
        )

    def test_overcommitted_worker_stretches_denominator(self):
        """Measured > wall (overlapping instrumentation): fractions still
        sum to 1, replay clamps at 0."""
        w = WorkerPhases(0, 1.0, {"compute": 0.9, "barrier": 0.4})
        att = w.attributed()
        assert att["replay"] == 0.0
        assert math.fsum(w.fractions().values()) == pytest.approx(1.0)

    def test_round_trip_and_validate(self):
        state = self._report().as_dict()
        StallReport.validate_dict(state)
        again = StallReport.from_dict(state)
        assert again.as_dict() == state
        bad = json.loads(json.dumps(state))
        bad["workers"][0]["fractions"]["compute"] = 0.0
        with pytest.raises(ValueError, match="fractions sum"):
            StallReport.validate_dict(bad)

    def test_validate_rejects_measured_exceeding_wall(self):
        """Measured phase seconds > wall means the producer read the
        accumulators mid-write (the ProcessHogwild pre-join race); the
        replay-residual clamp must not be allowed to mask it."""
        report = StallReport(
            "procs",
            [WorkerPhases(0, 1.0, {"compute": 1.3, "barrier": 0.2})],
        )
        # fractions still sum to 1 (stretched denominator) — only the
        # new wall-clock invariant catches the corruption
        state = report.as_dict()
        assert math.fsum(
            state["workers"][0]["fractions"].values()
        ) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="exceed wall_seconds"):
            StallReport.validate_dict(state)

    def test_phase_timer_accumulates(self):
        ticks = iter([0.0, 1.0, 1.0, 1.5])
        timer = PhaseTimer(clock=lambda: next(ticks))
        with timer.phase("barrier"):
            pass
        with timer.phase("compute"):
            pass
        assert timer.seconds["barrier"] == pytest.approx(1.0)
        assert timer.seconds["compute"] == pytest.approx(0.5)

    def test_publish_emits_profile_family(self):
        registry = MetricsRegistry()
        self._report().publish(registry)
        walls = registry.family(M.PROFILE_WALL_SECONDS)
        assert {dict(m.labels)["worker"] for m in walls} == {"0", "1", "all"}
        for phase in PHASES:
            assert registry.value(
                M.PROFILE_PHASE_FRACTION,
                {"executor": "procs", "worker": "all", "phase": phase},
            ) >= 0.0

    def test_profile_names_in_manifest(self):
        for name in (M.PROFILE_WALL_SECONDS, M.PROFILE_PHASE_SECONDS,
                     M.PROFILE_PHASE_FRACTION):
            assert name in METRIC_MANIFEST
            assert name.startswith("repro.profile.")


# ---------------------------------------------------------------------------
# executor wiring: multi-lane traces + per-worker metrics from a real fit
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def procs_profiled_run(tiny_problem):
    from repro.parallel.procs import ProcessHogwild

    collector = TelemetryCollector(run_label="profiled-procs")
    est = ProcessHogwild(k=8, n_procs=2, lam=0.05, seed=0, workers=16, f=32)
    with activate(collector):
        est.fit(tiny_problem.train, epochs=2)
    return est, collector


class TestProcsProfiling:
    def test_single_trace_with_worker_lanes(self, procs_profiled_run):
        est, collector = procs_profiled_run
        trace = collector.tracer.to_chrome()
        validate_chrome_trace(trace)
        lanes = {
            (e.get("pid"), e.get("tid"))
            for e in trace["traceEvents"] if e.get("ph") != "M"
        }
        # the trainer wall lane + one pid lane per worker process
        assert len(lanes) >= est.n_procs + 1
        for wid in range(est.n_procs):
            assert (WORKER_PID_BASE + wid, 0) in lanes

    def test_stall_report_fractions(self, procs_profiled_run):
        est, _ = procs_profiled_run
        report = est.stall_report
        assert report is not None and report.executor == "procs"
        assert len(report.workers) == est.n_procs
        StallReport.validate_dict(report.as_dict())
        # epochs ran compute, so it can't be all residual
        assert report.aggregate_seconds()["compute"] > 0.0

    def test_barrier_wait_histogram_per_worker(self, procs_profiled_run):
        """Regression: barrier waits must stay per-worker labeled — one
        histogram per worker id, not one shared aggregate."""
        est, collector = procs_profiled_run
        family = collector.registry.family(M.PROC_BARRIER_WAIT_SECONDS)
        workers = {dict(m.labels)["worker"] for m in family}
        assert workers == {str(w) for w in range(est.n_procs)}
        for metric in family:
            assert metric.kind == "histogram"
            # one observation per epoch per worker
            assert metric.total == 2

    def test_threads_report_and_lanes(self, tiny_problem):
        from repro.parallel.threads import ThreadedHogwild

        collector = TelemetryCollector(run_label="profiled-threads")
        est = ThreadedHogwild(k=8, n_threads=2, lam=0.05, seed=0)
        with activate(collector):
            est.fit(tiny_problem.train, epochs=2)
        assert est.stall_report is not None
        assert est.stall_report.executor == "threads"
        StallReport.validate_dict(est.stall_report.as_dict())
        trace = collector.tracer.to_chrome()
        validate_chrome_trace(trace)
        lanes = {
            (e.get("pid"), e.get("tid"))
            for e in trace["traceEvents"] if e.get("ph") != "M"
        }
        for tid in range(est.n_threads):
            assert (WALL_PID, THREAD_TID_BASE + tid) in lanes


# ---------------------------------------------------------------------------
# ledger + perf-diff
# ---------------------------------------------------------------------------
def _doc(updates_per_sec=1e6, speedup=2.0, config=None, benchmark="hot_path"):
    return {
        "benchmark": benchmark,
        "schema_version": 2,
        "config": dict(config or {"nnz": 1000, "k": 8}),
        "metrics": {
            "updates_per_sec": updates_per_sec,
            "speedup": speedup,
            "epoch_seconds": 0.1,  # not gated
        },
    }


class TestPerfLedger:
    def test_append_stamps_meta_and_round_trips(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        doc = _doc()
        entry = ledger.append(doc)
        assert "meta" not in doc  # source not mutated
        for key in ("git_sha", "timestamp_utc", "hostname", "cpu_count"):
            assert key in entry["meta"]
        assert ledger.entries() == [entry]

    def test_bench_meta_sha_matches_git(self):
        meta = bench_meta()
        assert meta["git_sha"] == git_sha()
        assert meta["cpu_count"] >= 1

    def test_baseline_requires_matching_config(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        quick = _doc(config={"nnz": 10})
        reference = _doc(config={"nnz": 1000})
        ledger.append(reference)
        assert ledger.baseline(quick) is None  # quick never gates vs ref
        base = ledger.baseline(reference)
        assert base is not None and base["config"] == {"nnz": 1000}

    def test_latest_comparable_entry_wins(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        ledger.append(_doc(updates_per_sec=1e6))
        ledger.append(_doc(updates_per_sec=2e6))
        base = ledger.baseline(_doc())
        assert base["metrics"]["updates_per_sec"] == 2e6

    def test_torn_ledger_line_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = PerfLedger(path)
        ledger.append(_doc())
        with path.open("a") as fh:
            fh.write('{"benchmark": "hot_')
        assert len(ledger.entries()) == 1

    def test_regression_gate(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        ledger.append(_doc(updates_per_sec=1e6, speedup=2.0))
        # -20% updates/s: regression; +10% speedup: fine
        result = perf_diff(
            [_doc(updates_per_sec=0.8e6, speedup=2.2)], ledger
        )
        assert not result.ok
        assert [c.metric for c in result.regressions] == ["updates_per_sec"]
        assert result.regressions[0].delta_fraction == pytest.approx(-0.2)
        # within threshold: ok
        assert perf_diff([_doc(updates_per_sec=0.9e6)], ledger).ok

    def test_missing_baseline_warns_not_fails(self, tmp_path):
        ledger = PerfLedger(tmp_path / "empty.jsonl")
        result = perf_diff([_doc()], ledger)
        assert result.ok
        assert result.missing == ["hot_path"]
        assert "no comparable ledger entry" in result.format()

    def test_gated_metrics_families(self):
        from repro.obs.ledger import gated_metrics, is_speedup_metric

        metrics = {
            "serial_updates_per_sec": 1e6,  # gated (throughput)
            "speedup": 2.0,                 # gated (speedup)
            "threads_vs_serial": 1.5,       # gated (speedup ratio)
            "auto_vs_serial": 1.0,          # gated (speedup ratio)
            "ooc_vs_procs": 0.9,            # lower-is-better: never gated
            "oversubscribed": True,         # bool flag: never gated
            "cpu_count": 4,                 # not a gated family
        }
        gated = gated_metrics(metrics)
        assert set(gated) == {"serial_updates_per_sec", "speedup",
                              "threads_vs_serial", "auto_vs_serial"}
        assert is_speedup_metric("auto_vs_serial")
        assert is_speedup_metric("speedup")
        assert not is_speedup_metric("ooc_vs_procs")
        assert not is_speedup_metric("serial_updates_per_sec")

    def test_oversubscribed_run_skips_speedup_gates(self, tmp_path):
        """An oversubscribed run keeps its throughput gates but never
        fails on speedup ratios — they measure contention, not code."""
        def par_doc(ups, ratio, oversubscribed):
            return {
                "benchmark": "parallel",
                "schema_version": 3,
                "config": {"nnz": 1000, "k": 8},
                "metrics": {
                    "serial_updates_per_sec": ups,
                    "threads_vs_serial": ratio,
                    "oversubscribed": oversubscribed,
                },
            }

        ledger = PerfLedger(tmp_path / "ledger.jsonl")
        ledger.append(par_doc(1e6, 2.0, False))
        # ratio halves but the run is oversubscribed: skipped, still ok
        result = perf_diff([par_doc(1e6, 0.5, True)], ledger)
        assert result.ok
        assert result.skipped == ["parallel:threads_vs_serial"]
        assert "oversubscribed run" in result.format()
        # same ratio drop on a non-oversubscribed run: real regression
        result = perf_diff([par_doc(1e6, 0.5, False)], ledger)
        assert not result.ok
        assert [c.metric for c in result.regressions] == ["threads_vs_serial"]
        # throughput still gates even when oversubscribed
        result = perf_diff([par_doc(0.5e6, 2.0, True)], ledger)
        assert not result.ok
        assert [c.metric for c in result.regressions] == (
            ["serial_updates_per_sec"]
        )


class TestPerfDiffCli:
    def _write_doc(self, tmp_path, name, **kw):
        path = tmp_path / name
        path.write_text(json.dumps(_doc(**kw)))
        return path

    def test_exit_codes(self, tmp_path):
        from repro.experiments.cli import main

        ledger = tmp_path / "ledger.jsonl"
        doc = self._write_doc(tmp_path, "BENCH_a.json")
        # no baseline: warn, exit 0 — and --record seeds the ledger
        assert main(["perf-diff", str(doc), "--against", str(ledger),
                     "--record"]) == 0
        # unchanged numbers against the recorded baseline: exit 0
        assert main(["perf-diff", str(doc), "--against", str(ledger)]) == 0
        slow = self._write_doc(tmp_path, "BENCH_slow.json",
                               updates_per_sec=0.5e6)
        assert main(["perf-diff", str(slow), "--against", str(ledger)]) == 1
        # tighter threshold flips a small change into a failure
        fast = self._write_doc(tmp_path, "BENCH_fast.json",
                               updates_per_sec=0.98e6)
        assert main(["perf-diff", str(fast), "--against", str(ledger)]) == 0
        assert main(["perf-diff", str(fast), "--against", str(ledger),
                     "--threshold", "0.01"]) == 1

    def test_unreadable_document_exits_2(self, tmp_path):
        from repro.experiments.cli import main

        bad = tmp_path / "not_json.json"
        bad.write_text("{")
        assert main(["perf-diff", str(bad)]) == 2

"""Tests for repro.core.hogwild.BatchHogwild."""

import numpy as np
import pytest

from repro.core.hogwild import BatchHogwild
from repro.core.model import FactorModel
from repro.metrics.rmse import rmse


class TestWaveConstruction:
    def test_waves_cover_every_sample_once(self):
        sched = BatchHogwild(workers=4, f=8, seed=0)
        waves = sched.wave_indices(100)
        flat = np.concatenate(waves)
        assert len(flat) == 100
        assert np.array_equal(np.sort(flat), np.arange(100))

    def test_wave_width_bounded_by_workers(self):
        sched = BatchHogwild(workers=4, f=8, seed=0)
        for wave in sched.wave_indices(100):
            assert 1 <= len(wave) <= 4

    def test_chunk_structure(self):
        """Wave t of a full group holds sample w*f + t of each worker chunk."""
        sched = BatchHogwild(workers=3, f=4, seed=0, shuffle_each_epoch=False)
        waves = sched.wave_indices(12)  # exactly one full group
        order = sched._order
        grid = order.reshape(3, 4)
        assert len(waves) == 4
        for t, wave in enumerate(waves):
            assert np.array_equal(np.sort(wave), np.sort(grid[:, t]))

    def test_consecutive_samples_go_to_same_worker(self):
        """Each worker's samples across waves are f consecutive storage slots
        of the shuffled order (Eq. 8 locality)."""
        sched = BatchHogwild(workers=2, f=6, seed=1, shuffle_each_epoch=False)
        waves = sched.wave_indices(12)
        order = sched._order
        worker0 = [w[0] for w in waves]
        assert set(worker0) == set(order[:6])

    def test_tail_group_handled(self):
        sched = BatchHogwild(workers=4, f=8, seed=0)
        waves = sched.wave_indices(37)  # 37 = 32 + 5 tail
        assert sum(len(w) for w in waves) == 37

    def test_epoch_shuffling_changes_order(self):
        sched = BatchHogwild(workers=2, f=4, seed=0, shuffle_each_epoch=True)
        w1 = [w.copy() for w in sched.wave_indices(64)]
        w2 = [w.copy() for w in sched.wave_indices(64)]
        assert not all(np.array_equal(a, b) for a, b in zip(w1, w2))

    def test_no_shuffle_keeps_order(self):
        sched = BatchHogwild(workers=2, f=4, seed=0, shuffle_each_epoch=False)
        w1 = [w.copy() for w in sched.wave_indices(64)]
        w2 = [w.copy() for w in sched.wave_indices(64)]
        assert all(np.array_equal(a, b) for a, b in zip(w1, w2))

    @pytest.mark.parametrize("workers,f", [(0, 8), (4, 0), (-1, 8)])
    def test_invalid_params(self, workers, f):
        with pytest.raises(ValueError):
            BatchHogwild(workers=workers, f=f)


class TestEpoch:
    def test_update_count_equals_nnz(self, tiny_problem):
        sched = BatchHogwild(workers=16, f=32, seed=0)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        n = sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert n == tiny_problem.train.nnz

    def test_epoch_improves_rmse(self, tiny_problem):
        sched = BatchHogwild(workers=16, f=32, seed=0)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        p, q = model.as_float32()
        before = rmse(p, q, tiny_problem.test)
        for _ in range(3):
            sched.run_epoch(model, tiny_problem.train, 0.08, 0.05)
        p, q = model.as_float32()
        assert rmse(p, q, tiny_problem.test) < before

    def test_collision_tracking(self, tiny_problem):
        sched = BatchHogwild(workers=64, f=16, seed=0, track_collisions=True)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert len(sched.collision_history) == 1
        assert 0.0 <= sched.collision_history[0] < 0.5

    def test_more_workers_more_collisions(self, tiny_problem):
        fracs = []
        for workers in (8, 128):
            sched = BatchHogwild(workers=workers, f=16, seed=0, track_collisions=True)
            model = FactorModel.initialize(
                tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
            )
            sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
            fracs.append(sched.collision_history[0])
        assert fracs[1] > fracs[0]

    def test_f_insensitive_convergence(self, tiny_problem):
        """Paper: different f values 'yield similar benefit' — RMSE after a
        few epochs should not depend much on f."""
        finals = []
        for f in (16, 256):
            sched = BatchHogwild(workers=16, f=f, seed=0)
            model = FactorModel.initialize(
                tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
            )
            for _ in range(4):
                sched.run_epoch(model, tiny_problem.train, 0.08, 0.05)
            p, q = model.as_float32()
            finals.append(rmse(p, q, tiny_problem.test))
        assert finals[0] == pytest.approx(finals[1], rel=0.05)

"""The claims ledger: every section-level quantitative claim of the paper,
asserted directly against the reproduction.

Each test quotes the claim it checks. These overlap intentionally with the
experiment shape checks — this file is the human-readable index of what the
reproduction establishes.
"""

import pytest

from repro.baselines.bidmach import bidmach_throughput
from repro.baselines.nomad import nomad_epoch_seconds
from repro.data.synthetic import PAPER_DATASETS
from repro.gpusim.occupancy import max_parallel_workers
from repro.gpusim.roofline import roofline_point
from repro.gpusim.simulator import cumf_throughput, epoch_seconds, libmf_cpu_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL
from repro.metrics.flops import flops_byte_ratio
from repro.sched.ordering import count_feasible_orders

NETFLIX = PAPER_DATASETS["netflix"]
YAHOO = PAPER_DATASETS["yahoo"]
HUGEWIKI = PAPER_DATASETS["hugewiki"]


class TestSection2:
    def test_claim_flops_byte_043(self):
        """§2.3: 'for k = 128 and sizeof(r)=12 ... the Flops/Byte is 0.43'."""
        assert flops_byte_ratio(128) == pytest.approx(0.43, abs=0.01)

    def test_claim_memory_bound(self):
        """§2.3: 'SGD-based MF has low Flops/Byte ratio and is bound by
        memory' — on every platform in the study."""
        for device in (XEON_E5_2670_DUAL, MAXWELL_TITAN_X, PASCAL_P100):
            assert roofline_point(device, k=128).memory_bound

    def test_claim_libmf_bandwidth_drop(self):
        """§2.3: LIBMF's effective bandwidth 'drops by 45%' from Netflix to
        Hugewiki (194 -> 106 GB/s). Model: a >25% drop, same direction."""
        nf = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX).effective_bandwidth_gbs
        hw = libmf_cpu_throughput(XEON_E5_2670_DUAL, HUGEWIKI).effective_bandwidth_gbs
        assert hw < 0.75 * nf


class TestSection4:
    def test_claim_register_budget(self):
        """§4: '33 registers for each thread is enough ... concurrency is
        only limited by the number of thread blocks'."""
        from repro.gpusim.occupancy import register_limited_blocks

        assert register_limited_blocks(33) >= 32

    def test_claim_half_precision_halves_traffic(self):
        """§4: half precision 'halves the memory bandwidth need when
        accessing feature matrices' -> 2x the modelled update rate."""
        half = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, half_precision=True)
        full = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, half_precision=False)
        assert half.updates_per_sec / full.updates_per_sec == pytest.approx(2.0, rel=0.02)


class TestSection5:
    def test_claim_libmf_saturates_30_threads(self):
        """§5: 'the performance of LIBMF saturates around 30 concurrent
        workers (CPU threads)'."""
        r30 = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX, threads=30)
        r48 = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX, threads=48)
        r15 = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX, threads=15)
        assert r30.updates_per_sec > 1.8 * r15.updates_per_sec  # still rising at 15
        assert r48.updates_per_sec < 1.1 * r30.updates_per_sec  # flat past 30

    def test_claim_libmf_gpu_saturates_240_blocks(self):
        """§5: the O(a) port 'can only scale to 240 thread blocks, much
        lower than the hardware limit (768)'."""
        r240 = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, workers=240,
                               scheme="libmf_gpu", half_precision=False)
        r768 = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, workers=768,
                               scheme="libmf_gpu", half_precision=False)
        assert r768.updates_per_sec < 1.1 * r240.updates_per_sec

    def test_claim_027_billion_updates(self):
        """§5.3: 'both techniques achieve ~0.27 billion updates per second,
        ... 2.5 times faster than LIBMF'."""
        for scheme in ("batch_hogwild", "wavefront"):
            rate = cumf_throughput(MAXWELL_TITAN_X, NETFLIX, scheme=scheme).updates_per_sec
            assert rate == pytest.approx(0.27e9, rel=0.08)
        libmf = libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX).updates_per_sec
        assert cumf_throughput(MAXWELL_TITAN_X, NETFLIX).updates_per_sec > 2.2 * libmf


class TestSection7:
    def test_claim_cumf_beats_every_baseline_on_netflix_time(self):
        """§7.2/Table 4: cuMF_SGD-M outruns LIBMF, NOMAD-32 and BIDMach per
        epoch at paper scale."""
        cumf = epoch_seconds(MAXWELL_TITAN_X, NETFLIX)
        libmf = NETFLIX.n_train / libmf_cpu_throughput(XEON_E5_2670_DUAL, NETFLIX).updates_per_sec
        nomad = nomad_epoch_seconds(NETFLIX, 32)
        bidmach = NETFLIX.n_train / bidmach_throughput(MAXWELL_TITAN_X, NETFLIX)
        assert cumf < min(libmf, nomad, bidmach)

    def test_claim_nomad_loses_on_yahoo(self):
        """§7.2: 'on Yahoo!Music, NOMAD performs even worse than LIBMF that
        uses only one node.'"""
        nomad = nomad_epoch_seconds(YAHOO, 32)
        libmf = YAHOO.n_train / libmf_cpu_throughput(XEON_E5_2670_DUAL, YAHOO).updates_per_sec
        assert nomad > libmf

    def test_claim_nomad_64_similar_to_one_maxwell_on_hugewiki(self):
        """§7.2: 'NOMAD (on a 64-node HPC cluster) has similar performance
        with cuMF_SGD-M on Hugewiki, while it is much slower than
        cuMF_SGD-P.'"""
        nomad = nomad_epoch_seconds(HUGEWIKI, 64)
        cumf_m = epoch_seconds(MAXWELL_TITAN_X, HUGEWIKI)
        cumf_p = epoch_seconds(PASCAL_P100, HUGEWIKI)
        assert 0.3 <= nomad / cumf_m <= 3.0  # 'similar'
        assert nomad > 1.2 * cumf_p  # 'much slower than cuMF_SGD-P'

    def test_claim_pascal_23x_workers(self):
        """§7.3: Pascal 'allows up to 1792 parallel workers, which is 2.3
        times of that of Maxwell GPU'."""
        ratio = max_parallel_workers(PASCAL_P100) / max_parallel_workers(MAXWELL_TITAN_X)
        assert ratio == pytest.approx(2.33, abs=0.05)

    def test_claim_achieved_bandwidths(self):
        """§7.3: 'cuMF_SGD achieves up to 266 GB/s and 567 GB/s memory
        bandwidth' on Maxwell and Pascal."""
        m = cumf_throughput(MAXWELL_TITAN_X, NETFLIX).effective_bandwidth_gbs
        p = cumf_throughput(PASCAL_P100, NETFLIX).effective_bandwidth_gbs
        assert m == pytest.approx(266, rel=0.05)
        assert p == pytest.approx(567, rel=0.12)

    def test_claim_hugewiki_j_limit(self):
        """§7.5: with s=768 on Hugewiki (i=64), 'convergence is achieved
        when j <= 2 ... and fails when j = 4'."""
        from repro.core.convergence import is_safe_parallelism

        assert is_safe_parallelism(768, HUGEWIKI.m, HUGEWIKI.n, 64, 2)
        assert not is_safe_parallelism(768, HUGEWIKI.m, HUGEWIKI.n, 64, 4)

    def test_claim_fig15_8_of_24(self):
        """§7.6: 'only orders 1~8 out of the total 24 orders are feasible'."""
        assert count_feasible_orders(2, 2) == (8, 24)

    def test_claim_two_gpu_15x(self):
        """§7.7: 'two Pascal GPUs is 1.5X as fast as one' on Yahoo!Music."""
        from repro.gpusim.simulator import multi_gpu_epoch_seconds

        e1 = multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 1, 8, 8)
        e2 = multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 2, 8, 8)
        assert e1 / e2 == pytest.approx(1.5, abs=0.25)

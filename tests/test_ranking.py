"""Tests for repro.metrics.ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ranking import (
    hit_rate,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
    top_n,
)


class TestTopN:
    def test_basic(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert list(top_n(scores, 2)) == [1, 3]

    def test_exclude(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert list(top_n(scores, 2, exclude=np.array([1]))) == [3, 2]

    def test_ties_break_low_index(self):
        scores = np.array([0.5, 0.5, 0.5])
        assert list(top_n(scores, 2)) == [0, 1]

    def test_n_larger_than_items(self):
        assert len(top_n(np.array([1.0, 2.0]), 10)) == 2

    def test_all_excluded(self):
        assert len(top_n(np.array([1.0, 2.0]), 5, exclude=np.array([0, 1]))) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_n(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            top_n(np.zeros((2, 2)), 1)


class TestMetrics:
    REC = np.array([3, 1, 7])
    REL = np.array([1, 9])

    def test_hit_rate(self):
        assert hit_rate(self.REC, self.REL) == 1.0
        assert hit_rate(np.array([2, 4]), self.REL) == 0.0

    def test_precision(self):
        assert precision_at_n(self.REC, self.REL) == pytest.approx(1 / 3)

    def test_recall(self):
        assert recall_at_n(self.REC, self.REL) == pytest.approx(1 / 2)

    def test_ndcg_perfect_is_one(self):
        assert ndcg_at_n(np.array([1, 9]), self.REL) == pytest.approx(1.0)

    def test_ndcg_rank_sensitivity(self):
        early = ndcg_at_n(np.array([1, 5, 6]), self.REL)
        late = ndcg_at_n(np.array([5, 6, 1]), self.REL)
        assert early > late > 0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            hit_rate(np.array([]), self.REL)
        with pytest.raises(ValueError):
            ndcg_at_n(self.REC, np.array([]))


class TestMetricProperties:
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=10, unique=True),
        st.lists(st.integers(0, 50), min_size=1, max_size=10, unique=True),
    )
    @settings(max_examples=80)
    def test_all_metrics_in_unit_interval(self, rec, rel):
        rec, rel = np.array(rec), np.array(rel)
        for metric in (hit_rate, precision_at_n, recall_at_n, ndcg_at_n):
            value = metric(rec, rel)
            assert 0.0 <= value <= 1.0

    @given(st.lists(st.integers(0, 30), min_size=2, max_size=8, unique=True))
    @settings(max_examples=40)
    def test_recommending_relevant_set_maximizes_everything(self, rel):
        rel = np.array(rel)
        assert hit_rate(rel, rel) == 1.0
        assert precision_at_n(rel, rel) == 1.0
        assert recall_at_n(rel, rel) == 1.0
        assert ndcg_at_n(rel, rel) == pytest.approx(1.0)

"""Tests for the warp-level kernel model and the L1 cache simulator."""

import numpy as np
import pytest

from repro.core.kernels import single_update
from repro.gpusim.l1cache import (
    SetAssociativeCache,
    rating_stream_hit_rate,
)
from repro.gpusim.warp_kernel import (
    WARP_SIZE,
    WarpStats,
    shfl_down_reduce,
    warp_sgd_update,
)
from repro.metrics.flops import flops_per_update


class TestShuffleReduce:
    def test_sums_lane_values(self, rng):
        vals = rng.normal(size=WARP_SIZE).astype(np.float32)
        got = shfl_down_reduce(vals)
        assert got == pytest.approx(float(vals.astype(np.float64).sum()), rel=1e-5)

    def test_exact_on_integers(self):
        vals = np.arange(WARP_SIZE, dtype=np.float32)
        assert shfl_down_reduce(vals) == float(WARP_SIZE * (WARP_SIZE - 1) // 2)

    def test_counts_log2_shuffle_rounds(self):
        stats = WarpStats()
        shfl_down_reduce(np.ones(WARP_SIZE, np.float32), stats)
        assert stats.shuffles == 5  # offsets 16, 8, 4, 2, 1

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            shfl_down_reduce(np.ones(16, np.float32))


class TestWarpKernel:
    def _models(self, k, seed=0):
        rng = np.random.default_rng(seed)
        p = rng.normal(0, 0.2, (6, k)).astype(np.float32)
        q = rng.normal(0, 0.2, (5, k)).astype(np.float32)
        return p, q

    @pytest.mark.parametrize("k", [32, 64, 128])
    def test_matches_reference_update(self, k):
        """The warp program computes the same update as the reference
        serial kernel (to fp32 reduction-order tolerance)."""
        p1, q1 = self._models(k)
        p2, q2 = p1.copy(), q1.copy()
        err_warp = warp_sgd_update(p1, q1, 2, 3, 0.8, 0.05, 0.02)
        err_ref = single_update(p2, q2, 2, 3, 0.8, 0.05, 0.02)
        assert err_warp == pytest.approx(err_ref, rel=1e-5)
        np.testing.assert_allclose(p1, p2, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(q1, q2, rtol=1e-5, atol=1e-7)

    def test_k_must_be_warp_multiple(self):
        p, q = self._models(48)
        with pytest.raises(ValueError, match="multiple"):
            warp_sgd_update(p, q, 0, 0, 1.0, 0.1, 0.0)

    def test_flop_count_matches_eq5(self):
        """The instrumented warp flops: 2k (per-lane dot mul+add) + 31
        (5-round butterfly over 32 lanes) + 8k (update) + 1 (error)."""
        k = 128
        p, q = self._models(k)
        stats = WarpStats()
        warp_sgd_update(p, q, 0, 0, 1.0, 0.1, 0.01, stats)
        expected = 2 * k + (WARP_SIZE - 1) + 8 * k + 1
        assert stats.flops == expected
        # the Eq.5 accounting (6k + k-1) is the fused-FMA count; same order
        assert stats.flops < 2 * flops_per_update(k)

    def test_memory_phase_transactions(self):
        """Coalesced access: k=128 fp32 vectors need exactly 4 x 128B
        transactions per vector phase — the §4 memory-coalescing claim."""
        k = 128
        p, q = self._models(k)
        stats = WarpStats()
        warp_sgd_update(p, q, 0, 0, 1.0, 0.1, 0.01, stats)
        assert stats.transactions["load_p"] == 4
        assert stats.transactions["store_q"] == 4
        assert stats.transactions["sample"] == 1
        assert stats.ldg_loads == 1
        assert stats.global_loads == 2 * k
        assert stats.global_stores == 2 * k

    def test_convergence_through_warp_path(self):
        p, q = self._models(32, seed=3)
        r = 1.3
        for _ in range(40):
            warp_sgd_update(p, q, 1, 1, r, 0.1, 0.0)
        assert float(p[1] @ q[1]) == pytest.approx(r, abs=0.02)


class TestSetAssociativeCache:
    def test_repeat_access_hits(self):
        c = SetAssociativeCache(size_bytes=1024, line_bytes=128, ways=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(64)  # same 128B line
        assert c.result().hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        c = SetAssociativeCache(size_bytes=256, line_bytes=128, ways=2)  # 1 set
        c.access(0)
        c.access(128)
        c.access(256)  # evicts line 0
        assert not c.access(0)

    def test_lru_refresh_on_hit(self):
        c = SetAssociativeCache(size_bytes=256, line_bytes=128, ways=2)
        c.access(0)
        c.access(128)
        c.access(0)      # refresh line 0
        c.access(256)    # should evict 128, not 0
        assert c.access(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, line_bytes=128, ways=4)
        c = SetAssociativeCache()
        with pytest.raises(ValueError):
            c.access(-1)


class TestRatingStreamTrace:
    def test_eq8_threshold_behaviour(self):
        """Hit rate ~0 at f=1, near the 1 - 12/128 bound for f >= 16."""
        r1 = rating_stream_hit_rate(50_000, f=1, seed=0)
        r16 = rating_stream_hit_rate(50_000, f=16, seed=0)
        r256 = rating_stream_hit_rate(50_000, f=256, seed=0)
        assert r1.hit_rate < 0.2
        assert r16.hit_rate > 0.85
        assert r256.hit_rate == pytest.approx(1 - 12 / 128, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            rating_stream_hit_rate(0, f=4)
        with pytest.raises(ValueError):
            rating_stream_hit_rate(100, f=0)

"""Tests for repro.baselines: LIBMF, NOMAD, BIDMach, ALS."""

import numpy as np
import pytest

from repro.baselines.als import ALSSolver, als_epoch_flops, als_epoch_seconds
from repro.baselines.bidmach import BIDMachSGD, bidmach_throughput
from repro.baselines.libmf import LIBMFSolver
from repro.baselines.nomad import (
    NOMADSolver,
    nomad_epoch_seconds,
    nomad_memory_efficiency,
)
from repro.core.lr_schedule import NomadSchedule
from repro.data.synthetic import PAPER_DATASETS
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100
from repro.metrics.rmse import rmse

NETFLIX = PAPER_DATASETS["netflix"]
YAHOO = PAPER_DATASETS["yahoo"]
HUGEWIKI = PAPER_DATASETS["hugewiki"]


class TestLIBMF:
    def test_converges(self, tiny_problem):
        est = LIBMFSolver(k=8, threads=4, a=8, lam=0.05,
                          schedule=NomadSchedule(), seed=0)
        hist = est.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]
        assert est.score(tiny_problem.test) == pytest.approx(hist.final_test_rmse)

    def test_epoch_processes_about_nnz(self, tiny_problem):
        est = LIBMFSolver(k=8, threads=4, a=8, seed=0)
        hist = est.fit(tiny_problem.train, epochs=2)
        for n in hist.updates:
            # each epoch stops after crossing nnz; overshoot < one block
            assert tiny_problem.train.nnz <= n
            assert n < tiny_problem.train.nnz * 1.2

    def test_table_exercised(self, tiny_problem):
        est = LIBMFSolver(k=8, threads=4, a=8, seed=0)
        est.fit(tiny_problem.train, epochs=1)
        assert est.table is not None
        assert est.table.grants > 0
        assert est.table.scan_work > 0

    def test_a_equal_s_converges_worse(self, small_problem):
        """The Fig. 14 mechanism in the numeric path."""
        finals = {}
        for a in (6, 24):
            est = LIBMFSolver(k=8, threads=6, a=a, lam=0.05,
                              schedule=NomadSchedule(), seed=0)
            hist = est.fit(small_problem.train, epochs=4, test=small_problem.test)
            finals[a] = hist.final_test_rmse
        assert finals[6] > finals[24]

    def test_more_threads_than_rows_clamped(self, tiny_problem):
        est = LIBMFSolver(k=8, threads=50, a=4, seed=0)
        hist = est.fit(tiny_problem.train, epochs=1)
        assert hist.updates[0] >= tiny_problem.train.nnz

    def test_score_before_fit(self, tiny_problem):
        with pytest.raises(RuntimeError):
            LIBMFSolver().score(tiny_problem.test)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LIBMFSolver(k=0)
        with pytest.raises(ValueError):
            LIBMFSolver(threads=0)


class TestNOMADNumeric:
    def test_converges(self, tiny_problem):
        est = NOMADSolver(k=8, nodes=4, lam=0.05, seed=0)
        hist = est.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]

    def test_every_sample_once_per_epoch(self, tiny_problem):
        est = NOMADSolver(k=8, nodes=4, seed=0)
        hist = est.fit(tiny_problem.train, epochs=2)
        assert hist.updates == [tiny_problem.train.nnz] * 2

    def test_token_hops_accounted(self, tiny_problem):
        est = NOMADSolver(k=8, nodes=4, seed=0)
        est.fit(tiny_problem.train, epochs=2)
        assert est.token_hops == 2 * 4 * tiny_problem.train.n_cols

    def test_single_node_degenerates_to_serial(self, tiny_problem):
        est = NOMADSolver(k=8, nodes=1, seed=0)
        hist = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            NOMADSolver(nodes=0)


class TestNOMADPerf:
    def test_netflix_32_node_scaling_far_from_linear(self):
        """Paper: 'only achieves ~5.6X speedup when scaling from 1 node to
        32, which is far from perfect scaling'. The model lands in the same
        strongly sub-linear regime."""
        speedup = nomad_epoch_seconds(NETFLIX, 1) / nomad_epoch_seconds(NETFLIX, 32)
        assert 4.0 <= speedup <= 20.0
        assert speedup < 0.6 * 32  # far from perfect scaling

    def test_yahoo_network_bound(self):
        """Yahoo's n=625k tokens swamp the network: 32 nodes slower/epoch
        than a full modern CPU node running LIBMF."""
        t32 = nomad_epoch_seconds(YAHOO, 32)
        t1 = nomad_epoch_seconds(YAHOO, 1)
        assert t32 > t1 / 2  # nowhere near linear scaling

    def test_memory_efficiency_collapses(self):
        effs = [nomad_memory_efficiency(NETFLIX, n) for n in (8, 16, 32)]
        assert effs[0] > effs[1] > effs[2]
        assert effs[-1] < 0.15

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            nomad_epoch_seconds(NETFLIX, 0)
        with pytest.raises(ValueError):
            nomad_epoch_seconds(NETFLIX, 2, token_overhead_us=-1)


class TestBIDMach:
    def test_converges(self, tiny_problem):
        est = BIDMachSGD(k=8, batch=1024, lam=0.05, seed=0)
        hist = est.fit(tiny_problem.train, epochs=5, test=tiny_problem.test)
        assert hist.test_rmse[-1] < hist.test_rmse[0]

    def test_adagrad_accumulators_grow(self, tiny_problem):
        est = BIDMachSGD(k=8, batch=1024, seed=0)
        est.fit(tiny_problem.train, epochs=1)
        assert float(est._accum_p.sum()) > 0
        assert float(est._accum_q.sum()) > 0

    def test_minibatch_has_no_races(self):
        """Gradients on duplicate rows are accumulated, not lost."""
        est = BIDMachSGD(k=2, batch=4, base_rate=0.1, lam=0.0, seed=0)
        from repro.core.model import FactorModel

        est.model = FactorModel(
            np.ones((2, 2), np.float32), np.ones((3, 2), np.float32)
        )
        est._accum_p = np.zeros((2, 2), np.float32)
        est._accum_q = np.zeros((3, 2), np.float32)
        rows = np.array([0, 0], dtype=np.int32)
        cols = np.array([1, 2], dtype=np.int32)
        vals = np.array([5.0, 5.0], dtype=np.float32)
        p_before = est.model.p[0].copy()
        est._minibatch_step(est.model, rows, cols, vals)
        # both samples push p[0] up (err>0, q=1) -> mean gradient applied
        assert np.all(est.model.p[0] > p_before)

    def test_throughput_matches_table5_band(self):
        m = bidmach_throughput(MAXWELL_TITAN_X, NETFLIX) / 1e6
        p = bidmach_throughput(PASCAL_P100, NETFLIX) / 1e6
        assert 15 <= m <= 35  # paper: 25.2
        assert 20 <= p <= 45  # paper: 29.6
        assert p > m
        assert p / m < 2.0  # launch-bound: small cross-generation gain

    def test_invalid(self):
        with pytest.raises(ValueError):
            BIDMachSGD(batch=0)
        with pytest.raises(ValueError):
            bidmach_throughput(MAXWELL_TITAN_X, NETFLIX, batch=0)


class TestALS:
    def test_converges_fast_per_epoch(self, tiny_problem):
        est = ALSSolver(k=8, lam=0.05, seed=0)
        hist = est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)
        # ALS makes large per-epoch progress (exact half-steps)
        assert hist.test_rmse[0] < 0.95
        assert hist.test_rmse[-1] < hist.test_rmse[0] + 1e-9

    def test_exact_solve_on_noiseless_problem(self, rng):
        """With no noise and k >= k_true, ALS recovers the matrix."""
        from repro.data.synthetic import DatasetSpec, make_synthetic

        spec = DatasetSpec("exact", m=120, n=90, k=6, n_train=6000, n_test=600)
        prob = make_synthetic(spec, seed=1, k_true=4, noise_sigma=0.0)
        est = ALSSolver(k=6, lam=1e-4, seed=0, weighted_reg=False)
        hist = est.fit(prob.train, epochs=15, test=prob.test)
        assert hist.final_test_rmse < 0.05

    def test_objective_monotone_decreasing_train_rmse(self, tiny_problem):
        est = ALSSolver(k=8, lam=0.05, seed=0)
        est.fit(tiny_problem.train, epochs=4)
        p, q = est.model.as_float32()
        r1 = rmse(p, q, tiny_problem.train)
        est2 = ALSSolver(k=8, lam=0.05, seed=0)
        est2.fit(tiny_problem.train, epochs=1)
        p2, q2 = est2.model.as_float32()
        assert r1 <= rmse(p2, q2, tiny_problem.train) + 1e-6

    def test_epoch_flops_formula(self):
        f = als_epoch_flops(NETFLIX)
        assert f == pytest.approx(
            2 * NETFLIX.n_train * 128**2 + (NETFLIX.m + NETFLIX.n) * 128**3 / 3
        )

    def test_als_epoch_slower_than_sgd(self):
        """§7.4: ALS epochs are compute-heavy; slower than SGD epochs."""
        from repro.gpusim.simulator import epoch_seconds

        assert als_epoch_seconds(MAXWELL_TITAN_X, NETFLIX) > epoch_seconds(
            MAXWELL_TITAN_X, NETFLIX
        )

    def test_four_gpus_faster(self):
        assert als_epoch_seconds(MAXWELL_TITAN_X, NETFLIX, 4) < als_epoch_seconds(
            MAXWELL_TITAN_X, NETFLIX, 1
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            ALSSolver(k=0)
        with pytest.raises(ValueError):
            ALSSolver(lam=-1.0)
        with pytest.raises(ValueError):
            als_epoch_seconds(MAXWELL_TITAN_X, NETFLIX, 0)

"""Tests for repro.gpusim.multinode — the multi-node future-work model.

The defensible claims the model makes (and the paper's own analysis
implies):

* Hugewiki cannot scale across nodes at all — its n ≈ 40k caps safe
  parallelism below even one node's worth of workers (§7.7's conclusion).
* Yahoo!Music, the only both-dimensions-large workload, tolerates a couple
  of nodes before the segment hand-backs over the cluster network erase the
  gains — the same wall NOMAD hits (§2.3/§7.2).
"""

import pytest

from repro.data.synthetic import PAPER_DATASETS
from repro.gpusim.multinode import (
    NodeSpec,
    multinode_epoch_seconds,
    multinode_scaling_curve,
)
from repro.gpusim.simulator import multi_gpu_epoch_seconds
from repro.gpusim.specs import PASCAL_P100

YAHOO = PAPER_DATASETS["yahoo"]
HUGEWIKI = PAPER_DATASETS["hugewiki"]
NODE = NodeSpec(gpu=PASCAL_P100, gpus_per_node=2)


class TestEpochModel:
    def test_single_node_close_to_single_node_model(self):
        """With one node the multinode model should be in the same regime
        as the §6 multi-GPU model on the same grid."""
        multi = multi_gpu_epoch_seconds(PASCAL_P100, YAHOO, 2, 8, 8)
        mn = multinode_epoch_seconds(YAHOO, NODE, 1, i_blocks=8, j_blocks=8)
        assert mn == pytest.approx(multi, rel=0.5)

    def test_network_hand_backs_penalize_cross_node_grids(self):
        """On a fixed grid, the second node halves the rounds but charges
        every remote dispatch a network hand-back — which at this block
        granularity costs more than the compute it saves. This is the
        model's core claim: naive multi-node cuMF_SGD is network-bound,
        just like NOMAD."""
        one = multinode_epoch_seconds(YAHOO, NODE, 1, i_blocks=16, j_blocks=16)
        two = multinode_epoch_seconds(YAHOO, NODE, 2, i_blocks=16, j_blocks=16)
        assert two > one
        slow_net = NodeSpec(gpu=PASCAL_P100, gpus_per_node=2, network_gbs=0.5)
        two_slow = multinode_epoch_seconds(YAHOO, slow_net, 2, i_blocks=16, j_blocks=16)
        assert two_slow > two
        fast_net = NodeSpec(gpu=PASCAL_P100, gpus_per_node=2, network_gbs=500.0)
        two_fast = multinode_epoch_seconds(YAHOO, fast_net, 2, i_blocks=16, j_blocks=16)
        assert two_fast < one  # with NVLink-class fabric the scaling returns

    def test_validation(self):
        with pytest.raises(ValueError):
            multinode_epoch_seconds(YAHOO, NODE, 0)
        with pytest.raises(ValueError, match="independent"):
            multinode_epoch_seconds(YAHOO, NODE, 4, i_blocks=2, j_blocks=2)
        with pytest.raises(ValueError):
            multinode_scaling_curve(YAHOO, NODE, [])


class TestScalingStory:
    def test_hugewiki_unsafe_at_any_node_count(self):
        """§7.7: Hugewiki's n prevents multi-GPU (let alone multi-node)
        parallelism at full occupancy."""
        curve = multinode_scaling_curve(HUGEWIKI, NODE, [1, 2, 4])
        assert all(not safe for _, _, _, safe in curve)

    def test_yahoo_safe_at_small_scale(self):
        curve = multinode_scaling_curve(YAHOO, NODE, [1, 2])
        assert all(safe for _, _, _, safe in curve)

    def test_yahoo_gains_saturate_with_nodes(self):
        """The network hand-backs cap scaling: speedup at 8 nodes is not
        meaningfully better than at 2."""
        curve = dict(
            (n, speedup) for n, _, speedup, _ in
            multinode_scaling_curve(YAHOO, NODE, [1, 2, 8])
        )
        assert curve[2] > 0.9  # a couple of nodes roughly hold the line
        assert curve[8] < curve[2] * 1.3  # ...but 4x more nodes buy nothing

    def test_yahoo_eventually_unsafe(self):
        curve = multinode_scaling_curve(YAHOO, NODE, [8])
        assert not curve[0][3]

"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kernels import conflict_free_segments, sgd_wave_update, single_update
from repro.core.lr_schedule import NomadSchedule
from repro.core.model import FactorModel
from repro.core.partition import GridPartition
from repro.data.container import RatingMatrix
from repro.data.shuffle import invert_permutation
from repro.gpusim.contention import ContentionModel, scheduler_throughput
from repro.gpusim.streams import StagedBlock, StreamPipeline
from repro.metrics.flops import bytes_per_update, flops_per_update
from repro.sched.conflict import (
    ConflictCounter,
    collision_fraction,
    count_conflicts,
    expected_collision_fraction,
    wave_is_conflict_free,
)
from repro.sched.column_lock import ColumnLockArray


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def coo_samples(draw, max_dim=40, max_n=120):
    """Random (rows, cols, m, n) with valid bounds."""
    m = draw(st.integers(2, max_dim))
    n = draw(st.integers(2, max_dim))
    size = draw(st.integers(1, max_n))
    rows = draw(arrays(np.int32, size, elements=st.integers(0, m - 1)))
    cols = draw(arrays(np.int32, size, elements=st.integers(0, n - 1)))
    return rows, cols, m, n


class TestConflictProperties:
    @given(coo_samples())
    @settings(max_examples=60)
    def test_collision_fraction_matches_serial_count(self, data):
        rows, cols, _, _ = data
        # frac is an exact ratio but (c/n)*n is not always c in floats
        assert round(collision_fraction(rows, cols) * len(rows)) == count_conflicts(
            rows, cols
        )

    @given(coo_samples())
    @settings(max_examples=60)
    def test_conflict_free_iff_zero_collisions(self, data):
        rows, cols, _, _ = data
        assert wave_is_conflict_free(rows, cols) == (count_conflicts(rows, cols) == 0)

    @given(st.integers(1, 200), st.integers(1, 500), st.integers(1, 500))
    @settings(max_examples=60)
    def test_expected_collision_in_unit_interval(self, s, m, n):
        e = expected_collision_fraction(s, m, n)
        assert 0.0 <= e < 1.0

    @given(st.integers(2, 100), st.integers(2, 300))
    @settings(max_examples=40)
    def test_expected_collision_monotone_in_workers(self, s, dim):
        assert expected_collision_fraction(s, dim, dim) >= expected_collision_fraction(
            s - 1, dim, dim
        )

    @given(st.lists(coo_samples(), min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_observe_wave_accumulates_exact_counts(self, waves):
        """ConflictCounter must agree with the serial count_conflicts on
        every wave — the count is exact, never reconstructed from the
        rounded collision fraction."""
        counter = ConflictCounter()
        expected_conflicts = 0
        expected_attempts = 0
        for rows, cols, _, _ in waves:
            frac = counter.observe_wave(rows, cols)
            conflicts = count_conflicts(rows, cols)
            expected_conflicts += conflicts
            expected_attempts += len(rows)
            assert frac == conflicts / len(rows)
        assert counter.conflicts == expected_conflicts
        assert counter.attempts == expected_attempts
        assert counter.waves == len(waves)


class TestSegmentProperties:
    @given(coo_samples(), st.integers(1, 32))
    @settings(max_examples=60)
    def test_segments_partition_and_are_conflict_free(self, data, max_wave):
        rows, cols, _, _ = data
        segs = conflict_free_segments(rows, cols, max_wave=max_wave)
        # partition property
        assert segs[0][0] == 0 and segs[-1][1] == len(rows)
        assert all(b1 == a2 for (_, b1), (a2, _) in zip(segs, segs[1:]))
        for a, b in segs:
            assert 1 <= b - a <= max_wave
            assert wave_is_conflict_free(rows[a:b], cols[a:b])

    @given(coo_samples())
    @settings(max_examples=30)
    def test_segmented_wave_equals_serial_loop(self, data):
        """Replaying conflict-free segments == strict per-sample execution."""
        rows, cols, m, n = data
        assume(len(rows) <= 40)
        vals = np.linspace(-1, 1, len(rows)).astype(np.float32)
        m1 = FactorModel.initialize(m, n, 4, seed=1)
        m2 = FactorModel.initialize(m, n, 4, seed=1)
        for a, b in conflict_free_segments(rows, cols, max_wave=8):
            sgd_wave_update(m1.p, m1.q, rows[a:b], cols[a:b], vals[a:b], 0.05, 0.01)
        for u, v, r in zip(rows, cols, vals):
            single_update(m2.p, m2.q, int(u), int(v), float(r), 0.05, 0.01)
        np.testing.assert_allclose(m1.p, m2.p, rtol=1e-5, atol=1e-6)


class TestPartitionProperties:
    @given(coo_samples(), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=50)
    def test_partition_covers_exactly_once(self, data, i, j):
        rows, cols, m, n = data
        assume(i <= m and j <= n)
        ratings = RatingMatrix(rows, cols, np.ones(len(rows), np.float32), m, n)
        part = GridPartition(ratings, i, j)
        assert part.coverage_check()
        assert part.block_nnz().sum() == ratings.nnz

    @given(coo_samples(), st.integers(2, 5))
    @settings(max_examples=40)
    def test_blocks_in_same_row_never_independent(self, data, g):
        rows, cols, m, n = data
        assume(g <= m and g <= n)
        ratings = RatingMatrix(rows, cols, np.ones(len(rows), np.float32), m, n)
        part = GridPartition(ratings, g, g)
        for j1 in range(g):
            for j2 in range(g):
                assert not part.independent((0, j1), (0, j2)) or j1 != j2


class TestKernelProperties:
    @given(st.floats(0.001, 0.2), st.floats(0.0, 0.2), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_single_update_decreases_pointwise_loss(self, lr, lam, seed):
        """One SGD step with a small rate decreases the Eq. 3 sample loss."""
        rng = np.random.default_rng(seed)
        p = rng.normal(0, 0.3, size=(1, 6)).astype(np.float32)
        q = rng.normal(0, 0.3, size=(1, 6)).astype(np.float32)
        r = float(rng.normal())

        def loss(pm, qm):
            err = r - float(pm[0] @ qm[0])
            return err**2 + lam * float(pm[0] @ pm[0]) + lam * float(qm[0] @ qm[0])

        before = loss(p, q)
        assume(before > 1e-6)
        single_update(p, q, 0, 0, r, lr, lam)
        assert loss(p, q) < before + 1e-9

    @given(st.integers(1, 512))
    @settings(max_examples=30)
    def test_flops_and_bytes_positive_and_increasing(self, k):
        assert flops_per_update(k) > 0
        assert bytes_per_update(k) > bytes_per_update(k, feature_bytes=2) > 0
        if k > 1:
            assert flops_per_update(k) > flops_per_update(k - 1)


class TestScheduleProperties:
    @given(st.floats(0.001, 1.0), st.floats(0.01, 2.0), st.integers(0, 500))
    @settings(max_examples=60)
    def test_eq9_bounded_and_decreasing(self, alpha, beta, t):
        s = NomadSchedule(alpha=alpha, beta=beta)
        assert 0 < s(t) <= alpha
        assert s(t + 1) < s(t)


class TestLockProperties:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3)), max_size=40))
    @settings(max_examples=50)
    def test_lock_array_never_double_grants(self, ops):
        """Random acquire sequences: a column never has two owners; a grant
        to a held column always fails."""
        locks = ColumnLockArray(8)
        owner: dict[int, int] = {}
        for col, worker in ops:
            got = locks.try_acquire(col, worker)
            if col in owner:
                assert not got
            else:
                assert got
                owner[col] = worker
        for col, worker in owner.items():
            locks.release(col, worker)
        assert locks.all_free()


class TestPipelineProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 5), st.floats(0, 5), st.floats(0, 5)),
            min_size=1,
            max_size=12,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=60)
    def test_makespan_bounds(self, durations, depth):
        """Makespan is at least every stream's busy time and at most the
        fully serialized sum."""
        blocks = [StagedBlock(a, b, c) for a, b, c in durations]
        res = StreamPipeline(depth=depth).simulate(blocks)
        assert res.makespan >= res.h2d_busy - 1e-9
        assert res.makespan >= res.compute_busy - 1e-9
        assert res.makespan >= res.d2h_busy - 1e-9
        serial = sum(a + b + c for a, b, c in durations)
        assert res.makespan <= serial + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0, 5), st.floats(0, 5), st.floats(0, 5)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40)
    def test_deeper_pipeline_never_slower(self, durations):
        blocks = [StagedBlock(a, b, c) for a, b, c in durations]
        m1 = StreamPipeline(depth=1).simulate(blocks).makespan
        m2 = StreamPipeline(depth=3).simulate(blocks).makespan
        assert m2 <= m1 + 1e-9


class TestContentionProperties:
    @given(st.integers(1, 2000), st.floats(1e-7, 1e-3), st.floats(1, 1e4))
    @settings(max_examples=60)
    def test_throughput_monotone_in_workers_and_bounded(self, w, t_cs, upb):
        model = ContentionModel("m", t_critical=t_cs)
        r1 = scheduler_throughput(model, w, upb, 1e-6)
        r2 = scheduler_throughput(model, w + 1, upb, 1e-6)
        assert r2 >= r1 - 1e-9
        assert r1 <= upb / t_cs + 1e-6


class TestPermutationProperties:
    @given(st.integers(1, 200), st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_invert_permutation_involution(self, size, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(size)
        inv = invert_permutation(perm)
        assert np.array_equal(invert_permutation(inv), perm)
        assert np.array_equal(perm[inv], np.arange(size))


class TestHalfPrecisionProperties:
    @given(arrays(np.float32, 16, elements=st.floats(-2, 2, width=32)))
    @settings(max_examples=60)
    def test_fp16_round_trip_error_bounded(self, x):
        """fp16 storage error is within the format's relative epsilon for
        the parameter range MF models live in."""
        half = x.astype(np.float16).astype(np.float32)
        assert np.all(np.abs(half - x) <= np.maximum(np.abs(x) * 1e-3, 1e-3))

"""Tests for repro.core.lr_schedule."""

import numpy as np
import pytest

from repro.core.lr_schedule import (
    AdaGradSchedule,
    ConstantSchedule,
    NomadSchedule,
    schedule_from_name,
)


class TestConstant:
    def test_constant(self):
        s = ConstantSchedule(0.07)
        assert s(0) == s(5) == s(100) == 0.07

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule()(-1)


class TestNomad:
    def test_eq9_exact(self):
        """γ_t = α / (1 + β·t^1.5) with Table 3 Netflix parameters."""
        s = NomadSchedule(alpha=0.08, beta=0.3)
        assert s(0) == pytest.approx(0.08)
        assert s(1) == pytest.approx(0.08 / 1.3)
        assert s(4) == pytest.approx(0.08 / (1 + 0.3 * 8.0))

    def test_monotone_decreasing(self):
        s = NomadSchedule()
        rates = [s(t) for t in range(30)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_beta_controls_decay(self):
        fast = NomadSchedule(alpha=0.08, beta=0.5)
        slow = NomadSchedule(alpha=0.08, beta=0.1)
        assert fast(10) < slow(10)
        assert fast(0) == slow(0)


class TestAdaGrad:
    def test_requires_reset(self):
        s = AdaGradSchedule()
        with pytest.raises(RuntimeError, match="reset"):
            s.elementwise_rate(np.array([0]), np.array([0]))
        with pytest.raises(RuntimeError, match="reset"):
            s.accumulate(np.array([0]), np.array([0]), np.zeros((1, 2)), np.zeros((1, 2)))

    def test_rates_shrink_with_accumulation(self):
        s = AdaGradSchedule(base_rate=0.1)
        s.reset((4, 2), (3, 2))
        rows = np.array([1])
        cols = np.array([2])
        r0_p, r0_q = s.elementwise_rate(rows, cols)
        s.accumulate(rows, cols, np.ones((1, 2)), np.ones((1, 2)))
        r1_p, r1_q = s.elementwise_rate(rows, cols)
        assert np.all(r1_p < r0_p)
        assert np.all(r1_q < r0_q)

    def test_untouched_rows_keep_high_rate(self):
        s = AdaGradSchedule(base_rate=0.1)
        s.reset((4, 2), (3, 2))
        s.accumulate(np.array([1]), np.array([2]), np.ones((1, 2)), np.ones((1, 2)))
        rp, _ = s.elementwise_rate(np.array([0, 1]), np.array([0, 0]))
        assert np.all(rp[0] > rp[1])

    def test_scalar_rate_is_base(self):
        assert AdaGradSchedule(base_rate=0.3)(10) == 0.3

    def test_duplicate_rows_accumulate_twice(self):
        s = AdaGradSchedule()
        s.reset((2, 1), (2, 1))
        s.accumulate(np.array([0, 0]), np.array([0, 1]),
                     np.ones((2, 1)), np.ones((2, 1)))
        assert s._accum_p[0, 0] == pytest.approx(2.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls", [("constant", ConstantSchedule), ("nomad", NomadSchedule), ("adagrad", AdaGradSchedule)]
    )
    def test_lookup(self, name, cls):
        assert isinstance(schedule_from_name(name), cls)

    def test_kwargs_forwarded(self):
        s = schedule_from_name("nomad", alpha=0.5, beta=0.9)
        assert s.alpha == 0.5

    def test_unknown(self):
        with pytest.raises(KeyError):
            schedule_from_name("cosine")

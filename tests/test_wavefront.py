"""Tests for repro.core.wavefront.WavefrontScheduler."""

import numpy as np
import pytest

from repro.core.model import FactorModel
from repro.core.wavefront import WavefrontScheduler
from repro.metrics.rmse import rmse


class TestPreparation:
    def test_default_grid_is_s_by_2s(self):
        sched = WavefrontScheduler(workers=6)
        assert sched.col_blocks == 12

    def test_blocks_cover_all_samples(self, tiny_problem):
        sched = WavefrontScheduler(workers=4, seed=0)
        sched.prepare(tiny_problem.train)
        total = sum(
            len(sched.block_samples(w, c))
            for w in range(4)
            for c in range(int(sched.col_blocks))
        )
        assert total == tiny_problem.train.nnz

    def test_block_samples_in_bounds(self, tiny_problem):
        sched = WavefrontScheduler(workers=4, seed=0)
        sched.prepare(tiny_problem.train)
        m, n = tiny_problem.train.shape
        row_edges = np.linspace(0, m, 5).astype(int)
        col_edges = np.linspace(0, n, 9).astype(int)
        idx = sched.block_samples(2, 3)
        rows = tiny_problem.train.rows[idx]
        cols = tiny_problem.train.cols[idx]
        assert np.all((rows >= row_edges[2]) & (rows < row_edges[3]))
        assert np.all((cols >= col_edges[3]) & (cols < col_edges[4]))

    def test_block_samples_requires_prepare(self):
        with pytest.raises(RuntimeError, match="prepare"):
            WavefrontScheduler(workers=2).block_samples(0, 0)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_invalid_workers(self, workers):
        with pytest.raises(ValueError):
            WavefrontScheduler(workers=workers)


class TestEpoch:
    def test_update_count_equals_nnz(self, tiny_problem):
        sched = WavefrontScheduler(workers=4, seed=0)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        n = sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert n == tiny_problem.train.nnz

    def test_rounds_at_least_col_blocks(self, tiny_problem):
        """Each worker visits every column block once, so an epoch needs at
        least col_blocks rounds; contention adds more."""
        sched = WavefrontScheduler(workers=4, seed=0)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert sched.last_epoch_rounds >= sched.col_blocks

    def test_convergence(self, tiny_problem):
        sched = WavefrontScheduler(workers=4, seed=0)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        p, q = model.as_float32()
        before = rmse(p, q, tiny_problem.test)
        for _ in range(3):
            sched.run_epoch(model, tiny_problem.train, 0.08, 0.05)
        p, q = model.as_float32()
        assert rmse(p, q, tiny_problem.test) < before

    def test_wait_events_counted_under_contention(self, tiny_problem):
        """With a tight grid (c == s) workers must collide on columns."""
        sched = WavefrontScheduler(workers=6, col_blocks=6, seed=0)
        model = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
        assert sched.wait_events > 0

    def test_epoch_deterministic_given_seed(self, tiny_problem):
        models = []
        for _ in range(2):
            sched = WavefrontScheduler(workers=4, seed=9)
            model = FactorModel.initialize(
                tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
            )
            sched.run_epoch(model, tiny_problem.train, 0.05, 0.05)
            models.append(model)
        assert np.array_equal(models[0].p, models[1].p)

    def test_reprepare_on_new_ratings(self, tiny_problem, small_problem):
        sched = WavefrontScheduler(workers=4, seed=0)
        model_a = FactorModel.initialize(
            tiny_problem.spec.m, tiny_problem.spec.n, 8, seed=0
        )
        sched.run_epoch(model_a, tiny_problem.train, 0.05, 0.05)
        model_b = FactorModel.initialize(
            small_problem.spec.m, small_problem.spec.n, 8, seed=0
        )
        n = sched.run_epoch(model_b, small_problem.train, 0.05, 0.05)
        assert n == small_problem.train.nnz

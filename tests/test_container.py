"""Unit tests for repro.data.container.RatingMatrix."""

import numpy as np
import pytest

from repro.data.container import SAMPLE_BYTES, RatingMatrix


def _mk(rows, cols, vals, m=10, n=8, **kw):
    return RatingMatrix(
        np.asarray(rows), np.asarray(cols), np.asarray(vals), m, n, **kw
    )


class TestConstruction:
    def test_basic_properties(self, tiny_ratings):
        assert tiny_ratings.nnz == 30
        assert tiny_ratings.shape == (10, 8)
        assert len(tiny_ratings) == 30
        assert tiny_ratings.density == pytest.approx(30 / 80)

    def test_dtype_coercion(self):
        r = _mk([0, 1], [0, 1], [1.0, 2.0])
        assert r.rows.dtype == np.int32
        assert r.cols.dtype == np.int32
        assert r.vals.dtype == np.float32

    def test_sample_bytes_constant_matches_coo_layout(self):
        # 2 int32 + 1 float32 = 12 bytes, the Eq. 5 denominator term
        assert SAMPLE_BYTES == 12

    def test_nbytes(self, tiny_ratings):
        assert tiny_ratings.nbytes == 30 * 12

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree in length"):
            _mk([0, 1], [0], [1.0, 2.0])

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            _mk([10], [0], [1.0])

    def test_negative_col_rejected(self):
        with pytest.raises(ValueError, match="col index"):
            _mk([0], [-1], [1.0])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="invalid shape"):
            RatingMatrix(np.array([]), np.array([]), np.array([]), 0, 5)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            RatingMatrix(np.zeros((2, 2)), np.zeros(4), np.zeros(4), 5, 5)

    def test_empty_matrix_allowed(self):
        r = _mk([], [], [])
        assert r.nnz == 0
        assert r.density == 0.0


class TestDenseRoundTrip:
    def test_from_dense_nan_is_unobserved(self):
        dense = np.full((3, 3), np.nan, dtype=np.float32)
        dense[0, 1] = 2.5
        dense[2, 2] = -1.0
        r = RatingMatrix.from_dense(dense)
        assert r.nnz == 2
        assert r.shape == (3, 3)

    def test_round_trip(self, tiny_ratings):
        back = RatingMatrix.from_dense(tiny_ratings.to_dense())
        assert back.nnz == tiny_ratings.nnz
        orig = sorted(zip(tiny_ratings.rows, tiny_ratings.cols, tiny_ratings.vals))
        rt = sorted(zip(back.rows, back.cols, back.vals))
        assert orig == rt

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            RatingMatrix.from_dense(np.zeros(5))


class TestSelection:
    def test_take_preserves_shape(self, tiny_ratings):
        sub = tiny_ratings.take(np.arange(5))
        assert sub.nnz == 5
        assert sub.shape == tiny_ratings.shape

    def test_shuffled_is_permutation(self, tiny_ratings, rng):
        shuf = tiny_ratings.shuffled(rng)
        assert shuf.nnz == tiny_ratings.nnz
        assert sorted(zip(shuf.rows, shuf.cols)) == sorted(
            zip(tiny_ratings.rows, tiny_ratings.cols)
        )

    def test_copy_is_independent(self, tiny_ratings):
        c = tiny_ratings.copy()
        c.vals[0] = 99.0
        assert tiny_ratings.vals[0] != 99.0

    def test_block_slice(self, tiny_ratings):
        idx = tiny_ratings.block_slice(0, 5, 0, 4)
        assert np.all(tiny_ratings.rows[idx] < 5)
        assert np.all(tiny_ratings.cols[idx] < 4)
        # complement covers everything
        rest = tiny_ratings.block_slice(5, 10, 0, 8)
        rest2 = tiny_ratings.block_slice(0, 5, 4, 8)
        assert len(idx) + len(rest) + len(rest2) == tiny_ratings.nnz

    def test_batches_cover_all(self, tiny_ratings):
        total = sum(len(v) for _, _, v in tiny_ratings.batches(7))
        assert total == tiny_ratings.nnz

    def test_batches_rejects_nonpositive(self, tiny_ratings):
        with pytest.raises(ValueError):
            list(tiny_ratings.batches(0))

    def test_sorted_by_block_groups_contiguously(self, tiny_ratings):
        row_edges = np.array([0, 5, 10])
        col_edges = np.array([0, 4, 8])
        s = tiny_ratings.sorted_by_block(row_edges, col_edges)
        bi = np.searchsorted(row_edges, s.rows, side="right") - 1
        bj = np.searchsorted(col_edges, s.cols, side="right") - 1
        flat = bi * 2 + bj
        assert np.all(np.diff(flat) >= 0)


class TestStatistics:
    def test_row_counts_sum(self, tiny_ratings):
        assert tiny_ratings.row_counts().sum() == tiny_ratings.nnz
        assert len(tiny_ratings.row_counts()) == 10

    def test_col_counts_sum(self, tiny_ratings):
        assert tiny_ratings.col_counts().sum() == tiny_ratings.nnz
        assert len(tiny_ratings.col_counts()) == 8

    def test_mean_rating(self):
        r = _mk([0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        assert r.mean_rating() == pytest.approx(2.0)

    def test_mean_of_empty_is_zero(self):
        assert _mk([], [], []).mean_rating() == 0.0

    def test_validate_disjoint(self):
        a = _mk([0, 1], [0, 1], [1.0, 1.0])
        b = _mk([2, 3], [2, 3], [1.0, 1.0])
        c = _mk([0, 5], [0, 5], [1.0, 1.0])
        assert a.validate_disjoint(b)
        assert not a.validate_disjoint(c)

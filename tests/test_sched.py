"""Tests for repro.sched: conflict predicate, global table, column locks,
order enumeration."""

import threading

import numpy as np
import pytest

from repro.sched.column_lock import ColumnLockArray
from repro.sched.conflict import (
    collision_fraction,
    count_conflicts,
    expected_collision_fraction,
    independent,
    wave_is_conflict_free,
)
from repro.sched.ordering import (
    count_feasible_orders,
    enumerate_feasible_orders,
    feasible_order_fraction,
    is_feasible_order,
)
from repro.sched.table import GlobalScheduleTable


class TestConflictPredicate:
    def test_eq6(self):
        assert independent(0, 0, 1, 1)
        assert not independent(0, 0, 0, 1)  # shared row
        assert not independent(0, 0, 1, 0)  # shared col
        assert not independent(0, 0, 0, 0)

    def test_count_conflicts(self):
        rows = np.array([0, 1, 0, 2])
        cols = np.array([0, 1, 2, 1])
        # sample 2 repeats row 0; sample 3 repeats col 1
        assert count_conflicts(rows, cols) == 2

    def test_collision_fraction_matches_count(self, rng):
        rows = rng.integers(0, 8, size=50)
        cols = rng.integers(0, 8, size=50)
        assert collision_fraction(rows, cols) == pytest.approx(
            count_conflicts(rows, cols) / 50
        )

    def test_collision_fraction_empty(self):
        assert collision_fraction(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            count_conflicts(np.array([0]), np.array([0, 1]))

    def test_wave_is_conflict_free(self):
        assert wave_is_conflict_free(np.array([0, 1]), np.array([2, 3]))
        assert not wave_is_conflict_free(np.array([0, 0]), np.array([2, 3]))

    def test_expected_collision_monotone_in_s(self):
        vals = [expected_collision_fraction(s, 1000, 1000) for s in (1, 10, 100, 500)]
        assert vals[0] == 0.0
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_expected_collision_matches_empirical(self, rng):
        s, m, n = 64, 300, 300
        frac = np.mean(
            [
                collision_fraction(rng.integers(0, m, s), rng.integers(0, n, s))
                for _ in range(200)
            ]
        )
        assert expected_collision_fraction(s, m, n) == pytest.approx(frac, abs=0.02)

    def test_expected_collision_invalid(self):
        with pytest.raises(ValueError):
            expected_collision_fraction(4, 0, 5)


class TestGlobalTable:
    def test_acquire_release_cycle(self):
        t = GlobalScheduleTable(4, seed=0)
        blk = t.acquire(0)
        assert blk is not None
        assert t.n_in_flight == 1
        assert t.busy_rows[blk[0]] and t.busy_cols[blk[1]]
        t.release(0)
        assert t.n_in_flight == 0
        assert not t.busy_rows.any()

    def test_grants_are_pairwise_independent(self):
        t = GlobalScheduleTable(6, seed=1)
        blocks = [t.acquire(w) for w in range(6)]
        rows = [b[0] for b in blocks]
        cols = [b[1] for b in blocks]
        assert len(set(rows)) == 6 and len(set(cols)) == 6

    def test_exhaustion_returns_none(self):
        t = GlobalScheduleTable(2, seed=2)
        assert t.acquire(0) is not None
        assert t.acquire(1) is not None
        assert t.acquire(2) is None

    def test_double_acquire_rejected(self):
        t = GlobalScheduleTable(3)
        t.acquire(0)
        with pytest.raises(RuntimeError, match="already holds"):
            t.acquire(0)

    def test_release_without_hold_rejected(self):
        t = GlobalScheduleTable(3)
        with pytest.raises(RuntimeError, match="holds no block"):
            t.release(5)

    def test_scan_work_accounting(self):
        t_full = GlobalScheduleTable(10, policy="table")
        t_fast = GlobalScheduleTable(10, policy="rowcol")
        t_full.acquire(0)
        t_fast.acquire(0)
        assert t_full.scan_work == 100  # O(a^2)
        assert t_fast.scan_work == 20  # O(a)
        assert t_full.scan_cost_cells() == 100
        assert t_fast.scan_cost_cells() == 20

    def test_prefer_low_count_balances(self):
        """Over one epoch-worth of grants, update counts stay balanced."""
        t = GlobalScheduleTable(4, seed=3)
        for round_ in range(16):
            for w in range(2):
                t.acquire(w)
            for w in range(2):
                t.release(w)
        counts = t.update_counts
        assert counts.max() - counts.min() <= 1

    def test_stuck_worker_when_a_equals_s(self):
        """The Fig. 14 pathology: with all rows/cols busy, a releasing
        worker can only re-acquire its own block."""
        a = 4
        t = GlobalScheduleTable(a, seed=4, prefer_low_count=False)
        held = {w: t.acquire(w) for w in range(a)}
        for _ in range(10):
            t.release(0)
            new = t.acquire(0)
            assert new == held[0]

    def test_reset_epoch_clears_counts(self):
        t = GlobalScheduleTable(3)
        t.acquire(0)
        t.reset_epoch()
        assert t.update_counts.sum() == 0

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_a(self, bad):
        with pytest.raises(ValueError):
            GlobalScheduleTable(bad)

    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="policy"):
            GlobalScheduleTable(3, policy="magic")


class TestColumnLockArray:
    def test_acquire_release(self):
        locks = ColumnLockArray(4)
        assert locks.try_acquire(2, worker=0)
        assert locks.owner(2) == 0
        assert not locks.try_acquire(2, worker=1)
        locks.release(2, worker=0)
        assert locks.owner(2) == -1
        assert locks.try_acquire(2, worker=1)

    def test_contention_counters(self):
        locks = ColumnLockArray(2)
        locks.try_acquire(0, 0)
        locks.try_acquire(0, 1)
        locks.try_acquire(1, 1)
        assert locks.attempts == 3
        assert locks.contended == 1

    def test_wrong_owner_release(self):
        locks = ColumnLockArray(2)
        locks.try_acquire(0, 0)
        with pytest.raises(RuntimeError, match="owned by"):
            locks.release(0, 1)

    def test_bounds(self):
        locks = ColumnLockArray(2)
        with pytest.raises(IndexError):
            locks.try_acquire(5, 0)
        with pytest.raises(IndexError):
            locks.owner(-1)
        with pytest.raises(ValueError):
            locks.try_acquire(0, -1)

    def test_held_columns_and_all_free(self):
        locks = ColumnLockArray(5)
        assert locks.all_free()
        locks.try_acquire(1, 0)
        locks.try_acquire(3, 1)
        assert list(locks.held_columns()) == [1, 3]
        assert not locks.all_free()

    def test_thread_safety_mutual_exclusion(self):
        """Hammer one column from many threads: exactly one holder at a time."""
        locks = ColumnLockArray(1)
        holders = []
        errors = []

        def worker(wid):
            for _ in range(200):
                if locks.try_acquire(0, wid):
                    holders.append(wid)
                    if len(locks.held_columns()) != 1:
                        errors.append("multiple holders")
                    locks.release(0, wid)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert locks.all_free()
        assert len(holders) > 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ColumnLockArray(0)


class TestOrdering:
    def test_paper_example_8_of_24(self):
        assert count_feasible_orders(2, 2) == (8, 24)

    def test_serial_all_feasible(self):
        feasible, total = count_feasible_orders(2, 1)
        assert feasible == total == 24

    def test_feasible_orders_are_valid(self):
        for order in enumerate_feasible_orders(2, 2):
            assert is_feasible_order(order, 2)
            # first round must be a diagonal pair
            (r1, c1), (r2, c2) = order[0], order[1]
            assert r1 != r2 and c1 != c2

    def test_fraction_collapses_with_workers(self):
        fr = [feasible_order_fraction(3, s) for s in (1, 2, 3)]
        assert fr[0] == 1.0
        assert fr[0] > fr[1] > fr[2] > 0

    def test_infeasible_example(self):
        # blocks (0,0) and (0,1) share a row -> cannot run concurrently
        assert not is_feasible_order([(0, 0), (0, 1), (1, 0), (1, 1)], 2)

    def test_large_grid_rejected(self):
        with pytest.raises(ValueError, match="intractable"):
            list(enumerate_feasible_orders(4, 2))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            is_feasible_order([(0, 0)], 0)

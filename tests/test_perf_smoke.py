"""Smoke test for the hot-path benchmark (marker: ``perf``).

Runs ``benchmarks/bench_hot_path.py`` on its tiny quick config and checks
the emitted ``BENCH_hot_path.json`` document against the pinned schema.
Speed is *not* asserted here (timing on shared CI runners is noise at this
scale); bit-identity between the plan path and the naive reference is — it
is the benchmark's correctness contract and holds at any problem size.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_hot_path.py"
)


@pytest.fixture(scope="module")
def bench():
    """The benchmark module, loaded by path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location("bench_hot_path", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchHotPathSmoke:
    def test_quick_run_emits_valid_document(self, bench, tmp_path):
        out = tmp_path / "BENCH_hot_path.json"
        doc = bench.main(["--quick", "--out", str(out)])
        bench.validate_result(doc)  # raises on schema violations
        assert doc["config"] == bench.QUICK_CONFIG
        assert doc["bit_identical"] is True
        on_disk = json.loads(out.read_text())
        assert on_disk == doc

    def test_validate_rejects_malformed_documents(self, bench):
        good = {
            "benchmark": "hot_path",
            "schema_version": bench.SCHEMA_VERSION,
            "config": dict(bench.QUICK_CONFIG),
            "metrics": {
                "epoch_seconds": 0.1, "naive_epoch_seconds": 0.2,
                "speedup": 2.0, "updates_per_sec": 1e6,
                "plan_compiles": 1, "plan_repermutes": 1,
                "workspace_allocations": 2, "workspace_bytes": 1024,
            },
            "bit_identical": True,
        }
        bench.validate_result(good)
        for mutate in (
            lambda d: d.pop("bit_identical"),
            lambda d: d.update(benchmark="other"),
            lambda d: d.update(schema_version=99),
            lambda d: d["config"].update(nnz=0),
            lambda d: d["metrics"].update(speedup=-1.0),
            lambda d: d["metrics"].update(plan_compiles=1.5),
            lambda d: d["metrics"].pop("updates_per_sec"),
        ):
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError, match="invalid BENCH_hot_path"):
                bench.validate_result(bad)

    def test_naive_reference_matches_shipped_schedule(self, bench):
        """The embedded reference must draw the same waves as BatchHogwild
        — otherwise the race (and its bit-identity assertion) is vacuous."""
        import numpy as np

        from repro.core.hogwild import BatchHogwild

        shipped = BatchHogwild(workers=8, f=16, seed=4)
        naive = bench.NaiveBatchHogwild(workers=8, f=16, seed=4)
        for _ in range(2):  # first epoch permutes, second shuffles
            got = naive.wave_indices(1000)
            want = shipped.wave_indices(1000)
            assert len(got) == len(want)
            assert all(np.array_equal(a, b) for a, b in zip(got, want))

"""Smoke tests for the canonical benchmarks (marker: ``perf``).

Runs ``benchmarks/bench_hot_path.py`` and ``benchmarks/bench_parallel.py``
on their tiny quick configs and checks the emitted ``BENCH_*.json``
documents against the pinned schemas. Speed is *not* asserted here (timing
on shared CI runners is noise at this scale, and the 1-core case makes any
parallel-scaling assertion meaningless); bit-identity is — it is each
benchmark's correctness contract and holds at any problem size and core
count.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_PATH = BENCHMARKS / "bench_hot_path.py"


def _load(name: str):
    """Load a benchmark module by path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, BENCHMARKS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench():
    return _load("bench_hot_path")


@pytest.fixture(scope="module")
def bench_par():
    return _load("bench_parallel")


class TestBenchHotPathSmoke:
    def test_quick_run_emits_valid_document(self, bench, tmp_path):
        out = tmp_path / "BENCH_hot_path.json"
        doc = bench.main(["--quick", "--out", str(out)])
        bench.validate_result(doc)  # raises on schema violations
        assert doc["config"] == bench.QUICK_CONFIG
        assert doc["bit_identical"] is True
        on_disk = json.loads(out.read_text())
        assert on_disk == doc

    def test_validate_rejects_malformed_documents(self, bench):
        good = {
            "benchmark": "hot_path",
            "schema_version": bench.SCHEMA_VERSION,
            "config": dict(bench.QUICK_CONFIG),
            "meta": {"git_sha": "abc123def456", "timestamp_utc": "t",
                     "hostname": "h", "cpu_count": 4},
            "metrics": {
                "epoch_seconds": 0.1, "naive_epoch_seconds": 0.2,
                "speedup": 2.0, "updates_per_sec": 1e6,
                "profiler_overhead": 0.01,
                "sanitizer_overhead": 0.02,
                "plan_compiles": 1, "plan_repermutes": 1,
                "workspace_allocations": 2, "workspace_bytes": 1024,
            },
            "bit_identical": True,
        }
        bench.validate_result(good)
        for mutate in (
            lambda d: d.pop("bit_identical"),
            lambda d: d.update(benchmark="other"),
            lambda d: d.update(schema_version=99),
            lambda d: d["config"].update(nnz=0),
            lambda d: d["metrics"].update(speedup=-1.0),
            lambda d: d["metrics"].update(plan_compiles=1.5),
            lambda d: d["metrics"].pop("updates_per_sec"),
            lambda d: d["metrics"].pop("profiler_overhead"),
            # the 5% budget is part of the schema contract
            lambda d: d["metrics"].update(profiler_overhead=0.5),
            lambda d: d["metrics"].pop("sanitizer_overhead"),
            # likewise the sanitizer's 10% budget
            lambda d: d["metrics"].update(sanitizer_overhead=0.5),
            lambda d: d.pop("meta"),
            lambda d: d["meta"].pop("git_sha"),
        ):
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError, match="invalid BENCH_hot_path"):
                bench.validate_result(bad)

    def test_default_out_is_repo_root(self, bench):
        """BENCH_hot_path.json is canonical at the repo root (CI archives
        it from there)."""
        assert bench.DEFAULT_OUT == BENCHMARKS.parent / "BENCH_hot_path.json"

    def test_naive_reference_matches_shipped_schedule(self, bench):
        """The embedded reference must draw the same waves as BatchHogwild
        — otherwise the race (and its bit-identity assertion) is vacuous."""
        import numpy as np

        from repro.core.hogwild import BatchHogwild

        shipped = BatchHogwild(workers=8, f=16, seed=4)
        naive = bench.NaiveBatchHogwild(workers=8, f=16, seed=4)
        for _ in range(2):  # first epoch permutes, second shuffles
            got = naive.wave_indices(1000)
            want = shipped.wave_indices(1000)
            assert len(got) == len(want)
            assert all(np.array_equal(a, b) for a, b in zip(got, want))


class TestBenchParallelSmoke:
    def test_quick_run_emits_valid_document(self, bench_par, tmp_path):
        out = tmp_path / "BENCH_parallel.json"
        doc = bench_par.main(["--quick", "--out", str(out)])
        bench_par.validate_result(doc)  # raises on schema violations
        assert doc["config"] == bench_par.QUICK_CONFIG
        assert doc["bit_identical"] is True  # n_procs=1 == serial plan path
        assert doc["metrics"]["cpu_count"] >= 1
        on_disk = json.loads(out.read_text())
        assert on_disk == doc

    @staticmethod
    def _stall_report(executor: str) -> dict:
        from repro.obs.profiler import StallReport, WorkerPhases

        return StallReport(
            executor,
            [WorkerPhases(wid=w, wall_seconds=1.0,
                          seconds={"compute": 0.8, "barrier": 0.1})
             for w in range(2)],
        ).as_dict()

    def test_validate_rejects_malformed_documents(self, bench_par):
        metrics = {"cpu_count": 4, "oversubscribed": False}
        for key in bench_par.VARIANTS:
            metrics[f"{key}_epoch_seconds"] = 0.1
            metrics[f"{key}_updates_per_sec"] = 1e6
        metrics.update(threads_vs_serial=1.5, procs_vs_serial=2.0,
                       ooc_vs_procs=0.9, auto_vs_serial=2.0)
        good = {
            "benchmark": "parallel",
            "schema_version": bench_par.SCHEMA_VERSION,
            "config": dict(bench_par.QUICK_CONFIG),
            "meta": {"git_sha": "abc123def456", "timestamp_utc": "t",
                     "hostname": "h", "cpu_count": 4},
            "metrics": metrics,
            "auto": {"executor": "procs", "n_workers": 4,
                     "backend": "numpy", "reason": "measured"},
            "stall_report": self._stall_report("procs"),
            "stall_report_ooc": self._stall_report("procs_ooc"),
            "bit_identical": True,
        }
        bench_par.validate_result(good)
        for mutate in (
            lambda d: d.pop("bit_identical"),
            lambda d: d.update(benchmark="hot_path"),
            lambda d: d.update(schema_version=99),
            lambda d: d["config"].update(n_procs=0),
            lambda d: d["metrics"].update(procs_vs_serial=0),
            lambda d: d["metrics"].update(cpu_count=1.5),
            lambda d: d["metrics"].pop("ooc_vs_procs"),
            # v3 removed the deprecated alias outright
            lambda d: d["metrics"].update(ooc_overhead=0.9),
            # the acceptance bar: auto never loses to serial
            lambda d: d["metrics"].update(auto_vs_serial=0.8),
            lambda d: d["metrics"].pop("auto_vs_serial"),
            lambda d: d["metrics"].pop("oversubscribed"),
            lambda d: d["metrics"].update(oversubscribed=1),
            lambda d: d.pop("auto"),
            lambda d: d["auto"].update(executor="gpu"),
            lambda d: d["auto"].update(n_workers=0),
            lambda d: d["auto"].update(backend=""),
            lambda d: d.pop("meta"),
            lambda d: d["meta"].pop("hostname"),
            lambda d: d.pop("stall_report"),
            lambda d: d.pop("stall_report_ooc"),
            lambda d: d["stall_report"].update(executor="threads"),
            lambda d: d["stall_report"]["workers"].clear(),
            # fractions must sum to 1 ± 0.02 per worker
            lambda d: d["stall_report"]["workers"][0]["fractions"].update(
                compute=0.2),
            # measured phase seconds must fit inside the wall clock
            lambda d: (
                d["stall_report"]["workers"][0].update(wall_seconds=0.5),
                d["stall_report"]["workers"][0]["fractions"].update(
                    compute=0.8, barrier=0.1, replay=0.1),
            ),
        ):
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError, match="invalid BENCH_parallel"):
                bench_par.validate_result(bad)

    def test_quick_document_stall_reports(self, bench_par, tmp_path):
        """The emitted document embeds per-worker phase attribution whose
        fractions sum to 1 and whose measured seconds fit inside each
        worker's wall clock — the acceptance invariants."""
        import math

        out = tmp_path / "BENCH_parallel.json"
        doc = bench_par.main(["--quick", "--out", str(out)])
        for key, executor in (("stall_report", "procs"),
                              ("stall_report_ooc", "procs_ooc")):
            report = doc[key]
            assert report["executor"] == executor
            assert len(report["workers"]) == bench_par.QUICK_CONFIG["n_procs"]
            for w in report["workers"]:
                total = math.fsum(w["fractions"][p] for p in report["phases"])
                assert abs(total - 1.0) <= 0.02
                measured = math.fsum(
                    w["seconds"][p] for p in report["phases"] if p != "replay"
                )
                assert measured <= w["wall_seconds"] * 1.02 + 1e-6
        # v3 dropped the deprecated alias and grew the auto decision
        assert "ooc_overhead" not in doc["metrics"]
        assert doc["metrics"]["auto_vs_serial"] >= 1.0
        assert doc["auto"]["executor"] in ("serial", "threads", "procs")

    def test_default_out_is_repo_root(self, bench_par):
        assert bench_par.DEFAULT_OUT == BENCHMARKS.parent / "BENCH_parallel.json"

"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.synthetic import (
    PAPER_DATASETS,
    SCALED_DATASETS,
    DatasetSpec,
    dataset_registry,
    make_synthetic,
    scaled_dataset,
)
from repro.metrics.rmse import rmse


class TestSpecs:
    def test_paper_table2_values(self):
        nf = PAPER_DATASETS["netflix"]
        assert (nf.m, nf.n, nf.k) == (480_190, 17_771, 128)
        assert nf.n_train == 99_072_112
        assert nf.n_test == 1_408_395
        ya = PAPER_DATASETS["yahoo"]
        assert (ya.m, ya.n) == (1_000_990, 624_961)
        hw = PAPER_DATASETS["hugewiki"]
        assert hw.n_train == 3_069_817_980

    def test_table3_hyperparameters(self):
        assert PAPER_DATASETS["netflix"].lam == 0.05
        assert PAPER_DATASETS["yahoo"].lam == 1.0
        assert PAPER_DATASETS["hugewiki"].lam == 0.03
        assert all(s.alpha == 0.08 for s in PAPER_DATASETS.values())
        assert PAPER_DATASETS["yahoo"].beta == 0.2

    def test_table4_targets(self):
        assert PAPER_DATASETS["netflix"].target_rmse == 0.92
        assert PAPER_DATASETS["yahoo"].target_rmse == 22.0
        assert PAPER_DATASETS["hugewiki"].target_rmse == 0.52

    def test_density_and_bytes(self):
        spec = DatasetSpec("x", m=100, n=50, k=8, n_train=400, n_test=100)
        assert spec.n_samples == 500
        assert spec.density == pytest.approx(0.1)
        assert spec.coo_bytes == 400 * 12
        assert spec.feature_bytes() == 150 * 8 * 4
        assert spec.feature_bytes(half_precision=True) == 150 * 8 * 2

    def test_registry_contains_both_scales(self):
        reg = dataset_registry()
        assert "netflix" in reg and "netflix-syn" in reg
        assert len(reg) == len(PAPER_DATASETS) + len(SCALED_DATASETS)


class TestGeneration:
    def test_shapes_match_spec(self, tiny_spec, tiny_problem):
        assert tiny_problem.train.nnz == tiny_spec.n_train
        assert tiny_problem.test.nnz == tiny_spec.n_test
        assert tiny_problem.train.shape == (tiny_spec.m, tiny_spec.n)

    def test_train_test_disjoint(self, tiny_problem):
        assert tiny_problem.train.validate_disjoint(tiny_problem.test)

    def test_coordinates_unique(self, tiny_problem):
        keys = (
            tiny_problem.train.rows.astype(np.int64) * tiny_problem.train.n_cols
            + tiny_problem.train.cols
        )
        assert len(np.unique(keys)) == len(keys)

    def test_deterministic_by_seed(self, tiny_spec):
        a = make_synthetic(tiny_spec, seed=5)
        b = make_synthetic(tiny_spec, seed=5)
        assert np.array_equal(a.train.vals, b.train.vals)
        assert np.array_equal(a.train.rows, b.train.rows)

    def test_different_seeds_differ(self, tiny_spec):
        a = make_synthetic(tiny_spec, seed=5)
        b = make_synthetic(tiny_spec, seed=6)
        assert not np.array_equal(a.train.vals, b.train.vals)

    def test_ground_truth_achieves_noise_floor(self, tiny_problem):
        """Scoring the true factors reaches RMSE ~ noise_sigma on test data."""
        got = rmse(tiny_problem.p_true, tiny_problem.q_true, tiny_problem.test)
        assert got == pytest.approx(tiny_problem.noise_sigma, rel=0.1)
        assert tiny_problem.rmse_floor == tiny_problem.noise_sigma

    def test_rating_variance_matches_model(self, tiny_problem):
        """Signal variance is 1/k_true by construction, plus the noise."""
        var = float(np.var(tiny_problem.train.vals))
        k_true = tiny_problem.p_true.shape[1]
        expected = 1.0 / k_true + tiny_problem.noise_sigma**2
        assert var == pytest.approx(expected, rel=0.25)

    def test_custom_k_true_and_noise(self, tiny_spec):
        prob = make_synthetic(tiny_spec, seed=0, k_true=2, noise_sigma=0.1)
        assert prob.p_true.shape[1] == 2
        assert rmse(prob.p_true, prob.q_true, prob.test) == pytest.approx(0.1, rel=0.15)

    def test_scaled_dataset_by_name(self):
        prob = scaled_dataset("netflix-syn", seed=1)
        assert prob.spec.name == "netflix-syn"
        assert prob.train.nnz == SCALED_DATASETS["netflix-syn"].n_train

    def test_unknown_scaled_name(self):
        with pytest.raises(KeyError, match="unknown scaled data set"):
            scaled_dataset("nope")

    def test_overfull_grid_rejected(self):
        spec = DatasetSpec("bad", m=10, n=10, k=4, n_train=95, n_test=10)
        with pytest.raises(ValueError, match="unique cells"):
            make_synthetic(spec, seed=0)

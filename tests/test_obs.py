"""Tests for the telemetry subsystem: registry, tracer, hooks, collector,
contention counters, and the trace/metrics-dump CLI subcommands."""

import json
import math

import numpy as np
import pytest

from repro.core.trainer import CuMFSGD
from repro.metrics.throughput import ThroughputRecord
from repro.obs import (
    NULL_HOOKS,
    EpochEvent,
    MetricsRegistry,
    RecordingHooks,
    TelemetryCollector,
    TraceValidationError,
    Tracer,
    activate,
    active_hooks,
    resolve_hooks,
    validate_chrome_trace,
)
from repro.obs.tracer import SIM_PID, WALL_PID
from repro.sched.column_lock import ColumnLockArray, LockContentionStats
from repro.sched.conflict import ConflictCounter, count_conflicts

pytestmark = pytest.mark.obs


class TestRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("repro.test.events")
        c.inc()
        c.inc(4)
        assert reg.value("repro.test.events") == 5

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("g")
        assert math.isnan(g.value)
        g.set(3.5)
        g.set(2.0)
        assert g.value == 2.0 and g.updates == 2

    def test_labels_canonical_order(self):
        reg = MetricsRegistry()
        a = reg.counter("n", {"b": 2, "a": 1})
        b = reg.counter("n", {"a": 1, "b": 2})
        assert a is b
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_label_family(self):
        reg = MetricsRegistry()
        reg.gauge("ups", {"dev": "0"}).set(1.0)
        reg.gauge("ups", {"dev": "1"}).set(2.0)
        assert [g.value for g in reg.family("ups")] == [1.0, 2.0]
        assert "ups" in reg and len(reg) == 2

    def test_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.gauge("x", {"l": "1"})  # same name, different labels: still a kind clash

    def test_series(self):
        s = MetricsRegistry().series("rmse")
        s.append(1, 1.2)
        s.append(2, 0.9)
        assert s.xs == [1.0, 2.0] and s.values == [1.2, 0.9] and len(s) == 2

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", {"scheme": "wavefront"}).inc(7)
        reg.gauge("g").set(0.25)
        h = reg.histogram("h", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        s = reg.series("s", {"split": "test"})
        s.append(1, 1.1)
        restored = MetricsRegistry.from_json(reg.to_json())
        assert restored.to_dict() == reg.to_dict()
        assert restored.value("c", {"scheme": "wavefront"}) == 7
        rh = restored.get("h")
        assert rh.counts == [1, 1, 1, 1] and rh.total == 4
        assert rh.min == 0.05 and rh.max == 50.0

    def test_jsonl_lines_parse(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        path = tmp_path / "m.jsonl"
        reg.write_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        names = [json.loads(line)["name"] for line in lines]
        assert names == sorted(names)

    def test_write_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        path = reg.write_json(tmp_path / "m.json")
        assert MetricsRegistry.from_json(path.read_text()).value("a") == 3


class TestHistogram:
    def test_bucket_edges_le_convention(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1.0, 2.0, 4.0))
        # a value exactly on an edge belongs to that edge's bucket (le)
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 4.0001):
            h.observe(v)
        assert h.counts == [2, 2, 1, 1]  # [<=1, <=2, <=4, +inf]
        assert h.bucket_edges() == (1.0, 2.0, 4.0, math.inf)
        assert h.total == 6
        assert h.mean == pytest.approx(sum((0.5, 1.0, 1.5, 2.0, 4.0, 4.0001)) / 6)

    def test_edges_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("bad2", (2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("bad3", ())

    def test_reregister_same_buckets_ok_mismatch_raises(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1.0, 2.0))
        assert reg.histogram("h", (1.0, 2.0)) is h
        with pytest.raises(ValueError):
            reg.histogram("h", (1.0, 3.0))


class TestTracer:
    def test_chrome_trace_schema(self):
        tr = Tracer()
        tr.name_thread(SIM_PID, 0, "stream:compute")
        tr.add_span("block 0", 0.0, 1e-3, tid=0, args={"n": 3})
        tr.instant("epoch boundary")
        tr.counter("updates", {"updates": 42.0})
        with tr.span("wall work") as args:
            args["note"] = "x"
        doc = tr.to_chrome()
        assert validate_chrome_trace(doc) == 5
        assert doc["displayTimeUnit"] == "ms"

    def test_span_units_microseconds(self):
        tr = Tracer()
        tr.add_span("s", start_seconds=2.0, duration_seconds=0.5)
        ev = tr.events[0]
        assert ev["ph"] == "X" and ev["ts"] == 2.0e6 and ev["dur"] == 0.5e6
        assert ev["pid"] == SIM_PID

    def test_thread_name_dedup(self):
        tr = Tracer()
        tr.name_thread(1, 0, "a")
        tr.name_thread(1, 0, "a")
        assert len(tr.events) == 1

    def test_write_and_revalidate(self, tmp_path):
        tr = Tracer()
        tr.add_span("s", 0.0, 1.0, pid=WALL_PID)
        path = tr.write(tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == 1


class TestTraceSchema:
    def _base(self, **kw):
        ev = {"name": "e", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 0}
        ev.update(kw)
        return ev

    def test_accepts_bare_array(self):
        assert validate_chrome_trace([self._base()]) == 1

    def test_rejects_missing_dur(self):
        ev = self._base()
        del ev["dur"]
        with pytest.raises(TraceValidationError, match="dur"):
            validate_chrome_trace([ev])

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceValidationError, match="phase"):
            validate_chrome_trace([self._base(ph="Z")])

    def test_rejects_negative_ts(self):
        with pytest.raises(TraceValidationError, match="non-negative"):
            validate_chrome_trace([self._base(ts=-1)])

    def test_rejects_counter_without_args(self):
        ev = {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 0}
        with pytest.raises(TraceValidationError, match="args"):
            validate_chrome_trace([ev])

    def test_rejects_bad_metadata(self):
        ev = {"name": "bogus_meta", "ph": "M", "ts": 0, "pid": 1, "tid": 0}
        with pytest.raises(TraceValidationError, match="metadata"):
            validate_chrome_trace([ev])

    def test_rejects_bad_display_unit(self):
        with pytest.raises(TraceValidationError, match="displayTimeUnit"):
            validate_chrome_trace({"traceEvents": [], "displayTimeUnit": "s"})

    def test_error_pinpoints_index(self):
        with pytest.raises(TraceValidationError) as exc:
            validate_chrome_trace([self._base(), self._base(ph="Z")])
        assert exc.value.index == 1
        assert "traceEvents[1]" in str(exc.value)


class TestHooksProtocol:
    def test_null_hooks_inactive_noop(self):
        assert NULL_HOOKS.active is False
        NULL_HOOKS.on_epoch(None)  # all callbacks swallow anything
        NULL_HOOKS.on_batch(None)
        NULL_HOOKS.on_kernel(None)
        NULL_HOOKS.on_transfer(None)

    def test_resolve_defaults_to_null(self):
        assert resolve_hooks(None) is NULL_HOOKS
        assert active_hooks() is NULL_HOOKS

    def test_activate_scopes_ambient_collector(self):
        collector = TelemetryCollector()
        with activate(collector):
            assert resolve_hooks(None) is collector
        assert resolve_hooks(None) is NULL_HOOKS

    def test_epoch_event_rate(self):
        ev = EpochEvent(epoch=1, lr=0.1, n_updates=100, train_rmse=None,
                        test_rmse=1.0, seconds=2.0)
        assert ev.updates_per_sec == 50.0
        assert EpochEvent(epoch=1, lr=0.1, n_updates=5).updates_per_sec == 0.0


class TestNullCollectorIdentity:
    def test_history_identical_with_and_without_hooks(self, tiny_problem):
        def train(hooks):
            est = CuMFSGD(k=8, scheme="batch_hogwild", workers=16, seed=3,
                          hooks=hooks)
            return est.fit(tiny_problem.train, epochs=3, test=tiny_problem.test)

        bare = train(None)
        recording = RecordingHooks()
        instrumented = train(recording)
        # numerics are bit-identical; wall times are compare=False
        assert bare == instrumented
        assert bare.test_rmse == instrumented.test_rmse
        assert len(recording.epochs) == 3
        assert recording.epochs[0].nnz == tiny_problem.train.nnz

    def test_collector_populates_registry(self, tiny_problem):
        collector = TelemetryCollector()
        est = CuMFSGD(k=8, scheme="wavefront", workers=4, seed=3,
                      hooks=collector)
        est.fit(tiny_problem.train, epochs=2, test=tiny_problem.test)
        reg = collector.registry
        assert reg.get("repro.train.epoch_seconds").total == 2
        assert reg.value("repro.train.updates") == 2 * tiny_problem.train.nnz
        assert reg.value("repro.train.updates_per_sec") > 0
        assert reg.value("repro.sched.lock.attempts") > 0
        assert len(reg.series("repro.train.rmse", {"split": "test"})) == 2
        assert validate_chrome_trace(collector.tracer.to_chrome()) > 0

    def test_summary_headline_keys(self, tiny_problem):
        collector = TelemetryCollector()
        est = CuMFSGD(k=8, workers=32, seed=3, hooks=collector)
        est.fit(tiny_problem.train, epochs=2, test=tiny_problem.test)
        summary = collector.summary()
        assert summary["updates_per_sec"] > 0
        assert summary["effective_bandwidth_gbs"] > 0
        assert 0.0 <= summary["conflict_rate"] < 1.0


class TestThroughputFromHistory:
    def test_from_history_eq7(self):
        from repro.core.trainer import TrainHistory

        history = TrainHistory()
        for epoch in (1, 2):
            history.on_epoch(EpochEvent(epoch=epoch, lr=0.1, n_updates=1000,
                                        seconds=0.5))
        record = ThroughputRecord.from_history(history, nnz=1000, k=16,
                                               solver="t", workers=8)
        assert record.updates_per_sec == pytest.approx(2 * 1000 / 1.0)
        assert record.workers == 8

    def test_from_history_requires_elapsed(self):
        from repro.core.trainer import TrainHistory

        history = TrainHistory()
        history.record(1, 0.1, 1000, None, None)  # legacy path: no wall time
        with pytest.raises(ValueError):
            ThroughputRecord.from_history(history, nnz=1000)
        record = ThroughputRecord.from_history(history, nnz=1000,
                                               elapsed_seconds=2.0)
        assert record.updates_per_sec == 500.0


class TestLockContention:
    def test_counters(self):
        locks = ColumnLockArray(4)
        assert locks.try_acquire(0, worker=1)
        assert not locks.try_acquire(0, worker=2)  # held -> wait
        locks.abort(0, worker=2)
        locks.release(0, worker=1)
        stats = locks.stats()
        assert stats == LockContentionStats(attempts=2, waits=1, aborts=1,
                                            releases=1)
        assert stats.wait_fraction == 0.5
        assert locks.waits == locks.contended == 1

    def test_abort_error_cases(self):
        locks = ColumnLockArray(2)
        assert locks.try_acquire(1, worker=0)
        with pytest.raises(RuntimeError):
            locks.abort(1, worker=0)  # own column
        with pytest.raises(RuntimeError):
            locks.abort(0, worker=0)  # free column
        assert locks.stats().aborts == 0

    def test_stats_add(self):
        a = LockContentionStats(attempts=3, waits=1)
        b = LockContentionStats(attempts=2, waits=2, aborts=1, releases=4)
        assert a + b == LockContentionStats(5, 3, 1, 4)
        assert LockContentionStats().wait_fraction == 0.0


class TestConflictCounter:
    def test_observe_wave(self):
        counter = ConflictCounter()
        rows = np.array([0, 1, 0, 2])
        cols = np.array([0, 1, 2, 1])
        frac = counter.observe_wave(rows, cols)
        assert frac == pytest.approx(count_conflicts(rows, cols) / 4)
        assert counter.attempts == 4 and counter.conflicts == 2
        assert counter.conflict_rate == 0.5 and counter.waves == 1

    def test_abort_wave(self):
        counter = ConflictCounter()
        counter.abort_wave(8)
        assert counter.attempts == 8 and counter.aborts == 1
        assert counter.conflict_rate == 0.0
        with pytest.raises(ValueError):
            counter.abort_wave(-1)

    def test_merge(self):
        a = ConflictCounter(attempts=10, conflicts=2, waves=1)
        b = ConflictCounter(attempts=5, conflicts=1, aborts=1, waves=2)
        a.merge(b)
        assert a == ConflictCounter(attempts=15, conflicts=3, aborts=1, waves=3)


class TestObsCLI:
    def test_resolve_experiment_id(self):
        from repro.experiments.cli import resolve_experiment_id

        assert resolve_experiment_id("fig7") == "fig7"
        assert resolve_experiment_id("fig07") == "fig7"
        assert resolve_experiment_id("fig05") == "fig5b"  # unique prefix
        assert resolve_experiment_id("figure10") == "fig10"
        with pytest.raises(KeyError):
            resolve_experiment_id("fig99")

    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "trace.json"
        assert main(["trace", "fig10", "--no-probe", "--out", str(out)]) == 0
        assert "trace events" in capsys.readouterr().out
        validate_chrome_trace(json.loads(out.read_text()))

    def test_metrics_dump_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "metrics.json"
        assert main(["metrics-dump", "fig10", "--no-probe",
                     "--out", str(out)]) == 0
        restored = MetricsRegistry.from_json(out.read_text())
        assert "repro.perf.updates_per_sec" in restored

    def test_unknown_experiment_exit_code(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["metrics-dump", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err


class TestStrideUpdateAccounting:
    """Regression: the updates counter is exact for *any* kernel stride.

    The stride-window producers used to stamp each flushed event with only
    the last wave's length (and the tail flush with 0), so the
    ``repro.kernel.updates`` counter undercounted by up to ``(stride-1)/
    stride`` whenever ``kernel_sample_every > 1``. Events must carry the
    accumulated update total of every wave in their window: per epoch the
    counter sums to exactly ``nnz`` regardless of stride.
    """

    @pytest.mark.parametrize("stride", [1, 7, 64])
    @pytest.mark.parametrize("scheme", ["hogwild", "adagrad"])
    def test_updates_counter_equals_nnz_per_epoch(
        self, tiny_problem, stride, scheme
    ):
        from repro.core.adagrad import AdaGradHogwild
        from repro.core.hogwild import BatchHogwild
        from repro.core.model import FactorModel

        train = tiny_problem.train
        spec = tiny_problem.spec
        cls = BatchHogwild if scheme == "hogwild" else AdaGradHogwild
        sched = cls(workers=16, f=8, seed=3)
        model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
        collector = TelemetryCollector(kernel_sample_every=stride)
        n_waves = sched.compiled_plan(train.nnz).n_waves
        for epoch in range(1, 3):
            sched.run_epoch(model, train, 0.05, 0.05, hooks=collector)
            updates = collector.registry.get("repro.kernel.updates").value
            waves = collector.registry.get("repro.kernel.waves").value
            assert updates == epoch * train.nnz
            assert waves == epoch * n_waves

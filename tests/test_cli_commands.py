"""Tests for the train/plan/throughput CLI subcommands."""

import pytest

from repro.experiments.cli import main


class TestPlanCommand:
    def test_plan_netflix(self, capsys):
        assert main(["plan", "netflix"]) == 0
        out = capsys.readouterr().out
        assert "netflix" in out and "workers" in out

    def test_plan_multi_device(self, capsys):
        assert main(["plan", "yahoo", "--gpu", "pascal", "--devices", "2"]) == 0
        assert "2x Pascal" in capsys.readouterr().out

    def test_plan_unknown_dataset(self, capsys):
        assert main(["plan", "imdb"]) == 2
        assert "unknown data set" in capsys.readouterr().err

    def test_plan_fp32_slower(self, capsys):
        main(["plan", "netflix"])
        half = capsys.readouterr().out
        main(["plan", "netflix", "--fp32"])
        full = capsys.readouterr().out
        t_half = float(half.split(",")[-1].split("s/epoch")[0])
        t_full = float(full.split(",")[-1].split("s/epoch")[0])
        assert t_full > t_half


class TestThroughputCommand:
    def test_default(self, capsys):
        assert main(["throughput"]) == 0
        assert "M updates/s" in capsys.readouterr().out

    def test_scheme_and_workers(self, capsys):
        assert main(["throughput", "--scheme", "libmf_gpu", "--workers", "240"]) == 0
        assert "LIBMF-GPU" in capsys.readouterr().out

    def test_unknown_dataset(self, capsys):
        assert main(["throughput", "--dataset", "imdb"]) == 2


class TestTrainCommand:
    def test_unknown_dataset(self, capsys):
        assert main(["train", "imdb"]) == 2
        assert "unknown data set" in capsys.readouterr().err

    @pytest.mark.slow
    def test_train_netflix_syn_short(self, capsys, tmp_path):
        ck = tmp_path / "model"
        code = main([
            "train", "netflix-syn", "--epochs", "2", "--workers", "32",
            "--k", "8", "--save", str(ck),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "final test RMSE" in out
        assert (tmp_path / "model.npz").exists()


class TestTrainExecutors:
    def test_out_of_core_requires_procs(self, capsys):
        for executor in ("serial", "threads"):
            assert main([
                "train", "netflix-syn", "--executor", executor, "--out-of-core",
            ]) == 2
            assert "--out-of-core requires --executor procs" in (
                capsys.readouterr().err
            )

    def test_fault_plan_rejected_with_parallel_executor(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text("{}")
        assert main([
            "train", "netflix-syn", "--executor", "threads",
            "--fault-plan", str(plan),
        ]) == 2
        assert "--fault-plan" in capsys.readouterr().err

    @pytest.mark.slow
    def test_train_threads(self, capsys):
        code = main([
            "train", "netflix-syn", "--executor", "threads", "--procs", "2",
            "--epochs", "2", "--workers", "32", "--k", "8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "final test RMSE" in out
        assert "per-worker updates" in out

    @pytest.mark.slow
    def test_train_procs_out_of_core(self, capsys, tmp_path):
        ck = tmp_path / "model"
        code = main([
            "train", "netflix-syn", "--executor", "procs", "--procs", "2",
            "--epochs", "2", "--workers", "32", "--k", "8", "--out-of-core",
            "--save", str(ck),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "blockstore:" in out
        assert "staging:" in out
        assert (tmp_path / "model.npz").exists()

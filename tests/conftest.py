"""Shared fixtures: small synthetic problems and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.data.synthetic import DatasetSpec, make_synthetic


@pytest.fixture(scope="session")
def tiny_spec() -> DatasetSpec:
    return DatasetSpec(name="tiny", m=300, n=200, k=8, n_train=15_000, n_test=1_500)


@pytest.fixture(scope="session")
def tiny_problem(tiny_spec):
    return make_synthetic(tiny_spec, seed=42)


@pytest.fixture(scope="session")
def small_spec() -> DatasetSpec:
    return DatasetSpec(name="small", m=800, n=500, k=16, n_train=60_000, n_test=5_000)


@pytest.fixture(scope="session")
def small_problem(small_spec):
    return make_synthetic(small_spec, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture
def tiny_ratings(rng) -> RatingMatrix:
    """A handmade 10x8 rating matrix with 30 unique samples."""
    total = 10 * 8
    keys = rng.choice(total, size=30, replace=False)
    return RatingMatrix(
        rows=(keys // 8).astype(np.int32),
        cols=(keys % 8).astype(np.int32),
        vals=rng.normal(size=30).astype(np.float32),
        n_rows=10,
        n_cols=8,
        name="handmade",
    )


@pytest.fixture
def fresh_model() -> FactorModel:
    return FactorModel.initialize(m=50, n=40, k=8, seed=1)

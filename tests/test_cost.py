"""Tests for repro.gpusim.cost."""

import pytest

from repro.gpusim.cost import PLATFORM_COSTS, PlatformCost, cost_to_converge


class TestPlatformCost:
    def test_per_hour_sum(self):
        pc = PlatformCost("x", 1.0, 0.5)
        assert pc.per_hour == 1.5
        assert pc.cost(3600) == pytest.approx(1.5)
        assert pc.cost(0) == 0.0

    def test_negative_seconds(self):
        with pytest.raises(ValueError):
            PLATFORM_COSTS["maxwell-gpu"].cost(-1)

    def test_cluster_costs_dominate(self):
        hour = 3600
        assert cost_to_converge("hpc-cluster-64", hour) > cost_to_converge(
            "hpc-cluster-32", hour
        ) > cost_to_converge("cpu-server", hour) > cost_to_converge(
            "maxwell-gpu", hour
        )

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="unknown platform"):
            cost_to_converge("tpu-pod", 10)

    def test_registry_complete(self):
        assert {"maxwell-gpu", "pascal-gpu", "cpu-server",
                "hpc-cluster-32", "hpc-cluster-64"} == set(PLATFORM_COSTS)

"""Tests for repro.gpusim.planner."""

import pytest

from repro.data.synthetic import PAPER_DATASETS, DatasetSpec
from repro.gpusim.occupancy import max_parallel_workers
from repro.gpusim.planner import TrainingPlan, block_bytes, plan_training
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100

NETFLIX = PAPER_DATASETS["netflix"]
YAHOO = PAPER_DATASETS["yahoo"]
HUGEWIKI = PAPER_DATASETS["hugewiki"]


class TestBlockBytes:
    def test_shrinks_with_grid(self):
        assert block_bytes(HUGEWIKI, 64, 1) < block_bytes(HUGEWIKI, 8, 1)

    def test_half_precision_smaller(self):
        assert block_bytes(NETFLIX, 4, 4, True) < block_bytes(NETFLIX, 4, 4, False)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            block_bytes(NETFLIX, 0, 1)


class TestPlanTraining:
    def test_netflix_stays_resident_at_full_occupancy(self):
        plan = plan_training(NETFLIX, MAXWELL_TITAN_X)
        assert plan.grid == (1, 1)
        assert not plan.staged
        assert plan.workers == max_parallel_workers(MAXWELL_TITAN_X)
        assert plan.safe

    def test_hugewiki_must_stage(self):
        plan = plan_training(HUGEWIKI, MAXWELL_TITAN_X)
        assert plan.staged
        assert plan.grid[0] > 1
        assert plan.grid[1] <= 2  # the §7.5 j-limit at s=768
        assert plan.safe

    def test_multi_device_needs_independent_blocks(self):
        plan = plan_training(YAHOO, PASCAL_P100, n_devices=2)
        assert min(plan.grid) >= 2
        assert plan.n_devices == 2

    def test_tight_grid_warns_per_fig76(self):
        plan = plan_training(YAHOO, PASCAL_P100, n_devices=2)
        if min(plan.grid) < 4:
            assert any("§7.6" in w for w in plan.warnings)

    def test_safety_caps_workers_on_narrow_data(self):
        narrow = DatasetSpec("narrow", m=100_000, n=3_000, k=32,
                             n_train=1_000_000, n_test=10_000)
        plan = plan_training(narrow, MAXWELL_TITAN_X)
        assert plan.workers < max_parallel_workers(MAXWELL_TITAN_X)
        assert plan.safe
        assert any("safety rule" in w for w in plan.warnings)

    def test_require_safe_false_uses_occupancy_cap(self):
        narrow = DatasetSpec("narrow", m=100_000, n=3_000, k=32,
                             n_train=1_000_000, n_test=10_000)
        plan = plan_training(narrow, MAXWELL_TITAN_X, require_safe=False)
        assert plan.workers == max_parallel_workers(MAXWELL_TITAN_X)

    def test_tiny_dims_fall_back_to_one_safe_worker(self):
        tiny_dims = DatasetSpec("tiny-dims", m=30, n=30, k=8,
                                n_train=500, n_test=50)
        plan = plan_training(tiny_dims, MAXWELL_TITAN_X)
        assert plan.workers == 1
        assert plan.safe

    def test_infeasible_raises(self):
        # so dense that no grid (max 256x256) fits a block in device memory
        monster = DatasetSpec("monster", m=300, n=300, k=8,
                              n_train=50_000_000_000_000, n_test=1_000)
        with pytest.raises(ValueError, match="no feasible"):
            plan_training(monster, MAXWELL_TITAN_X)

    def test_invalid_devices(self):
        with pytest.raises(ValueError):
            plan_training(NETFLIX, MAXWELL_TITAN_X, n_devices=0)

    def test_pascal_epoch_faster(self):
        m = plan_training(NETFLIX, MAXWELL_TITAN_X)
        p = plan_training(NETFLIX, PASCAL_P100)
        assert p.epoch_seconds < m.epoch_seconds

    def test_str_mentions_grid_and_warnings(self):
        plan = TrainingPlan("d", "g", 1, (2, 2), 10, True, 1.0, 50.0,
                            warnings=["w1"])
        text = str(plan)
        assert "2x2" in text and "w1" in text

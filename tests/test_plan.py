"""Tests for repro.sched.plan: compiled epoch plans and workspace kernels.

The contract under test is *numerical invisibility*: compiling an epoch's
wave schedule into an :class:`EpochPlan` matrix and running the kernels
through a :class:`WaveWorkspace` must reproduce the legacy per-wave
implementation bit for bit — same RNG draws, same update order, same fp32
results. The legacy reference loops are embedded here verbatim so the
executors can never drift away from them unnoticed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adagrad import AdaGradHogwild
from repro.core.hogwild import BatchHogwild
from repro.core.kernels import (
    WaveWorkspace,
    conflict_free_segments,
    sgd_wave_update,
    wave_gradients,
)
from repro.core.model import FactorModel
from repro.sched.plan import EpochPlan, PlanStats, SerialPlan, prev_occurrence


# ----------------------------------------------------------------------
# legacy reference implementations (pre-plan semantics, kept verbatim)
# ----------------------------------------------------------------------
def legacy_wave_indices(order: np.ndarray, workers: int, f: int) -> list:
    """The per-wave Python list builder the plan replaced."""
    waves: list = []
    group_span = workers * f
    for lo in range(0, len(order), group_span):
        group = order[lo : lo + group_span]
        g = len(group)
        n_chunks = -(-g // f)
        pad = n_chunks * f - g
        if pad:
            group = np.concatenate([group, np.full(pad, -1, dtype=group.dtype)])
        grid = group.reshape(n_chunks, f)
        for t in range(f):
            wave = grid[:, t]
            wave = wave[wave >= 0]
            if len(wave):
                waves.append(wave)
    return waves


class LegacyBatchHogwild:
    """The pre-plan epoch executor: per-wave gathers, allocating kernel."""

    def __init__(self, workers: int, f: int, seed: int,
                 shuffle_each_epoch: bool = True) -> None:
        self.workers = workers
        self.f = f
        self.shuffle_each_epoch = shuffle_each_epoch
        self._rng = np.random.default_rng(seed)
        self._order: np.ndarray | None = None

    def wave_indices(self, nnz: int) -> list:
        if self._order is None or len(self._order) != nnz:
            self._order = self._rng.permutation(nnz).astype(np.int64)
        elif self.shuffle_each_epoch:
            self._rng.shuffle(self._order)
        return legacy_wave_indices(self._order, self.workers, self.f)

    def run_epoch(self, model, ratings, lr, lam_p, lam_q=None) -> int:
        lam_q = lam_p if lam_q is None else lam_q
        rows, cols, vals = ratings.rows, ratings.cols, ratings.vals
        updates = 0
        for wave in self.wave_indices(ratings.nnz):
            sgd_wave_update(
                model.p, model.q, rows[wave], cols[wave], vals[wave],
                lr, lam_p, lam_q,
            )
            updates += len(wave)
        return updates


# ----------------------------------------------------------------------
# EpochPlan structure
# ----------------------------------------------------------------------
class TestEpochPlan:
    @pytest.mark.parametrize(
        "nnz,workers,f",
        [(96, 4, 8), (100, 4, 8), (37, 4, 8), (12, 3, 4), (5, 8, 16), (1, 2, 2)],
    )
    def test_matches_legacy_wave_builder(self, nnz, workers, f):
        order = np.random.default_rng(0).permutation(nnz).astype(np.int64)
        plan = EpochPlan(order, workers, f)
        legacy = legacy_wave_indices(order, workers, f)
        assert plan.n_waves == len(legacy)
        for i, wave in enumerate(legacy):
            assert np.array_equal(plan.wave(i), wave)
        for got, want in zip(plan.iter_waves(), legacy):
            assert np.array_equal(got, want)
        arrays = plan.wave_arrays()
        assert all(np.array_equal(a, w) for a, w in zip(arrays, legacy))

    def test_covers_every_sample_once(self):
        order = np.random.default_rng(1).permutation(1000).astype(np.int64)
        plan = EpochPlan(order, 7, 13)
        flat = np.concatenate(plan.wave_arrays())
        assert np.array_equal(np.sort(flat), np.arange(1000))
        assert int(plan.lengths.sum()) == 1000
        assert plan.n_samples == 1000

    def test_padding_only_in_trailing_waves(self):
        """Short waves (tail group) must be a suffix of the schedule."""
        order = np.arange(100, dtype=np.int64)
        plan = EpochPlan(order, 4, 8)  # tail group of 4 samples
        lengths = plan.lengths
        short = np.flatnonzero(lengths < plan.width)
        if len(short):
            assert short[0] == plan.n_waves - len(short)
            assert np.all(np.diff(lengths[short[0]:]) <= 0) or True
            # every padded slot is trailing within its row
            for i in short:
                row = plan.matrix[i]
                assert np.all(row[: lengths[i]] >= 0)
                assert np.all(row[lengths[i]:] == -1)

    def test_repermute_matches_fresh_shuffle(self):
        """repermute draws exactly one rng.shuffle — same stream as legacy."""
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        order = rng_a.permutation(200).astype(np.int64)
        twin = rng_b.permutation(200).astype(np.int64)
        plan = EpochPlan(order, 4, 8)
        v0 = plan.version
        plan.repermute(rng_a)
        rng_b.shuffle(twin)
        assert np.array_equal(plan.order, twin)
        assert plan.version == v0 + 1
        legacy = legacy_wave_indices(twin, 4, 8)
        assert all(
            np.array_equal(plan.wave(i), w) for i, w in enumerate(legacy)
        )

    def test_repermute_reuses_buffers(self):
        order = np.random.default_rng(4).permutation(128).astype(np.int64)
        plan = EpochPlan(order, 4, 8)
        matrix_before = plan.matrix
        plan.repermute(np.random.default_rng(9))
        assert plan.matrix is matrix_before  # refilled in place, no realloc

    def test_stats_accounting(self):
        stats = PlanStats()
        order = np.arange(64, dtype=np.int64)
        plan = EpochPlan(order, 4, 4, stats=stats)
        assert stats.compiles == 1
        plan.repermute(np.random.default_rng(0))
        plan.note_cache_hit()
        assert stats == PlanStats(compiles=1, repermutes=1, cache_hits=1)
        assert stats.as_extra() == {
            "plan_compiles": 1, "plan_repermutes": 1, "plan_cache_hits": 1,
        }

    def test_matches_is_identity_based(self):
        order = np.arange(32, dtype=np.int64)
        plan = EpochPlan(order, 4, 4)
        assert plan.matches(plan.order, 4, 4)
        assert not plan.matches(plan.order.copy(), 4, 4)
        assert not plan.matches(plan.order, 8, 4)
        assert not plan.matches(plan.order, 4, 8)

    def test_wave_is_view(self):
        plan = EpochPlan(np.arange(64, dtype=np.int64), 4, 4)
        assert plan.wave(0).base is not None

    def test_empty_order(self):
        plan = EpochPlan(np.empty(0, dtype=np.int64), 4, 4)
        assert plan.n_waves == 0 and plan.wave_arrays() == []

    def test_validation(self):
        order = np.arange(8, dtype=np.int64)
        with pytest.raises(ValueError, match="workers"):
            EpochPlan(order, 0, 4)
        with pytest.raises(ValueError, match="f must be"):
            EpochPlan(order, 4, 0)


# ----------------------------------------------------------------------
# SerialPlan
# ----------------------------------------------------------------------
class TestSerialPlan:
    def test_prev_occurrence(self):
        x = np.array([3, 1, 3, 3, 1, 7])
        assert np.array_equal(prev_occurrence(x), [-1, -1, 0, 2, 1, -1])

    def test_segments_are_conflict_free_and_cover(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 12, size=200).astype(np.int32)
        cols = rng.integers(0, 9, size=200).astype(np.int32)
        plan = SerialPlan.compile(rows, cols, max_wave=16)
        segments = plan.segments()
        assert segments[0][0] == 0 and segments[-1][1] == 200
        for (a, stop), (b, _) in zip(segments, segments[1:]):
            assert stop == b  # contiguous, in order
        for start, stop in segments:
            assert 0 < stop - start <= 16
            assert len(set(rows[start:stop])) == stop - start
            assert len(set(cols[start:stop])) == stop - start

    def test_matches_conflict_free_segments(self):
        rng = np.random.default_rng(6)
        for trial in range(5):
            rows = rng.integers(0, 20, size=150).astype(np.int32)
            cols = rng.integers(0, 15, size=150).astype(np.int32)
            assert (
                SerialPlan.compile(rows, cols, max_wave=32).segments()
                == conflict_free_segments(rows, cols, max_wave=32)
            )

    def test_empty(self):
        plan = SerialPlan.compile(
            np.empty(0, np.int32), np.empty(0, np.int32)
        )
        assert plan.n_waves == 0 and plan.n_samples == 0


# ----------------------------------------------------------------------
# WaveWorkspace kernels: bit-exactness against the allocating path
# ----------------------------------------------------------------------
class TestWaveWorkspace:
    def _wave(self, rng, m, n, k, w, dtype=np.float32):
        p = rng.standard_normal((m, k)).astype(dtype)
        q = rng.standard_normal((n, k)).astype(dtype)
        rows = rng.integers(0, m, size=w).astype(np.int32)
        cols = rng.integers(0, n, size=w).astype(np.int32)
        vals = rng.standard_normal(w).astype(np.float32)
        return p, q, rows, cols, vals

    @pytest.mark.parametrize("dtype", [np.float32, np.float16])
    def test_wave_update_bit_identical(self, dtype):
        rng = np.random.default_rng(7)
        ws = WaveWorkspace()
        for w in (1, 5, 32, 17):  # exercise view cache + shrinking widths
            p, q, rows, cols, vals = self._wave(rng, 40, 30, 8, w, dtype)
            p2, q2 = p.copy(), q.copy()
            err_ref = sgd_wave_update(p, q, rows, cols, vals, 0.07, 0.03, 0.05)
            err_ws = sgd_wave_update(
                p2, q2, rows, cols, vals, 0.07, 0.03, 0.05, workspace=ws
            )
            assert p.tobytes() == p2.tobytes()
            assert q.tobytes() == q2.tobytes()
            assert err_ref.tobytes() == err_ws[: len(err_ref)].tobytes()
        assert ws.waves == 4

    def test_reserve_grows_monotonically(self):
        ws = WaveWorkspace()
        ws.reserve(16, 8)
        allocs = ws.allocations
        nbytes = ws.nbytes
        ws.reserve(8, 8)  # smaller fits: no realloc
        assert ws.allocations == allocs and ws.nbytes == nbytes
        ws.reserve(64, 8)
        assert ws.allocations == allocs + 1 and ws.nbytes > nbytes

    def test_bind_plan_caches_by_version(self):
        rng = np.random.default_rng(8)
        order = rng.permutation(96).astype(np.int64)
        plan = EpochPlan(order, 4, 8)
        rows = rng.integers(0, 10, size=96).astype(np.int32)
        cols = rng.integers(0, 10, size=96).astype(np.int32)
        vals = rng.standard_normal(96).astype(np.float32)
        ws = WaveWorkspace()
        ws.bind_plan(plan, rows, cols, vals)
        binds = ws.plan_binds
        ws.bind_plan(plan, rows, cols, vals)  # same plan+version: cached
        assert ws.plan_binds == binds
        plan.repermute(rng)
        rw, cw, vw = ws.bind_plan(plan, rows, cols, vals)  # version bumped
        assert ws.plan_binds == binds + 1
        for i in range(plan.n_waves):
            wave = plan.wave(i)
            w = len(wave)
            assert np.array_equal(rw[i, :w], rows[wave])
            assert np.array_equal(cw[i, :w], cols[wave])
            assert np.array_equal(vw[i, :w], vals[wave])

    def test_serial_update_bit_identical(self):
        from repro.core.kernels import sgd_serial_update

        rng = np.random.default_rng(9)
        p, q, rows, cols, vals = self._wave(rng, 25, 20, 8, 120)
        p2, q2 = p.copy(), q.copy()
        sgd_serial_update(p, q, rows, cols, vals, 0.05, 0.02)
        sgd_serial_update(
            p2, q2, rows, cols, vals, 0.05, 0.02, workspace=WaveWorkspace()
        )
        assert p.tobytes() == p2.tobytes() and q.tobytes() == q2.tobytes()


# ----------------------------------------------------------------------
# executor bit-identity: compiled plans reproduce the legacy epoch exactly
# ----------------------------------------------------------------------
class TestExecutorBitIdentity:
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_batch_hogwild_matches_legacy(self, tiny_problem, shuffle):
        train = tiny_problem.train
        spec = tiny_problem.spec
        model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
        reference = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
        sched = BatchHogwild(workers=16, f=8, seed=11,
                             shuffle_each_epoch=shuffle)
        legacy = LegacyBatchHogwild(workers=16, f=8, seed=11,
                                    shuffle_each_epoch=shuffle)
        allocs_after_first = None
        for _ in range(3):
            up = sched.run_epoch(model, train, 0.05, 0.05)
            un = legacy.run_epoch(reference, train, 0.05, 0.05)
            if allocs_after_first is None:
                allocs_after_first = sched.workspace.allocations
            assert up == un == train.nnz
            assert model.p.tobytes() == reference.p.tobytes()
            assert model.q.tobytes() == reference.q.tobytes()
        assert sched.plan_stats.compiles == 1
        if shuffle:
            assert sched.plan_stats.repermutes == 2
        else:
            assert sched.plan_stats.cache_hits == 2
        # steady-state epochs allocate nothing new
        assert sched.workspace.allocations == allocs_after_first

    def test_adagrad_matches_legacy(self, tiny_problem):
        train = tiny_problem.train
        spec = tiny_problem.spec
        model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
        reference = FactorModel.initialize(spec.m, spec.n, spec.k, seed=0)
        sched = AdaGradHogwild(workers=16, f=8, seed=11)
        twin = AdaGradHogwild(workers=16, f=8, seed=11)
        twin._ensure_state(reference)
        for _ in range(2):
            sched.run_epoch(model, train, 0.05, 0.05)
            # legacy loop, verbatim, fed by the twin's (identical) schedule
            rows, cols, vals = train.rows, train.cols, train.vals
            p, q = reference.p, reference.q
            for wave in twin.wave_indices(train.nnz):
                wr, wc, wv = rows[wave], cols[wave], vals[wave]
                _, gp, gq = wave_gradients(p, q, wr, wc, wv, 0.05, 0.05)
                twin.schedule.accumulate(wr, wc, gp, gq)
                rate_p, rate_q = twin.schedule.elementwise_rate(wr, wc)
                p[wr] = p[wr].astype(np.float32) + rate_p * gp
                q[wc] = q[wc].astype(np.float32) + rate_q * gq
            assert model.p.tobytes() == reference.p.tobytes()
            assert model.q.tobytes() == reference.q.tobytes()

    def test_wave_indices_still_covers(self):
        """The public testing hook keeps its legacy contract."""
        sched = BatchHogwild(workers=4, f=8, seed=0)
        waves = sched.wave_indices(100)
        flat = np.concatenate(waves)
        assert np.array_equal(np.sort(flat), np.arange(100))

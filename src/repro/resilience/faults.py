"""Deterministic fault model: what fails, when, and how it is observed.

A production MF service must survive device loss, flaky interconnects, and
SGD divergence; the paper's §6 workload-partition scheme stages blocks over
PCIe/NVLink and assumes every transfer and every device pass succeeds. This
module supplies the missing failure vocabulary:

* :class:`FaultPlan` — a declarative, seedable, serializable description of
  every fault in a run: transfer failures keyed by (device, dispatch,
  direction), device deaths keyed by dispatch ordinal, and stragglers.
  The plan is *pure data*: querying it never mutates anything, so the
  numeric executor (:class:`repro.core.multi_gpu.MultiDeviceSGD`) and the
  time simulator (:mod:`repro.gpusim.streams`) can consult the same plan
  without entangling their state.
* :class:`FaultInjector` — the stateful runtime view: it tracks each
  device's dispatch ordinal and death, and mirrors every fault event into
  the ambient metrics registry under ``repro.resilience.*`` (and into its
  own :attr:`~FaultInjector.events` dict, so counts are readable without a
  collector).
* :class:`FaultError` and subclasses — the typed errors raised when a
  fault is *not* recoverable (retries exhausted, every device lost).

Determinism contract: the same plan + the same seeds elsewhere produce the
same dispatch schedule, the same fault sequence, and byte-identical metric
dumps (asserted by ``tests/test_resilience.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.context import active_registry

__all__ = [
    "FaultError",
    "TransferFaultError",
    "DeviceLostError",
    "TrainingDivergedError",
    "TransferFault",
    "DeviceFailure",
    "Straggler",
    "FaultPlan",
    "FaultInjector",
]

_DIRECTIONS = ("h2d", "d2h", "any")


class FaultError(RuntimeError):
    """An injected fault the runtime could not recover from."""


class TransferFaultError(FaultError):
    """A staged transfer kept failing until the retry budget ran out."""


class DeviceLostError(FaultError):
    """No device remains to make progress on the pending workload."""


class TrainingDivergedError(FaultError):
    """Divergence persisted after the rollback budget was exhausted."""


# ----------------------------------------------------------------------
# fault specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransferFault:
    """``failures`` consecutive failed attempts of one staged transfer.

    ``dispatch`` is the 0-based ordinal of the dispatch *on that device*
    (the b-th block it stages), so the spec stays meaningful under any
    block-selection order.
    """

    device: int
    dispatch: int
    direction: str = "h2d"
    failures: int = 1

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )
        if self.failures < 1:
            raise ValueError(f"failures must be >= 1, got {self.failures}")
        if self.device < 0 or self.dispatch < 0:
            raise ValueError("device and dispatch must be non-negative")


@dataclass(frozen=True)
class DeviceFailure:
    """The device dies when asked to perform its ``after_dispatches``-th
    dispatch (0-based): it completes ``after_dispatches`` blocks, then is
    gone — the refused block must be rebalanced to a survivor."""

    device: int
    after_dispatches: int = 0

    def __post_init__(self) -> None:
        if self.device < 0 or self.after_dispatches < 0:
            raise ValueError("device and after_dispatches must be non-negative")


@dataclass(frozen=True)
class Straggler:
    """A slow device: its modelled compute runs ``slowdown`` times longer."""

    device: int
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1.0, got {self.slowdown}")


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """Every fault of one run, as pure data.

    Build one explicitly, via :meth:`random` (seeded), or load one from the
    JSON the ``--fault-plan`` CLI flag accepts. Queries are side-effect
    free; the stateful bookkeeping lives in :class:`FaultInjector`.
    """

    transfer_faults: tuple[TransferFault, ...] = ()
    device_failures: tuple[DeviceFailure, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "transfer_faults", tuple(self.transfer_faults))
        object.__setattr__(self, "device_failures", tuple(self.device_failures))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        kills = [f.device for f in self.device_failures]
        if len(kills) != len(set(kills)):
            raise ValueError("at most one DeviceFailure per device")
        slow = [s.device for s in self.stragglers]
        if len(slow) != len(set(slow)):
            raise ValueError("at most one Straggler per device")

    # -- queries --------------------------------------------------------
    def transfer_failures(self, device: int, dispatch: int, direction: str) -> int:
        """Planned consecutive failures for one transfer attempt site."""
        return sum(
            tf.failures
            for tf in self.transfer_faults
            if tf.device == device
            and tf.dispatch == dispatch
            and tf.direction in (direction, "any")
        )

    def killed_after(self, device: int) -> int | None:
        """Dispatch ordinal at which the device dies, or None if it never does."""
        for f in self.device_failures:
            if f.device == device:
                return f.after_dispatches
        return None

    def slowdown(self, device: int) -> float:
        for s in self.stragglers:
            if s.device == device:
                return s.slowdown
        return 1.0

    @property
    def empty(self) -> bool:
        return not (self.transfer_faults or self.device_failures or self.stragglers)

    # -- construction ---------------------------------------------------
    @classmethod
    def kill_one(cls, device: int, after_dispatches: int, seed: int = 0) -> "FaultPlan":
        """The documented kill-one-GPU-mid-epoch scenario."""
        return cls(
            device_failures=(DeviceFailure(device, after_dispatches),), seed=seed
        )

    @classmethod
    def random(
        cls,
        seed: int,
        n_devices: int,
        dispatches_per_device: int = 8,
        transfer_fault_rate: float = 0.05,
        max_failures: int = 2,
        kill_devices: int = 0,
        straggler_devices: int = 0,
        straggler_slowdown: float = 2.0,
    ) -> "FaultPlan":
        """A deterministic plan drawn from ``seed`` — same seed, same plan."""
        if n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {n_devices}")
        if not 0.0 <= transfer_fault_rate <= 1.0:
            raise ValueError("transfer_fault_rate must be in [0, 1]")
        if kill_devices + straggler_devices > n_devices:
            raise ValueError("more faulted devices than devices")
        rng = np.random.default_rng(seed)
        faults: list[TransferFault] = []
        for device in range(n_devices):
            for dispatch in range(dispatches_per_device):
                for direction in ("h2d", "d2h"):
                    if rng.random() < transfer_fault_rate:
                        faults.append(
                            TransferFault(
                                device=device,
                                dispatch=dispatch,
                                direction=direction,
                                failures=int(rng.integers(1, max_failures + 1)),
                            )
                        )
        order = rng.permutation(n_devices)
        kills = tuple(
            DeviceFailure(
                device=int(order[i]),
                after_dispatches=int(rng.integers(0, max(1, dispatches_per_device))),
            )
            for i in range(kill_devices)
        )
        stragglers = tuple(
            Straggler(device=int(order[kill_devices + i]), slowdown=straggler_slowdown)
            for i in range(straggler_devices)
        )
        return cls(
            transfer_faults=tuple(faults),
            device_failures=kills,
            stragglers=stragglers,
            seed=seed,
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "transfer_faults": [
                {
                    "device": tf.device,
                    "dispatch": tf.dispatch,
                    "direction": tf.direction,
                    "failures": tf.failures,
                }
                for tf in self.transfer_faults
            ],
            "device_failures": [
                {"device": f.device, "after_dispatches": f.after_dispatches}
                for f in self.device_failures
            ],
            "stragglers": [
                {"device": s.device, "slowdown": s.slowdown} for s in self.stragglers
            ],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "FaultPlan":
        return cls(
            transfer_faults=tuple(
                TransferFault(**tf) for tf in state.get("transfer_faults", ())
            ),
            device_failures=tuple(
                DeviceFailure(**f) for f in state.get("device_failures", ())
            ),
            stragglers=tuple(Straggler(**s) for s in state.get("stragglers", ())),
            seed=int(state.get("seed", 0)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# the stateful runtime view
# ----------------------------------------------------------------------
class FaultInjector:
    """Stateful consumer of a :class:`FaultPlan` for the numeric executor.

    Tracks per-device dispatch ordinals and deaths; every fault event is
    counted in :attr:`events` (always) and mirrored to the ambient
    :class:`~repro.obs.registry.MetricsRegistry` as a
    ``repro.resilience.*`` counter (when a collector is activated, or when
    an explicit ``registry`` is given — explicit wins, which is what the
    deterministic ``fault-demo`` dump relies on).
    """

    def __init__(self, plan: FaultPlan, registry=None) -> None:
        self.plan = plan
        self._registry = registry
        self._dispatches: dict[int, int] = {}
        self._dead: set[int] = set()
        #: local fault-event counts, independent of any registry
        self.events: dict[str, float] = {}

    # -- metrics --------------------------------------------------------
    def emit(self, name: str, amount: float = 1.0) -> None:
        """Count one resilience event locally and in the metrics registry."""
        self.events[name] = self.events.get(name, 0.0) + amount
        registry = self._registry if self._registry is not None else active_registry()
        if registry is not None:
            registry.counter(f"repro.resilience.{name}").inc(amount)

    # -- device lifecycle ----------------------------------------------
    def alive(self, device: int) -> bool:
        return device not in self._dead

    @property
    def dead_devices(self) -> frozenset[int]:
        return frozenset(self._dead)

    def dispatch_ordinal(self, device: int) -> int:
        """How many dispatches the device has completed so far."""
        return self._dispatches.get(device, 0)

    def begin_dispatch(self, device: int) -> bool:
        """May ``device`` take one more block? False once it is (or just
        now becomes) dead; the refused block stays with the caller."""
        if device in self._dead:
            return False
        killed_after = self.plan.killed_after(device)
        if killed_after is not None and self._dispatches.get(device, 0) >= killed_after:
            self._dead.add(device)
            self.emit("device_lost")
            return False
        return True

    def complete_dispatch(self, device: int) -> None:
        self._dispatches[device] = self._dispatches.get(device, 0) + 1

    # -- transfer faults ------------------------------------------------
    def transfer_failures(self, device: int, direction: str) -> int:
        """Planned failures for the device's *current* dispatch ordinal."""
        return self.plan.transfer_failures(
            device, self._dispatches.get(device, 0), direction
        )

    def slowdown(self, device: int) -> float:
        return self.plan.slowdown(device)

"""Checkpoint-based recovery and divergence rollback around ``CuMFSGD``.

HOGWILD!-style lock-free updates amplify divergence at aggressive learning
rates (Niu et al., 2011; the paper's §7.5 safety rule bounds *when*, not
*whether*). :class:`ResilientTrainer` drives the same executors as
:class:`repro.core.trainer.CuMFSGD` but owns the epoch loop, so it can:

* take an **atomic checkpoint** of the last known-good model every
  ``checkpoint_every`` epochs (plus an epoch-0 safety net);
* run **NaN/divergence guards** after every epoch (non-finite factors,
  non-finite RMSE, RMSE blow-up past ``divergence_factor`` x the best seen,
  or a :func:`repro.analysis.diagnostics.detect_divergence` rising run);
* on divergence, **roll back** to the last good checkpoint with the
  learning rate scaled by ``rollback_lr_factor`` (halved, by default),
  bounded by ``max_rollbacks`` — exhaustion raises the typed
  :class:`~repro.resilience.faults.TrainingDivergedError`;
* attach a :class:`~repro.resilience.faults.FaultPlan` to a multi-device
  executor, so device loss and flaky transfers are exercised under the
  same roof.

Every recovery action is mirrored into the ambient metrics registry as
``repro.resilience.*`` counters and kept in :attr:`ResilientTrainer.log`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.diagnostics import detect_divergence
from repro.core.checkpoint import load_model, save_model
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.trainer import CuMFSGD, TrainHistory
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse
from repro.obs.context import active_registry
from repro.obs.registry import M
from repro.obs.hooks import EpochEvent, TrainerHooks, resolve_hooks
from repro.resilience.faults import TrainingDivergedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

__all__ = ["ResilientTrainer", "RecoveryEvent"]

#: checkpoint file name inside the trainer's checkpoint directory
_CHECKPOINT_NAME = "last_good.npz"


@dataclass(frozen=True)
class RecoveryEvent:
    """One entry of the recovery log: what happened, after which epoch."""

    kind: str  # "checkpoint" | "divergence" | "rollback"
    epoch: int
    detail: dict = field(default_factory=dict)


class ResilientTrainer:
    """Fault-tolerant epoch loop over a configured :class:`CuMFSGD`.

    Parameters
    ----------
    estimator:
        The configured estimator; its model, schedule, scheme, and executor
        settings are reused. The trainer replaces ``estimator.fit``'s loop,
        not its configuration.
    checkpoint_dir:
        Directory for the rotating ``last_good.npz`` checkpoint (created if
        missing). Saves are atomic — a crash mid-save never clobbers the
        previous good checkpoint.
    checkpoint_every:
        Epoch interval between checkpoints. 1 checkpoints every epoch.
    max_rollbacks:
        Rollback budget; exceeding it raises :class:`TrainingDivergedError`.
    rollback_lr_factor:
        Multiplier applied to the learning-rate scale on every rollback.
    divergence_factor:
        RMSE larger than ``divergence_factor * best_so_far`` counts as
        divergence even while still finite.
    patience:
        Consecutive rising epochs that count as divergence (the
        :func:`detect_divergence` rule).
    fault_plan, retry:
        Optional :class:`FaultPlan` / :class:`RetryPolicy` attached to a
        multi-device executor, so simulated device loss and transfer
        faults run inside the recovering loop.
    """

    def __init__(
        self,
        estimator: CuMFSGD,
        checkpoint_dir: str | Path,
        checkpoint_every: int = 1,
        max_rollbacks: int = 3,
        rollback_lr_factor: float = 0.5,
        divergence_factor: float = 4.0,
        patience: int = 3,
        fault_plan: "FaultPlan | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if max_rollbacks < 0:
            raise ValueError(f"max_rollbacks must be >= 0, got {max_rollbacks}")
        if not 0.0 < rollback_lr_factor < 1.0:
            raise ValueError("rollback_lr_factor must be in (0, 1)")
        if divergence_factor <= 1.0:
            raise ValueError("divergence_factor must be > 1")
        self.estimator = estimator
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_every = checkpoint_every
        self.max_rollbacks = max_rollbacks
        self.rollback_lr_factor = rollback_lr_factor
        self.divergence_factor = divergence_factor
        self.patience = patience
        self.fault_plan = fault_plan
        self.retry = retry
        self.rollbacks = 0
        self.lr_scale = 1.0
        self.log: list[RecoveryEvent] = []
        self.events: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        return self.checkpoint_dir / _CHECKPOINT_NAME

    def _emit(self, name: str, amount: float = 1.0) -> None:
        self.events[name] = self.events.get(name, 0.0) + amount
        registry = active_registry()
        if registry is not None:
            registry.counter(f"repro.resilience.{name}").inc(amount)

    # ------------------------------------------------------------------
    def _diverged(self, model: FactorModel, guard: list[float], metric: float | None) -> bool:
        """The per-epoch safety gate: non-finite factors or a bad curve."""
        p, q = model.as_float32()
        if not (np.isfinite(p).all() and np.isfinite(q).all()):
            return True
        if metric is None:
            return False
        if not np.isfinite(metric):
            return True
        if guard and metric > self.divergence_factor * min(guard):
            return True
        if len(guard) >= self.patience:
            probe = TrainHistory()
            probe.test_rmse = guard + [metric]
            if detect_divergence(probe, patience=self.patience) == "diverging":
                return True
        return False

    @staticmethod
    def _truncate(history: TrainHistory, n_epochs: int) -> None:
        """Drop history rows beyond the checkpointed epoch after a rollback."""
        for name in (
            "epochs",
            "train_rmse",
            "test_rmse",
            "learning_rates",
            "updates",
            "epoch_seconds",
        ):
            rows = getattr(history, name)
            del rows[n_epochs:]

    def _save_checkpoint(self, epoch: int) -> None:
        save_model(
            self.checkpoint_path,
            self.estimator.model,
            epoch=epoch,
            metadata={"lr_scale": self.lr_scale, "rollbacks": self.rollbacks},
        )
        self._emit("checkpoints_saved")
        self.log.append(RecoveryEvent("checkpoint", epoch))

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 20,
        test: RatingMatrix | None = None,
        eval_train: bool = False,
        warm_start: bool = False,
        hooks: TrainerHooks | None = None,
    ) -> TrainHistory:
        """Train for ``epochs`` *good* epochs, recovering along the way.

        The returned :class:`TrainHistory` holds only epochs that survived
        the divergence gate; rolled-back epochs appear in :attr:`log` and
        the ``repro.resilience.*`` counters instead.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        est = self.estimator
        est._check_safety(train)
        if est.model is None or not warm_start:
            est.model = FactorModel.initialize(
                train.n_rows,
                train.n_cols,
                est.k,
                seed=est.seed,
                scale_factor=est.scale_factor,
                half_precision=est.half_precision,
            )
        executor = est._make_executor()
        if self.fault_plan is not None and isinstance(executor, MultiDeviceSGD):
            executor.attach_faults(self.fault_plan, self.retry)
        active_hooks = resolve_hooks(hooks if hooks is not None else est.hooks)
        history = TrainHistory()
        feature_bytes = 2 if est.half_precision else 4
        self.rollbacks = 0
        self.lr_scale = 1.0
        self.log = []
        guard: list[float] = []
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._save_checkpoint(0)  # epoch-0 safety net: rollback always has a target
        epoch = 0
        while epoch < epochs:
            lr = est.schedule(epoch) * self.lr_scale
            t0 = time.perf_counter()
            n_updates = executor.run_epoch(
                est.model, train, lr, est.lam, hooks=active_hooks
            )
            t1 = time.perf_counter()
            p, q = est.model.as_float32()
            with np.errstate(over="ignore", invalid="ignore"):
                tr = rmse(p, q, train) if eval_train else None
                te = rmse(p, q, test) if test is not None else None
            metric = te if te is not None else tr
            if self._diverged(est.model, guard, metric):
                self._emit("divergence_detected")
                self.log.append(
                    RecoveryEvent("divergence", epoch + 1, {"rmse": metric, "lr": lr})
                )
                if self.rollbacks >= self.max_rollbacks:
                    raise TrainingDivergedError(
                        f"divergence persisted after {self.rollbacks} rollbacks "
                        f"(budget {self.max_rollbacks}); last lr {lr:.6g}"
                    )
                ckpt = load_model(self.checkpoint_path)
                est.model = ckpt.model
                self.rollbacks += 1
                self.lr_scale *= self.rollback_lr_factor
                self._truncate(history, ckpt.epoch)
                del guard[ckpt.epoch:]
                # the failed attempt plus any good epochs past the checkpoint
                self._emit("rollback_epochs_lost", epoch - ckpt.epoch + 1)
                epoch = ckpt.epoch
                self._emit("rollbacks")
                self.log.append(
                    RecoveryEvent(
                        "rollback",
                        ckpt.epoch,
                        {"lr_scale": self.lr_scale, "rollbacks": self.rollbacks},
                    )
                )
                registry = active_registry()
                if registry is not None:
                    registry.gauge(M.RESILIENCE_LR_SCALE).set(self.lr_scale)
                continue
            if metric is not None:
                guard.append(float(metric))
            event = EpochEvent(
                epoch=epoch + 1,
                lr=lr,
                n_updates=n_updates,
                train_rmse=tr,
                test_rmse=te,
                seconds=t1 - t0,
                eval_seconds=time.perf_counter() - t1,
                nnz=train.nnz,
                k=est.k,
                feature_bytes=feature_bytes,
                scheme=est.scheme,
            )
            history.on_epoch(event)
            if active_hooks.active:
                active_hooks.on_epoch(event)
            epoch += 1
            self._emit("epochs_completed")
            if epoch % self.checkpoint_every == 0:
                self._save_checkpoint(epoch)
        injector = getattr(executor, "injector", None)
        if injector is not None:
            for name, amount in injector.events.items():
                self.events[name] = self.events.get(name, 0.0) + amount
        est.history = history
        return history

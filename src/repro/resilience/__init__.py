"""Fault injection and resilient training.

Three layers, mirroring how a production MF service survives failure:

* :mod:`repro.resilience.faults` — the deterministic, seedable
  :class:`FaultPlan` / :class:`FaultInjector` pair describing transfer
  failures, device deaths, and stragglers, plus the typed
  :class:`FaultError` hierarchy;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, bounded retries
  with exponential backoff charged to simulated time;
* :mod:`repro.resilience.trainer` — :class:`ResilientTrainer`, the
  checkpoint/rollback recovery loop over :class:`repro.core.trainer.CuMFSGD`.

The runtime consumers are :class:`repro.core.multi_gpu.MultiDeviceSGD`
(graceful degradation: a dead device's pending blocks rebalance across
survivors) and the :mod:`repro.gpusim` substrate (streams, event sim,
multinode model all take fault plans). Every fault and recovery action is
observable as ``repro.resilience.*`` metrics; see ``docs/RESILIENCE.md``.
"""

from repro.resilience.faults import (
    DeviceFailure,
    DeviceLostError,
    FaultError,
    FaultInjector,
    FaultPlan,
    Straggler,
    TrainingDivergedError,
    TransferFault,
    TransferFaultError,
)
from repro.resilience.retry import RetryOutcome, RetryPolicy
from repro.resilience.trainer import RecoveryEvent, ResilientTrainer

__all__ = [
    "FaultError",
    "TransferFaultError",
    "DeviceLostError",
    "TrainingDivergedError",
    "TransferFault",
    "DeviceFailure",
    "Straggler",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "RetryOutcome",
    "ResilientTrainer",
    "RecoveryEvent",
]

"""Bounded retries with exponential backoff, charged to *simulated* time.

The reproduction's transfers are modelled, not executed, so a "retry" does
not sleep: it charges the retransmission to the transfer ledger, counts the
attempt in ``repro.resilience.*`` metrics, and hands the backoff seconds to
whichever clock owns time — the :mod:`repro.gpusim.streams` pipeline adds
them to the staged block's phase duration, the numeric executor only counts
them. Policies are pure data, so the same plan + policy is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.faults import TransferFaultError

__all__ = ["RetryPolicy", "RetryOutcome"]


@dataclass(frozen=True)
class RetryOutcome:
    """What one fault site cost: attempts used and backoff charged."""

    attempts: int
    failures: int
    backoff_seconds: float

    @property
    def retried(self) -> bool:
        return self.failures > 0


@dataclass(frozen=True)
class RetryPolicy:
    """``max_attempts`` tries; attempt ``a`` (0-based) waits
    ``backoff_seconds * backoff_multiplier**a`` before retrying."""

    max_attempts: int = 3
    backoff_seconds: float = 1e-3
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Backoff charged after the ``attempt``-th failure (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        return self.backoff_seconds * self.backoff_multiplier**attempt

    def total_backoff(self, failures: int) -> float:
        """Backoff accumulated over ``failures`` consecutive failures."""
        return sum(self.backoff(a) for a in range(failures))

    def charge(self, planned_failures: int, what: str = "transfer") -> RetryOutcome:
        """Resolve one fault site with ``planned_failures`` consecutive
        failures against this policy.

        Raises :class:`~repro.resilience.faults.TransferFaultError` when the
        failures exhaust ``max_attempts``; otherwise returns the attempts
        used and the backoff seconds to charge to simulated time.
        """
        if planned_failures < 0:
            raise ValueError("planned_failures must be non-negative")
        if planned_failures >= self.max_attempts:
            raise TransferFaultError(
                f"{what} failed {self.max_attempts} consecutive attempts "
                f"(retry budget exhausted after "
                f"{self.total_backoff(self.max_attempts - 1):.6f}s backoff)"
            )
        return RetryOutcome(
            attempts=planned_failures + 1,
            failures=planned_failures,
            backoff_seconds=self.total_backoff(planned_failures),
        )

"""reprolint reporters: human-readable text and machine-readable JSON.

The JSON shape is stable (CI parses it): ``findings``/``suppressed``/
``baselined`` lists of finding dicts plus summary counts and the pass roster.
"""

from __future__ import annotations

import json

from repro.lint.driver import LintReport

__all__ = ["to_human", "to_json_dict", "to_json"]


def to_human(report: LintReport) -> str:
    lines: list[str] = [f.format() for f in report.findings]
    lines.extend(f"error: {err}" for err in report.errors)
    n, s, b = len(report.findings), len(report.suppressed), len(report.baselined)
    extras = []
    if s:
        extras.append(f"{s} suppressed")
    if b:
        extras.append(f"{b} baselined")
    extra = f" ({', '.join(extras)})" if extras else ""
    verdict = "clean" if report.clean else f"{n} finding{'s' if n != 1 else ''}"
    lines.append(
        f"reprolint: {verdict}{extra} across {len(report.files)} files "
        f"[{', '.join(report.passes)}]"
    )
    return "\n".join(lines)


def to_json_dict(report: LintReport) -> dict:
    return {
        "clean": report.clean,
        "counts": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "files": len(report.files),
            "errors": len(report.errors),
        },
        "passes": report.passes,
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "baselined": [f.to_dict() for f in report.baselined],
        "errors": report.errors,
    }


def to_json(report: LintReport, indent: int | None = 2) -> str:
    return json.dumps(to_json_dict(report), indent=indent, sort_keys=True)

"""Passes 6-7: parallel-machinery lifecycle discipline.

The process executor (PR 6) and the reprosan lifecycle ledger both learned
the hard way that POSIX shared memory and multiprocessing barriers fail
*open*: a ``SharedMemory`` segment nobody unlinks outlives the process tree
in ``/dev/shm``, and a ``Barrier.wait()`` with no timeout hangs the parent
forever when a worker dies mid-epoch. reprosan catches both at runtime
(:mod:`repro.san.lifecycle`, the crash watchdog in
:mod:`repro.parallel.procs`); these passes catch the *patterns that make
them possible* statically:

``shm-lifecycle``
    A file that creates segments (``SharedMemory(create=True)``) must also
    call ``.close()`` and ``.unlink()`` somewhere — the creating side owns
    the name and is the only side that can release it. A file that merely
    attaches (``SharedMemory(name=...)``) must still ``.close()`` its
    mapping.

``barrier-pairing``
    A file that constructs a ``Barrier`` must (a) wait on one, (b) have at
    least one *timed* wait (an argument or ``timeout=``) so a dead peer
    surfaces as ``BrokenBarrierError`` instead of a hang, and (c) call
    ``.abort()`` on some teardown path so the other side's waits break too.

Both are file-granular presence checks, not dataflow analyses: they cannot
prove the close matches the create, but they make "allocated a segment,
never wrote the release path" — the actual bug class — impossible to land
silently.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import FileContext, Finding, LintPass

__all__ = ["ShmLifecyclePass", "BarrierPairingPass"]


def _call_name(node: ast.Call) -> str:
    """Last dotted component of the callable: ``ctx.Barrier`` -> ``Barrier``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _method_calls(tree: ast.Module, names: frozenset[str]) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in names
        ):
            yield node


class ShmLifecyclePass(LintPass):
    rule = "shm-lifecycle"
    description = (
        "files creating SharedMemory segments must contain .close() and "
        ".unlink() calls; attach-only files must .close()"
    )
    tags = ("shm-leak",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        creates: list[ast.Call] = []
        attaches: list[ast.Call] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and _call_name(node) == "SharedMemory"):
                continue
            if any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                creates.append(node)
            else:
                attaches.append(node)
        if not creates and not attaches:
            return
        methods = {_call_name(c) for c in _method_calls(
            ctx.tree, frozenset({"close", "unlink"})
        )}
        if creates:
            missing = [m for m in ("close", "unlink") if m not in methods]
            if missing:
                verbs = " or ".join(f".{m}()" for m in missing)
                for call in creates:
                    yield Finding(
                        ctx.rel, call.lineno, call.col_offset, self.rule,
                        f"SharedMemory(create=True) but no {verbs} call in "
                        "this file; the creating side owns the segment name "
                        "and must release it or it leaks in /dev/shm",
                    )
        elif "close" not in methods:
            for call in attaches:
                yield Finding(
                    ctx.rel, call.lineno, call.col_offset, self.rule,
                    "SharedMemory attach with no .close() call in this "
                    "file; every mapping holds the segment open",
                )


class BarrierPairingPass(LintPass):
    rule = "barrier-pairing"
    description = (
        "files constructing a Barrier must wait on it, bound at least one "
        "wait with a timeout, and abort it on teardown"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        barriers = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call) and _call_name(node) == "Barrier"
        ]
        if not barriers:
            return
        waits = list(_method_calls(ctx.tree, frozenset({"wait"})))
        timed = [
            w for w in waits
            if w.args or any(kw.arg == "timeout" for kw in w.keywords)
        ]
        aborts = list(_method_calls(ctx.tree, frozenset({"abort"})))
        missing = []
        if not waits:
            missing.append("no .wait() call")
        elif not timed:
            missing.append("no timed .wait(timeout=...) — a dead peer "
                           "hangs every untimed waiter forever")
        if not aborts:
            missing.append("no .abort() call on any teardown path")
        if missing:
            for call in barriers:
                yield Finding(
                    ctx.rel, call.lineno, call.col_offset, self.rule,
                    "Barrier constructed but " + "; ".join(missing),
                )

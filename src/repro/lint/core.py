"""reprolint core: findings, file contexts, suppressions, the pass protocol.

reprolint is the repo's own AST-based invariant checker. PRs 1-3 built
subsystems whose correctness rests on *conventions* — allocation-free hot
paths, fp32-only kernel arithmetic, ``Generator``-threaded randomness,
``repro.*`` metric names, conflict-free schedules — and nothing enforced
them statically. Each convention is one :class:`LintPass`; this module holds
the machinery they share.

Suppression syntax
------------------
A finding is silenced by a ``# lint:`` comment carrying a tag the producing
pass accepts (its rule id always works; passes may accept aliases such as
``fp64-accumulator``). Text after ``--`` is a free-form justification::

    resid = vals.astype(np.float64)  # lint: fp64-accumulator -- bincount sums

A standalone ``# lint: <tag>`` comment suppresses matching findings on the
next line as well as its own. ``# lint: all`` silences every pass (use
sparingly). Suppressions are *counted* — reports show how many findings were
annotated away, and the baseline workflow (:mod:`repro.lint.driver`) exists
for grandfathering findings without touching the offending lines.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = [
    "Finding",
    "FileContext",
    "LintPass",
    "parse_suppressions",
    "load_file_context",
    "qualname_index",
]

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*(?P<tags>.*?)(?:\s*(?:--|—)\s.*)?$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: display path (posix, repo-relative when possible)
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""  #: enclosing function/class qualname, when known

    def format(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{sym}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Stable identity for the baseline file: survives line drift inside
        one function, resets when the code moves between functions."""
        return (self.rule, self.path, self.symbol or f"L{self.line}")

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class FileContext:
    """One parsed source file, shared by every pass."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    #: line number -> suppression tags declared for that line
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: AST function/class node -> dotted qualname ("Class.method")
    qualnames: dict[ast.AST, str] = field(default_factory=dict)

    def tags_for(self, line: int) -> set[str]:
        return self.suppressions.get(line, set())


class LintPass:
    """Base class for reprolint passes.

    Subclasses set ``rule`` (the id attached to findings and accepted as a
    suppression tag), optionally ``tags`` (extra accepted suppression
    aliases), and override :meth:`check_file` and/or :meth:`check_tree`.
    """

    rule: str = ""
    description: str = ""
    #: extra suppression tags accepted besides the rule id
    tags: tuple[str, ...] = ()

    def accepted_tags(self) -> set[str]:
        return {self.rule, "all", *self.tags}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Per-file AST walk; yield findings."""
        return ()

    def check_tree(self, files: list[FileContext]) -> Iterable[Finding]:
        """One whole-run check after all files were visited (optional)."""
        return ()

    def check_suppressions(
        self,
        contexts: list["FileContext"],
        raw: list[tuple["LintPass", Finding, set | None]],
        passes: list["LintPass"],
    ) -> Iterable[Finding]:
        """Meta-check over the run's *raw* (pre-filter) findings (optional).

        The driver calls this after every ``check_file``/``check_tree``
        finding has been collected, passing the shared contexts, the raw
        ``(pass, finding, tags)`` triples, and the pass instances. Used by
        passes whose subject is the lint run itself — e.g.
        ``suppression-stale``, which must see what *would* have fired to
        decide whether an annotation still earns its keep. Findings
        yielded here go through the normal suppression filter.
        """
        return ()


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Extract ``# lint:`` tags per line (standalone comments also cover the
    following line)."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            tags = {t for t in re.split(r"[,\s]+", m.group("tags").strip()) if t}
            if not tags:
                continue
            line = tok.start[0]
            out.setdefault(line, set()).update(tags)
            standalone = tok.line[: tok.start[1]].strip() == ""
            if standalone:
                out.setdefault(line + 1, set()).update(tags)
    except tokenize.TokenError:
        pass
    return out


def qualname_index(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every function/class def to its dotted qualname."""
    index: dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                index[child] = qual
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return index


def enclosing_symbol(
    ctx: FileContext, node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> str:
    """Qualname of the innermost def/class containing ``node``."""
    cur = parents.get(node)
    while cur is not None:
        if cur in ctx.qualnames:
            return ctx.qualnames[cur]
        cur = parents.get(cur)
    return ""


def parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }


def load_file_context(path: Path, rel: str | None = None) -> FileContext:
    """Read + parse one file into a :class:`FileContext` (raises SyntaxError)."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    ctx = FileContext(
        path=path,
        rel=rel if rel is not None else path.as_posix(),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    ctx.qualnames = qualname_index(tree)
    return ctx

"""reprolint: the repo's own static-analysis framework.

An AST-based invariant checker + schedule race detector that locks in the
guarantees earlier PRs established by construction:

* ``hotpath-alloc`` — registered hot-path functions stay allocation-free in
  steady state (:mod:`repro.lint.allocations`);
* ``dtype-fp64`` — no fp64 leakage into the fp32 kernel path
  (:mod:`repro.lint.dtypes`);
* ``rng-legacy`` — all randomness flows through seeded ``Generator`` objects
  (:mod:`repro.lint.rng`);
* ``metric-name`` — every ``repro.*`` metric name matches the manifest in
  :mod:`repro.obs.registry` (:mod:`repro.lint.telemetry`);
* ``race-shared-write`` / ``race-schedule`` — threaded executors respect the
  declared lock discipline, and compiled schedules are mechanically verified
  conflict-free (:mod:`repro.lint.races`);
* ``shm-lifecycle`` / ``barrier-pairing`` — shared-memory segments are
  released and barriers carry a timed wait plus an abort path
  (:mod:`repro.lint.parallelism`);
* ``suppression-stale`` — every ``# lint:`` annotation still silences a
  finding some pass would otherwise report (:mod:`repro.lint.stale`).

reprolint is the *static* half of the checking story; its runtime
complement is reprosan (:mod:`repro.san`), which observes the executors
live. ``docs/STATIC_ANALYSIS.md`` has the division of labor.

Entry points: ``repro lint`` / ``cumf-sgd lint`` (main CLI),
``python -m repro.lint`` (standalone), :func:`run_lint` (library), and the
tier-1 gate ``tests/test_lint_clean.py``. See ``docs/STATIC_ANALYSIS.md``.
"""

from repro.lint.core import FileContext, Finding, LintPass
from repro.lint.driver import (
    DEFAULT_PASSES,
    LintReport,
    iter_python_files,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.hotpaths import HOT_FUNCTIONS, HotSpec, hot_path
from repro.lint.races import (
    check_epoch_plan,
    check_round_grants,
    check_serial_plan,
    check_wavefront_sequences,
    schedule_selfcheck,
    simulate_wavefront_rounds,
)
from repro.lint.report import to_human, to_json, to_json_dict

__all__ = [
    "Finding",
    "FileContext",
    "LintPass",
    "LintReport",
    "DEFAULT_PASSES",
    "run_lint",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "HOT_FUNCTIONS",
    "HotSpec",
    "hot_path",
    "check_serial_plan",
    "check_epoch_plan",
    "check_wavefront_sequences",
    "check_round_grants",
    "simulate_wavefront_rounds",
    "schedule_selfcheck",
    "to_human",
    "to_json",
    "to_json_dict",
]

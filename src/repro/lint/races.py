"""Pass 5: schedule race checker (rules ``race-shared-write``,
``race-schedule``).

Two complementary halves, mirroring the paper's two conflict-freedom
arguments:

**Mechanical plan verification** — HOGWILD! tolerates benign races, but the
Wavefront scheme (§5.2) and the serial-equivalent replay *claim* provable
conflict-freedom. The ``check_*`` functions here verify those claims from
first principles, given a concrete schedule object:

* :func:`check_serial_plan` — every :class:`~repro.sched.plan.SerialPlan`
  segment is contiguous, covers the sequence exactly, respects ``max_wave``,
  and contains no repeated row and no repeated column (Eq. 6 pairwise);
* :func:`check_epoch_plan` — an :class:`~repro.sched.plan.EpochPlan` matrix
  schedules every sample of its order exactly once, with padding confined
  to trailing slots;
* :func:`check_wavefront_sequences` / :func:`check_round_grants` — every
  worker's column walk is a full permutation (column-lock coverage is
  total) and every granted round is row- and column-disjoint;
* :func:`simulate_wavefront_rounds` — re-derives the round-by-round grant
  schedule from per-worker column sequences under the Fig. 6 lock protocol.

During ``repro lint`` the pass runs these checkers once against freshly
compiled plans (:meth:`ScheduleRacePass.check_tree`), so a regression in the
plan compilers fails lint even before the test suite runs.

**Static lock-discipline audit** — files that spawn ``threading.Thread``
workers (``repro/parallel/threads.py``, ``wavefront_threads.py``) must
declare which closure names a worker may mutate, in a module-level
``SHARED_WRITE_OK`` tuple. Inside a worker function, any store to — or
mutating call on — shared state outside that declaration is flagged
(``race-shared-write``). The allowed discipline today: per-thread slots of a
preallocated ``counts`` list, GIL-atomic ``errors.append``, and the
internally-locked ``ColumnLockArray``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.lint.core import FileContext, Finding, LintPass

__all__ = [
    "ScheduleRacePass",
    "check_serial_plan",
    "check_epoch_plan",
    "check_wavefront_sequences",
    "check_round_grants",
    "simulate_wavefront_rounds",
    "MUTATING_METHODS",
]


# ---------------------------------------------------------------------------
# mechanical schedule verification
# ---------------------------------------------------------------------------
def check_serial_plan(plan, rows: np.ndarray, cols: np.ndarray) -> list[str]:
    """Violations of the SerialPlan conflict-freedom/coverage contract."""
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    n = len(rows)
    violations: list[str] = []
    starts = np.asarray(plan.starts)
    stops = np.asarray(plan.stops)
    if len(starts) != len(stops):
        return [f"starts/stops length mismatch: {len(starts)} vs {len(stops)}"]
    if n == 0:
        if len(starts):
            violations.append("empty sequence but non-empty segmentation")
        return violations
    if len(starts) == 0:
        return [f"no segments for a {n}-sample sequence"]
    if starts[0] != 0:
        violations.append(f"first segment starts at {starts[0]}, not 0")
    if stops[-1] != n:
        violations.append(
            f"last segment stops at {stops[-1]}, not {n}: tail samples never run"
        )
    gaps = np.nonzero(starts[1:] != stops[:-1])[0]
    for i in gaps.tolist():
        violations.append(
            f"segments {i} and {i + 1} are not contiguous "
            f"(stop {stops[i]} != start {starts[i + 1]})"
        )
    for i, (a, b) in enumerate(zip(starts.tolist(), stops.tolist())):
        if b <= a:
            violations.append(f"segment {i} is empty or inverted [{a}, {b})")
            continue
        if b - a > plan.max_wave:
            violations.append(
                f"segment {i} has {b - a} samples > max_wave {plan.max_wave}"
            )
        if not (0 <= a and b <= n):
            violations.append(f"segment {i} [{a}, {b}) outside [0, {n})")
            continue
        seg_rows = rows[a:b]
        seg_cols = cols[a:b]
        if len(np.unique(seg_rows)) != len(seg_rows):
            violations.append(
                f"segment {i} [{a}, {b}) repeats a row: concurrent updates "
                "would race on P (Eq. 6 violated)"
            )
        if len(np.unique(seg_cols)) != len(seg_cols):
            violations.append(
                f"segment {i} [{a}, {b}) repeats a column: concurrent updates "
                "would race on Q (Eq. 6 violated)"
            )
    return violations


def check_epoch_plan(plan) -> list[str]:
    """Violations of the EpochPlan exactly-once/padding contract."""
    violations: list[str] = []
    matrix = np.asarray(plan.matrix)
    lengths = np.asarray(plan.lengths)
    if matrix.shape[0] != len(lengths):
        return [f"{matrix.shape[0]} waves but {len(lengths)} lengths"]
    scheduled: list[np.ndarray] = []
    for i in range(matrix.shape[0]):
        row = matrix[i]
        length = int(lengths[i])
        if length <= 0 or length > matrix.shape[1]:
            violations.append(f"wave {i} has invalid length {length}")
            continue
        if (row[:length] < 0).any():
            violations.append(f"wave {i} schedules padding inside its live slots")
        if length < matrix.shape[1] and (row[length:] >= 0).any():
            violations.append(
                f"wave {i} has live samples beyond its declared length "
                f"{length}: those updates would silently never run"
            )
        scheduled.append(row[:length])
    if scheduled:
        flat = np.sort(np.concatenate(scheduled))
        expect = np.sort(np.asarray(plan.order))
        if len(flat) != len(expect) or not np.array_equal(flat, expect):
            violations.append(
                f"plan schedules {len(flat)} samples but the order holds "
                f"{len(expect)}; multiset mismatch — some sample is dropped "
                "or applied twice"
            )
    elif plan.nnz:
        violations.append(f"plan schedules nothing for {plan.nnz} samples")
    return violations


def check_wavefront_sequences(
    sequences: Sequence[np.ndarray], col_blocks: int
) -> list[str]:
    """Column-lock coverage: every worker must walk every column exactly once."""
    violations: list[str] = []
    for wid, seq in enumerate(sequences):
        seq = np.asarray(seq)
        if len(seq) != col_blocks or not np.array_equal(
            np.sort(seq), np.arange(col_blocks)
        ):
            violations.append(
                f"worker {wid} column walk is not a permutation of "
                f"range({col_blocks}): grid blocks would be skipped or "
                "visited twice"
            )
    return violations


def simulate_wavefront_rounds(
    sequences: Sequence[np.ndarray], col_blocks: int
) -> list[list[tuple[int, int]]]:
    """Round-by-round grant schedule under the Fig. 6 column-lock protocol.

    Each round, every unfinished worker tries to acquire its next column;
    the grant goes through iff no earlier worker claimed that column this
    round (the 1-D lock array arbitration). Returns the granted
    ``(worker, column)`` pairs per round.
    """
    pos = [0] * len(sequences)
    seqs = [np.asarray(s).tolist() for s in sequences]
    rounds: list[list[tuple[int, int]]] = []
    while any(pos[w] < len(seqs[w]) for w in range(len(seqs))):
        claimed: set[int] = set()
        grants: list[tuple[int, int]] = []
        for w in range(len(seqs)):
            if pos[w] >= len(seqs[w]):
                continue
            col = int(seqs[w][pos[w]])
            if col in claimed:
                continue  # lock held this round; worker spins
            claimed.add(col)
            grants.append((w, col))
            pos[w] += 1
        if not grants:  # pragma: no cover - only reachable on corrupt input
            break
        rounds.append(grants)
    return rounds


def check_round_grants(rounds: Sequence[Sequence[tuple[int, int]]]) -> list[str]:
    """Conflict-freedom of a grant schedule: within a round no two grants
    share a worker (grid row) or a column, and no block runs twice."""
    violations: list[str] = []
    seen: set[tuple[int, int]] = set()
    for i, grants in enumerate(rounds):
        workers = [w for w, _ in grants]
        columns = [c for _, c in grants]
        if len(set(workers)) != len(workers):
            violations.append(
                f"round {i} grants one worker two blocks concurrently "
                "(row conflict)"
            )
        if len(set(columns)) != len(columns):
            violations.append(
                f"round {i} grants one column to two workers: the column "
                "lock failed (Eq. 6 column conflict)"
            )
        for pair in grants:
            if pair in seen:
                violations.append(
                    f"block (worker {pair[0]}, column {pair[1]}) granted twice"
                )
            seen.add(pair)
    return violations


# ---------------------------------------------------------------------------
# static audit of threaded executors
# ---------------------------------------------------------------------------
#: method names treated as mutating when called on shared (closure) state
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "acquire", "release", "try_acquire", "abort", "inc", "set", "observe",
    "record", "shuffle", "fill", "put", "write",
})


def _shared_write_allowlist(tree: ast.Module) -> set[str]:
    """Names declared in a module-level ``SHARED_WRITE_OK`` tuple/list."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "SHARED_WRITE_OK":
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    return {
                        elt.value
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    }
    return set()


def _thread_target_names(tree: ast.Module) -> set[str]:
    """Function names passed as ``target=`` to ``threading.Thread(...)``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_thread = (
            isinstance(func, ast.Attribute) and func.attr == "Thread"
        ) or (isinstance(func, ast.Name) and func.id == "Thread")
        if not is_thread:
            continue
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Name):
                out.add(kw.value.id)
    return out


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters plus every name the function binds itself."""
    args = fn.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        )
    }
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for t in ast.walk(node.optional_vars):
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return names


def _module_level_names(tree: ast.Module) -> set[str]:
    """Imports and module-level defs — reads/calls on these are not shared
    mutable state (modules, functions, classes)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def _base_name(node: ast.AST) -> str | None:
    """Leftmost Name of an attribute/subscript chain (``a.b[c].d`` -> a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class ScheduleRacePass(LintPass):
    rule = "race-shared-write"
    description = (
        "worker threads may only mutate shared state declared in "
        "SHARED_WRITE_OK; plus a mechanical conflict-freedom self-check of "
        "the compiled schedules"
    )
    tags = ("race-schedule",)

    # -- static audit ---------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        targets = _thread_target_names(ctx.tree)
        if not targets:
            return
        allowlist = _shared_write_allowlist(ctx.tree)
        module_names = _module_level_names(ctx.tree)
        for node, qual in ctx.qualnames.items():
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in targets
            ):
                yield from self._audit_worker(
                    ctx, node, qual, allowlist, module_names
                )

    def _audit_worker(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        symbol: str,
        allowlist: set[str],
        module_names: set[str],
    ) -> Iterator[Finding]:
        local = _local_names(fn)

        def is_shared(name: str | None) -> bool:
            return (
                name is not None
                and name not in local
                and name not in allowlist
                and name not in module_names
            )

        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        if not isinstance(leaf, (ast.Attribute, ast.Subscript)):
                            continue
                        if not isinstance(leaf.ctx, ast.Store):
                            continue
                        base = _base_name(leaf)
                        if is_shared(base):
                            yield Finding(
                                ctx.rel, node.lineno, node.col_offset, self.rule,
                                f"worker thread writes shared state {base!r} "
                                "outside the declared SHARED_WRITE_OK "
                                "discipline (data race)",
                                symbol,
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                ):
                    base = _base_name(func.value)
                    if is_shared(base):
                        yield Finding(
                            ctx.rel, node.lineno, node.col_offset, self.rule,
                            f"worker thread calls mutating "
                            f"{base}.{func.attr}() on shared state outside "
                            "the declared SHARED_WRITE_OK discipline",
                            symbol,
                        )
            elif isinstance(node, ast.Global):
                yield Finding(
                    ctx.rel, node.lineno, node.col_offset, self.rule,
                    "worker thread declares `global` — module state is "
                    "shared across all workers",
                    symbol,
                )

    # -- mechanical self-check ------------------------------------------
    def check_tree(self, files: list[FileContext]) -> Iterable[Finding]:
        for message in schedule_selfcheck():
            yield Finding(
                "<schedule-selfcheck>", 0, 0, "race-schedule", message
            )


def schedule_selfcheck(seed: int = 20170626) -> list[str]:
    """Compile small representative plans and verify their conflict-freedom.

    Run by ``repro lint`` on every invocation: a regression in the plan
    compilers (EpochPlan layout, SerialPlan greedy segmentation, wavefront
    column walks) surfaces as lint findings, independent of the test suite.
    """
    from repro.sched.plan import EpochPlan, SerialPlan

    rng = np.random.default_rng(seed)
    violations: list[str] = []

    order = rng.permutation(101).astype(np.int64)
    plan = EpochPlan(order, workers=4, f=3)
    violations += [f"EpochPlan: {v}" for v in check_epoch_plan(plan)]
    plan.repermute(rng)
    violations += [f"EpochPlan (repermuted): {v}" for v in check_epoch_plan(plan)]

    rows = rng.integers(0, 13, size=257)
    cols = rng.integers(0, 11, size=257)
    sp = SerialPlan.compile(rows, cols, max_wave=16)
    violations += [f"SerialPlan: {v}" for v in check_serial_plan(sp, rows, cols)]

    sequences = [rng.permutation(8) for _ in range(4)]
    violations += [
        f"wavefront: {v}" for v in check_wavefront_sequences(sequences, 8)
    ]
    rounds = simulate_wavefront_rounds(sequences, 8)
    violations += [f"wavefront: {v}" for v in check_round_grants(rounds)]
    return violations

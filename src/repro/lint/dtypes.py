"""Pass 2: dtype discipline (rule ``dtype-fp64``).

The kernels are bit-identical *in fp32* (§4's half-precision argument needs
fp32 accumulate / fp16 store; the serial-equivalence proofs in
``tests/test_plan.py`` are fp32 proofs). One stray ``float64`` in the kernel
path silently doubles feature traffic and breaks bit-identity with the
reference, so:

* **everywhere in ``src/``** — explicit fp64 markers are flagged:
  ``np.float64`` in any position (``dtype=np.float64``,
  ``.astype(np.float64)``, ``np.float64(x)``), string dtypes ``"float64"``
  / ``"f8"``, and Python's ``float`` used as a dtype (``dtype=float``,
  ``.astype(float)``). Intentional double-precision accumulators (bias
  sums, analytic closed forms, RMSE curves) carry a
  ``# lint: fp64-accumulator -- <why>`` annotation;
* **inside hot functions only** — *bare* array constructors with no dtype
  argument (``np.empty(n)`` defaults to fp64) and arithmetic with Python
  float literals (scalar promotion hazards) are additionally flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import FileContext, Finding, LintPass
from repro.lint.hotpaths import find_hot_functions

__all__ = ["DtypeDisciplinePass"]

_NUMPY_ALIASES = ("np", "numpy")
_FP64_STRINGS = frozenset({"float64", "f8", "double", ">f8", "<f8", "=f8"})
#: constructors whose dtype defaults to float64 when omitted
_DTYPE_DEFAULTING = frozenset({
    "array", "asarray", "empty", "zeros", "ones", "full", "arange", "linspace",
})


def _is_np_float64(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in ("float64", "double", "longdouble")
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_ALIASES
    )


def _is_fp64_marker(node: ast.AST) -> bool:
    """np.float64 / "float64" / builtin float-as-dtype."""
    if _is_np_float64(node):
        return True
    if isinstance(node, ast.Constant) and node.value in _FP64_STRINGS:
        return True
    return False


def _np_call_name(call: ast.Call) -> str | None:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
    ):
        return func.attr
    return None


class DtypeDisciplinePass(LintPass):
    rule = "dtype-fp64"
    description = (
        "fp64 leakage into the fp32 kernel path: explicit float64 dtypes "
        "anywhere; bare (fp64-defaulting) constructors and Python-float "
        "literal arithmetic inside hot functions"
    )
    tags = ("fp64-accumulator",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        hot_nodes: set[ast.AST] = set()
        for fn, _spec in find_hot_functions(ctx).items():
            hot_nodes.update(ast.walk(fn))
            yield from self._check_hot(ctx, fn)
        yield from self._check_everywhere(ctx)

    # -- src-wide explicit fp64 markers --------------------------------
    def _check_everywhere(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call_fp64(ctx, node)

    def _check_call_fp64(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        # np.float64(x) constructor
        if _is_np_float64(call.func):
            yield self._finding(ctx, call, "np.float64(...) builds a double-"
                                "precision scalar in an fp32 code base")
            return
        # dtype= keyword carrying an fp64 marker (or builtin float)
        for kw in call.keywords:
            if kw.arg == "dtype" and (
                _is_fp64_marker(kw.value)
                or (isinstance(kw.value, ast.Name) and kw.value.id == "float")
            ):
                yield self._finding(ctx, kw.value,
                                    "explicit float64 dtype in an fp32 code base")
        # .astype(np.float64 / "float64" / float) and positional dtype args
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "astype" and call.args:
            arg = call.args[0]
            if _is_fp64_marker(arg) or (
                isinstance(arg, ast.Name) and arg.id == "float"
            ):
                yield self._finding(ctx, call,
                                    ".astype to float64 in an fp32 code base")
        elif _np_call_name(call) in _DTYPE_DEFAULTING and len(call.args) >= 2:
            arg = call.args[1]
            if _is_fp64_marker(arg) or (
                isinstance(arg, ast.Name) and arg.id == "float"
            ):
                yield self._finding(ctx, call,
                                    "positional float64 dtype in an fp32 code base")

    # -- hot-function-only rules ---------------------------------------
    def _check_hot(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        symbol = ctx.qualnames.get(fn, fn.name)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = _np_call_name(node)
                if (
                    name in _DTYPE_DEFAULTING
                    and len(node.args) < 2
                    and not any(kw.arg == "dtype" for kw in node.keywords)
                ):
                    yield Finding(
                        ctx.rel, node.lineno, node.col_offset, self.rule,
                        f"np.{name}(...) without an explicit dtype defaults "
                        "to float64 inside a hot function",
                        symbol,
                    )
            elif isinstance(node, ast.BinOp):
                for side in (node.left, node.right):
                    if isinstance(side, ast.Constant) and type(side.value) is float:
                        yield Finding(
                            ctx.rel, node.lineno, node.col_offset, self.rule,
                            f"Python float literal {side.value!r} in hot-path "
                            "arithmetic risks fp64 scalar promotion (wrap in "
                            "np.float32 during setup)",
                            symbol,
                        )
                        break

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            ctx.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.rule,
            message,
        )

"""Pass 4: telemetry-namespace discipline (rule ``metric-name``).

``docs/OBSERVABILITY.md`` treats the ``repro.*`` metric names as an API, and
PR 2 added dashboards and byte-identical artifact comparisons keyed on them
— a typo'd name at one call site silently forks a counter and every
downstream consumer reads zeros. The manifest in
:mod:`repro.obs.registry` (class ``M`` + ``METRIC_MANIFEST``) is the single
source of truth; this pass checks every registry/tracer call site against
it:

* a **string literal** first argument starting with ``repro.`` must be an
  exact manifest name or live under a declared dynamic prefix;
* an **f-string** first argument must have a constant head that starts with
  one of the dynamic prefixes (``f"repro.resilience.{name}"``) — anything
  else is statically unverifiable and flagged;
* an ``M.<CONST>`` attribute argument must name a real manifest constant
  (catching typos on the constants themselves).

Checked call sites: ``.counter( / .gauge( / .histogram( / .series(`` (mint)
and ``.get( / .family( / .value(`` (lookup) on any receiver.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import FileContext, Finding, LintPass

__all__ = ["TelemetryNamespacePass", "METRIC_CALL_METHODS"]

#: methods whose first argument is a metric name
METRIC_CALL_METHODS = frozenset(
    {"counter", "gauge", "histogram", "series", "get", "family", "value"}
)


class TelemetryNamespacePass(LintPass):
    rule = "metric-name"
    description = (
        "every repro.* metric name used at a registry/tracer call site must "
        "match the manifest declared in repro.obs.registry"
    )

    def __init__(self) -> None:
        # resolved lazily so the lint framework imports without repro.obs
        self._manifest: frozenset[str] | None = None
        self._prefixes: tuple[str, ...] = ()

    def _load_manifest(self) -> None:
        if self._manifest is None:
            from repro.obs.registry import DYNAMIC_METRIC_PREFIXES, METRIC_MANIFEST

            self._manifest = METRIC_MANIFEST
            self._prefixes = DYNAMIC_METRIC_PREFIXES

    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        self._load_manifest()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in METRIC_CALL_METHODS
                and node.args
            ):
                continue
            finding = self._check_name_arg(ctx, node.args[0])
            if finding is not None:
                yield finding

    def _check_name_arg(self, ctx: FileContext, arg: ast.AST) -> Finding | None:
        assert self._manifest is not None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not name.startswith("repro."):
                return None
            if name in self._manifest or name.startswith(self._prefixes):
                return None
            return Finding(
                ctx.rel, arg.lineno, arg.col_offset, self.rule,
                f"metric name {name!r} is not in the repro.* manifest "
                "(declare it on repro.obs.registry.M or fix the typo)",
            )
        if isinstance(arg, ast.JoinedStr):
            head = ""
            if arg.values and isinstance(arg.values[0], ast.Constant):
                head = str(arg.values[0].value)
            if not head.startswith("repro."):
                return None
            if head.startswith(self._prefixes):
                return None
            return Finding(
                ctx.rel, arg.lineno, arg.col_offset, self.rule,
                f"dynamic metric name f{head + '{…}'!r} is outside the "
                "declared dynamic prefixes "
                "(repro.obs.registry.DYNAMIC_METRIC_PREFIXES)",
            )
        # M.CONST — verify the constant exists on the manifest class
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "M"
        ):
            from repro.obs.registry import M

            if not hasattr(M, arg.attr):
                return Finding(
                    ctx.rel, arg.lineno, arg.col_offset, self.rule,
                    f"M.{arg.attr} is not a declared manifest constant",
                )
        return None

"""Pass 8: stale-suppression detection (rule ``suppression-stale``).

Suppressions rot: a ``# lint: hotpath-alloc`` annotation survives the
refactor that removed the allocation it excused, and from then on it
silently pre-authorizes the *next* allocation someone writes on that line.
This pass closes the loop — every ``# lint:`` comment must still be earning
its keep.

A suppression comment is **live** when some pass produced a finding on a
line it covers (its own line, plus the next line for standalone comments —
the exact coverage rule of :func:`repro.lint.core.parse_suppressions`)
carrying a tag that pass accepts. Anything else is stale and gets flagged
at the comment's own location. ``# lint: all`` comments are exempt: they
are a deliberate blanket and the docs already say to use them sparingly.

Mechanically this cannot be a normal :meth:`~repro.lint.core.LintPass.
check_file` pass — liveness is defined against the *other passes'* raw
findings, before suppression filtering. It uses the
:meth:`~repro.lint.core.LintPass.check_suppressions` hook the driver calls
once the full raw finding list exists. Comments are located by re-lexing
each file with :mod:`tokenize` (COMMENT tokens only), because ``# lint:``
also appears inside docstrings — the lint package's own documentation would
light up under a raw regex scan.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterable

from repro.lint.core import _SUPPRESS_RE, FileContext, Finding, LintPass

__all__ = ["SuppressionStalePass"]


def _suppression_comments(source: str):
    """Yield ``(line, col, tags, covered_lines)`` per ``# lint:`` comment."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            tags = {t for t in re.split(r"[,\s]+", m.group("tags").strip()) if t}
            if not tags:
                continue
            line = tok.start[0]
            covered = {line}
            if tok.line[: tok.start[1]].strip() == "":  # standalone
                covered.add(line + 1)
            yield line, tok.start[1], tags, covered
    except tokenize.TokenError:
        return


class SuppressionStalePass(LintPass):
    rule = "suppression-stale"
    description = (
        "every # lint: suppression comment must still silence a finding "
        "some pass would otherwise report on a line it covers"
    )

    def check_suppressions(
        self,
        contexts: list[FileContext],
        raw: list[tuple[LintPass, Finding, set | None]],
        passes: list[LintPass],
    ) -> Iterable[Finding]:
        # (path, line) -> accepted tags of passes that fired there
        fired: dict[tuple[str, int], set[str]] = {}
        for p, finding, _tags in raw:
            fired.setdefault(
                (finding.path, finding.line), set()
            ).update(p.accepted_tags())
        for ctx in contexts:
            for line, col, tags, covered in _suppression_comments(ctx.source):
                if "all" in tags:
                    continue
                live = any(
                    tags & fired.get((ctx.rel, cov), set())
                    for cov in covered
                )
                if not live:
                    listed = ", ".join(sorted(tags))
                    yield Finding(
                        ctx.rel, line, col, self.rule,
                        f"suppression '# lint: {listed}' no longer matches "
                        "any finding on the lines it covers; delete it (a "
                        "stale tag pre-authorizes the next regression here)",
                    )

"""Hot-path registry: which functions must stay allocation-free.

PR 3 made the wave kernels and compiled-plan refills allocation-free in
steady state; this registry is the machine-readable statement of *which*
functions carry that guarantee. The allocation and dtype passes scope their
strictest rules to exactly these bodies.

Registering a new hot-path function
-----------------------------------
Two equivalent ways (see ``docs/STATIC_ANALYSIS.md``):

1. **Central registry** — add the function's dotted qualname under its file's
   path suffix in :data:`HOT_FUNCTIONS` below. Preferred for ``src/`` code:
   the hot set stays reviewable in one place and the hot module keeps zero
   dependency on the lint tooling.
2. **Decorator** — mark the def with ``@hot_path`` (or
   ``@hot_path(index_params=("rows", "cols"))``). The passes recognise the
   decorator *syntactically*, so the name just has to be ``hot_path`` — handy
   for fixtures and out-of-tree code. A no-op implementation is exported here
   for real use.

``index_params`` names parameters holding index arrays: inside a hot body, a
*load* subscript with such a bare-name index (``p[rows]``) is a fancy-index
gather, which copies — the kernels use ``ndarray.take(..., out=...)``
instead. Stores (``p[rows] = t``) are in-place scatters and stay legal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import FileContext

__all__ = ["HotSpec", "HOT_FUNCTIONS", "hot_path", "find_hot_functions"]


@dataclass(frozen=True)
class HotSpec:
    """Per-function hot-path contract."""

    #: parameters that hold index arrays (fancy-index loads on them copy)
    index_params: frozenset[str] = field(default_factory=frozenset)


def _spec(*index_params: str) -> HotSpec:
    return HotSpec(index_params=frozenset(index_params))


#: file path suffix -> dotted qualname -> contract. The steady-state bodies
#: of the batch-Hogwild/wavefront hot path (see docs/STATIC_ANALYSIS.md).
HOT_FUNCTIONS: dict[str, dict[str, HotSpec]] = {
    "repro/core/kernels.py": {
        "sgd_wave_update": _spec("rows", "cols"),
        "sgd_serial_update": _spec(),
        "WaveWorkspace.wave_update": _spec("rows", "cols"),
        "WaveWorkspace.bind_plan": _spec(),
        "WaveWorkspace._views_for": _spec(),
    },
    "repro/sched/plan.py": {
        "EpochPlan.refill": _spec(),
        "EpochPlan.repermute": _spec(),
        "EpochPlan.wave": _spec(),
    },
    "repro/parallel/threads.py": {
        "_replay_shard": _spec("rows", "cols"),
    },
    "repro/parallel/procs.py": {
        "_run_shard": _spec("rows", "cols"),
        "_run_blocks": _spec(),
    },
    # backend registry: the numpy reference backend's dispatch bodies sit on
    # the same hot path as the kernels they delegate to (accelerated
    # backends run jitted/device code the AST passes cannot see, so only
    # their python-level launchers are registered)
    "repro/backends/numpy_backend.py": {
        "NumpyBackend.wave_update": _spec("rows", "cols"),
        "NumpyBackend.serial_update": _spec(),
    },
    "repro/backends/numba_backend.py": {
        "NumbaBackend.wave_update": _spec("rows", "cols"),
        "NumbaBackend.serial_update": _spec(),
    },
}


def hot_path(fn=None, *, index_params: tuple[str, ...] = ()):
    """No-op decorator registering a function as hot for the lint passes.

    The passes match the decorator by name in the AST; at runtime this
    returns the function unchanged (zero steady-state cost).
    """

    def wrap(f):
        return f

    return wrap(fn) if callable(fn) else wrap


def _decorator_spec(node: ast.FunctionDef | ast.AsyncFunctionDef) -> HotSpec | None:
    """HotSpec when the def carries an ``@hot_path`` decorator, else None."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name != "hot_path":
            continue
        params: frozenset[str] = frozenset()
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "index_params" and isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    params = frozenset(
                        elt.value
                        for elt in kw.value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    )
        return HotSpec(index_params=params)
    return None


def find_hot_functions(
    ctx: FileContext,
) -> dict[ast.FunctionDef | ast.AsyncFunctionDef, HotSpec]:
    """All hot function defs in one file (registry entries + decorators)."""
    registered: dict[str, HotSpec] = {}
    rel = ctx.rel.replace("\\", "/")
    for suffix, funcs in HOT_FUNCTIONS.items():
        if rel.endswith(suffix):
            registered.update(funcs)
    out: dict[ast.FunctionDef | ast.AsyncFunctionDef, HotSpec] = {}
    for node, qual in ctx.qualnames.items():
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        spec = _decorator_spec(node)
        if spec is None:
            spec = registered.get(qual)
        if spec is not None:
            out[node] = spec
    return out

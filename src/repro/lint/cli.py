"""CLI plumbing for ``repro lint`` / ``cumf-sgd lint`` / ``python -m
repro.lint``.

Shared between the main experiment CLI (which mounts these arguments on its
``lint`` subcommand) and the standalone module entry point, so both spell
the same flags and return the same exit codes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["add_lint_arguments", "run_from_args", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src, else the repro "
        "package directory)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        dest="lint_format", help="report format (default human)",
    )
    parser.add_argument(
        "--baseline", type=Path,
        help="JSON baseline of grandfathered findings to filter out",
    )
    parser.add_argument(
        "--write-baseline", type=Path,
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list the registered passes and exit",
    )


def _default_paths() -> list[Path]:
    src = Path("src")
    if src.is_dir():
        return [src]
    import repro

    return [Path(repro.__file__).parent]


def run_from_args(args: argparse.Namespace) -> int:
    from repro.lint.driver import (
        DEFAULT_PASSES,
        load_baseline,
        run_lint,
        write_baseline,
    )
    from repro.lint.report import to_human, to_json

    if args.list_passes:
        for pass_cls in DEFAULT_PASSES:
            p = pass_cls()
            print(f"{p.rule:18s} {p.description}")
        return 0
    paths = args.paths or _default_paths()
    try:
        baseline = load_baseline(args.baseline) if args.baseline else None
    except (OSError, KeyError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_lint(paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.write_baseline:
        out = write_baseline(args.write_baseline, report)
        print(f"baseline with {len(report.findings)} findings -> {out}")
        return 0
    print(to_json(report) if args.lint_format == "json" else to_human(report))
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="reprolint: AST invariant checker + schedule race "
        "detector for the CuMF_SGD reproduction",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))

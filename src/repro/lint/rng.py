"""Pass 3: seeded-RNG discipline (rule ``rng-legacy``).

Reproducibility (bit-identical metric dumps per seed, the resilience
subsystem's byte-identical fault replays) hinges on every random draw coming
from a ``numpy.random.Generator`` threaded from configuration. The legacy
module-level API (``np.random.rand``, ``np.random.seed``,
``np.random.shuffle`` …) draws from hidden global state that any import can
perturb, so it is banned in ``src/``.

Allowed: constructing explicit generator machinery — ``default_rng``,
``Generator``, ``SeedSequence``, and the bit-generator classes.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import FileContext, Finding, LintPass

__all__ = ["SeededRngPass", "ALLOWED_RANDOM_ATTRS"]

#: np.random attributes that construct explicit, seedable machinery
ALLOWED_RANDOM_ATTRS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

_NUMPY_ALIASES = ("np", "numpy")


def _random_module_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy.random module itself."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy.random" and alias.asname:
                    aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or alias.name)
    return aliases


class SeededRngPass(LintPass):
    rule = "rng-legacy"
    description = (
        "legacy module-level np.random.* draws from hidden global state; "
        "thread a seeded np.random.Generator from config instead"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = _random_module_aliases(ctx.tree)
        yield from self._check_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in ALLOWED_RANDOM_ATTRS:
                continue
            value = node.value
            is_np_random = (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in _NUMPY_ALIASES
            )
            is_alias = isinstance(value, ast.Name) and value.id in aliases
            if is_np_random or is_alias:
                yield Finding(
                    ctx.rel, node.lineno, node.col_offset, self.rule,
                    f"legacy np.random.{node.attr} uses hidden global RNG "
                    "state; use a Generator from np.random.default_rng(seed)",
                )

    def _check_imports(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module in ("numpy.random", "numpy.random.mtrand"):
                for alias in node.names:
                    if alias.name not in ALLOWED_RANDOM_ATTRS:
                        yield Finding(
                            ctx.rel, node.lineno, node.col_offset, self.rule,
                            f"importing legacy {alias.name!r} from "
                            "numpy.random; use Generator machinery instead",
                        )

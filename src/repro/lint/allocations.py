"""Pass 1: hot-path allocation detector (rule ``hotpath-alloc``).

The PR-3 contract: once warm, ``sgd_wave_update`` / ``sgd_serial_update`` /
the :class:`~repro.core.kernels.WaveWorkspace` family and the compiled-plan
refill path perform **zero** NumPy allocations per wave — every temporary
lives in preallocated workspace buffers driven through ``out=`` ufunc calls.
This pass re-proves that claim on every lint run by flagging, inside each
registered hot function (see :mod:`repro.lint.hotpaths`):

* calls to allocating NumPy constructors/combinators (``np.zeros``,
  ``np.empty``, ``np.concatenate``, ``np.einsum`` …) **unless** the call
  passes an ``out=`` keyword (out-driven ufuncs write into scratch);
* copying methods — ``.astype(...)``, ``.copy()``, ``.flatten()``;
* fancy-index *loads* over declared index parameters (``p[rows]`` gathers a
  fresh array; the kernels use ``take(..., out=...)`` — in-place scatter
  stores remain legal).

Cold branches inside a hot body (growth reallocation, dtype-compat
fallbacks) are annotated with ``# lint: hotpath-alloc -- <why>`` at the call
site, which both documents the exception and keeps the gate green.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import FileContext, Finding, LintPass
from repro.lint.hotpaths import HotSpec, find_hot_functions

__all__ = ["HotPathAllocationPass", "ALLOCATING_NP_FUNCTIONS", "ALLOCATING_METHODS"]

#: ``np.<name>(...)`` calls that materialize a fresh array (or list) unless
#: given ``out=``.
ALLOCATING_NP_FUNCTIONS = frozenset({
    "array", "asarray", "ascontiguousarray", "asfortranarray", "copy",
    "empty", "empty_like", "zeros", "zeros_like", "ones", "ones_like",
    "full", "full_like", "arange", "linspace",
    "concatenate", "stack", "hstack", "vstack", "dstack", "column_stack",
    "tile", "repeat", "pad", "where", "unique", "sort", "argsort",
    "nonzero", "flatnonzero", "einsum", "dot", "matmul", "outer",
    "meshgrid", "indices", "split", "array_split",
})

#: array methods that always hand back a fresh buffer
ALLOCATING_METHODS = frozenset({"astype", "copy", "flatten"})

_NUMPY_ALIASES = ("np", "numpy")


def _has_out_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in call.keywords)


def _np_func_name(call: ast.Call) -> str | None:
    """``np.zeros(...)`` -> ``"zeros"``; anything else -> None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
    ):
        return func.attr
    return None


def _iter_hot_body(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a hot function's own body, including nested defs (conservative:
    a closure allocated per call is still a hot-path allocation)."""
    yield from ast.walk(fn)


class HotPathAllocationPass(LintPass):
    rule = "hotpath-alloc"
    description = (
        "registered hot-path functions may not allocate in steady state "
        "(no allocating np constructors, .astype/.copy, or fancy-index "
        "gather loads)"
    )
    tags = ("hotpath-alloc-setup",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for fn, spec in find_hot_functions(ctx).items():
            symbol = ctx.qualnames.get(fn, fn.name)
            yield from self._check_function(ctx, fn, spec, symbol)

    # ------------------------------------------------------------------
    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        spec: HotSpec,
        symbol: str,
    ) -> Iterator[Finding]:
        for node in _iter_hot_body(fn):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, symbol)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                yield from self._check_subscript(ctx, node, spec, symbol)

    def _check_call(
        self, ctx: FileContext, call: ast.Call, symbol: str
    ) -> Iterator[Finding]:
        np_name = _np_func_name(call)
        if np_name in ALLOCATING_NP_FUNCTIONS and not _has_out_kwarg(call):
            yield Finding(
                ctx.rel, call.lineno, call.col_offset, self.rule,
                f"np.{np_name}(...) allocates on the hot path "
                "(use preallocated workspace buffers / out=)",
                symbol,
            )
            return
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ALLOCATING_METHODS
            and np_name is None
        ):
            yield Finding(
                ctx.rel, call.lineno, call.col_offset, self.rule,
                f".{func.attr}(...) copies on the hot path "
                "(pre-coerce during setup or write into scratch)",
                symbol,
            )

    def _check_subscript(
        self, ctx: FileContext, sub: ast.Subscript, spec: HotSpec, symbol: str
    ) -> Iterator[Finding]:
        if not spec.index_params:
            return
        idx = sub.slice
        if isinstance(idx, ast.Name) and idx.id in spec.index_params:
            yield Finding(
                ctx.rel, sub.lineno, sub.col_offset, self.rule,
                f"fancy-index load with index array {idx.id!r} gathers a "
                "fresh copy (use .take(..., out=...) into workspace scratch)",
                symbol,
            )

"""The reprolint pass driver: file discovery, pass execution, suppression
and baseline filtering.

``run_lint(paths)`` parses each ``.py`` file once, hands the shared
:class:`~repro.lint.core.FileContext` to every registered pass, then runs
whole-tree checks (the schedule self-check). Findings are filtered in two
stages:

1. **suppressions** — ``# lint: <tag>`` annotations at the finding's line
   (see :mod:`repro.lint.core`); the tag must be one the producing pass
   accepts, so an ``fp64-accumulator`` note cannot hide an allocation;
2. **baseline** — a JSON file of grandfathered ``(rule, path, symbol)``
   keys, for adopting a new pass on a dirty tree without annotating every
   line up front (``repro lint --write-baseline`` mints it, ``--baseline``
   applies it; burn it down over time).

Exit-code contract (relied on by CI and ``tests/test_lint_clean.py``):
0 when no unsuppressed, un-baselined findings remain; 1 otherwise; 2 for
usage errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.allocations import HotPathAllocationPass
from repro.lint.core import Finding, LintPass, load_file_context
from repro.lint.dtypes import DtypeDisciplinePass
from repro.lint.parallelism import BarrierPairingPass, ShmLifecyclePass
from repro.lint.races import ScheduleRacePass
from repro.lint.rng import SeededRngPass
from repro.lint.stale import SuppressionStalePass
from repro.lint.telemetry import TelemetryNamespacePass

__all__ = [
    "DEFAULT_PASSES",
    "LintReport",
    "run_lint",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
]

#: the shipped passes, in execution order (suppression-stale runs last by
#: construction — it audits the other passes' raw findings)
DEFAULT_PASSES: tuple[type[LintPass], ...] = (
    HotPathAllocationPass,
    DtypeDisciplinePass,
    SeededRngPass,
    TelemetryNamespacePass,
    ScheduleRacePass,
    ShmLifecyclePass,
    BarrierPairingPass,
    SuppressionStalePass,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "repro.egg-info", ".github"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    passes: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: dict[Path, None] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out[sub.resolve()] = None
        elif path.suffix == ".py":
            out[path.resolve()] = None
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return list(out)


def _display_path(path: Path) -> str:
    """Repo-relative display path when possible, else absolute posix."""
    cwd = Path.cwd().resolve()
    try:
        return path.resolve().relative_to(cwd).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def run_lint(
    paths: Sequence[Path | str],
    passes: Iterable[type[LintPass] | LintPass] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
) -> LintReport:
    """Run every pass over every file under ``paths``; return the report."""
    instances: list[LintPass] = [
        p if isinstance(p, LintPass) else p()
        for p in (passes if passes is not None else DEFAULT_PASSES)
    ]
    report = LintReport(passes=[p.rule for p in instances])
    contexts = []
    for path in iter_python_files(paths):
        rel = _display_path(path)
        try:
            ctx = load_file_context(path, rel)
        except SyntaxError as exc:
            report.errors.append(f"{rel}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        contexts.append(ctx)
        report.files.append(rel)

    raw: list[tuple[LintPass, Finding, set[str] | None]] = []
    for ctx in contexts:
        for p in instances:
            for finding in p.check_file(ctx):
                raw.append((p, finding, ctx.tags_for(finding.line)))
    for p in instances:
        for finding in p.check_tree(contexts):
            raw.append((p, finding, None))

    # meta-passes see the complete raw finding list (snapshot semantics:
    # collected first so every pass audits the same run), and their own
    # findings stay suppressible like any other
    by_rel = {ctx.rel: ctx for ctx in contexts}
    meta: list[tuple[LintPass, Finding, set[str] | None]] = []
    for p in instances:
        for finding in p.check_suppressions(contexts, raw, instances):
            ctx = by_rel.get(finding.path)
            tags = ctx.tags_for(finding.line) if ctx is not None else None
            meta.append((p, finding, tags))
    raw.extend(meta)

    for p, finding, tags in raw:
        if tags and tags & p.accepted_tags():
            report.suppressed.append(finding)
        elif baseline and finding.baseline_key() in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.findings.sort()
    report.suppressed.sort()
    report.baselined.sort()
    return report


# ---------------------------------------------------------------------------
# baseline workflow
# ---------------------------------------------------------------------------
def load_baseline(path: Path | str) -> set[tuple[str, str, str]]:
    data = json.loads(Path(path).read_text())
    return {
        (entry["rule"], entry["path"], entry["symbol"])
        for entry in data["findings"]
    }


def write_baseline(path: Path | str, report: LintReport) -> Path:
    """Grandfather every current finding into a baseline file."""
    path = Path(path)
    keys = sorted({f.baseline_key() for f in report.findings})
    payload = {
        "comment": "reprolint baseline: grandfathered findings; burn down "
        "and delete entries as the code is fixed",
        "findings": [
            {"rule": rule, "path": rel, "symbol": symbol}
            for rule, rel, symbol in keys
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

"""Figure 15 — feasible block update orders (the randomness argument).

The paper's worked example: a 2x2 grid updated by 2 always-busy workers can
realize only 8 of the 24 possible block orders. We enumerate exhaustively
and extend the table to neighbouring configurations, showing the feasible
fraction collapsing as ``s`` approaches ``a`` — the combinatorial root of
Fig. 14's convergence pathology.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.sched.ordering import count_feasible_orders

__all__ = ["run"]


@register("fig15")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig15",
        title="Feasible block-update orders under always-busy scheduling",
        headers=("a", "workers", "feasible", "total", "fraction"),
    )
    configs = [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3)]
    fractions: dict[tuple[int, int], float] = {}
    counts: dict[tuple[int, int], tuple[int, int]] = {}
    for a, s in configs:
        feasible, total = count_feasible_orders(a, s)
        counts[(a, s)] = (feasible, total)
        fractions[(a, s)] = feasible / total
        result.add(a, s, feasible, total, round(feasible / total, 6))

    result.check("paper example: 2x2 grid with 2 workers has 8 of 24 orders",
                 counts[(2, 2)] == (8, 24))
    result.check("serial execution (s=1) realizes every order",
                 fractions[(2, 1)] == 1.0 and fractions[(3, 1)] == 1.0)
    result.check("fraction collapses as s approaches a (3x3 grid)",
                 fractions[(3, 3)] < fractions[(3, 2)] < fractions[(3, 1)])
    result.notes.append(
        "paper: 'only orders 1~8 out of the total 24 orders are feasible'"
    )
    return result

"""Figure 11 — Maxwell vs Pascal: updates/s and bandwidth vs worker count.

Pascal scales to 2.3x the parallel workers (1792 vs 768 resident blocks)
and about doubles the achieved bandwidth (the paper measures up to 266 GB/s
on Maxwell and 567 GB/s on Pascal with the Netflix data set).
"""

from __future__ import annotations

from repro.data.synthetic import PAPER_DATASETS
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.occupancy import max_parallel_workers
from repro.gpusim.simulator import cumf_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100

__all__ = ["run"]


@register("fig11")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="Updates/s and achieved bandwidth vs workers, Maxwell vs Pascal",
        headers=("gpu", "workers", "Mupdates/s", "effective_GB/s"),
    )
    netflix = PAPER_DATASETS["netflix"]
    peaks: dict[str, tuple[float, float]] = {}
    for spec in (MAXWELL_TITAN_X, PASCAL_P100):
        cap = max_parallel_workers(spec)
        for frac in (0.125, 0.25, 0.5, 0.75, 1.0):
            w = max(1, int(cap * frac))
            point = cumf_throughput(spec, netflix, workers=w)
            result.add(spec.name, w, round(point.mupdates, 0), round(point.effective_bandwidth_gbs, 0))
            if frac == 1.0:
                peaks[spec.name] = (point.mupdates, point.effective_bandwidth_gbs)

    m_rate, m_bw = peaks[MAXWELL_TITAN_X.name]
    p_rate, p_bw = peaks[PASCAL_P100.name]
    result.check("Pascal supports 2.3x the workers",
                 abs(max_parallel_workers(PASCAL_P100) / max_parallel_workers(MAXWELL_TITAN_X) - 7 / 3) < 0.01)
    result.check("Pascal peak updates/s ~2-2.6x Maxwell", 2.0 <= p_rate / m_rate <= 2.6)
    result.check("Maxwell bandwidth in 230-300 GB/s (paper: up to 266)", 230 <= m_bw <= 300)
    result.check("Pascal bandwidth in 500-650 GB/s (paper: up to 567)", 500 <= p_bw <= 650)
    result.notes.append("paper: 768 vs 1792 workers; 266 vs 567 GB/s achieved")
    return result

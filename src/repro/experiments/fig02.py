"""Figure 2 — the §2.3 motivation.

(a) LIBMF's effective memory bandwidth drops on large data sets (paper:
    194 GB/s on Netflix → 106 GB/s on Hugewiki, a 45% drop).
(b) NOMAD's memory efficiency (effective bandwidth / total DRAM bandwidth)
    collapses when scaling from 1 to 32 nodes.
"""

from __future__ import annotations

from repro.baselines.nomad import nomad_memory_efficiency
from repro.data.synthetic import PAPER_DATASETS
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.simulator import libmf_cpu_throughput
from repro.gpusim.specs import XEON_E5_2670_DUAL

__all__ = ["run"]


@register("fig2")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig2",
        title="LIBMF effective bandwidth vs data size; NOMAD memory efficiency vs nodes",
        headers=("panel", "x", "value", "unit"),
    )

    # (a) LIBMF effective bandwidth per data set (modelled, paper-scale)
    bw = {}
    for name in ("netflix", "yahoo", "hugewiki"):
        point = libmf_cpu_throughput(XEON_E5_2670_DUAL, PAPER_DATASETS[name])
        bw[name] = point.effective_bandwidth_gbs
        result.add("a:libmf-bandwidth", name, round(point.effective_bandwidth_gbs, 1), "GB/s")

    # (b) NOMAD memory efficiency on Netflix, 1..32 nodes
    effs = {}
    for nodes in (1, 2, 4, 8, 16, 32):
        eff = nomad_memory_efficiency(PAPER_DATASETS["netflix"], nodes)
        effs[nodes] = eff
        result.add("b:nomad-efficiency", nodes, round(eff, 4), "fraction")

    result.notes.append(
        "paper (a): 194 GB/s on Netflix dropping 45% to 106 GB/s on Hugewiki"
    )
    result.notes.append("paper (b): efficiency of the distributed solution is 'extremely low'")
    result.check("Netflix bandwidth exceeds Hugewiki bandwidth", bw["netflix"] > bw["hugewiki"])
    result.check(
        "Hugewiki bandwidth at least 25% below Netflix",
        bw["hugewiki"] < 0.75 * bw["netflix"],
    )
    result.check("NOMAD efficiency decreases monotonically past 8 nodes",
                 effs[8] >= effs[16] >= effs[32])
    result.check("NOMAD 32-node efficiency below half of its peak",
                 effs[32] < 0.5 * max(effs.values()))
    result.check("NOMAD 32-node efficiency below 15%", effs[32] < 0.15)
    result.notes.append(
        "model: efficiency first rises with nodes (per-node working set "
        "shrinks into L3 — NOMAD's stated design goal) then collapses as the "
        "network binds; the paper's 'extremely low' endpoint is reproduced"
    )
    return result

"""Command-line entry point.

Subcommands::

    cumf-sgd list                         # registered paper artifacts
    cumf-sgd run fig9 [--full] [--csv F]  # reproduce one table/figure
    cumf-sgd all [--full] [--outdir D]    # reproduce everything
    cumf-sgd train netflix-syn --epochs 20 --scheme wavefront
    cumf-sgd train netflix-syn --executor auto            # policy picks (default)
    cumf-sgd train netflix-syn --executor procs --procs 4   # shared-memory Hogwild
    cumf-sgd train netflix-syn --backend numba            # JIT kernels when present
    cumf-sgd train netflix-syn --executor procs --out-of-core
    cumf-sgd plan hugewiki --gpu pascal --devices 2
    cumf-sgd throughput --gpu maxwell --workers 768
    cumf-sgd trace fig07 --out results/fig07_trace.json       # Chrome trace
    cumf-sgd train netflix-syn --executor procs --trace results/train_trace.json
    cumf-sgd metrics-dump fig10 --out results/fig10_metrics.json
    cumf-sgd perf-diff                                    # gate BENCH_*.json
    cumf-sgd perf-diff --against results/perf_ledger.jsonl --record
    cumf-sgd fault-demo --seed 0 --out results/fault_metrics.json
    cumf-sgd train netflix-syn --scheme multi_device --fault-plan plan.json
    cumf-sgd lint [paths...] [--format json]   # reprolint static analysis

``fault-demo`` replays the documented kill-one-GPU-mid-epoch scenario
(device 2 of 4 dies after its third block) and prints the
``repro.resilience.*`` counters; the same ``--seed`` always writes a
byte-identical metrics dump. ``train --fault-plan`` runs training under an
injected :class:`repro.resilience.faults.FaultPlan` loaded from JSON, with
checkpoint/rollback recovery via
:class:`repro.resilience.trainer.ResilientTrainer`.

``train --trace PATH`` runs the training itself under telemetry and writes
one merged multi-lane Chrome trace: the trainer's wall lane plus one lane
per worker (``--executor procs``: per-process pid rows relayed through
:class:`repro.obs.relay.TraceRelay`; ``--executor threads``: per-thread tid
rows), and prints the :class:`repro.obs.profiler.StallReport` phase table.
``perf-diff`` compares fresh ``BENCH_*.json`` documents against the perf
ledger (``results/perf_ledger.jsonl``) and exits 1 on a >15% regression in
the gated throughput metrics; a missing baseline warns and exits 0 (the
run can seed the ledger via ``--record``).

``trace`` and ``metrics-dump`` run an experiment under the
:mod:`repro.obs` telemetry collector (plus a standard instrumented probe,
so every metric family is populated even for analytic-only experiments) and
write the artifacts to ``results/``. Experiment names are normalised, so
``fig07`` and ``fig7`` both work.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import REGISTRY, run_experiment

__all__ = ["main", "resolve_experiment_id"]

_GPU_CHOICES = ("maxwell", "pascal")


def _gpu_spec(name: str):
    from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100

    return {"maxwell": MAXWELL_TITAN_X, "pascal": PASCAL_P100}[name]


def resolve_experiment_id(name: str) -> str:
    """Map user spellings onto registry ids (``fig07`` -> ``fig7`` -> ``fig5b``).

    Resolution order: exact match; zero-stripped figure/table number; unique
    prefix match. Raises KeyError with the known ids otherwise.
    """
    candidate = name.strip().lower()
    if candidate in REGISTRY:
        return candidate
    import re

    m = re.fullmatch(r"(fig|figure|table)0*(\d+)([a-z]?)", candidate)
    if m:
        prefix = "table" if m.group(1) == "table" else "fig"
        candidate = f"{prefix}{int(m.group(2))}{m.group(3)}"
        if candidate in REGISTRY:
            return candidate
    prefixed = [exp_id for exp_id in sorted(REGISTRY) if exp_id.startswith(candidate)]
    if len(prefixed) == 1:
        return prefixed[0]
    raise KeyError(
        f"unknown experiment {name!r}"
        + (f" (ambiguous: {prefixed})" if prefixed else "")
        + f"; known: {sorted(REGISTRY)}"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cumf-sgd",
        description="Reproduce CuMF_SGD (HPDC'17): experiments, training, planning.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(REGISTRY))
    run_p.add_argument("--full", action="store_true", help="full-scale numeric runs")
    run_p.add_argument("--csv", type=Path, help="also write rows as CSV")

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--full", action="store_true")
    all_p.add_argument("--outdir", type=Path, help="write per-experiment .txt files")

    train_p = sub.add_parser("train", help="train on a registered synthetic data set")
    train_p.add_argument("dataset", help="scaled data set name (e.g. netflix-syn)")
    train_p.add_argument("--scheme", default="batch_hogwild",
                         choices=("batch_hogwild", "wavefront", "multi_device"))
    train_p.add_argument("--executor", default="auto",
                         choices=("auto", "serial", "threads", "procs"),
                         help="auto (default): pick per host/problem via "
                         "repro.parallel.policy (serial unless measured "
                         "evidence says a parallel executor wins); serial: "
                         "deterministic simulated executor (--scheme "
                         "applies); threads: ThreadedHogwild; procs: "
                         "shared-memory ProcessHogwild")
    train_p.add_argument("--backend", default="auto",
                         choices=("auto", "numpy", "numba", "cupy"),
                         help="kernel backend (repro.backends registry); "
                         "auto picks the fastest verified backend the "
                         "problem size amortizes, numpy is the bit-exact "
                         "reference")
    train_p.add_argument("--procs", type=int, default=None,
                         help="worker threads/processes for "
                         "--executor threads|procs (default: the auto-"
                         "policy's choice, else 4)")
    train_p.add_argument("--out-of-core", action="store_true",
                         help="stage ratings from a temporary on-disk "
                         "BlockStore (requires --executor procs)")
    train_p.add_argument("--epochs", type=int, default=20)
    train_p.add_argument("--workers", type=int, default=64)
    train_p.add_argument("--k", type=int, default=None)
    train_p.add_argument("--lam", type=float, default=None)
    train_p.add_argument("--half", action="store_true", help="fp16 feature storage")
    train_p.add_argument("--seed", type=int, default=0)
    train_p.add_argument("--save", type=Path, help="checkpoint path for the model")
    train_p.add_argument("--fault-plan", type=Path,
                         help="JSON fault plan (see FaultPlan.save); trains "
                         "under injection with checkpoint/rollback recovery")
    train_p.add_argument("--checkpoint-dir", type=Path,
                         help="recovery checkpoint directory for --fault-plan "
                         "(default: a temporary directory)")
    train_p.add_argument("--sanitize", default="off",
                         choices=("off", "races", "numeric", "all"),
                         help="run under the reprosan runtime sanitizer: "
                         "'races' audits the shadow access log (write "
                         "overlaps, ownership, benign race rate) and the "
                         "shm/mmap lifecycle, 'numeric' adds sampled "
                         "NaN/Inf/overflow/fp64-leak checks, 'all' both; "
                         "exits nonzero on any finding")
    train_p.add_argument("--san-report", type=Path,
                         help="write the sanitizer report (findings + "
                         "race-rate table) as JSON here")
    train_p.add_argument("--trace", type=Path,
                         help="run under telemetry and write a merged "
                         "multi-lane Chrome trace here (one lane per "
                         "worker for --executor threads|procs)")

    plan_p = sub.add_parser("plan", help="plan a training configuration (§6.1 + §7.5)")
    plan_p.add_argument("dataset", help="paper-scale data set (netflix/yahoo/hugewiki)")
    plan_p.add_argument("--gpu", choices=_GPU_CHOICES, default="maxwell")
    plan_p.add_argument("--devices", type=int, default=1)
    plan_p.add_argument("--fp32", action="store_true", help="plan for fp32 features")

    thr_p = sub.add_parser("throughput", help="modelled updates/s for a configuration")
    thr_p.add_argument("--gpu", choices=_GPU_CHOICES, default="maxwell")
    thr_p.add_argument("--dataset", default="netflix")
    thr_p.add_argument("--workers", type=int, default=None)
    thr_p.add_argument("--scheme", default="batch_hogwild",
                       choices=("batch_hogwild", "wavefront", "libmf_gpu"))
    thr_p.add_argument("--fp32", action="store_true")

    trace_p = sub.add_parser(
        "trace", help="run an experiment under telemetry; write a Chrome trace"
    )
    trace_p.add_argument("experiment", help="experiment id (fig07, fig7, table4…)")
    trace_p.add_argument("--out", type=Path, help="trace path "
                         "(default results/<exp>_trace.json)")
    trace_p.add_argument("--full", action="store_true", help="full-scale runs")
    trace_p.add_argument("--no-probe", action="store_true",
                         help="skip the standard instrumented probe")
    trace_p.add_argument("--metrics-out", type=Path,
                         help="also dump the metrics registry JSON here")

    dump_p = sub.add_parser(
        "metrics-dump", help="run an experiment under telemetry; dump metrics JSON"
    )
    dump_p.add_argument("experiment", help="experiment id (fig07, fig7, table4…)")
    dump_p.add_argument("--out", type=Path, help="metrics path "
                        "(default results/<exp>_metrics.json)")
    dump_p.add_argument("--full", action="store_true", help="full-scale runs")
    dump_p.add_argument("--no-probe", action="store_true",
                        help="skip the standard instrumented probe")
    dump_p.add_argument("--jsonl", action="store_true",
                        help="write JSONL (one metric per line) instead of JSON")

    fault_p = sub.add_parser(
        "fault-demo",
        help="kill one GPU mid-epoch under a seeded fault plan; print "
        "resilience counters",
    )
    fault_p.add_argument("--seed", type=int, default=0)
    fault_p.add_argument("--full", action="store_true", help="full-scale run")
    fault_p.add_argument("--out", type=Path,
                         help="write the (deterministic) metrics registry JSON")

    diff_p = sub.add_parser(
        "perf-diff",
        help="gate benchmark documents against the perf ledger "
        "(exit 1 on >threshold regression; missing baseline warns)",
    )
    diff_p.add_argument(
        "docs", nargs="*", type=Path,
        help="BENCH_*.json documents (default: BENCH_hot_path.json and "
        "BENCH_parallel.json where present)",
    )
    diff_p.add_argument("--against", type=Path, default=None,
                        help="perf ledger JSONL "
                        "(default results/perf_ledger.jsonl)")
    diff_p.add_argument("--threshold", type=float, default=None,
                        help="regression gate as a fraction (default 0.15)")
    diff_p.add_argument("--record", action="store_true",
                        help="append the documents to the ledger after "
                        "diffing (seeds/extends the baseline)")

    from repro.lint.cli import add_lint_arguments

    lint_p = sub.add_parser(
        "lint",
        help="run reprolint: AST invariant checker + schedule race detector",
    )
    add_lint_arguments(lint_p)
    return parser


def _cmd_run(args) -> int:
    result = run_experiment(args.experiment, quick=not args.full)
    print(result.to_text())
    if args.csv:
        args.csv.write_text(result.to_csv())
    return 0 if result.all_checks_pass else 1


def _cmd_all(args) -> int:
    failed: list[str] = []
    for exp_id in sorted(REGISTRY):
        start = time.perf_counter()
        result = run_experiment(exp_id, quick=not args.full)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"({elapsed:.1f}s)\n")
        if args.outdir:
            args.outdir.mkdir(parents=True, exist_ok=True)
            (args.outdir / f"{exp_id}.txt").write_text(result.to_text() + "\n")
        if not result.all_checks_pass:
            failed.append(exp_id)
    if failed:
        print(f"FAILED shape checks in: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all shape checks passed")
    return 0


def _cmd_train(args) -> int:
    from repro.san import activate_sanitizer, sanitizer_from_mode

    san = sanitizer_from_mode(args.sanitize)
    if san is None:
        return _cmd_train_inner(args)
    # activation composes with --trace: the sanitizer wraps the collector
    # so both see the same fit (numeric failures raise out of fit itself)
    with activate_sanitizer(san):
        rc = _cmd_train_inner(args)
    report = san.finalize()
    print()
    print(report.format())
    if args.san_report is not None:
        import json

        args.san_report.parent.mkdir(parents=True, exist_ok=True)
        args.san_report.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"sanitizer report -> {args.san_report}")
    if not report.clean:
        print(f"sanitizer: {len(report.findings)} finding(s)",
              file=sys.stderr)
        return 1
    return rc


def _cmd_train_inner(args) -> int:
    if args.trace is None:
        return _run_train(args)
    from repro.obs import TelemetryCollector, activate, validate_chrome_trace

    collector = TelemetryCollector(run_label=f"train-{args.dataset}")
    with activate(collector):
        rc = _run_train(args)
    trace = collector.tracer.to_chrome()
    n_events = validate_chrome_trace(trace)
    lanes = {
        (e.get("pid"), e.get("tid"))
        for e in trace["traceEvents"] if e.get("ph") != "M"
    }
    collector.tracer.write(args.trace)
    print(f"trace: {n_events} events on {len(lanes)} lanes -> {args.trace}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return rc


def _resolve_executor(args, spec, problem) -> None:
    """Resolve ``--executor auto`` (the default) into a concrete executor.

    Structural constraints first — ``--out-of-core`` only runs on procs;
    ``--fault-plan`` and the non-hogwild schemes only run on the serial
    simulators — then the measured-evidence policy of
    :mod:`repro.parallel.policy` (serial unless this host's perf ledger
    shows a parallel executor beating serial). Also resolves
    ``--backend auto`` to a concrete verified backend either way, and
    publishes the decision to any ambient metrics registry.
    """
    from repro.parallel.policy import (
        ExecutorChoice,
        choose_backend,
        choose_executor,
        publish_choice,
    )

    k = args.k or spec.k
    nnz = problem.train.nnz
    if args.executor != "auto":
        args.backend, _ = choose_backend(nnz, k, args.backend)
        if args.procs is None:
            args.procs = 4
        return
    backend_name, _ = choose_backend(nnz, k, args.backend)
    if args.out_of_core:
        choice = ExecutorChoice(
            "procs", args.procs or 4, backend_name,
            "--out-of-core streams through the procs executor",
        )
    elif args.fault_plan:
        choice = ExecutorChoice(
            "serial", 1, backend_name,
            "--fault-plan recovery runs on the serial executor",
        )
    elif args.scheme != "batch_hogwild":
        choice = ExecutorChoice(
            "serial", 1, backend_name,
            f"--scheme {args.scheme} runs on the serial simulators",
        )
    else:
        from repro.obs.ledger import DEFAULT_LEDGER_PATH, PerfLedger

        ledger = PerfLedger(DEFAULT_LEDGER_PATH) \
            if DEFAULT_LEDGER_PATH.exists() else None
        choice = choose_executor(nnz, k, backend=args.backend, ledger=ledger)
    publish_choice(choice)
    args.executor = choice.executor
    args.backend = choice.backend
    if args.procs is None:
        args.procs = choice.n_workers if choice.executor != "serial" else 4
    workers = 1 if choice.executor == "serial" else args.procs
    print(f"auto-policy: executor={choice.executor} backend={choice.backend} "
          f"workers={workers} ({choice.reason})")


def _run_train(args) -> int:
    from repro.core.checkpoint import save_model
    from repro.core.lr_schedule import NomadSchedule
    from repro.core.trainer import CuMFSGD
    from repro.data.synthetic import SCALED_DATASETS, make_synthetic

    if args.dataset not in SCALED_DATASETS:
        print(f"unknown data set {args.dataset!r}; choose from "
              f"{sorted(SCALED_DATASETS)}", file=sys.stderr)
        return 2
    spec = SCALED_DATASETS[args.dataset]
    problem = make_synthetic(spec, seed=args.seed)
    _resolve_executor(args, spec, problem)
    if args.executor != "serial":
        return _train_parallel(args, spec, problem)
    if args.out_of_core:
        print("--out-of-core requires --executor procs", file=sys.stderr)
        return 2
    est = CuMFSGD(
        k=args.k or spec.k,
        scheme=args.scheme,
        workers=args.workers,
        lam=args.lam if args.lam is not None else spec.lam,
        schedule=NomadSchedule(alpha=spec.alpha, beta=spec.beta),
        half_precision=args.half,
        n_devices=2 if args.scheme == "multi_device" else 1,
        grid=(4, 4) if args.scheme == "multi_device" else (1, 1),
        seed=args.seed,
        backend=args.backend,
    )
    from repro.metrics.throughput import ThroughputRecord

    start = time.perf_counter()
    trainer = None
    if args.fault_plan:
        import tempfile

        from repro.resilience.faults import FaultPlan
        from repro.resilience.trainer import ResilientTrainer

        plan = FaultPlan.load(args.fault_plan)
        with tempfile.TemporaryDirectory() as tmp_ckpt:
            trainer = ResilientTrainer(
                est, args.checkpoint_dir or tmp_ckpt, fault_plan=plan
            )
            history = trainer.fit(problem.train, epochs=args.epochs,
                                  test=problem.test)
    else:
        history = est.fit(problem.train, epochs=args.epochs, test=problem.test,
                          verbose=True)
    elapsed = time.perf_counter() - start
    record = ThroughputRecord.from_history(
        history, problem.train.nnz, elapsed_seconds=elapsed,
        solver=f"cuMF_SGD/{args.scheme}", dataset=args.dataset,
        workers=args.workers, k=est.k,
    )
    print(f"\nfinal test RMSE {history.final_test_rmse:.4f} "
          f"(noise floor {problem.rmse_floor:.2f}) in {elapsed:.1f}s "
          f"({record.musec:.1f} M updates/s Eq.7, "
          f"{record.bandwidth_gbs:.2f} GB/s effective)")
    print(f"parallelism: {est.safety}")
    if trainer is not None and trainer.events:
        counters = ", ".join(f"{k}={v:g}" for k, v in sorted(trainer.events.items()))
        print(f"resilience: {counters} (rollbacks {trainer.rollbacks}, "
              f"lr scale {trainer.lr_scale:g})")
    if args.save:
        from_path = save_model(args.save, est.model, epoch=len(history.epochs),
                               metadata={"dataset": args.dataset})
        print(f"checkpoint written to {from_path}")
    return 0


def _train_parallel(args, spec, problem) -> int:
    """``train --executor threads|procs``: the real-parallelism executors."""
    from repro.core.checkpoint import save_model
    from repro.core.lr_schedule import NomadSchedule
    from repro.metrics.throughput import ThroughputRecord

    if args.fault_plan:
        print("--fault-plan is only supported with --executor serial",
              file=sys.stderr)
        return 2
    if args.out_of_core and args.executor != "procs":
        print("--out-of-core requires --executor procs", file=sys.stderr)
        return 2
    if args.half:
        print("note: --half is ignored by the parallel executors "
              "(fp32 shared buffers)", file=sys.stderr)
    k = args.k or spec.k
    lam = args.lam if args.lam is not None else spec.lam
    schedule = NomadSchedule(alpha=spec.alpha, beta=spec.beta)
    start = time.perf_counter()
    if args.executor == "threads":
        from repro.parallel.threads import ThreadedHogwild

        est = ThreadedHogwild(k=k, n_threads=args.procs, lam=lam,
                              schedule=schedule, seed=args.seed,
                              backend=args.backend)
        history = est.fit(problem.train, epochs=args.epochs, test=problem.test)
        per_worker = est.thread_updates
    else:
        import tempfile

        from repro.data.blockstore import BlockStore
        from repro.parallel.procs import ProcessHogwild

        tmp = tempfile.TemporaryDirectory() if args.out_of_core else None
        try:
            store = None
            if tmp is not None:
                grid = max(2, args.procs)
                store = BlockStore.create(problem.train, grid, grid, tmp.name,
                                          seed=args.seed)
                print(f"blockstore: {grid}x{grid} grid, "
                      f"{store.max_block_nnz} max nnz/block -> {tmp.name}")
            est = ProcessHogwild(k=k, n_procs=args.procs, lam=lam,
                                 schedule=schedule, seed=args.seed,
                                 workers=args.workers, store=store,
                                 backend=args.backend)
            history = est.fit(problem.train, epochs=args.epochs,
                              test=problem.test)
        finally:
            if tmp is not None:
                tmp.cleanup()
        per_worker = est.worker_updates
        if est.stage_stats is not None:
            s = est.stage_stats
            print(f"staging: {s.blocks_loaded} blocks, "
                  f"{s.bytes_loaded / 1e6:.1f} MB loaded in "
                  f"{s.load_seconds:.2f}s (stall {s.wait_seconds:.2f}s)")
    elapsed = time.perf_counter() - start
    record = ThroughputRecord.from_history(
        history, problem.train.nnz, elapsed_seconds=elapsed,
        solver=f"hogwild/{args.executor}", dataset=args.dataset,
        workers=args.procs, k=k,
    )
    print(f"\nfinal test RMSE {history.final_test_rmse:.4f} "
          f"(noise floor {problem.rmse_floor:.2f}) in {elapsed:.1f}s "
          f"({record.musec:.1f} M updates/s Eq.7) "
          f"across {args.procs} {args.executor}")
    print(f"per-worker updates (last epoch): {per_worker}")
    if est.stall_report is not None:
        print(est.stall_report.format())
    if args.save:
        path = save_model(args.save, est.model, epoch=len(history.epochs),
                          metadata={"dataset": args.dataset,
                                    "executor": args.executor})
        print(f"checkpoint written to {path}")
    return 0


def _instrumented_run(args):
    """Run one experiment under a fresh collector (+ optional probe)."""
    from repro.obs import TelemetryCollector, activate
    from repro.obs.probe import standard_probe, workload_for_experiment

    exp_id = resolve_experiment_id(args.experiment)
    collector = TelemetryCollector(run_label=exp_id)
    with activate(collector):
        result = run_experiment(exp_id, quick=not args.full)
    if not args.no_probe:
        standard_probe(collector, workload=workload_for_experiment(exp_id))
    return exp_id, collector, result


def _print_headline(collector) -> None:
    summary = collector.summary()
    for key in ("updates_per_sec", "effective_bandwidth_gbs", "conflict_rate"):
        if key in summary:
            print(f"  {key}: {summary[key]:.4g}")
    print(f"  lock_waits: {summary['lock_waits']:.0f} "
          f"(of {summary['lock_attempts']:.0f} attempts)")
    for device, frac in sorted(summary.get("stream_overlap_fraction", {}).items()):
        print(f"  stream_overlap_fraction[gpu{device}]: {frac:.3f}")
    for label, ups in sorted(summary.get("modelled_updates_per_sec", {}).items()):
        print(f"  modelled updates/s [{label}]: {ups:.3g}")


def _cmd_trace(args) -> int:
    from repro.obs import validate_chrome_trace

    try:
        exp_id, collector, result = _instrumented_run(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    n_events = validate_chrome_trace(collector.tracer.to_chrome())
    out = args.out or Path("results") / f"{exp_id}_trace.json"
    collector.tracer.write(out)
    print(f"{exp_id}: {n_events} trace events -> {out}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    _print_headline(collector)
    if args.metrics_out:
        collector.registry.write_json(args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0 if result.all_checks_pass else 1


def _cmd_metrics_dump(args) -> int:
    try:
        exp_id, collector, result = _instrumented_run(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    out = args.out or Path("results") / f"{exp_id}_metrics.json"
    if args.jsonl:
        collector.registry.write_jsonl(out)
    else:
        collector.registry.write_json(out)
    print(f"{exp_id}: {len(collector.registry)} metrics -> {out}")
    _print_headline(collector)
    return 0 if result.all_checks_pass else 1


def _cmd_fault_demo(args) -> int:
    from repro.experiments.resilience import (
        DEMO_KILL_AFTER,
        DEMO_KILL_DEVICE,
        run_fault_demo,
    )

    registry, summary = run_fault_demo(seed=args.seed, quick=not args.full)
    print(f"fault-demo (seed {args.seed}): device {DEMO_KILL_DEVICE} of 4 "
          f"killed after {DEMO_KILL_AFTER} dispatches, mid-epoch")
    print(f"  blocks processed: {summary['blocks_processed']}/"
          f"{summary['grid_blocks']} "
          f"(unique {summary['blocks_unique']}, "
          f"{summary['survivor_blocks']} on survivors)")
    print(f"  updates: {summary['updates']} of {summary['nnz']} ratings")
    print(f"  dead devices: {summary['dead_devices']}, "
          f"rounds: {summary['rounds']}, "
          f"retried bytes: {summary['retried_bytes']}")
    for name in sorted(k for k in summary if k not in (
        "updates", "nnz", "blocks_processed", "blocks_unique", "grid_blocks",
        "survivor_blocks", "dead_devices", "rounds", "retried_bytes",
    )):
        print(f"  repro.resilience.{name}: {summary[name]:g}")
    if args.out:
        registry.write_json(args.out)
        print(f"metrics -> {args.out} (byte-identical for the same seed)")
    complete = (
        summary["blocks_processed"] == summary["grid_blocks"]
        and summary["blocks_unique"] == summary["grid_blocks"]
        and summary["updates"] == summary["nnz"]
    )
    print("epoch completed degraded" if complete else "epoch INCOMPLETE")
    return 0 if complete else 1


def _cmd_plan(args) -> int:
    from repro.data.synthetic import PAPER_DATASETS
    from repro.gpusim.planner import plan_training

    if args.dataset not in PAPER_DATASETS:
        print(f"unknown data set {args.dataset!r}; choose from "
              f"{sorted(PAPER_DATASETS)}", file=sys.stderr)
        return 2
    try:
        plan = plan_training(
            PAPER_DATASETS[args.dataset],
            _gpu_spec(args.gpu),
            n_devices=args.devices,
            half_precision=not args.fp32,
        )
    except ValueError as exc:
        print(f"no feasible plan: {exc}", file=sys.stderr)
        return 1
    print(plan)
    return 0


def _cmd_throughput(args) -> int:
    from repro.data.synthetic import PAPER_DATASETS
    from repro.gpusim.simulator import cumf_throughput

    if args.dataset not in PAPER_DATASETS:
        print(f"unknown data set {args.dataset!r}", file=sys.stderr)
        return 2
    point = cumf_throughput(
        _gpu_spec(args.gpu),
        PAPER_DATASETS[args.dataset],
        workers=args.workers,
        scheme=args.scheme,
        half_precision=not args.fp32,
    )
    print(f"{point.solver} on {point.device}, {point.dataset}, "
          f"{point.workers} workers: {point.mupdates:.0f} M updates/s, "
          f"{point.effective_bandwidth_gbs:.0f} GB/s effective")
    return 0


def _cmd_perf_diff(args) -> int:
    import json

    from repro.obs.ledger import (
        DEFAULT_LEDGER_PATH,
        DEFAULT_THRESHOLD,
        PerfLedger,
        perf_diff,
    )

    paths = args.docs or [
        p for p in (Path("BENCH_hot_path.json"), Path("BENCH_parallel.json"))
        if p.exists()
    ]
    if not paths:
        print("perf-diff: no benchmark documents found — pass paths or run "
              "the benches first", file=sys.stderr)
        return 2
    docs = []
    for path in paths:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"perf-diff: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(doc, dict) or "benchmark" not in doc:
            print(f"perf-diff: {path} is not a benchmark document",
                  file=sys.stderr)
            return 2
        docs.append(doc)
    ledger = PerfLedger(args.against or DEFAULT_LEDGER_PATH)
    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    result = perf_diff(docs, ledger, threshold=threshold)
    print(result.format())
    if args.record:
        for doc in docs:
            ledger.append(doc)
        print(f"recorded {len(docs)} run(s) to {ledger.path}")
    return 0 if result.ok else 1


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in sorted(REGISTRY):
            doc = (REGISTRY[exp_id].__doc__ or "").strip().splitlines()
            print(f"{exp_id:10s} {doc[0] if doc else ''}")
        return 0
    return {
        "run": _cmd_run,
        "all": _cmd_all,
        "train": _cmd_train,
        "plan": _cmd_plan,
        "throughput": _cmd_throughput,
        "trace": _cmd_trace,
        "metrics-dump": _cmd_metrics_dump,
        "fault-demo": _cmd_fault_demo,
        "perf-diff": _cmd_perf_diff,
        "lint": _cmd_lint,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

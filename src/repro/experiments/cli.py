"""Command-line entry point.

Subcommands::

    cumf-sgd list                         # registered paper artifacts
    cumf-sgd run fig9 [--full] [--csv F]  # reproduce one table/figure
    cumf-sgd all [--full] [--outdir D]    # reproduce everything
    cumf-sgd train netflix-syn --epochs 20 --scheme wavefront
    cumf-sgd plan hugewiki --gpu pascal --devices 2
    cumf-sgd throughput --gpu maxwell --workers 768
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import REGISTRY, run_experiment

__all__ = ["main"]

_GPU_CHOICES = ("maxwell", "pascal")


def _gpu_spec(name: str):
    from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100

    return {"maxwell": MAXWELL_TITAN_X, "pascal": PASCAL_P100}[name]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cumf-sgd",
        description="Reproduce CuMF_SGD (HPDC'17): experiments, training, planning.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(REGISTRY))
    run_p.add_argument("--full", action="store_true", help="full-scale numeric runs")
    run_p.add_argument("--csv", type=Path, help="also write rows as CSV")

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--full", action="store_true")
    all_p.add_argument("--outdir", type=Path, help="write per-experiment .txt files")

    train_p = sub.add_parser("train", help="train on a registered synthetic data set")
    train_p.add_argument("dataset", help="scaled data set name (e.g. netflix-syn)")
    train_p.add_argument("--scheme", default="batch_hogwild",
                         choices=("batch_hogwild", "wavefront", "multi_device"))
    train_p.add_argument("--epochs", type=int, default=20)
    train_p.add_argument("--workers", type=int, default=64)
    train_p.add_argument("--k", type=int, default=None)
    train_p.add_argument("--lam", type=float, default=None)
    train_p.add_argument("--half", action="store_true", help="fp16 feature storage")
    train_p.add_argument("--seed", type=int, default=0)
    train_p.add_argument("--save", type=Path, help="checkpoint path for the model")

    plan_p = sub.add_parser("plan", help="plan a training configuration (§6.1 + §7.5)")
    plan_p.add_argument("dataset", help="paper-scale data set (netflix/yahoo/hugewiki)")
    plan_p.add_argument("--gpu", choices=_GPU_CHOICES, default="maxwell")
    plan_p.add_argument("--devices", type=int, default=1)
    plan_p.add_argument("--fp32", action="store_true", help="plan for fp32 features")

    thr_p = sub.add_parser("throughput", help="modelled updates/s for a configuration")
    thr_p.add_argument("--gpu", choices=_GPU_CHOICES, default="maxwell")
    thr_p.add_argument("--dataset", default="netflix")
    thr_p.add_argument("--workers", type=int, default=None)
    thr_p.add_argument("--scheme", default="batch_hogwild",
                       choices=("batch_hogwild", "wavefront", "libmf_gpu"))
    thr_p.add_argument("--fp32", action="store_true")
    return parser


def _cmd_run(args) -> int:
    result = run_experiment(args.experiment, quick=not args.full)
    print(result.to_text())
    if args.csv:
        args.csv.write_text(result.to_csv())
    return 0 if result.all_checks_pass else 1


def _cmd_all(args) -> int:
    failed: list[str] = []
    for exp_id in sorted(REGISTRY):
        start = time.perf_counter()
        result = run_experiment(exp_id, quick=not args.full)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"({elapsed:.1f}s)\n")
        if args.outdir:
            args.outdir.mkdir(parents=True, exist_ok=True)
            (args.outdir / f"{exp_id}.txt").write_text(result.to_text() + "\n")
        if not result.all_checks_pass:
            failed.append(exp_id)
    if failed:
        print(f"FAILED shape checks in: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all shape checks passed")
    return 0


def _cmd_train(args) -> int:
    from repro.core.checkpoint import save_model
    from repro.core.lr_schedule import NomadSchedule
    from repro.core.trainer import CuMFSGD
    from repro.data.synthetic import SCALED_DATASETS, make_synthetic

    if args.dataset not in SCALED_DATASETS:
        print(f"unknown data set {args.dataset!r}; choose from "
              f"{sorted(SCALED_DATASETS)}", file=sys.stderr)
        return 2
    spec = SCALED_DATASETS[args.dataset]
    problem = make_synthetic(spec, seed=args.seed)
    est = CuMFSGD(
        k=args.k or spec.k,
        scheme=args.scheme,
        workers=args.workers,
        lam=args.lam if args.lam is not None else spec.lam,
        schedule=NomadSchedule(alpha=spec.alpha, beta=spec.beta),
        half_precision=args.half,
        n_devices=2 if args.scheme == "multi_device" else 1,
        grid=(4, 4) if args.scheme == "multi_device" else (1, 1),
        seed=args.seed,
    )
    start = time.perf_counter()
    history = est.fit(problem.train, epochs=args.epochs, test=problem.test,
                      verbose=True)
    elapsed = time.perf_counter() - start
    rate = history.total_updates / elapsed / 1e6
    print(f"\nfinal test RMSE {history.final_test_rmse:.4f} "
          f"(noise floor {problem.rmse_floor:.2f}) in {elapsed:.1f}s "
          f"({rate:.1f} M host-updates/s)")
    print(f"parallelism: {est.safety}")
    if args.save:
        from_path = save_model(args.save, est.model, epoch=len(history.epochs),
                               metadata={"dataset": args.dataset})
        print(f"checkpoint written to {from_path}")
    return 0


def _cmd_plan(args) -> int:
    from repro.data.synthetic import PAPER_DATASETS
    from repro.gpusim.planner import plan_training

    if args.dataset not in PAPER_DATASETS:
        print(f"unknown data set {args.dataset!r}; choose from "
              f"{sorted(PAPER_DATASETS)}", file=sys.stderr)
        return 2
    try:
        plan = plan_training(
            PAPER_DATASETS[args.dataset],
            _gpu_spec(args.gpu),
            n_devices=args.devices,
            half_precision=not args.fp32,
        )
    except ValueError as exc:
        print(f"no feasible plan: {exc}", file=sys.stderr)
        return 1
    print(plan)
    return 0


def _cmd_throughput(args) -> int:
    from repro.data.synthetic import PAPER_DATASETS
    from repro.gpusim.simulator import cumf_throughput

    if args.dataset not in PAPER_DATASETS:
        print(f"unknown data set {args.dataset!r}", file=sys.stderr)
        return 2
    point = cumf_throughput(
        _gpu_spec(args.gpu),
        PAPER_DATASETS[args.dataset],
        workers=args.workers,
        scheme=args.scheme,
        half_precision=not args.fp32,
    )
    print(f"{point.solver} on {point.device}, {point.dataset}, "
          f"{point.workers} workers: {point.mupdates:.0f} M updates/s, "
          f"{point.effective_bandwidth_gbs:.0f} GB/s effective")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in sorted(REGISTRY):
            doc = (REGISTRY[exp_id].__doc__ or "").strip().splitlines()
            print(f"{exp_id:10s} {doc[0] if doc else ''}")
        return 0
    return {
        "run": _cmd_run,
        "all": _cmd_all,
        "train": _cmd_train,
        "plan": _cmd_plan,
        "throughput": _cmd_throughput,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Table 4 — training time to target RMSE, normalized to LIBMF.

The paper's headline table: cuMF_SGD-M is 3.1-6.8x and cuMF_SGD-P
7.0-28.2x as fast as LIBMF; NOMAD beats LIBMF on Netflix/Hugewiki but loses
on Yahoo!Music; BIDMach lands near LIBMF.

Composition: epochs-to-target measured numerically on the synthetic scaled
workloads (per solver), multiplied by the modelled paper-scale epoch time
(per solver x platform).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import (
    PLATFORM_SOLVERS,
    dataset_problem,
    modelled_epoch_seconds,
    run_numeric_solver,
)

__all__ = ["run"]

#: Paper's Table 4 speedups vs LIBMF, for the notes.
PAPER_SPEEDUPS = {
    ("netflix", "NOMAD"): 2.4,
    ("netflix", "BIDMach-M"): 1.24,
    ("netflix", "BIDMach-P"): 1.53,
    ("netflix", "cuMF_SGD-M"): 3.1,
    ("netflix", "cuMF_SGD-P"): 7.0,
    ("yahoo", "NOMAD"): 0.35,
    ("yahoo", "BIDMach-M"): 0.78,
    ("yahoo", "BIDMach-P"): 0.96,
    ("yahoo", "cuMF_SGD-M"): 4.3,
    ("yahoo", "cuMF_SGD-P"): 10.0,
    ("hugewiki", "NOMAD"): 6.6,
    ("hugewiki", "cuMF_SGD-M"): 6.8,
    ("hugewiki", "cuMF_SGD-P"): 28.2,
}


@register("table4")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table4",
        title="Training time to target RMSE, speedup normalized to LIBMF",
        headers=("dataset", "solver", "epochs_to_target", "time_s", "speedup_vs_libmf"),
    )
    epochs = 8 if quick else 20
    speedups: dict[tuple[str, str], float] = {}
    for workload in ("netflix", "yahoo", "hugewiki"):
        problem = dataset_problem(workload, quick=quick)
        histories = {
            numeric: run_numeric_solver(numeric, problem, epochs)
            for numeric in {n for _, n, _ in PLATFORM_SOLVERS}
        }
        target = max(h.best_test_rmse for h in histories.values()) * 1.002
        times: dict[str, float] = {}
        epochs_used: dict[str, int] = {}
        for display, numeric, _platform in PLATFORM_SOLVERS:
            if display.startswith("BIDMach") and workload == "hugewiki":
                continue  # out of single-GPU memory, as in the paper
            e = histories[numeric].epochs_to_target(target)
            if e is None:
                continue
            times[display] = e * modelled_epoch_seconds(display, workload)
            epochs_used[display] = e
        libmf_time = times.get("LIBMF")
        for display in times:
            speedup = libmf_time / times[display] if libmf_time else float("nan")
            speedups[(workload, display)] = speedup
            result.add(workload, display, epochs_used[display],
                       round(times[display], 2), round(speedup, 2))

    # ---- shape checks ------------------------------------------------
    for workload in ("netflix", "yahoo", "hugewiki"):
        m = speedups.get((workload, "cuMF_SGD-M"))
        p = speedups.get((workload, "cuMF_SGD-P"))
        if m is not None:
            result.check(f"{workload}: cuMF_SGD-M >= 2x over LIBMF", m >= 2.0)
        if m is not None and p is not None:
            result.check(f"{workload}: Pascal beats Maxwell", p > m)
    if ("yahoo", "NOMAD") in speedups:
        result.check("yahoo: NOMAD slower than LIBMF (speedup < 1)",
                     speedups[("yahoo", "NOMAD")] < 1.0)
    if ("netflix", "NOMAD") in speedups:
        result.check("netflix: NOMAD faster than LIBMF",
                     speedups[("netflix", "NOMAD")] > 1.0)
    for key, paper_val in PAPER_SPEEDUPS.items():
        if key in speedups:
            result.notes.append(
                f"{key[0]}/{key[1]}: measured {speedups[key]:.2f}x vs paper {paper_val}x"
            )
    return result

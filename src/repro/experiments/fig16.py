"""Figure 16 — scaling cuMF_SGD to two GPUs on Yahoo!Music.

Yahoo!Music is the only workload whose R is large in *both* dimensions
(1M x 625k), so it can be split 8x8 and solved on two GPUs without breaking
the §7.5 convergence rule. The paper measures 1.5x speedup with 2 Pascal
GPUs — sub-linear because each scheduling round ends with a CPU-GPU segment
hand-back that synchronizes the devices.
"""

from __future__ import annotations

from repro.core.lr_schedule import NomadSchedule
from repro.core.trainer import CuMFSGD
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import dataset_problem
from repro.gpusim.simulator import multi_gpu_epoch_seconds
from repro.gpusim.specs import PASCAL_P100

__all__ = ["run"]


@register("fig16")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig16",
        title="Yahoo!Music on 1 vs 2 Pascal GPUs: ~1.5x speedup",
        headers=("gpus", "epoch", "time_s", "test_rmse"),
    )
    problem = dataset_problem("yahoo", quick=quick)
    spec = problem.spec
    epochs = 8 if quick else 16
    paper_spec_name = "yahoo"
    from repro.experiments.common import paper_spec_for

    paper_spec = paper_spec_for(paper_spec_name)
    grid = (8, 8)

    finals = {}
    reach_times = {}
    histories = {}
    for gpus in (1, 2):
        est = CuMFSGD(
            k=spec.k,
            scheme="multi_device",
            workers=64,
            n_devices=gpus,
            grid=grid,
            lam=spec.lam,
            schedule=NomadSchedule(spec.alpha, spec.beta),
            seed=3,
        )
        hist = est.fit(problem.train, epochs=epochs, test=problem.test)
        per_epoch = multi_gpu_epoch_seconds(PASCAL_P100, paper_spec, gpus, *grid)
        histories[gpus] = (hist, per_epoch)
        finals[gpus] = hist.final_test_rmse
        for epoch, rmse_val in zip(hist.epochs, hist.test_rmse):
            result.add(gpus, epoch, round(epoch * per_epoch, 3), round(rmse_val, 4))

    target = max(finals.values()) * 1.002
    for gpus, (hist, per_epoch) in histories.items():
        e = hist.epochs_to_target(target)
        if e is not None:
            reach_times[gpus] = e * per_epoch

    result.check("2-GPU convergence matches 1-GPU (within 2% final RMSE)",
                 abs(finals[2] - finals[1]) < 0.02 * finals[1])
    if 1 in reach_times and 2 in reach_times:
        speedup = reach_times[1] / reach_times[2]
        result.check("2-GPU speedup between 1.2x and 2.0x (paper: 1.5x)",
                     1.2 <= speedup <= 2.0)
        result.notes.append(f"measured time-to-target speedup: {speedup:.2f}x")
    epoch_speedup = histories[1][1] / histories[2][1]
    result.check("per-epoch speedup sub-linear (< 1.9x)", epoch_speedup < 1.9)
    result.notes.append(f"modelled per-epoch speedup: {epoch_speedup:.2f}x (paper: 1.5x)")
    result.notes.append("paper: 2.5s (2 GPUs) vs 3.8s (1 GPU) to RMSE 22")
    return result

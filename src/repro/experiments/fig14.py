"""Figure 14 — matrix blocking hurts convergence when ``a`` approaches ``s``.

LIBMF with ``s`` fixed workers on an ``a x a`` grid: when ``a <= s`` (or
close), a releasing worker's only free block is the one it just held — the
grid degenerates into frozen diagonals, factors never mix across blocks, and
RMSE stalls. With ``a`` comfortably above ``s`` the scheduler has real
choices and convergence is healthy. (The combinatorial version of the same
argument is Fig. 15 / :mod:`repro.sched.ordering`.)
"""

from __future__ import annotations

from repro.baselines.libmf import LIBMFSolver
from repro.core.lr_schedule import NomadSchedule
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import dataset_problem

__all__ = ["run"]


@register("fig14")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig14",
        title="LIBMF convergence vs grid size a at fixed s: a <= s stalls",
        headers=("a", "epoch", "test_rmse"),
    )
    problem = dataset_problem("netflix", quick=quick)
    spec = problem.spec
    s = 12
    grids = (s, 2 * s, 4 * s) if quick else (s // 2, s, 2 * s, 4 * s, 8 * s)
    epochs = 8 if quick else 14

    finals: dict[int, float] = {}
    for a in grids:
        est = LIBMFSolver(
            k=spec.k,
            threads=s,
            a=a,
            lam=spec.lam,
            schedule=NomadSchedule(spec.alpha, spec.beta),
            seed=3,
        )
        hist = est.fit(problem.train, epochs=epochs, test=problem.test)
        finals[a] = hist.final_test_rmse
        for epoch, rmse_val in zip(hist.epochs, hist.test_rmse):
            result.add(a, epoch, round(rmse_val, 4))

    result.check(
        "a == s converges much worse than a == 4s",
        finals[s] > finals[4 * s] + 0.02,
    )
    result.check(
        "larger grids do not hurt (a=2s within 2% of a=4s)",
        finals[2 * s] <= finals[4 * s] * 1.02 + 1e-9,
    )
    if s // 2 in finals:
        result.check("a < s also stalls", finals[s // 2] > finals[4 * s] + 0.02)
    result.notes.append(
        f"s={s} workers; paper: s=40, a in 20..160 — 'when a is less than or "
        "close to s, convergence speed is much slower or even cannot be achieved'"
    )
    return result

"""Fault-injection demo: kill one GPU mid-epoch, retry flaky transfers,
roll back a diverging run — and finish anyway.

Not a paper artifact: the paper's §6 evaluation assumes healthy devices.
This experiment documents the reproduction's resilience contract instead:

* a seeded :class:`~repro.resilience.faults.FaultPlan` killing 1 of 4
  simulated devices mid-epoch still processes every block of the ``i x j``
  grid exactly once (survivors absorb the dead device's blocks);
* injected transfer faults are retried under the bounded backoff policy
  and the retransmitted bytes are charged to the transfer ledger;
* a divergence-inducing learning rate is caught by the per-epoch guard and
  rolled back to the last good checkpoint at half the rate until training
  reaches a finite RMSE;
* the same seed reproduces a byte-identical resilience metrics dump
  (:func:`run_fault_demo` — also behind the ``cumf-sgd fault-demo`` CLI).
"""

from __future__ import annotations

import tempfile

from repro.experiments.base import ExperimentResult, register

#: the documented scenario: device 2 of 4 dies after its 3rd dispatch
DEMO_DEVICES = 4
DEMO_GRID = (8, 8)
DEMO_KILL_DEVICE = 2
DEMO_KILL_AFTER = 3


def _demo_plan(seed: int):
    from repro.resilience.faults import (
        DeviceFailure,
        FaultPlan,
        Straggler,
        TransferFault,
    )

    return FaultPlan(
        transfer_faults=(
            TransferFault(device=0, dispatch=1, direction="h2d", failures=1),
            TransferFault(device=1, dispatch=4, direction="d2h", failures=2),
        ),
        device_failures=(DeviceFailure(DEMO_KILL_DEVICE, DEMO_KILL_AFTER),),
        stragglers=(Straggler(device=3, slowdown=1.5),),
        seed=seed,
    )


def run_fault_demo(seed: int = 0, quick: bool = True):
    """The kill-one-GPU-mid-epoch scenario, deterministically.

    Returns ``(registry, summary)``: a self-contained
    :class:`~repro.obs.registry.MetricsRegistry` holding only
    deterministic quantities (fault counters, ledger bytes, update counts
    — no wall-clock), so the same ``seed`` dumps byte-identical JSON, and
    a plain-dict summary for display.
    """
    from repro.core.model import FactorModel
    from repro.core.multi_gpu import MultiDeviceSGD
    from repro.data.synthetic import DatasetSpec, make_synthetic
    from repro.obs.hooks import RecordingHooks
    from repro.obs.registry import M, MetricsRegistry
    from repro.resilience.faults import FaultInjector
    from repro.resilience.retry import RetryPolicy

    spec = DatasetSpec(
        name="fault-demo",
        m=240 if quick else 2_000,
        n=160 if quick else 1_200,
        k=8 if quick else 32,
        n_train=6_000 if quick else 200_000,
        n_test=600 if quick else 2_000,
    )
    problem = make_synthetic(spec, seed=seed)
    registry = MetricsRegistry()
    injector = FaultInjector(_demo_plan(seed), registry=registry)
    sgd = MultiDeviceSGD(
        n_devices=DEMO_DEVICES, i=DEMO_GRID[0], j=DEMO_GRID[1],
        workers=32, seed=seed,
    ).attach_faults(injector, RetryPolicy())
    model = FactorModel.initialize(spec.m, spec.n, spec.k, seed=seed)
    recorder = RecordingHooks()
    updates = sgd.run_epoch(model, problem.train, 0.05, 0.05, hooks=recorder)

    registry.counter(M.RESILIENCE_DEMO_UPDATES).inc(updates)
    registry.counter(M.RESILIENCE_DEMO_BLOCKS).inc(len(recorder.batches))
    registry.counter(M.RESILIENCE_DEMO_ROUNDS).inc(sgd.ledger.rounds)
    registry.counter(M.TRANSFER_H2D_BYTES).inc(sgd.ledger.h2d_bytes)
    registry.counter(M.TRANSFER_D2H_BYTES).inc(sgd.ledger.d2h_bytes)
    registry.counter(M.RESILIENCE_RETRIED_BYTES).inc(sgd.ledger.retried_bytes)

    blocks = [event.block for event in recorder.batches]
    survivor_blocks = sum(
        1 for event in recorder.batches if event.worker != DEMO_KILL_DEVICE
    )
    summary = {
        "updates": updates,
        "nnz": problem.train.nnz,
        "blocks_processed": len(blocks),
        "blocks_unique": len(set(blocks)),
        "grid_blocks": DEMO_GRID[0] * DEMO_GRID[1],
        "survivor_blocks": survivor_blocks,
        "dead_devices": sorted(injector.dead_devices),
        "rounds": sgd.ledger.rounds,
        "retried_bytes": sgd.ledger.retried_bytes,
        **injector.events,
    }
    return registry, summary


@register("resilience")
def run(quick: bool = True) -> ExperimentResult:
    """Fault injection & recovery: device loss, flaky transfers, rollback."""
    import numpy as np

    from repro.core.lr_schedule import ConstantSchedule
    from repro.core.trainer import CuMFSGD
    from repro.data.synthetic import DatasetSpec, make_synthetic
    from repro.gpusim.streams import StagedBlock, simulate_epoch_staging
    from repro.resilience.retry import RetryPolicy
    from repro.resilience.trainer import ResilientTrainer

    result = ExperimentResult(
        experiment_id="resilience",
        title="fault injection & graceful recovery (not a paper artifact)",
        headers=("scenario", "quantity", "value"),
    )

    # -- 1. kill one GPU mid-epoch --------------------------------------
    registry, summary = run_fault_demo(seed=0, quick=quick)
    result.add("kill-1-of-4", "updates", summary["updates"])
    result.add("kill-1-of-4", "blocks processed", summary["blocks_processed"])
    result.add("kill-1-of-4", "device_lost", summary.get("device_lost", 0))
    result.add("kill-1-of-4", "blocks_rebalanced", summary.get("blocks_rebalanced", 0))
    result.add("kill-1-of-4", "degraded_rounds", summary.get("degraded_rounds", 0))
    result.add("kill-1-of-4", "transfer retries", summary.get("retries", 0))
    result.check(
        "every block processed exactly once despite the dead device",
        summary["blocks_processed"] == summary["grid_blocks"]
        and summary["blocks_unique"] == summary["grid_blocks"]
        and summary["updates"] == summary["nnz"],
    )
    result.check("device loss observed and survivors absorbed the blocks",
                 summary.get("device_lost", 0) == 1
                 and summary.get("blocks_rebalanced", 0) > 0)
    registry2, _ = run_fault_demo(seed=0, quick=quick)
    result.check("same seed reproduces a byte-identical metrics dump",
                 registry.to_json() == registry2.to_json())

    # -- 2. divergence rollback ------------------------------------------
    spec = DatasetSpec(
        name="rollback",
        m=300 if quick else 1_500,
        n=200 if quick else 1_000,
        k=8,
        n_train=15_000 if quick else 120_000,
        n_test=1_500 if quick else 12_000,
    )
    problem = make_synthetic(spec, seed=42)
    with tempfile.TemporaryDirectory() as ckpt_dir:
        est = CuMFSGD(k=spec.k, workers=32, lam=0.0,
                      schedule=ConstantSchedule(8.0), seed=0)
        trainer = ResilientTrainer(est, ckpt_dir, max_rollbacks=12)
        with np.errstate(over="ignore", invalid="ignore"):
            history = trainer.fit(problem.train, epochs=4 if quick else 10,
                                  test=problem.test)
    result.add("rollback", "rollbacks", trainer.rollbacks)
    result.add("rollback", "final lr scale", trainer.lr_scale)
    result.add("rollback", "final test RMSE", history.final_test_rmse)
    result.check("forced divergence recovers to a finite RMSE via rollback",
                 bool(np.isfinite(history.final_test_rmse))
                 and trainer.rollbacks >= 1)

    # -- 3. staged-pipeline degradation ----------------------------------
    block = StagedBlock(0.010, 0.050, 0.010)
    healthy, _ = simulate_epoch_staging([[block] * 6] * DEMO_DEVICES)
    degraded, per_device = simulate_epoch_staging(
        [[block] * 6] * DEMO_DEVICES, faults=_demo_plan(0), retry=RetryPolicy()
    )
    survived = sum(len(r.timeline) for r in per_device)
    result.add("staging", "healthy makespan (s)", healthy)
    result.add("staging", "degraded makespan (s)", degraded)
    result.add("staging", "slowdown", degraded / healthy)
    result.check("degraded staging completes all blocks, just slower",
                 survived == 6 * DEMO_DEVICES and degraded > healthy)

    result.notes.append(
        "fault plan: kill device 2 after 3 dispatches, 2 transfer faults, "
        "1 straggler (1.5x); see docs/RESILIENCE.md"
    )
    return result

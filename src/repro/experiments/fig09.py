"""Figure 9 — test RMSE over training time, all solvers, three data sets.

The paper's headline figure: with one GPU, cuMF_SGD-M/-P converge faster
than LIBMF (40 threads), NOMAD (32-64 HPC nodes), and BIDMach on both GPU
generations, on Netflix, Yahoo!Music, and Hugewiki.

Series construction: each solver's numeric RMSE curve (synthetic scaled
workload) is laid out on a time axis of ``epoch x modelled epoch seconds``
at paper-scale parameters. BIDMach on Hugewiki is omitted, as in the paper
(its fp32 working set exceeds single-GPU memory).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import (
    PLATFORM_SOLVERS,
    dataset_problem,
    modelled_epoch_seconds,
    run_numeric_solver,
)

__all__ = ["run"]


@register("fig9")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title="Test RMSE over training time; cuMF_SGD converges fastest with one GPU",
        headers=("dataset", "solver", "epoch", "time_s", "test_rmse"),
    )
    epochs = 8 if quick else 20
    workloads = ("netflix", "yahoo", "hugewiki")

    time_to_converge: dict[tuple[str, str], float] = {}
    for workload in workloads:
        problem = dataset_problem(workload, quick=quick)
        histories = {
            numeric: run_numeric_solver(numeric, problem, epochs)
            for numeric in {n for _, n, _ in PLATFORM_SOLVERS}
        }
        # the paper-style target: reached by every solver's curve
        target = max(h.best_test_rmse for h in histories.values()) * 1.002
        for display, numeric, _platform in PLATFORM_SOLVERS:
            if display.startswith("BIDMach") and workload == "hugewiki":
                continue  # exceeds single-GPU memory, as in the paper
            hist = histories[numeric]
            per_epoch = modelled_epoch_seconds(display, workload)
            for epoch, rmse_val in zip(hist.epochs, hist.test_rmse):
                result.add(workload, display, epoch, round(epoch * per_epoch, 2), round(rmse_val, 4))
            reach = hist.epochs_to_target(target)
            if reach is not None:
                time_to_converge[(workload, display)] = reach * per_epoch

    # ---- shape checks ------------------------------------------------
    for workload in workloads:
        t = {d: time_to_converge.get((workload, d)) for d, _, _ in PLATFORM_SOLVERS}
        cuhm, cuhp, libmf = t["cuMF_SGD-M"], t["cuMF_SGD-P"], t["LIBMF"]
        if cuhm and libmf:
            result.check(f"{workload}: cuMF_SGD-M faster than LIBMF", cuhm < libmf)
        if cuhp and cuhm:
            result.check(f"{workload}: Pascal faster than Maxwell", cuhp < cuhm)
        nomad = t.get("NOMAD")
        if cuhp and nomad:
            result.check(f"{workload}: cuMF_SGD-P faster than NOMAD", cuhp < nomad)
    nf_nomad = time_to_converge.get(("yahoo", "NOMAD"))
    nf_libmf = time_to_converge.get(("yahoo", "LIBMF"))
    if nf_nomad and nf_libmf:
        result.check("yahoo: NOMAD slower than LIBMF (n too large for the network)",
                     nf_nomad > nf_libmf)
    result.notes.append(
        "paper: cuMF_SGD 3.1x-28.2x over LIBMF; NOMAD loses to LIBMF on Yahoo!Music"
    )
    for (workload, display), t in sorted(time_to_converge.items()):
        result.notes.append(f"time-to-target {workload}/{display}: {t:.1f}s")
    return result

"""Eq. 4-5 / §2.3 — the workload characterization that motivates the paper.

Flops/Byte of one SGD update vs the machine balance of each platform: at
k = 128 with fp32 the intensity is ≈ 0.43 flops/byte against balances of
~10 (CPU) and ~20+ (GPU), so SGD-based MF is memory-bound everywhere, and
the right accelerator is the one with the most *bandwidth* — the paper's
central design argument.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.gpusim.roofline import machine_balance, roofline_point
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL
from repro.metrics.flops import flops_byte_ratio

__all__ = ["run"]


@register("roofline")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="roofline",
        title="Eq.5 Flops/Byte characterization and per-device rooflines",
        headers=("device", "k", "feature_bytes", "flops_per_byte", "balance", "memory_bound", "bw_bound_Mupd/s"),
    )
    intensity_128 = flops_byte_ratio(128)
    checked = []
    for device in (XEON_E5_2670_DUAL, MAXWELL_TITAN_X, PASCAL_P100):
        for fb in (4, 2):
            pt = roofline_point(device, k=128, feature_bytes=fb)
            balance = machine_balance(pt.peak_gflops, pt.bandwidth_gbs)
            checked.append(pt)
            result.add(
                pt.device, 128, fb, round(pt.intensity, 3), round(balance, 1),
                pt.memory_bound, round(pt.bandwidth_bound_updates_per_sec / 1e6, 0),
            )
    # k sweep at fp32 on Maxwell
    for k in (16, 32, 64, 128, 256):
        pt = roofline_point(MAXWELL_TITAN_X, k=k)
        result.add(pt.device, k, 4, round(pt.intensity, 3), round(
            machine_balance(pt.peak_gflops, pt.bandwidth_gbs), 1), pt.memory_bound,
            round(pt.bandwidth_bound_updates_per_sec / 1e6, 0))

    result.check("Eq.5 value at k=128 fp32 is ~0.43 flops/byte",
                 abs(intensity_128 - 0.43) < 0.02)
    result.check("SGD-MF is memory-bound on every platform and precision",
                 all(pt.memory_bound for pt in checked))
    result.check(
        "half precision roughly doubles the bandwidth-bound update rate",
        1.8
        <= roofline_point(MAXWELL_TITAN_X, feature_bytes=2).bandwidth_bound_updates_per_sec
        / roofline_point(MAXWELL_TITAN_X, feature_bytes=4).bandwidth_bound_updates_per_sec
        <= 2.1,
    )
    result.notes.append("paper: 'for k = 128 ... the Flops/Byte is 0.43 ops/byte'")
    result.notes.append("paper: CPU balance ~10 (600 GFLOPS / 60 GB/s)")
    return result

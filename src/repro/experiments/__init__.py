"""Experiment harness: one module per paper table/figure.

Every experiment is a function ``run(quick: bool = True) -> ExperimentResult``
registered in :data:`repro.experiments.base.REGISTRY`. ``quick`` trades
data-set size and epoch counts for runtime; the reported *shape* (who wins,
by roughly what factor, where crossovers fall) is the reproduction target —
absolute numbers live in the performance model, whose paper-scale parameters
are used regardless of ``quick``.

Run from the CLI::

    cumf-sgd list
    cumf-sgd run fig09 --full
    cumf-sgd all
"""

from repro.experiments.base import REGISTRY, ExperimentResult, get_experiment, run_experiment

# importing the modules populates the registry
from repro.experiments import (  # noqa: F401
    cost,
    eq8,
    fig02,
    fig04,
    fig05,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    resilience,
    roofline,
    table2,
    table4,
    table5,
)

__all__ = ["REGISTRY", "ExperimentResult", "get_experiment", "run_experiment"]

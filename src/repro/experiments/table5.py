"""Table 5 — achieved #Updates/s: BIDMach vs cuMF_SGD.

Paper values (Mupdates/s):

============  =======  ===========  ========
solver        Netflix  Yahoo!Music  Hugewiki
============  =======  ===========  ========
BIDMach-M     25.2     21.6         —
BIDMach-P     29.6     32.3         —
cuMF_SGD-M    267      258          256
cuMF_SGD-P    613      634          710
============  =======  ===========  ========
"""

from __future__ import annotations

from repro.baselines.bidmach import bidmach_throughput
from repro.data.synthetic import PAPER_DATASETS
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.simulator import cumf_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100

__all__ = ["run"]

PAPER_VALUES = {
    ("BIDMach-M", "netflix"): 25.2,
    ("BIDMach-M", "yahoo"): 21.6,
    ("BIDMach-P", "netflix"): 29.6,
    ("BIDMach-P", "yahoo"): 32.3,
    ("cuMF_SGD-M", "netflix"): 267.0,
    ("cuMF_SGD-M", "yahoo"): 258.0,
    ("cuMF_SGD-M", "hugewiki"): 256.0,
    ("cuMF_SGD-P", "netflix"): 613.0,
    ("cuMF_SGD-P", "yahoo"): 634.0,
    ("cuMF_SGD-P", "hugewiki"): 710.0,
}


@register("table5")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table5",
        title="Achieved Mupdates/s of BIDMach and cuMF_SGD",
        headers=("solver", "dataset", "Mupdates/s", "paper_Mupdates/s"),
    )
    measured: dict[tuple[str, str], float] = {}
    for name in ("netflix", "yahoo", "hugewiki"):
        spec = PAPER_DATASETS[name]
        if name != "hugewiki":  # BIDMach cannot hold Hugewiki (paper: '-')
            measured[("BIDMach-M", name)] = bidmach_throughput(MAXWELL_TITAN_X, spec) / 1e6
            measured[("BIDMach-P", name)] = bidmach_throughput(PASCAL_P100, spec) / 1e6
        measured[("cuMF_SGD-M", name)] = cumf_throughput(MAXWELL_TITAN_X, spec).mupdates
        measured[("cuMF_SGD-P", name)] = cumf_throughput(PASCAL_P100, spec).mupdates

    for key in sorted(measured):
        result.add(key[0], key[1], round(measured[key], 1), PAPER_VALUES.get(key, float("nan")))

    result.check(
        "cuMF_SGD-M beats BIDMach-M by ~10x on Netflix",
        measured[("cuMF_SGD-M", "netflix")] / measured[("BIDMach-M", "netflix")] > 5,
    )
    result.check(
        "cuMF_SGD-P beats BIDMach-P by >10x on Yahoo",
        measured[("cuMF_SGD-P", "yahoo")] / measured[("BIDMach-P", "yahoo")] > 10,
    )
    for key, paper in PAPER_VALUES.items():
        if key in measured:
            result.check(
                f"{key[0]} on {key[1]} within 2x of paper value",
                0.5 <= measured[key] / paper <= 2.0,
            )
    return result

"""Cost-efficiency — the §7.2 aside, quantified.

"Obviously, cuMF_SGD is not only faster, using a single GPU card, it is also
more cost-efficient." This experiment converts the Table 4 time-to-converge
values into cost-to-converge with coarse 2017 platform rates, showing the
one-GPU solution beating the 64-node cluster by orders of magnitude on cost.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import (
    dataset_problem,
    modelled_epoch_seconds,
    run_numeric_solver,
)
from repro.gpusim.cost import PLATFORM_COSTS, cost_to_converge

__all__ = ["run"]

_PLATFORM_OF = {
    "LIBMF": "cpu-server",
    "NOMAD": "hpc-cluster-32",
    "cuMF_SGD-M": "maxwell-gpu",
    "cuMF_SGD-P": "pascal-gpu",
}


@register("cost")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="cost",
        title="Cost to converge: one GPU vs CPU server vs HPC cluster",
        headers=("dataset", "solver", "platform", "time_s", "cost_usd"),
    )
    epochs = 8 if quick else 20
    costs: dict[tuple[str, str], float] = {}
    for workload in ("netflix", "hugewiki"):
        problem = dataset_problem(workload, quick=quick)
        histories = {
            numeric: run_numeric_solver(numeric, problem, epochs)
            for numeric in {"LIBMF", "NOMAD", "cuMF_SGD"}
        }
        target = max(h.best_test_rmse for h in histories.values()) * 1.002
        for display, numeric in (
            ("LIBMF", "LIBMF"),
            ("NOMAD", "NOMAD"),
            ("cuMF_SGD-M", "cuMF_SGD"),
            ("cuMF_SGD-P", "cuMF_SGD"),
        ):
            reach = histories[numeric].epochs_to_target(target)
            if reach is None:
                continue
            platform = _PLATFORM_OF[display]
            if display == "NOMAD" and workload == "hugewiki":
                platform = "hpc-cluster-64"
            seconds = reach * modelled_epoch_seconds(display, workload)
            usd = cost_to_converge(platform, seconds)
            costs[(workload, display)] = usd
            result.add(workload, display, PLATFORM_COSTS[platform].name,
                       round(seconds, 1), round(usd, 5))

    for workload in ("netflix", "hugewiki"):
        nomad = costs.get((workload, "NOMAD"))
        gpu_m = costs.get((workload, "cuMF_SGD-M"))
        gpu_p = costs.get((workload, "cuMF_SGD-P"))
        if nomad and gpu_m:
            result.check(
                f"{workload}: one Maxwell GPU >10x cheaper than the cluster",
                nomad / gpu_m > 10,
            )
        if nomad and gpu_p:
            result.check(
                f"{workload}: one Pascal GPU cheaper than the cluster",
                gpu_p < nomad,
            )
        libmf = costs.get((workload, "LIBMF"))
        if libmf and gpu_m:
            result.check(
                f"{workload}: GPU also cheaper than the CPU server",
                gpu_m < libmf,
            )
    result.notes.append(
        'paper: "cuMF_SGD is not only faster, using a single GPU card, '
        'it is also more cost-efficient"'
    )
    return result

"""Figure 12 — cuMF_SGD (1 GPU) vs cuMF_ALS (1 and 4 GPUs).

The paper: cuMF_SGD converges ~4x faster than cuMF_ALS-1 and about matches
cuMF_ALS-4. The mechanism is the §7.4 complexity argument — ALS epochs cost
O(N·k² + (m+n)·k³) compute against SGD's O(N·k), so although ALS needs
fewer epochs, each one is far slower.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import (
    dataset_problem,
    modelled_epoch_seconds,
    run_numeric_solver,
)

__all__ = ["run"]


@register("fig12")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig12",
        title="cuMF_SGD vs cuMF_ALS-1 and cuMF_ALS-4 (RMSE over time, Maxwell)",
        headers=("dataset", "solver", "epoch", "time_s", "test_rmse"),
    )
    sgd_epochs = 10 if quick else 24
    als_epochs = 6 if quick else 12
    workloads = ("netflix",) if quick else ("netflix", "yahoo", "hugewiki")

    reach: dict[tuple[str, str], float] = {}
    for workload in workloads:
        problem = dataset_problem(workload, quick=quick)
        hist_sgd = run_numeric_solver("cuMF_SGD", problem, sgd_epochs)
        hist_als = run_numeric_solver("cuMF_ALS", problem, als_epochs)
        target = max(hist_sgd.best_test_rmse, hist_als.best_test_rmse) * 1.002
        rows = (
            ("cuMF_SGD", hist_sgd, modelled_epoch_seconds("cuMF_SGD-M", workload)),
            ("cuMF_ALS-1", hist_als, modelled_epoch_seconds("cuMF_ALS-1", workload)),
            ("cuMF_ALS-4", hist_als, modelled_epoch_seconds("cuMF_ALS-4", workload)),
        )
        for solver, hist, per_epoch in rows:
            for epoch, rmse_val in zip(hist.epochs, hist.test_rmse):
                result.add(workload, solver, epoch, round(epoch * per_epoch, 2), round(rmse_val, 4))
            e = hist.epochs_to_target(target)
            if e is not None:
                reach[(workload, solver)] = e * per_epoch

        sgd_t = reach.get((workload, "cuMF_SGD"))
        als1_t = reach.get((workload, "cuMF_ALS-1"))
        als4_t = reach.get((workload, "cuMF_ALS-4"))
        if sgd_t and als1_t:
            result.check(f"{workload}: SGD faster than ALS-1", sgd_t < als1_t)
            result.check(
                f"{workload}: SGD >=1.5x faster than ALS-1 (paper: ~4x)",
                als1_t / sgd_t >= 1.5,
            )
        if sgd_t and als4_t:
            result.check(
                f"{workload}: SGD within 2.5x of ALS-4 (paper: 'similar')",
                sgd_t < 2.5 * als4_t,
            )
        if als1_t and als4_t:
            result.check(f"{workload}: ALS-4 faster than ALS-1", als4_t < als1_t)
    result.notes.append("paper: SGD ~4x faster than ALS-1, similar to ALS-4")
    for key, t in sorted(reach.items()):
        result.notes.append(f"time-to-target {key[0]}/{key[1]}: {t:.1f}s")
    return result

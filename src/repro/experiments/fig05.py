"""Figure 5(b) — LIBMF's scheduler does not scale.

The paper measures LIBMF saturating around 30 concurrent CPU threads, and
its O(a)-scan GPU port (LIBMF-GPU) saturating at ~240 thread blocks — far
below the Maxwell hardware limit of 768. The contention model reproduces
both knees from the critical-section structure alone.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import PAPER_DATASETS
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.simulator import cumf_throughput, libmf_cpu_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, XEON_E5_2670_DUAL

__all__ = ["run"]


def _knee(workers: list[int], rates: list[float], tol: float = 0.05) -> int:
    """First worker count whose rate is within ``tol`` of the final plateau."""
    plateau = max(rates)
    for w, r in zip(workers, rates):
        if r >= (1 - tol) * plateau:
            return w
    return workers[-1]


@register("fig5b")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5b",
        title="LIBMF saturates at ~30 CPU threads / ~240 GPU blocks",
        headers=("series", "workers", "Mupdates/s"),
    )
    netflix = PAPER_DATASETS["netflix"]

    cpu_workers = [1, 2, 4, 8, 12, 16, 20, 24, 28, 30, 32, 36, 40, 44, 48]
    cpu_rates = []
    for w in cpu_workers:
        point = libmf_cpu_throughput(XEON_E5_2670_DUAL, netflix, threads=w)
        cpu_rates.append(point.mupdates)
        result.add("LIBMF-CPU", w, round(point.mupdates, 1))

    gpu_workers = [32, 64, 96, 128, 192, 240, 320, 480, 640, 768]
    gpu_rates = []
    for w in gpu_workers:
        point = cumf_throughput(
            MAXWELL_TITAN_X, netflix, workers=w, scheme="libmf_gpu", half_precision=False
        )
        gpu_rates.append(point.mupdates)
        result.add("LIBMF-GPU", w, round(point.mupdates, 1))

    cpu_knee = _knee(cpu_workers, cpu_rates)
    gpu_knee = _knee(gpu_workers, gpu_rates)
    result.notes.append("paper: CPU knee ~30 threads; GPU knee ~240 blocks (limit 768)")
    result.notes.append(f"model knees: CPU {cpu_knee} threads, GPU {gpu_knee} blocks")
    result.check("CPU saturates between 20 and 40 threads", 20 <= cpu_knee <= 40)
    result.check("GPU saturates between 160 and 320 blocks", 160 <= gpu_knee <= 320)
    result.check(
        "GPU plateau far below hardware limit",
        gpu_rates[-1] < 1.1 * gpu_rates[gpu_workers.index(320)],
    )
    result.check(
        "CPU throughput roughly linear to 16 threads",
        cpu_rates[cpu_workers.index(16)] > 0.8 * 16 * cpu_rates[0],
    )
    return result

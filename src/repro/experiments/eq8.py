"""Eq. 8 — the batch-Hogwild! locality condition, measured.

§5.1: "f >> ceil(CacheLineSize / sizeof(r)) = ceil(128/12) = 11 is enough to
exploit the locality. We evaluate different values of f and find that they
yield similar benefit. Therefore we choose f = 256."

We simulate the L1 over the rating-stream access trace for a sweep of ``f``:
plain Hogwild! (f = 1) misses almost always, the hit rate rises steeply to
the ~1 - 12/128 ≈ 0.906 line-amortization bound around f ≈ 11, and is flat
beyond — exactly why the paper can pick f = 256 "without loss of
generality". The companion convergence claim (f does not affect RMSE) is
checked by the hogwild unit tests and the ablation bench.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register
from repro.gpusim.l1cache import rating_stream_hit_rate

__all__ = ["run"]

#: 1 - sample_bytes / line_bytes: the hit rate of perfect line amortization.
AMORTIZATION_BOUND = 1.0 - 12 / 128


@register("eq8")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="eq8",
        title="Batch-Hogwild! rating-stream L1 hit rate vs chunk size f",
        headers=("f", "hit_rate", "accesses"),
    )
    n_samples = 100_000 if quick else 1_000_000
    fs = (1, 2, 4, 8, 11, 16, 32, 64, 256)
    rates: dict[int, float] = {}
    for f in fs:
        sim = rating_stream_hit_rate(n_samples, f=f, workers=8, seed=1)
        rates[f] = sim.hit_rate
        result.add(f, round(sim.hit_rate, 4), sim.accesses)

    result.check("plain Hogwild! (f=1) hit rate below 15%", rates[1] < 0.15)
    result.check(
        "hit rate rises monotonically through the Eq.8 bound",
        rates[1] < rates[4] < rates[11],
    )
    result.check(
        "f=16 already within 5 points of the amortization bound",
        rates[16] > AMORTIZATION_BOUND - 0.05,
    )
    result.check(
        "f=32 reaches the amortization bound",
        rates[32] > AMORTIZATION_BOUND - 0.01,
    )
    result.check(
        "f=256 and f=32 equivalent (the paper's 'similar benefit')",
        abs(rates[256] - rates[32]) < 0.02,
    )
    result.notes.append(
        f"line-amortization bound 1 - 12/128 = {AMORTIZATION_BOUND:.3f}"
    )
    result.notes.append("paper: f >> 11 suffices; f = 256 chosen")
    return result

"""Figure 13 — convergence vs partitioning parallelism (§7.5).

The paper fixes s = 768 workers on Hugewiki (n ≈ 40k) and splits columns
into ``j`` partitions: convergence holds for j <= 2 and fails at j = 4 —
empirically calibrating the Hogwild rule ``s < min(m/i, n/j)/20``.

We reproduce the mechanism at laptop scale on the Hugewiki-shaped synthetic
set (small n, like the original): as ``j`` grows, concurrent workers collide
on the shrinking column range, Hogwild updates are lost/stale, and the RMSE
curve degrades until the target is unreachable within the epoch budget —
the operational meaning of "convergence is not ensured".
"""

from __future__ import annotations

from repro.core.convergence import check_parallelism
from repro.core.lr_schedule import NomadSchedule
from repro.core.trainer import CuMFSGD
from repro.experiments.base import ExperimentResult, register
from repro.experiments.common import dataset_problem

__all__ = ["run"]


@register("fig13")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig13",
        title="Hugewiki convergence under column partitioning: large j breaks convergence",
        headers=("j", "epoch", "test_rmse", "safety_bound", "expected_collisions"),
    )
    problem = dataset_problem("hugewiki", quick=quick)
    spec = problem.spec
    epochs = 10 if quick else 16
    workers = 64
    i_blocks = 8
    js = (1, 2, 4, 8)

    finals: dict[int, float] = {}
    curves: dict[int, list[float]] = {}
    for j in js:
        ck = check_parallelism(workers, spec.m, spec.n, i_blocks, j)
        est = CuMFSGD(
            k=spec.k,
            scheme="multi_device",
            workers=workers,
            n_devices=1,
            grid=(i_blocks, j),
            lam=spec.lam,
            schedule=NomadSchedule(spec.alpha, spec.beta),
            seed=3,
        )
        hist = est.fit(problem.train, epochs=epochs, test=problem.test)
        curves[j] = hist.test_rmse
        finals[j] = hist.final_test_rmse
        for epoch, rmse_val in zip(hist.epochs, hist.test_rmse):
            result.add(j, epoch, round(rmse_val, 4), round(ck.bound, 1), round(ck.expected_collisions, 3))

    # convergence target: midway between the best and worst final RMSE, so
    # "converged" = the curve that still reaches it
    target = (finals[js[0]] + finals[js[-1]]) / 2
    reached = {j: min(curves[j]) <= target for j in js}
    result.check("final RMSE degrades monotonically with j",
                 all(finals[a] <= finals[b] + 1e-6 for a, b in zip(js, js[1:])))
    result.check("small j (1, 2) reaches the target", reached[1] and reached[2])
    result.check("largest j fails to reach the target", not reached[js[-1]])
    result.check(
        "expected collision fraction grows with j",
        all(
            check_parallelism(workers, spec.m, spec.n, i_blocks, a).expected_collisions
            < check_parallelism(workers, spec.m, spec.n, i_blocks, b).expected_collisions
            for a, b in zip(js, js[1:])
        ),
    )
    result.notes.append(f"target RMSE for 'converged' = {target:.4f} within {epochs} epochs")
    result.notes.append(
        "paper: s=768 on Hugewiki converges for j<=2, fails at j=4 "
        "(rule: s < min(m/i, n/j)/20)"
    )
    return result

"""Shared helpers for the numeric+perf experiments (Figs. 9/12/16, Table 4).

The split every such experiment uses:

* **numeric path** — real SGD on a laptop-scale synthetic problem gives the
  per-epoch RMSE curve and epochs-to-target for each solver;
* **performance path** — the :mod:`repro.gpusim` model gives seconds/epoch
  at the *paper-scale* data set parameters for each (solver, platform);
* time axis = epochs x modelled epoch seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from functools import lru_cache

from repro.baselines.als import ALSSolver, als_epoch_seconds
from repro.baselines.bidmach import BIDMachSGD, bidmach_throughput
from repro.baselines.libmf import LIBMFSolver
from repro.baselines.nomad import NOMADSolver, nomad_epoch_seconds
from repro.core.lr_schedule import NomadSchedule
from repro.core.trainer import CuMFSGD, TrainHistory
from repro.data.synthetic import (
    PAPER_DATASETS,
    SCALED_DATASETS,
    DatasetSpec,
    SyntheticProblem,
    make_synthetic,
)
from repro.gpusim.simulator import epoch_seconds
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL
from repro.gpusim.simulator import libmf_cpu_throughput

__all__ = [
    "QUICK_DATASETS",
    "dataset_problem",
    "run_numeric_solver",
    "modelled_epoch_seconds",
    "NUMERIC_SOLVERS",
    "PLATFORM_SOLVERS",
    "paper_spec_for",
    "timed",
]


@contextmanager
def timed(name: str, **labels):
    """Measure a block with ``time.perf_counter`` (monotonic — never
    ``time.time``, which drifts under NTP) and report the elapsed seconds
    as ``repro.exp.elapsed_seconds`` on the ambient metrics registry.

    Yields a one-entry dict; ``result["seconds"]`` holds the elapsed time
    after the block exits.
    """
    from repro.obs.context import active_registry
    from repro.obs.registry import M

    result = {"seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
        registry = active_registry()
        if registry is not None:
            series = registry.series(
                M.EXP_ELAPSED_SECONDS, {"name": name, **labels}
            )
            series.append(len(series), result["seconds"])

#: Quick-mode down-scales of the three workloads (same aspect-ratio logic
#: as SCALED_DATASETS, ~4x smaller; β likewise retuned for the small scale).
QUICK_DATASETS: dict[str, DatasetSpec] = {
    "netflix": DatasetSpec(
        name="netflix-quick", m=1200, n=450, k=16, n_train=100_000, n_test=8_000,
        lam=0.05, alpha=0.08, beta=0.05,
    ),
    "yahoo": DatasetSpec(
        name="yahoo-quick", m=1250, n=780, k=16, n_train=120_000, n_test=9_000,
        lam=0.05, alpha=0.08, beta=0.05,
    ),
    "hugewiki": DatasetSpec(
        name="hugewiki-quick", m=10_000, n=520, k=16, n_train=240_000, n_test=12_000,
        lam=0.03, alpha=0.08, beta=0.05,
    ),
}

_FULL_KEYS = {"netflix": "netflix-syn", "yahoo": "yahoo-syn", "hugewiki": "hugewiki-syn"}


def paper_spec_for(workload: str) -> DatasetSpec:
    return PAPER_DATASETS[workload]


@lru_cache(maxsize=16)
def dataset_problem(workload: str, quick: bool = True, seed: int = 11) -> SyntheticProblem:
    """Generate (and cache) the numeric problem for a workload."""
    spec = QUICK_DATASETS[workload] if quick else SCALED_DATASETS[_FULL_KEYS[workload]]
    return make_synthetic(spec, seed=seed)


#: Solvers that produce numeric convergence curves. The cuMF numeric curve is
#: platform-independent (Maxwell and Pascal differ in *time*, not math).
NUMERIC_SOLVERS = ("LIBMF", "NOMAD", "BIDMach", "cuMF_SGD", "cuMF_ALS")

#: (display name, numeric solver, platform) combinations of Fig. 9.
PLATFORM_SOLVERS = (
    ("LIBMF", "LIBMF", "cpu"),
    ("NOMAD", "NOMAD", "cluster"),
    ("BIDMach-M", "BIDMach", "maxwell"),
    ("BIDMach-P", "BIDMach", "pascal"),
    ("cuMF_SGD-M", "cuMF_SGD", "maxwell"),
    ("cuMF_SGD-P", "cuMF_SGD", "pascal"),
)


def run_numeric_solver(
    solver: str,
    problem: SyntheticProblem,
    epochs: int,
    seed: int = 5,
) -> TrainHistory:
    """Fit one solver on a synthetic problem and return its history."""
    spec = problem.spec
    schedule = NomadSchedule(alpha=spec.alpha, beta=spec.beta)
    if solver == "cuMF_SGD":
        est = CuMFSGD(k=spec.k, scheme="batch_hogwild", workers=64, lam=spec.lam,
                      schedule=schedule, seed=seed)
    elif solver == "LIBMF":
        est = LIBMFSolver(k=spec.k, threads=8, a=24, lam=spec.lam,
                          schedule=schedule, seed=seed)
    elif solver == "NOMAD":
        est = NOMADSolver(k=spec.k, nodes=8, lam=spec.lam, schedule=schedule, seed=seed)
    elif solver == "BIDMach":
        est = BIDMachSGD(k=spec.k, batch=4096, lam=spec.lam, seed=seed)
    elif solver == "cuMF_ALS":
        est = ALSSolver(k=spec.k, lam=spec.lam, seed=seed)
    else:
        raise KeyError(f"unknown numeric solver {solver!r}; known: {NUMERIC_SOLVERS}")
    with timed("run_numeric_solver", solver=solver, dataset=spec.name):
        return est.fit(problem.train, epochs=epochs, test=problem.test)


def modelled_epoch_seconds(display_name: str, workload: str) -> float:
    """Seconds per epoch at paper scale for a Fig. 9 solver."""
    spec = paper_spec_for(workload)
    if display_name == "LIBMF":
        return spec.n_train / libmf_cpu_throughput(XEON_E5_2670_DUAL, spec).updates_per_sec
    if display_name == "NOMAD":
        nodes = 64 if workload == "hugewiki" else 32
        return nomad_epoch_seconds(spec, nodes)
    if display_name == "BIDMach-M":
        return spec.n_train / bidmach_throughput(MAXWELL_TITAN_X, spec)
    if display_name == "BIDMach-P":
        return spec.n_train / bidmach_throughput(PASCAL_P100, spec)
    if display_name == "cuMF_SGD-M":
        return epoch_seconds(MAXWELL_TITAN_X, spec)
    if display_name == "cuMF_SGD-P":
        return epoch_seconds(PASCAL_P100, spec)
    if display_name == "cuMF_ALS-1":
        return als_epoch_seconds(MAXWELL_TITAN_X, spec, n_gpus=1)
    if display_name == "cuMF_ALS-4":
        return als_epoch_seconds(MAXWELL_TITAN_X, spec, n_gpus=4)
    raise KeyError(f"unknown platform solver {display_name!r}")

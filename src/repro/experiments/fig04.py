"""Figure 4 — the cuMF_SGD kernel, functionally verified.

Fig. 4 lists the CUDA kernel with its optimizations highlighted: warp
shuffle, ``__ldg`` cached sample reads, memory coalescing, ILP, and the
register budget. This experiment executes the lane-by-lane functional model
of that program (:mod:`repro.gpusim.warp_kernel`) and checks each claim:

* the warp program computes the same update as the serial reference;
* the shuffle reduction takes exactly log2(32) = 5 rounds;
* feature access is perfectly coalesced (k·4/128 transactions per phase);
* 33 registers/thread leaves the block cap, not registers, binding
  (`repro.gpusim.occupancy`);
* the flop/byte instrumentation agrees with the Eq. 5 accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import single_update
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.occupancy import register_limited_blocks
from repro.gpusim.warp_kernel import WARP_SIZE, WarpStats, warp_sgd_update
from repro.metrics.flops import bytes_per_update

__all__ = ["run"]


@register("fig4")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="Warp-level kernel model: functional equivalence + instrumentation",
        headers=("k", "max_abs_diff", "flops", "shuffles", "transactions", "bytes_eq5"),
    )
    rng = np.random.default_rng(0)
    trials = 5 if quick else 25
    worst: dict[int, float] = {}
    stats_by_k: dict[int, WarpStats] = {}
    for k in (32, 64, 128):
        worst[k] = 0.0
        stats = WarpStats()
        for t in range(trials):
            p1 = rng.normal(0, 0.2, (4, k)).astype(np.float32)
            q1 = rng.normal(0, 0.2, (4, k)).astype(np.float32)
            p2, q2 = p1.copy(), q1.copy()
            r = float(rng.normal())
            warp_sgd_update(p1, q1, t % 4, (t + 1) % 4, r, 0.05, 0.02, stats)
            single_update(p2, q2, t % 4, (t + 1) % 4, r, 0.05, 0.02)
            worst[k] = max(
                worst[k],
                float(np.abs(p1 - p2).max()),
                float(np.abs(q1 - q2).max()),
            )
        stats_by_k[k] = stats
        per_update_tx = sum(stats.transactions.values()) // trials
        result.add(
            k,
            f"{worst[k]:.2e}",
            stats.flops // trials,
            stats.shuffles // trials,
            per_update_tx,
            bytes_per_update(k),
        )

    result.check(
        "warp program matches the serial reference to fp32 tolerance",
        all(w < 1e-5 for w in worst.values()),
    )
    result.check(
        "shuffle reduction uses log2(32)+1 = 6 shuffles per update",
        stats_by_k[128].shuffles // trials == 6,
    )
    tx128 = stats_by_k[128].transactions
    result.check(
        "feature phases perfectly coalesced at k=128 (4 transactions each)",
        all(tx128[phase] // trials == 4
            for phase in ("load_p", "load_q", "store_p", "store_q")),
    )
    result.check(
        "33 registers/thread leaves the 32-blocks/SM cap binding (§4)",
        register_limited_blocks(33) >= 32,
    )
    result.notes.append(
        "paper §4: warp shuffle, __ldg, coalescing, ILP, 33 registers/thread"
    )
    result.notes.append(f"verified over {trials} random updates per k")
    return result

"""Table 2 — data set statistics, paper scale and synthetic scale.

Verifies the synthetic generators produce the registered shapes and that
the scaled sets preserve the properties the paper's arguments lean on: the
m/n aspect ratios, and Hugewiki's "n is small" property that caps its
multi-GPU parallelism (§7.7).
"""

from __future__ import annotations

from repro.data.synthetic import PAPER_DATASETS, SCALED_DATASETS, make_synthetic
from repro.experiments.base import ExperimentResult, register

__all__ = ["run"]


@register("table2")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Workload data sets: paper scale and synthetic equivalents",
        headers=("dataset", "m", "n", "k", "train", "test", "aspect_m_over_n"),
    )
    for name, spec in PAPER_DATASETS.items():
        result.add(name, spec.m, spec.n, spec.k, spec.n_train, spec.n_test,
                   round(spec.m / spec.n, 1))
    generated = {}
    for name, spec in SCALED_DATASETS.items():
        result.add(name, spec.m, spec.n, spec.k, spec.n_train, spec.n_test,
                   round(spec.m / spec.n, 1))
        if not quick:
            prob = make_synthetic(spec, seed=0)
            generated[name] = prob
            result.check(
                f"{name}: generated train size matches spec",
                prob.train.nnz == spec.n_train,
            )
            result.check(
                f"{name}: train and test are disjoint",
                prob.train.validate_disjoint(prob.test),
            )

    paper_nf = PAPER_DATASETS["netflix"]
    # Exact aspect ratios are deliberately flattened at laptop scale (a true
    # 1259:1 Hugewiki would leave too few columns for any parallelism); the
    # *ordering* of aspect ratios, which drives the §7.5-7.7 arguments, is
    # preserved: hugewiki most column-starved, yahoo closest to square.
    aspects = {
        name: SCALED_DATASETS[name].m / SCALED_DATASETS[name].n
        for name in ("netflix-syn", "yahoo-syn", "hugewiki-syn")
    }
    result.check(
        "scaled sets preserve the aspect-ratio ordering (hugewiki > netflix > yahoo)",
        aspects["hugewiki-syn"] > aspects["netflix-syn"] > aspects["yahoo-syn"],
    )
    result.check(
        "hugewiki-syn keeps n smallest among dimensions (multi-GPU limiter)",
        SCALED_DATASETS["hugewiki-syn"].n < SCALED_DATASETS["hugewiki-syn"].m / 10,
    )
    result.check(
        "paper-scale specs match Table 2 exactly",
        (paper_nf.m, paper_nf.n, paper_nf.n_train) == (480_190, 17_771, 99_072_112),
    )
    return result

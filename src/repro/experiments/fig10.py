"""Figure 10 — achieved #Updates/s and memory bandwidth per solver.

(a) cuMF_SGD-M/-P perform 2.5-7x more updates/s than LIBMF on every data
    set; (b) LIBMF's effective bandwidth collapses on Hugewiki while
    cuMF_SGD's stays flat across data sets (the GPU does not depend on a
    cache whose capacity the working set outgrows).
"""

from __future__ import annotations

from repro.data.synthetic import PAPER_DATASETS
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.simulator import cumf_throughput, libmf_cpu_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL

__all__ = ["run"]


@register("fig10")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title="Updates/s and effective bandwidth: LIBMF vs cuMF_SGD-M vs cuMF_SGD-P",
        headers=("dataset", "solver", "Mupdates/s", "effective_GB/s"),
    )
    points: dict[tuple[str, str], tuple[float, float]] = {}
    for name in ("netflix", "yahoo", "hugewiki"):
        spec = PAPER_DATASETS[name]
        for solver, point in (
            ("LIBMF", libmf_cpu_throughput(XEON_E5_2670_DUAL, spec)),
            ("cuMF_SGD-M", cumf_throughput(MAXWELL_TITAN_X, spec)),
            ("cuMF_SGD-P", cumf_throughput(PASCAL_P100, spec)),
        ):
            points[(name, solver)] = (point.mupdates, point.effective_bandwidth_gbs)
            result.add(name, solver, round(point.mupdates, 0), round(point.effective_bandwidth_gbs, 0))

    # ---- shape checks ------------------------------------------------
    for name in ("netflix", "yahoo", "hugewiki"):
        result.check(
            f"{name}: cuMF-M > 2x LIBMF updates/s",
            points[(name, "cuMF_SGD-M")][0] > 2 * points[(name, "LIBMF")][0],
        )
        result.check(
            f"{name}: cuMF-P > cuMF-M",
            points[(name, "cuMF_SGD-P")][0] > points[(name, "cuMF_SGD-M")][0],
        )
    cumf_bws = [points[(n, "cuMF_SGD-M")][1] for n in ("netflix", "yahoo", "hugewiki")]
    result.check(
        "cuMF bandwidth flat across data sets (<5% spread)",
        max(cumf_bws) - min(cumf_bws) < 0.05 * max(cumf_bws),
    )
    result.check(
        "LIBMF bandwidth drops from Netflix to Hugewiki",
        points[("hugewiki", "LIBMF")][1] < points[("netflix", "LIBMF")][1],
    )
    result.notes.append(
        "paper: LIBMF 194->106 GB/s (Netflix->Hugewiki); cuMF-M ~266 GB/s on all; "
        "cuMF-M 267M, cuMF-P 613M updates/s on Netflix"
    )
    return result

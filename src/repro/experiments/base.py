"""Shared experiment infrastructure: result container and registry."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "register",
    "get_experiment",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """One reproduced table or figure, as printable rows.

    ``rows`` are the same rows/series the paper reports; ``notes`` records
    paper-reported reference values and any substitution caveats; ``checks``
    holds named boolean shape assertions (who wins, saturation points,
    crossovers) that the test suite verifies.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)

    def add(self, *row) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row of width {len(row)} does not match headers {list(self.headers)}"
            )
        self.rows.append(tuple(row))

    def check(self, name: str, passed: bool) -> None:
        """Record a shape assertion (e.g. 'cuMF beats LIBMF on Netflix')."""
        self.checks[name] = bool(passed)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.checks.items() if not ok]

    # ------------------------------------------------------------------
    def _fmt(self, value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def to_text(self) -> str:
        """Aligned plain-text table, matching the paper's rows/series."""
        cells = [list(self.headers)] + [
            [self._fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(r[c]) for r in cells) for c in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(cells):
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        for name, ok in self.checks.items():
            lines.append(f"check [{'PASS' if ok else 'FAIL'}]: {name}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {list(self.headers)}") from None
        return [row[idx] for row in self.rows]


#: experiment id -> run callable
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering ``run(quick=True) -> ExperimentResult``."""

    def deco(fn: Callable[..., ExperimentResult]):
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return deco


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment's run callable by id."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def run_experiment(experiment_id: str, quick: bool = True) -> ExperimentResult:
    """Run one registered experiment; ``quick`` trades scale for runtime."""
    return get_experiment(experiment_id)(quick=quick)

"""Figure 7 — the two cuMF_SGD scheduling schemes.

(a) Both batch-Hogwild! and wavefront-update scale near-linearly to the 768
    parallel workers of Maxwell, reaching ~0.27 G updates/s — ~2.5x LIBMF.
(b) RMSE vs iterations: batch-Hogwild! converges slightly faster than
    wavefront-update thanks to more randomness in the update sequence.
"""

from __future__ import annotations

from repro.core.hogwild import BatchHogwild
from repro.core.lr_schedule import NomadSchedule
from repro.core.trainer import CuMFSGD
from repro.core.wavefront import WavefrontScheduler
from repro.data.synthetic import PAPER_DATASETS, SCALED_DATASETS, DatasetSpec, make_synthetic
from repro.experiments.base import ExperimentResult, register
from repro.gpusim.simulator import cumf_throughput, libmf_cpu_throughput
from repro.gpusim.specs import MAXWELL_TITAN_X, XEON_E5_2670_DUAL

__all__ = ["run", "QUICK_SPEC"]

#: Down-scaled Netflix used by quick numeric runs.
QUICK_SPEC = DatasetSpec(
    name="netflix-quick", m=1200, n=450, k=16, n_train=100_000, n_test=8_000
)


@register("fig7")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="batch-Hogwild! and wavefront scale to 768 workers; hogwild converges slightly faster",
        headers=("panel", "series", "x", "value"),
    )
    netflix = PAPER_DATASETS["netflix"]

    # ---- (a) modelled scaling on Maxwell ---------------------------------
    workers = [32, 96, 192, 384, 576, 768]
    rates: dict[str, list[float]] = {"batch-Hogwild!": [], "wavefront": []}
    for scheme, label in (("batch_hogwild", "batch-Hogwild!"), ("wavefront", "wavefront")):
        for w in workers:
            point = cumf_throughput(MAXWELL_TITAN_X, netflix, workers=w, scheme=scheme)
            rates[label].append(point.mupdates)
            result.add("a:scaling", label, w, round(point.mupdates, 1))
    libmf = libmf_cpu_throughput(XEON_E5_2670_DUAL, netflix).mupdates
    result.add("a:scaling", "LIBMF (40 threads)", 40, round(libmf, 1))

    # ---- (b) numeric convergence per iteration ---------------------------
    if quick:
        spec, epochs, s = QUICK_SPEC, 10, 32
    else:
        spec, epochs, s = SCALED_DATASETS["netflix-syn"], 20, 128
    prob = make_synthetic(spec, seed=7)
    schedule = NomadSchedule(alpha=spec.alpha, beta=spec.beta)

    hog = CuMFSGD(k=spec.k, scheme="batch_hogwild", workers=s, lam=spec.lam,
                  schedule=schedule, seed=3)
    hist_h = hog.fit(prob.train, epochs=epochs, test=prob.test)
    wave = CuMFSGD(k=spec.k, scheme="wavefront", workers=max(4, s // 8), lam=spec.lam,
                   schedule=schedule, seed=3)
    hist_w = wave.fit(prob.train, epochs=epochs, test=prob.test)
    for e, (rh, rw) in enumerate(zip(hist_h.test_rmse, hist_w.test_rmse), start=1):
        result.add("b:rmse", "batch-Hogwild!", e, round(rh, 4))
        result.add("b:rmse", "wavefront", e, round(rw, 4))

    # ---- shape checks -----------------------------------------------------
    for label in rates:
        r = rates[label]
        result.check(
            f"{label} scales near-linearly to 384 workers",
            r[workers.index(384)] > 0.8 * (384 / 32) * r[0],
        )
        result.check(
            f"{label} at 768 workers beats LIBMF by >2x", r[-1] > 2.0 * libmf
        )
    mid = max(1, len(hist_h.test_rmse) // 2)
    result.check(
        "hogwild RMSE <= wavefront RMSE at half-way point (more randomness)",
        hist_h.test_rmse[mid - 1] <= hist_w.test_rmse[mid - 1] * 1.02,
    )
    result.check("both schemes converge below 0.75", min(hist_h.final_test_rmse, hist_w.final_test_rmse) < 0.75)
    result.notes.append("paper (a): ~270 Mupdates/s at 768 workers, 2.5x LIBMF")
    result.notes.append(
        "paper (b): batch-Hogwild! converges 'a little bit faster' than wavefront"
    )
    return result

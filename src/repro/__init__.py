"""repro — a reproduction of *CuMF_SGD: Parallelized Stochastic Gradient
Descent for Matrix Factorization on GPUs* (Xie, Tan, Fong, Liang; HPDC '17).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: the SGD kernel with explicit
  Hogwild race semantics, the batch-Hogwild! and wavefront-update schedulers,
  multi-device workload partitioning, and the ``CuMFSGD`` estimator.
* :mod:`repro.data` — sparse rating containers and synthetic Table-2-shaped
  data set generators.
* :mod:`repro.metrics` — RMSE, #Updates/s (Eq. 7) and Flops/Byte (Eq. 5).
* :mod:`repro.sched` — scheduling machinery: conflict predicate, LIBMF's
  global table, the wavefront column-lock array, order enumeration.
* :mod:`repro.gpusim` — the GPU/CPU performance-model substrate replacing
  the paper's Maxwell/Pascal hardware.
* :mod:`repro.baselines` — LIBMF, NOMAD, BIDMach and cuMF_ALS
  reimplementations.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core.trainer import CuMFSGD, TrainHistory
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.data.synthetic import scaled_dataset, make_synthetic
from repro.metrics.rmse import rmse

__version__ = "1.0.0"

__all__ = [
    "CuMFSGD",
    "TrainHistory",
    "FactorModel",
    "RatingMatrix",
    "scaled_dataset",
    "make_synthetic",
    "rmse",
    "__version__",
]

"""Span tracer emitting Chrome ``trace_event`` JSON.

Traces render in ``chrome://tracing`` or https://ui.perfetto.dev: load the
file produced by :meth:`Tracer.write` (or the ``cumf-sgd trace`` CLI
subcommand) and you get the stream-overlap timelines of Fig. 8, wavefront
column-lock waits, and multi-GPU block staging as zoomable flame rows.

Two time domains coexist:

* **wall spans** (:meth:`Tracer.span`) measure real elapsed time with
  ``time.perf_counter`` — used around trainer epochs and kernel waves;
* **simulated spans** (:meth:`Tracer.add_span`) take explicit start/duration
  in *seconds of simulated time* — used by :mod:`repro.gpusim.streams` and
  :mod:`repro.gpusim.event_sim`, whose clocks are model outputs, not wall
  time.

Both land in the same ``traceEvents`` list; keep simulated and wall traces
in separate ``pid`` rows (the helpers below default to that) so Perfetto
does not interleave incompatible clocks on one track.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

__all__ = ["Tracer", "WALL_PID", "SIM_PID"]

#: Default process rows: wall-clock instrumentation vs simulated timelines.
WALL_PID = 1
SIM_PID = 100


class Tracer:
    """Collects Chrome ``trace_event`` dicts (the JSON Array Format)."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._origin = clock()
        self.events: list[dict] = []
        self._named_threads: set[tuple[int, int]] = set()
        self._named_processes: set[int] = set()

    @property
    def origin(self) -> float:
        """The raw clock reading that is this tracer's t=0. Hand it to
        worker-side clocks (:class:`repro.obs.relay.WorkerTelemetry`) so
        their timestamps land on this tracer's timeline —
        ``time.perf_counter`` is CLOCK_MONOTONIC, one clock for every
        process on the host."""
        return self._origin

    # -- low-level emitters --------------------------------------------
    def add_span(
        self,
        name: str,
        start_seconds: float,
        duration_seconds: float,
        *,
        pid: int = SIM_PID,
        tid: int = 0,
        cat: str = "sim",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Complete event (``ph: "X"``) at an explicit simulated time."""
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start_seconds * 1e6,  # trace_event timestamps are µs
                "dur": max(0.0, duration_seconds) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(args or {}),
            }
        )

    def instant(
        self,
        name: str,
        ts_seconds: float | None = None,
        *,
        pid: int = WALL_PID,
        tid: int = 0,
        cat: str = "mark",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Instant event (``ph: "i"``), e.g. an epoch boundary."""
        ts = self._now() if ts_seconds is None else ts_seconds
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": ts * 1e6,
                "pid": pid,
                "tid": tid,
                "s": "t",  # thread-scoped instant
                "args": dict(args or {}),
            }
        )

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        ts_seconds: float | None = None,
        *,
        pid: int = WALL_PID,
        tid: int = 0,
    ) -> None:
        """Counter event (``ph: "C"``) — renders as a stacked area track."""
        ts = self._now() if ts_seconds is None else ts_seconds
        self.events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": ts * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Metadata event labelling a (pid, tid) track, e.g. "stream:H2D"."""
        if (pid, tid) in self._named_threads:
            return
        self._named_threads.add((pid, tid))
        self.events.append(
            {
                "name": "thread_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    def name_process(self, pid: int, name: str) -> None:
        """Metadata event labelling a ``pid`` row, e.g. "proc 3"."""
        if pid in self._named_processes:
            return
        self._named_processes.add(pid)
        self.events.append(
            {
                "name": "process_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    # -- wall-clock spans ----------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._origin

    def now(self) -> float:
        """Seconds since this tracer was created (its wall-time origin)."""
        return self._now()

    @contextmanager
    def span(
        self,
        name: str,
        *,
        pid: int = WALL_PID,
        tid: int = 0,
        cat: str = "wall",
        args: Mapping[str, object] | None = None,
    ) -> Iterator[dict]:
        """Wall-clock span; yields a dict whose entries become span args."""
        extra: dict = dict(args or {})
        start = self._now()
        try:
            yield extra
        finally:
            self.add_span(
                name,
                start,
                self._now() - start,
                pid=pid,
                tid=tid,
                cat=cat,
                args=extra,
            )

    # -- export ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def to_chrome(self) -> dict:
        """The JSON Object Format Chrome and Perfetto both accept."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.tracer"},
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=1) + "\n")
        return path

"""Ambient telemetry context.

The experiment registry runs arbitrary ``run(quick=...)`` callables that
build their own trainers and simulator calls internally; threading a
``hooks=`` argument through every one of them would bloat every signature in
the repo. Instead a collector can be *activated* for a dynamic scope::

    collector = TelemetryCollector()
    with activate(collector):
        run_experiment("fig7")          # everything inside is instrumented

Producers resolve ``hooks=None`` through :func:`active_hooks` /
:func:`repro.obs.hooks.resolve_hooks`; gpusim model code asks for
:func:`active_tracer` / :func:`active_registry` directly. With nothing
activated all of these return the null object (or None), keeping the
uninstrumented path zero-cost.

Implemented with :mod:`contextvars` so the threaded executors in
``repro.parallel`` and nested activations both behave: the innermost
activation wins, and leaving the ``with`` block restores the previous one.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

from repro.obs.hooks import NULL_HOOKS, TrainerHooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.collector import TelemetryCollector
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracer import Tracer

__all__ = [
    "activate",
    "active_collector",
    "active_hooks",
    "active_registry",
    "active_tracer",
]

_current: ContextVar["TelemetryCollector | None"] = ContextVar(
    "repro_obs_collector", default=None
)


@contextmanager
def activate(collector: "TelemetryCollector") -> Iterator["TelemetryCollector"]:
    """Make ``collector`` the ambient telemetry sink for the enclosed scope."""
    token = _current.set(collector)
    try:
        yield collector
    finally:
        _current.reset(token)


def active_collector() -> "TelemetryCollector | None":
    """The ambient collector, or None outside any activation."""
    return _current.get()


def active_hooks() -> TrainerHooks:
    """The ambient collector as a hooks sink; NULL_HOOKS when inactive."""
    collector = _current.get()
    return NULL_HOOKS if collector is None else collector


def active_registry() -> "MetricsRegistry | None":
    collector = _current.get()
    return None if collector is None else collector.registry


def active_tracer() -> "Tracer | None":
    collector = _current.get()
    return None if collector is None else collector.tracer

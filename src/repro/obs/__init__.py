"""Observability subsystem: metrics registry, trace export, profiling hooks.

Three layers, usable independently:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges, fixed-bucket histograms, and labeled series; JSON/JSONL export;
* :mod:`repro.obs.tracer` — span :class:`Tracer` emitting Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` or Perfetto);
* :mod:`repro.obs.hooks` — the ``on_epoch`` / ``on_batch`` / ``on_kernel``
  / ``on_transfer`` callback protocol threaded through
  :class:`repro.core.trainer.CuMFSGD`, the schedulers, and the GPU
  simulator, with a zero-cost null default.

:class:`TelemetryCollector` ties them together; :func:`activate` installs a
collector ambiently so un-instrumented call stacks (the experiment registry)
pick it up. See ``docs/OBSERVABILITY.md`` for the metric naming scheme and a
Perfetto walkthrough, and the ``cumf-sgd trace`` / ``cumf-sgd metrics-dump``
CLI subcommands for the artifact path.
"""

from repro.obs.collector import TelemetryCollector
from repro.obs.context import (
    activate,
    active_collector,
    active_hooks,
    active_registry,
    active_tracer,
)
from repro.obs.hooks import (
    NULL_HOOKS,
    BatchEvent,
    CompositeHooks,
    EpochEvent,
    KernelEvent,
    NullHooks,
    RecordingHooks,
    TrainerHooks,
    TransferEvent,
    resolve_hooks,
    resolve_kernel_stride,
)
from repro.obs.ledger import PerfLedger, bench_meta, perf_diff
from repro.obs.profiler import PHASES, PhaseTimer, StallReport, WorkerPhases
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, Series
from repro.obs.relay import TraceRelay, WorkerTelemetry, merge_records, read_spool
from repro.obs.trace_schema import TraceValidationError, validate_chrome_trace
from repro.obs.tracer import Tracer

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "Tracer",
    "TelemetryCollector",
    "TraceValidationError",
    "validate_chrome_trace",
    "TrainerHooks",
    "NullHooks",
    "NULL_HOOKS",
    "CompositeHooks",
    "RecordingHooks",
    "EpochEvent",
    "BatchEvent",
    "KernelEvent",
    "TransferEvent",
    "resolve_hooks",
    "resolve_kernel_stride",
    "activate",
    "active_collector",
    "active_hooks",
    "active_registry",
    "active_tracer",
    "TraceRelay",
    "WorkerTelemetry",
    "merge_records",
    "read_spool",
    "PHASES",
    "PhaseTimer",
    "StallReport",
    "WorkerPhases",
    "PerfLedger",
    "bench_meta",
    "perf_diff",
]

"""Perf ledger: an append-only history of canonical benchmark runs.

Every ``BENCH_*.json`` document the benchmarks emit can be appended (one
JSON line per run) to ``results/perf_ledger.jsonl``, stamped with
provenance from :func:`bench_meta` — git SHA, UTC timestamp, hostname,
cpu count — so a number in the ledger is always attributable to a commit
and a machine. ``cumf-sgd perf-diff`` then compares a fresh run against
the latest ledger entry with the *same benchmark and config* (quick runs
never gate against reference runs, and a laptop never gates against CI)
and fails on a >15% drop in the gated throughput metrics
(``updates_per_sec`` / ``speedup`` families). No matching baseline is a
warning, not a failure — the first run on a new config seeds the gate.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "bench_meta",
    "git_sha",
    "PerfLedger",
    "MetricComparison",
    "PerfDiffResult",
    "gated_metrics",
    "is_speedup_metric",
    "diff_against",
    "perf_diff",
    "DEFAULT_THRESHOLD",
    "DEFAULT_LEDGER_PATH",
]

#: Regression gate: fail when a gated metric drops more than this fraction
#: below its baseline.
DEFAULT_THRESHOLD = 0.15

#: Canonical in-repo ledger location (relative to the repo root).
DEFAULT_LEDGER_PATH = Path("results") / "perf_ledger.jsonl"


def git_sha(cwd: str | Path | None = None) -> str:
    """Short git SHA of HEAD, or ``"unknown"`` outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_meta(cwd: str | Path | None = None) -> dict:
    """Provenance stamp shared by every canonical ``BENCH_*.json``."""
    return {
        "git_sha": git_sha(cwd),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count() or 1,
    }


# ---------------------------------------------------------------------------
# the ledger file
# ---------------------------------------------------------------------------
class PerfLedger:
    """One JSONL line per benchmark run; append-only, torn-line tolerant."""

    def __init__(self, path: str | Path = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    def entries(self) -> list[dict]:
        """All well-formed entries in file order (torn lines skipped)."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        out = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "benchmark" in entry:
                out.append(entry)
        return out

    def append(self, doc: dict) -> dict:
        """Stamp ``doc`` with :func:`bench_meta` (if unstamped) and append.

        Returns the entry as written. The source dict is not mutated.
        """
        entry = json.loads(json.dumps(doc))
        entry.setdefault("meta", bench_meta())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    def baseline(self, doc: dict) -> dict | None:
        """Latest entry comparable to ``doc``: same benchmark, same schema
        version, same config. Config equality is the apples-to-apples
        guard — a quick config never gates against a reference run."""
        match = None
        for entry in self.entries():
            if (
                entry.get("benchmark") == doc.get("benchmark")
                and entry.get("schema_version") == doc.get("schema_version")
                and entry.get("config") == doc.get("config")
            ):
                match = entry
        return match


# ---------------------------------------------------------------------------
# regression diff
# ---------------------------------------------------------------------------
def is_speedup_metric(name: str) -> bool:
    """Whether a gated metric is a higher-is-better speedup *ratio*.

    ``speedup`` families and the ``*_vs_serial`` ratios qualify; plain
    ``_vs_`` does not (``ooc_vs_procs`` is lower-is-better). Speedup
    ratios are skipped by :func:`perf_diff` when the run is flagged
    ``oversubscribed`` — with more workers than cores they measure
    contention, not capacity.
    """
    return "speedup" in name or name.endswith("_vs_serial")


def gated_metrics(metrics: dict) -> dict:
    """The throughput metrics the regression gate watches: every
    ``*updates_per_sec`` plus every speedup-family key (higher is
    better for all of them; see :func:`is_speedup_metric`). Bools are
    excluded — flags like ``oversubscribed`` pass ``isinstance(...,
    int)`` but are not throughput."""
    return {
        name: float(value)
        for name, value in metrics.items()
        if isinstance(value, (int, float))
        and not isinstance(value, bool)
        and (name.endswith("updates_per_sec") or is_speedup_metric(name))
    }


@dataclass
class MetricComparison:
    """One gated metric against its baseline value."""

    benchmark: str
    metric: str
    baseline: float
    current: float
    threshold: float

    @property
    def delta_fraction(self) -> float:
        """Relative change; negative means slower than baseline."""
        if self.baseline == 0:
            return 0.0
        return (self.current - self.baseline) / self.baseline

    @property
    def regressed(self) -> bool:
        return self.delta_fraction < -self.threshold


def diff_against(
    doc: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[MetricComparison]:
    """Compare ``doc``'s gated metrics against a comparable baseline entry."""
    base = gated_metrics(baseline.get("metrics", {}))
    out = []
    for name, current in sorted(gated_metrics(doc.get("metrics", {})).items()):
        if name in base:
            out.append(
                MetricComparison(
                    benchmark=str(doc.get("benchmark", "?")),
                    metric=name,
                    baseline=base[name],
                    current=current,
                    threshold=threshold,
                )
            )
    return out


@dataclass
class PerfDiffResult:
    """Outcome of diffing one or more documents against a ledger."""

    comparisons: list[MetricComparison]
    missing: list[str]  # benchmarks with no comparable baseline
    #: "benchmark:metric" speedup comparisons dropped because the current
    #: run was flagged oversubscribed (more workers than cores)
    skipped: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.skipped is None:
            self.skipped = []

    @property
    def regressions(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        """False only on a confirmed regression — a missing baseline is a
        warning (the run seeds the gate), not a failure."""
        return not self.regressions

    def format(self) -> str:
        lines = []
        for c in self.comparisons:
            verdict = "REGRESSION" if c.regressed else "ok"
            lines.append(
                f"{verdict:>10}  {c.benchmark}:{c.metric}  "
                f"baseline={c.baseline:.6g}  current={c.current:.6g}  "
                f"({c.delta_fraction:+.1%}, gate -{c.threshold:.0%})"
            )
        for name in self.skipped:
            lines.append(
                f"{'skipped':>10}  {name}: oversubscribed run (workers > "
                "cores) — speedup ratios measure contention, not gated"
            )
        for name in self.missing:
            lines.append(
                f"{'no-baseline':>10}  {name}: no comparable ledger entry "
                "(same benchmark+config) — skipping, this run can seed one"
            )
        if not lines:
            lines.append("perf-diff: nothing to compare")
        return "\n".join(lines)


def perf_diff(
    docs: list[dict],
    ledger: PerfLedger,
    threshold: float = DEFAULT_THRESHOLD,
) -> PerfDiffResult:
    """Diff each document against its ledger baseline (see
    :meth:`PerfLedger.baseline` for what "comparable" means).

    Documents flagged ``metrics.oversubscribed`` keep their
    ``updates_per_sec`` gates but skip the speedup-ratio gates (recorded
    on :attr:`PerfDiffResult.skipped`): a run with more workers than
    cores measures contention, and gating on its ratios would flag the
    host, not the code.
    """
    comparisons: list[MetricComparison] = []
    missing: list[str] = []
    skipped: list[str] = []
    for doc in docs:
        baseline = ledger.baseline(doc)
        if baseline is None:
            missing.append(str(doc.get("benchmark", "?")))
            continue
        compared = diff_against(doc, baseline, threshold)
        if doc.get("metrics", {}).get("oversubscribed"):
            for c in compared:
                if is_speedup_metric(c.metric):
                    skipped.append(f"{c.benchmark}:{c.metric}")
                else:
                    comparisons.append(c)
        else:
            comparisons.extend(compared)
    return PerfDiffResult(
        comparisons=comparisons, missing=missing, skipped=skipped
    )

"""Phase attribution for parallel executors: where did the wall time go?

The parallel executors run at a fraction of serial throughput
(BENCH_parallel.json) and aggregate updates/s cannot say why. This module
classifies every worker's wall time into a fixed stall taxonomy:

``compute``
    inside the SGD wave kernels (the only phase that *earns* updates);
``barrier``
    blocked on the epoch dispatch/completion barriers — load imbalance and
    parent-side latency show up here;
``spawn``
    process/thread launch, shared-memory attach, and plan/buffer setup —
    the fixed cost HOGWILD!-style executors amortize over epochs;
``prefetch``
    consumer-side stalls waiting on the out-of-core
    :class:`~repro.data.blockstore.BlockPrefetcher` (the exposed, i.e.
    un-overlapped, transfer residue of the paper's §6.2 pipeline);
``replay``
    everything else — plan gather/compile, per-epoch bookkeeping, spool
    flushes. Computed as the residual ``wall − measured phases``, so the
    per-worker fractions sum to 1 by construction.

:class:`StallReport` carries per-worker and aggregate phase seconds and
fractions, serializes into ``BENCH_parallel.json``, and publishes as the
``repro.profile.*`` metric family (manifest names on
:class:`repro.obs.registry.M`).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "PHASES",
    "BARRIER_WAIT_BUCKETS",
    "PhaseTimer",
    "WorkerPhases",
    "StallReport",
]

#: The stall taxonomy, in report order. ``replay`` is the residual phase —
#: it absorbs whatever wall time the measured phases do not cover.
PHASES = ("compute", "barrier", "spawn", "prefetch", "replay")

_MEASURED = tuple(p for p in PHASES if p != "replay")

#: Bucket edges (seconds) for per-worker barrier-wait histograms: spans
#: everything from an uncontended futex wake to a straggler-bound epoch.
BARRIER_WAIT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class PhaseTimer:
    """Cheap per-worker phase accumulator (a dict of seconds + one clock).

    Workers call :meth:`add` with durations they already measured around
    the hot calls, or wrap cold sections in :meth:`phase`; either way the
    hot loops themselves stay untouched and allocation-free.
    """

    __slots__ = ("seconds", "_clock")

    def __init__(self, clock=time.perf_counter) -> None:
        self.seconds = {p: 0.0 for p in _MEASURED}
        self._clock = clock

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] += max(0.0, float(seconds))

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - start)


@dataclass
class WorkerPhases:
    """One worker's wall time split across the taxonomy.

    ``seconds`` holds the *measured* phases; ``replay`` is derived. When
    measured time exceeds the wall clock (overlapping instrumentation,
    clock noise) the denominator stretches to the measured sum, so
    fractions always total 1 for any worker with positive wall time.
    """

    wid: int
    wall_seconds: float
    seconds: dict = field(default_factory=dict)

    def attributed(self) -> dict:
        """Seconds per phase including the ``replay`` residual."""
        out = {p: max(0.0, float(self.seconds.get(p, 0.0))) for p in _MEASURED}
        out["replay"] = max(0.0, self.wall_seconds - sum(out.values()))
        return out

    def fractions(self) -> dict:
        att = self.attributed()
        denom = sum(att.values())
        if denom <= 0.0:
            return {p: 0.0 for p in PHASES}
        return {p: att[p] / denom for p in PHASES}


class StallReport:
    """Per-worker + aggregate phase attribution for one executor run."""

    def __init__(self, executor: str, workers: list[WorkerPhases]) -> None:
        self.executor = executor
        self.workers = list(workers)

    # -- aggregates -----------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return sum(w.wall_seconds for w in self.workers)

    def aggregate_seconds(self) -> dict:
        totals = {p: 0.0 for p in PHASES}
        for w in self.workers:
            for p, s in w.attributed().items():
                totals[p] += s
        return totals

    def aggregate_fractions(self) -> dict:
        totals = self.aggregate_seconds()
        denom = sum(totals.values())
        if denom <= 0.0:
            return {p: 0.0 for p in PHASES}
        return {p: totals[p] / denom for p in PHASES}

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "executor": self.executor,
            "phases": list(PHASES),
            "workers": [
                {
                    "wid": w.wid,
                    "wall_seconds": w.wall_seconds,
                    "seconds": w.attributed(),
                    "fractions": w.fractions(),
                }
                for w in self.workers
            ],
            "aggregate": {
                "wall_seconds": self.wall_seconds,
                "seconds": self.aggregate_seconds(),
                "fractions": self.aggregate_fractions(),
            },
        }

    @classmethod
    def from_dict(cls, state: Mapping) -> "StallReport":
        workers = [
            WorkerPhases(
                wid=int(w["wid"]),
                wall_seconds=float(w["wall_seconds"]),
                seconds={
                    p: float(s)
                    for p, s in w["seconds"].items()
                    if p != "replay"  # re-derived from the wall clock
                },
            )
            for w in state["workers"]
        ]
        return cls(str(state["executor"]), workers)

    @staticmethod
    def validate_dict(state: Mapping, tolerance: float = 0.02) -> None:
        """Schema + invariant check for an embedded report (benchmarks).

        Every worker's fractions must sum to 1 ± ``tolerance`` (workers
        with zero attributed time sum to 0 and are rejected — a profiled
        run always observes wall time), and every worker's *measured*
        phase seconds must fit inside its wall clock: measured > wall
        means the producer read the accumulators while workers were still
        writing them (the pre-join race fixed in ``ProcessHogwild``) — the
        ``replay`` residual clamp used to hide exactly that corruption.
        """
        for key in ("executor", "phases", "workers", "aggregate"):
            if key not in state:
                raise ValueError(f"stall_report missing key {key!r}")
        if tuple(state["phases"]) != PHASES:
            raise ValueError(
                f"stall_report phases {state['phases']} != {list(PHASES)}"
            )
        if not state["workers"]:
            raise ValueError("stall_report has no workers")
        for w in state["workers"]:
            total = math.fsum(float(w["fractions"][p]) for p in PHASES)
            if abs(total - 1.0) > tolerance:
                raise ValueError(
                    f"worker {w['wid']} phase fractions sum to {total:.4f}, "
                    f"expected 1.0 ± {tolerance}"
                )
            wall = float(w["wall_seconds"])
            measured = math.fsum(
                float(w["seconds"].get(p, 0.0)) for p in _MEASURED
            )
            if measured > wall + max(tolerance * wall, 1e-6):
                raise ValueError(
                    f"worker {w['wid']} measured phase seconds "
                    f"{measured:.4f} exceed wall_seconds {wall:.4f} "
                    f"(± {tolerance:.0%}): phase windows overlap or were "
                    "read before the worker finished writing them"
                )

    # -- publication ----------------------------------------------------
    def publish(self, registry=None) -> None:
        """Emit ``repro.profile.*`` into ``registry`` (default: the ambient
        one; no-op when none is active)."""
        from repro.obs.context import active_registry
        from repro.obs.registry import M

        if registry is None:
            registry = active_registry()
        if registry is None:
            return
        scopes = [
            (str(w.wid), w.wall_seconds, w.attributed(), w.fractions())
            for w in self.workers
        ]
        scopes.append(
            (
                "all",
                self.wall_seconds,
                self.aggregate_seconds(),
                self.aggregate_fractions(),
            )
        )
        for worker, wall, seconds, fractions in scopes:
            base = {"executor": self.executor, "worker": worker}
            registry.gauge(M.PROFILE_WALL_SECONDS, base).set(wall)
            for p in PHASES:
                labels = {**base, "phase": p}
                registry.counter(M.PROFILE_PHASE_SECONDS, labels).inc(seconds[p])
                registry.gauge(M.PROFILE_PHASE_FRACTION, labels).set(fractions[p])

    # -- presentation ---------------------------------------------------
    def format(self) -> str:
        """Human-readable table for CLI output."""
        lines = [
            f"stall report — executor={self.executor}, "
            f"{len(self.workers)} workers, "
            f"{self.wall_seconds:.3f}s total worker wall time"
        ]
        header = "worker    wall(s)  " + "".join(f"{p:>10}" for p in PHASES)
        lines.append(header)
        rows = [
            (str(w.wid), w.wall_seconds, w.fractions()) for w in self.workers
        ]
        rows.append(("all", self.wall_seconds, self.aggregate_fractions()))
        for name, wall, fr in rows:
            cells = "".join(f"{fr[p]:>9.1%} " for p in PHASES)
            lines.append(f"{name:>6}  {wall:>9.3f}  {cells}")
        return "\n".join(lines)

"""Validator for the Chrome ``trace_event`` JSON we emit.

The container has no ``jsonschema`` package, so this is a hand-rolled
structural check of the subset of the Trace Event Format the
:class:`repro.obs.tracer.Tracer` produces (JSON Object Format with
``traceEvents``; phases X, i, C, M). The CLI validates every trace before
writing it, and the test suite validates golden traces from the gpusim
instrumentation — a malformed trace should fail in CI, not in Perfetto.

Reference: "Trace Event Format" design doc (Google, catapult project).
"""

from __future__ import annotations

from numbers import Real
from typing import Iterable

__all__ = ["TraceValidationError", "validate_chrome_trace", "validate_events"]

#: Phases the tracer emits. (The full format defines more: B/E, b/e, s/t/f…)
_KNOWN_PHASES = {"X", "i", "I", "C", "M", "B", "E"}

_REQUIRED_ALWAYS = ("name", "ph", "ts", "pid", "tid")


class TraceValidationError(ValueError):
    """A trace document that Chrome/Perfetto would reject (or misrender)."""

    def __init__(self, index: int | None, message: str) -> None:
        self.index = index
        where = "document" if index is None else f"traceEvents[{index}]"
        super().__init__(f"{where}: {message}")


def _check_event(i: int, ev: object) -> None:
    if not isinstance(ev, dict):
        raise TraceValidationError(i, f"event must be an object, got {type(ev).__name__}")
    for key in _REQUIRED_ALWAYS:
        if key not in ev:
            raise TraceValidationError(i, f"missing required key {key!r}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        raise TraceValidationError(i, "name must be a non-empty string")
    ph = ev["ph"]
    if ph not in _KNOWN_PHASES:
        raise TraceValidationError(i, f"unknown phase {ph!r}")
    if not isinstance(ev["ts"], Real) or isinstance(ev["ts"], bool):
        raise TraceValidationError(i, f"ts must be a number, got {ev['ts']!r}")
    if ev["ts"] < 0:
        raise TraceValidationError(i, f"ts must be non-negative, got {ev['ts']}")
    for key in ("pid", "tid"):
        if not isinstance(ev[key], int) or isinstance(ev[key], bool):
            raise TraceValidationError(i, f"{key} must be an integer, got {ev[key]!r}")
    if "args" in ev and not isinstance(ev["args"], dict):
        raise TraceValidationError(i, "args must be an object")
    if ph == "X":
        if "dur" not in ev:
            raise TraceValidationError(i, "complete event (ph=X) requires dur")
        dur = ev["dur"]
        if not isinstance(dur, Real) or isinstance(dur, bool) or dur < 0:
            raise TraceValidationError(i, f"dur must be a non-negative number, got {dur!r}")
    if ph == "C" and not ev.get("args"):
        raise TraceValidationError(i, "counter event (ph=C) requires non-empty args")
    if ph == "M":
        if ev["name"] not in ("process_name", "thread_name", "process_labels",
                              "process_sort_index", "thread_sort_index"):
            raise TraceValidationError(i, f"unknown metadata event {ev['name']!r}")
        if ev["name"] in ("process_name", "thread_name"):
            args = ev.get("args") or {}
            if not isinstance(args.get("name"), str):
                raise TraceValidationError(i, f"{ev['name']} requires args.name string")
    if ph in ("i", "I") and ev.get("s", "t") not in ("g", "p", "t"):
        raise TraceValidationError(i, f"instant scope must be g/p/t, got {ev.get('s')!r}")


def validate_events(events: Iterable[object]) -> int:
    """Validate a ``traceEvents`` list; returns the number of events."""
    n = -1
    for n, ev in enumerate(events):
        _check_event(n, ev)
    return n + 1


def validate_chrome_trace(doc: object) -> int:
    """Validate a full trace document (object or bare array format).

    Returns the event count; raises :class:`TraceValidationError` on the
    first malformed event so the message pinpoints it.
    """
    if isinstance(doc, list):
        return validate_events(doc)
    if not isinstance(doc, dict):
        raise TraceValidationError(None, f"trace must be an object or array, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TraceValidationError(None, "object-format trace requires a traceEvents array")
    if "displayTimeUnit" in doc and doc["displayTimeUnit"] not in ("ms", "ns"):
        raise TraceValidationError(None, f"displayTimeUnit must be 'ms' or 'ns', got {doc['displayTimeUnit']!r}")
    return validate_events(events)

"""Standard instrumented probe backing ``cumf-sgd trace`` / ``metrics-dump``.

Many registered experiments are purely analytic (they query the performance
model, never train or stage blocks), so running them under a collector would
leave whole metric families empty. The probe guarantees the four headline
families exist for *any* experiment by exercising each producer once on a
small synthetic problem at the experiment's workload parameters:

1. a real batch-Hogwild! training run (measured Eq. 7 updates/s, per-wave
   Eq. 6 conflict rate, epoch spans);
2. a real wavefront run (column-lock attempts/waits);
3. the modelled throughput points (``repro.perf.*`` gauges, labeled);
4. the staged stream pipeline (per-stream overlap spans + overlap fraction);
5. the event-driven scheduler sim (per-worker block/wait spans).

Everything runs inside the caller's activation scope; imports are lazy so
``repro.obs`` stays importable without pulling the whole stack.
"""

from __future__ import annotations

__all__ = ["standard_probe", "workload_for_experiment"]

_WORKLOADS = ("netflix", "yahoo", "hugewiki")


def workload_for_experiment(experiment_id: str) -> str:
    """Best-effort workload association (most figures sweep Netflix)."""
    if experiment_id in ("fig12", "fig15"):
        return "yahoo"
    if experiment_id in ("fig16",):
        return "hugewiki"
    return "netflix"


def standard_probe(
    collector,
    workload: str = "netflix",
    epochs: int = 3,
    seed: int = 11,
) -> None:
    """Populate all headline metric families on ``collector``."""
    from repro.core.lr_schedule import NomadSchedule
    from repro.core.trainer import CuMFSGD
    from repro.data.synthetic import DatasetSpec, make_synthetic
    from repro.gpusim.event_sim import simulate_scheduler
    from repro.gpusim.simulator import (
        cumf_throughput,
        libmf_cpu_throughput,
        staged_epoch_seconds,
    )
    from repro.gpusim.specs import MAXWELL_TITAN_X, PASCAL_P100, XEON_E5_2670_DUAL
    from repro.data.synthetic import PAPER_DATASETS
    from repro.obs.context import activate

    if workload not in _WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; choose from {_WORKLOADS}")

    probe_spec = DatasetSpec(
        name=f"{workload}-probe", m=400, n=260, k=16, n_train=20_000, n_test=2_000
    )
    problem = make_synthetic(probe_spec, seed=seed)
    schedule = NomadSchedule(alpha=0.08, beta=0.1)

    with activate(collector):
        # 1-2: measured training under both single-GPU schemes
        for scheme, workers in (("batch_hogwild", 32), ("wavefront", 4)):
            est = CuMFSGD(
                k=probe_spec.k, scheme=scheme, workers=workers, lam=0.05,
                schedule=schedule, seed=seed,
            )
            est.fit(problem.train, epochs=epochs, test=problem.test)

        # 3: modelled paper-scale throughput points (labeled perf gauges)
        paper = PAPER_DATASETS[workload]
        cumf_throughput(MAXWELL_TITAN_X, paper)
        cumf_throughput(PASCAL_P100, paper)
        libmf_cpu_throughput(XEON_E5_2670_DUAL, paper)

        # 4: staged stream pipeline (Hugewiki-style 16x1 staging for speed)
        point = cumf_throughput(MAXWELL_TITAN_X, paper)
        staged_epoch_seconds(
            MAXWELL_TITAN_X, paper, point.updates_per_sec, i_blocks=16, j_blocks=1
        )

        # 5: event-driven scheduler sim (column locks, the contended case)
        simulate_scheduler(
            "column_locks",
            workers=16,
            updates_per_block=64,
            update_seconds=1e-6,
            epoch_updates=16_384,
            n_columns=32,
            seed=seed,
        )

"""Cross-worker trace relay: per-worker span spools merged into one timeline.

:class:`ProcessHogwild` workers live in other processes, so they cannot
append to the parent's :class:`~repro.obs.tracer.Tracer` directly. Instead
each worker owns a :class:`WorkerTelemetry` — a tracer-shaped buffer that
records span/instant/counter events against a *shared clock origin* and
spools them as JSONL, one file per worker id. After the epochs finish the
parent's :class:`TraceRelay` reads every spool back and replays the events
into the real tracer on per-worker lanes (``pid = WORKER_PID_BASE + wid``,
named via ``Tracer.name_process`` / ``name_thread``), so ``cumf-sgd trace``
renders a procs run as one multi-lane Chrome timeline alongside the
parent's trainer lane.

Clock alignment: ``time.perf_counter`` is CLOCK_MONOTONIC — one system-wide
clock shared by every process on the host — so the parent hands workers its
tracer's origin (``Tracer.origin``) and worker timestamps land directly on
the parent's timeline with no skew correction. Timestamps are clamped at 0
in the merge as a belt-and-braces guard (the trace schema rejects negative
``ts``).

Crash tolerance: a worker that dies mid-write leaves a truncated final
JSONL line. :func:`read_spool` skips undecodable lines and counts them
instead of raising — a crashed worker costs its tail events, never the
whole trace.

:class:`ThreadedHogwild` reuses :class:`WorkerTelemetry` in-memory (no
spool file — same address space) and merges through the same
:func:`merge_records`, with per-thread ``tid`` lanes under the wall pid.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

from repro.obs.tracer import Tracer

__all__ = [
    "WorkerTelemetry",
    "TraceRelay",
    "read_spool",
    "merge_records",
    "WORKER_PID_BASE",
    "THREAD_TID_BASE",
]

#: Trace lane bases: each worker *process* gets its own pid row
#: (``WORKER_PID_BASE + wid``); worker *threads* share the parent pid and
#: fan out as tids (``THREAD_TID_BASE + tid``) so they nest under the
#: trainer process in Perfetto. Chosen clear of WALL_PID(1)/SIM_PID(100).
WORKER_PID_BASE = 200
THREAD_TID_BASE = 10


class WorkerTelemetry:
    """Worker-side event buffer with the tracer's span vocabulary.

    Every record carries the worker id and a timestamp relative to the
    parent tracer's origin, so the merge is a pure replay. ``spool_path``
    switches on JSONL spooling for cross-process use; without it the buffer
    stays in memory and is collected via :meth:`drain` (thread executors).
    """

    def __init__(
        self,
        wid: int,
        origin: float = 0.0,
        spool_path: str | Path | None = None,
        clock=time.perf_counter,
    ) -> None:
        self.wid = int(wid)
        self.origin = float(origin)
        self.spool_path = Path(spool_path) if spool_path is not None else None
        self._clock = clock
        self.records: list[dict] = []

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """Seconds on the parent tracer's timeline."""
        return self._clock() - self.origin

    # -- emitters -------------------------------------------------------
    def add_span(
        self,
        name: str,
        start_seconds: float,
        duration_seconds: float,
        *,
        cat: str = "worker",
        args: Mapping[str, object] | None = None,
    ) -> None:
        self.records.append(
            {
                "wid": self.wid,
                "kind": "span",
                "name": name,
                "ts": float(start_seconds),
                "dur": max(0.0, float(duration_seconds)),
                "cat": cat,
                "args": dict(args or {}),
            }
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "worker",
        args: Mapping[str, object] | None = None,
    ) -> Iterator[dict]:
        """Wall-clock span; yielded dict entries become span args."""
        extra: dict = dict(args or {})
        start = self.now()
        try:
            yield extra
        finally:
            self.add_span(name, start, self.now() - start, cat=cat, args=extra)

    def instant(
        self,
        name: str,
        ts_seconds: float | None = None,
        *,
        cat: str = "mark",
        args: Mapping[str, object] | None = None,
    ) -> None:
        self.records.append(
            {
                "wid": self.wid,
                "kind": "instant",
                "name": name,
                "ts": self.now() if ts_seconds is None else float(ts_seconds),
                "cat": cat,
                "args": dict(args or {}),
            }
        )

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        ts_seconds: float | None = None,
    ) -> None:
        self.records.append(
            {
                "wid": self.wid,
                "kind": "counter",
                "name": name,
                "ts": self.now() if ts_seconds is None else float(ts_seconds),
                "values": {k: float(v) for k, v in values.items()},
            }
        )

    # -- hand-off -------------------------------------------------------
    def flush(self) -> int:
        """Append buffered records to the spool file and clear the buffer.

        One ``json.dumps`` line per record; the single ``write`` call keeps
        lines intact under concurrent flushes. In-memory mode (no spool
        path) this is a no-op so callers can flush unconditionally.
        """
        if self.spool_path is None or not self.records:
            return 0
        lines = "".join(
            json.dumps(rec, sort_keys=True) + "\n" for rec in self.records
        )
        n = len(self.records)
        self.records = []
        with self.spool_path.open("a") as fh:
            fh.write(lines)
        return n

    def drain(self) -> list[dict]:
        """Pop and return buffered records (in-memory hand-off)."""
        records, self.records = self.records, []
        return records


def read_spool(path: str | Path) -> tuple[list[dict], int]:
    """Read one worker spool, tolerating a crashed writer.

    Returns ``(records, n_corrupt)``: undecodable or non-dict lines (the
    torn tail a killed worker leaves behind) are skipped and counted, never
    fatal. A missing file reads as empty — a worker that died before its
    first flush.
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return [], 0
    records: list[dict] = []
    corrupt = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if isinstance(rec, dict) and rec.get("kind") in (
            "span", "instant", "counter"
        ):
            records.append(rec)
        else:
            corrupt += 1
    return records, corrupt


def merge_records(
    tracer: Tracer,
    records: list[dict],
    *,
    label: str = "worker",
    pid_base: int | None = None,
    pid: int | None = None,
    tid_base: int = THREAD_TID_BASE,
) -> int:
    """Replay worker records into ``tracer`` on per-worker lanes.

    Lane assignment is one of two layouts:

    * ``pid_base`` (default, process workers): worker ``w`` renders as its
      own process row ``(pid_base + w, 0)``;
    * ``pid`` + ``tid_base`` (thread workers): worker ``w`` renders as
      thread row ``(pid, tid_base + w)`` under one shared process.

    Deterministic output order — all lane metadata first (workers sorted),
    then events sorted by ``(ts, wid)`` — so merged traces diff stably.
    Timestamps clamp at 0 (the schema's floor). Returns events replayed.
    """
    if pid is not None and pid_base is not None:
        raise ValueError("pass at most one of pid_base= or pid=")
    if pid is None and pid_base is None:
        pid_base = WORKER_PID_BASE

    def lane(wid: int) -> tuple[int, int]:
        if pid_base is not None:
            return pid_base + wid, 0
        return pid, tid_base + wid  # type: ignore[return-value]

    for wid in sorted({int(rec["wid"]) for rec in records}):
        lp, lt = lane(wid)
        if pid_base is not None:
            tracer.name_process(lp, f"{label} {wid}")
        tracer.name_thread(lp, lt, f"{label}:{wid}")
    merged = 0
    for rec in sorted(records, key=lambda r: (r.get("ts", 0.0), r["wid"])):
        lp, lt = lane(int(rec["wid"]))
        ts = max(0.0, float(rec.get("ts", 0.0)))
        kind = rec["kind"]
        if kind == "span":
            tracer.add_span(
                rec["name"], ts, float(rec.get("dur", 0.0)),
                pid=lp, tid=lt, cat=rec.get("cat", "worker"),
                args=rec.get("args"),
            )
        elif kind == "instant":
            tracer.instant(
                rec["name"], ts, pid=lp, tid=lt,
                cat=rec.get("cat", "mark"), args=rec.get("args"),
            )
        else:  # counter
            tracer.counter(rec["name"], rec.get("values", {}), ts, pid=lp, tid=lt)
        merged += 1
    return merged


class TraceRelay:
    """Parent-side spool directory: hand out per-worker spool paths, then
    merge whatever the workers managed to write."""

    def __init__(self, spool_dir: str | Path) -> None:
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        #: torn/undecodable lines seen by the last :meth:`read`
        self.corrupt_lines = 0

    def spool_path(self, wid: int) -> Path:
        return self.spool_dir / f"worker_{int(wid):04d}.jsonl"

    def worker_telemetry(self, wid: int, origin: float = 0.0) -> WorkerTelemetry:
        return WorkerTelemetry(wid, origin=origin, spool_path=self.spool_path(wid))

    def read(self) -> list[dict]:
        """All spooled records across workers; corrupt lines are counted on
        :attr:`corrupt_lines`, not raised."""
        records: list[dict] = []
        self.corrupt_lines = 0
        for path in sorted(self.spool_dir.glob("worker_*.jsonl")):
            recs, corrupt = read_spool(path)
            records.extend(recs)
            self.corrupt_lines += corrupt
        return records

    def merge_into(
        self,
        tracer: Tracer,
        *,
        label: str = "proc",
        pid_base: int = WORKER_PID_BASE,
    ) -> int:
        """Read every spool and replay it into ``tracer`` (see
        :func:`merge_records`). Returns events merged."""
        return merge_records(
            tracer, self.read(), label=label, pid_base=pid_base
        )

    def cleanup(self) -> None:
        """Delete the spool files and (if then empty) the directory."""
        for path in self.spool_dir.glob("worker_*.jsonl"):
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
        try:
            self.spool_dir.rmdir()
        except OSError:  # pragma: no cover - foreign files present
            pass

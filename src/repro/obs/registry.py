"""Structured metrics registry: counters, gauges, histograms, series.

Every quantity the reproduction reports — Eq. 7 updates/s, effective
bandwidth (footnote 2), scheduler lock waits, Hogwild conflict rates,
simulated SM occupancy — flows through one :class:`MetricsRegistry` under a
stable ``repro.*`` naming scheme (see ``docs/OBSERVABILITY.md``). Metrics
carry optional label sets (``("dataset", "netflix")``-style pairs) so one
name can hold a family of series, Prometheus-style, and the whole registry
round-trips through JSON / JSONL for artifact files under ``results/``.

Design constraints:

* **cheap** — a counter increment is one dict lookup (cached by the caller)
  plus an integer add; nothing allocates on the hot path;
* **deterministic export** — metrics serialize sorted by (name, labels) so
  artifact diffs are stable across runs;
* **round-trip** — ``MetricsRegistry.from_dict(reg.to_dict())`` reproduces
  every value exactly (tested in ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "Labels",
    "M",
    "METRIC_MANIFEST",
    "DYNAMIC_METRIC_PREFIXES",
    "manifest_allows",
]

#: Canonical label representation: a sorted tuple of (key, value) pairs.
Labels = tuple[tuple[str, str], ...]


def _canon_labels(labels: Mapping[str, object] | Labels | None) -> Labels:
    if not labels:
        return ()
    if isinstance(labels, tuple):
        items = labels
    else:
        items = tuple(labels.items())
    return tuple(sorted((str(k), str(v)) for k, v in items))


@dataclass
class Counter:
    """Monotonically increasing count (events, updates, bytes, waits)."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}

    def restore(self, state: dict) -> None:
        self.value = float(state["value"])


@dataclass
class Gauge:
    """Point-in-time value (a rate, a fraction, a temperature)."""

    name: str
    labels: Labels = ()
    value: float = math.nan
    updates: int = 0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def snapshot(self) -> dict:
        return {"value": self.value, "updates": self.updates}

    def restore(self, state: dict) -> None:
        self.value = float(state["value"])
        self.updates = int(state.get("updates", 0))


@dataclass
class Histogram:
    """Fixed-bucket histogram with the Prometheus cumulative-le convention.

    ``buckets`` holds the *upper edges*; an implicit +inf bucket catches the
    overflow. Bucket counts here are stored per-bucket (not cumulative) and
    accumulated into the matching edge via binary search.
    """

    name: str
    buckets: tuple[float, ...]
    labels: Labels = ()
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    kind = "histogram"

    def __post_init__(self) -> None:
        edges = tuple(float(b) for b in self.buckets)
        if not edges:
            raise ValueError(f"histogram {self.name} needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram {self.name} edges must be strictly increasing")
        self.buckets = edges
        if not self.counts:
            self.counts = [0] * (len(edges) + 1)  # +1 for the +inf overflow
        elif len(self.counts) != len(edges) + 1:
            raise ValueError(
                f"histogram {self.name}: {len(self.counts)} counts for "
                f"{len(edges)} edges (need edges+1)"
            )

    def observe(self, value: float) -> None:
        value = float(value)
        # first bucket whose upper edge admits the value (le convention)
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else math.nan

    def bucket_edges(self) -> tuple[float, ...]:
        """Upper edges including the implicit +inf overflow edge."""
        return self.buckets + (math.inf,)

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
        }

    def restore(self, state: dict) -> None:
        self.counts = [int(c) for c in state["counts"]]
        self.total = int(state["total"])
        self.sum = float(state["sum"])
        self.min = math.inf if state["min"] is None else float(state["min"])
        self.max = -math.inf if state["max"] is None else float(state["max"])


@dataclass
class Series:
    """Append-only (x, value) series — per-epoch RMSE, per-round waits."""

    name: str
    labels: Labels = ()
    xs: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    kind = "series"

    def append(self, x: float, value: float) -> None:
        self.xs.append(float(x))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def snapshot(self) -> dict:
        return {"xs": self.xs, "values": self.values}

    def restore(self, state: dict) -> None:
        self.xs = [float(x) for x in state["xs"]]
        self.values = [float(v) for v in state["values"]]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram, "series": Series}

Metric = Counter | Gauge | Histogram | Series


class MetricsRegistry:
    """Registry of named, labeled metrics with JSON / JSONL export."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Metric] = {}
        self._kinds: dict[str, str] = {}

    # -- registration ---------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels, factory) -> Metric:
        if not name:
            raise ValueError("metric name must be non-empty")
        canon = _canon_labels(labels)
        key = (name, canon)
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested as {kind}"
                )
            return metric
        registered = self._kinds.get(name)
        if registered is not None and registered != kind:
            raise TypeError(
                f"metric {name!r} already registered as {registered}, "
                f"requested as {kind}"
            )
        metric = factory(canon)
        self._metrics[key] = metric
        self._kinds[name] = kind
        return metric

    def counter(self, name: str, labels: Mapping[str, object] | None = None) -> Counter:
        return self._get_or_create(
            "counter", name, labels, lambda c: Counter(name, labels=c)
        )

    def gauge(self, name: str, labels: Mapping[str, object] | None = None) -> Gauge:
        return self._get_or_create(
            "gauge", name, labels, lambda c: Gauge(name, labels=c)
        )

    def histogram(
        self,
        name: str,
        buckets: Iterable[float],
        labels: Mapping[str, object] | None = None,
    ) -> Histogram:
        edges = tuple(buckets)
        metric = self._get_or_create(
            "histogram", name, labels, lambda c: Histogram(name, edges, labels=c)
        )
        if metric.buckets != tuple(float(b) for b in edges):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}, requested {edges}"
            )
        return metric

    def series(self, name: str, labels: Mapping[str, object] | None = None) -> Series:
        return self._get_or_create(
            "series", name, labels, lambda c: Series(name, labels=c)
        )

    # -- lookup ---------------------------------------------------------
    def get(self, name: str, labels: Mapping[str, object] | None = None) -> Metric | None:
        return self._metrics.get((name, _canon_labels(labels)))

    def value(self, name: str, labels: Mapping[str, object] | None = None) -> float:
        """Scalar value of a counter/gauge (raises for missing metrics)."""
        metric = self.get(name, labels)
        if metric is None:
            raise KeyError(f"no metric {name!r} with labels {_canon_labels(labels)}")
        if not isinstance(metric, (Counter, Gauge)):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not scalar")
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._kinds)

    def family(self, name: str) -> list[Metric]:
        """All labeled instances of one metric name, sorted by labels."""
        return [
            m
            for (n, _), m in sorted(self._metrics.items())
            if n == name
        ]

    def __iter__(self) -> Iterator[Metric]:
        return iter(m for _, m in sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "metrics": [
                {
                    "name": m.name,
                    "kind": m.kind,
                    "labels": [list(pair) for pair in m.labels],
                    **m.snapshot(),
                }
                for m in self
            ]
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def write_jsonl(self, out: str | Path | IO[str]) -> None:
        """One metric per line — the streaming-friendly export."""
        if isinstance(out, (str, Path)):
            path = Path(out)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fh:
                self.write_jsonl(fh)
            return
        for entry in self.to_dict()["metrics"]:
            out.write(json.dumps(entry, sort_keys=True) + "\n")

    @classmethod
    def from_dict(cls, state: dict) -> "MetricsRegistry":
        reg = cls()
        for entry in state["metrics"]:
            kind = entry["kind"]
            if kind not in _KINDS:
                raise ValueError(f"unknown metric kind {kind!r}")
            labels = tuple(tuple(pair) for pair in entry["labels"])
            if kind == "counter":
                metric = reg.counter(entry["name"], labels)
            elif kind == "gauge":
                metric = reg.gauge(entry["name"], labels)
            elif kind == "histogram":
                metric = reg.histogram(entry["name"], entry["buckets"], labels)
            else:
                metric = reg.series(entry["name"], labels)
            metric.restore(entry)
        return reg

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Metric-name manifest: the single source of truth for every ``repro.*``
# name the system emits. Call sites import :class:`M` instead of repeating
# string literals; the ``metric-name`` lint pass (``repro lint``) checks any
# remaining literal at a registry/tracer call site against this manifest, so
# a typo'd name fails lint instead of silently forking a counter.
# ---------------------------------------------------------------------------
class M:
    """Canonical ``repro.*`` metric names (see ``docs/OBSERVABILITY.md``)."""

    # training loop
    TRAIN_EPOCH_SECONDS = "repro.train.epoch_seconds"
    TRAIN_UPDATES = "repro.train.updates"
    TRAIN_EVAL_SECONDS = "repro.train.eval_seconds"
    TRAIN_LR = "repro.train.lr"
    TRAIN_RMSE = "repro.train.rmse"
    TRAIN_UPDATES_PER_SEC = "repro.train.updates_per_sec"
    TRAIN_UPDATES_PER_SEC_BY_EPOCH = "repro.train.updates_per_sec.by_epoch"
    TRAIN_EFFECTIVE_BANDWIDTH_GBS = "repro.train.effective_bandwidth_gbs"
    # kernel launches
    KERNEL_WAVES = "repro.kernel.waves"
    KERNEL_UPDATES = "repro.kernel.updates"
    KERNEL_WAVE_COLLISION_FRACTION = "repro.kernel.wave_collision_fraction"
    # schedulers and locks
    SCHED_LOCK_ATTEMPTS = "repro.sched.lock.attempts"
    SCHED_LOCK_WAITS = "repro.sched.lock.waits"
    SCHED_LOCK_ABORTS = "repro.sched.lock.aborts"
    SCHED_ROUNDS = "repro.sched.rounds"
    SCHED_BATCHES = "repro.sched.batches"
    SCHED_BATCH_UPDATES = "repro.sched.batch_updates"
    SCHED_CONFLICT_RATE = "repro.sched.conflict.rate"
    # modelled transfers and throughput
    TRANSFER_H2D_BYTES = "repro.transfer.h2d_bytes"
    TRANSFER_D2H_BYTES = "repro.transfer.d2h_bytes"
    TRANSFER_DISPATCHES = "repro.transfer.dispatches"
    PERF_UPDATES_PER_SEC = "repro.perf.updates_per_sec"
    PERF_EFFECTIVE_BANDWIDTH_GBS = "repro.perf.effective_bandwidth_gbs"
    # GPU simulator
    SIM_OCCUPANCY_FRACTION = "repro.sim.occupancy.fraction"
    SIM_STREAM_OVERLAP_FRACTION = "repro.sim.stream.overlap_fraction"
    SIM_STREAM_EXPOSED_TRANSFER_SECONDS = "repro.sim.stream.exposed_transfer_seconds"
    SIM_SCHED_WAIT_SECONDS = "repro.sim.sched.wait_seconds"
    SIM_SCHED_UTILIZATION = "repro.sim.sched.utilization"
    # experiment harness
    EXP_ELAPSED_SECONDS = "repro.exp.elapsed_seconds"
    # shared-memory process executor (ProcessHogwild)
    PROC_WORKERS = "repro.proc.workers"
    PROC_WORKER_UPDATES = "repro.proc.worker_updates"
    PROC_SHM_BYTES = "repro.proc.shm_bytes"
    PROC_BARRIER_WAIT_SECONDS = "repro.proc.barrier_wait_seconds"
    PROC_EPOCHS = "repro.proc.epochs"
    # threaded executor (ThreadedHogwild)
    THREAD_WORKERS = "repro.thread.workers"
    THREAD_WORKER_UPDATES = "repro.thread.worker_updates"
    # out-of-core block staging (BlockStore / BlockPrefetcher)
    STAGE_BLOCKS_LOADED = "repro.stage.blocks_loaded"
    STAGE_BYTES_LOADED = "repro.stage.bytes_loaded"
    STAGE_LOAD_SECONDS = "repro.stage.load_seconds"
    STAGE_PREFETCH_WAIT_SECONDS = "repro.stage.prefetch_wait_seconds"
    # cross-worker phase attribution (StallReport, repro.obs.profiler)
    PROFILE_WALL_SECONDS = "repro.profile.wall_seconds"
    PROFILE_PHASE_SECONDS = "repro.profile.phase_seconds"
    PROFILE_PHASE_FRACTION = "repro.profile.phase_fraction"
    # kernel-backend registry + auto executor policy (repro.backends,
    # repro.parallel.policy)
    BACKEND_SELECTED = "repro.backend.selected"
    BACKEND_AVAILABLE = "repro.backend.available"
    BACKEND_FALLBACKS = "repro.backend.fallbacks"
    POLICY_EXECUTOR_SELECTED = "repro.policy.executor_selected"
    # resilience subsystem
    RESILIENCE_DEVICE_LOST = "repro.resilience.device_lost"
    RESILIENCE_BLOCKS_REBALANCED = "repro.resilience.blocks_rebalanced"
    RESILIENCE_RETRIED_BYTES = "repro.resilience.retried_bytes"
    RESILIENCE_LR_SCALE = "repro.resilience.lr_scale"
    RESILIENCE_DEMO_UPDATES = "repro.resilience.demo.updates"
    RESILIENCE_DEMO_BLOCKS = "repro.resilience.demo.blocks"
    RESILIENCE_DEMO_ROUNDS = "repro.resilience.demo.rounds"
    # runtime sanitizer (reprosan, repro.san)
    SAN_FINDINGS = "repro.san.findings"
    SAN_RACE_SAMPLES = "repro.san.race.samples"
    SAN_RACE_RACED = "repro.san.race.raced"
    SAN_RACE_RATE = "repro.san.race.rate"
    SAN_NUMERIC_CHECKS = "repro.san.numeric.checks"
    SAN_LIFECYCLE_LEAKS = "repro.san.lifecycle.leaks"


#: every declared metric name, for membership checks
METRIC_MANIFEST: frozenset[str] = frozenset(
    value
    for key, value in vars(M).items()
    if not key.startswith("_") and isinstance(value, str)
)

#: prefixes under which names are minted dynamically (event-keyed counters,
#: per-extra training series); anything else must be declared on :class:`M`
DYNAMIC_METRIC_PREFIXES: tuple[str, ...] = (
    "repro.train.extra.",
    "repro.resilience.",
)


def manifest_allows(name: str) -> bool:
    """True when ``name`` is declared or lives under a dynamic prefix."""
    return name in METRIC_MANIFEST or name.startswith(DYNAMIC_METRIC_PREFIXES)

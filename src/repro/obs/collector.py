"""The telemetry collector: hook events -> metrics registry + trace spans.

One :class:`TelemetryCollector` owns a :class:`~repro.obs.registry.MetricsRegistry`
and a :class:`~repro.obs.tracer.Tracer` and implements the
:class:`~repro.obs.hooks.TrainerHooks` protocol, translating the event
stream into the stable ``repro.*`` metric names (documented in
``docs/OBSERVABILITY.md`` — treat them as an API):

========================================  =========  =================================
name                                      kind       meaning
========================================  =========  =================================
repro.train.epoch_seconds                 histogram  executor wall time per epoch
repro.train.updates                       counter    SGD updates applied
repro.train.updates_per_sec               gauge      Eq. 7 host rate (last epoch)
repro.train.effective_bandwidth_gbs      gauge      footnote-2 bytes/s at that rate
repro.train.rmse                          series     per-epoch RMSE (label split=)
repro.train.lr                            series     Eq. 9 learning-rate per epoch
repro.sched.conflict.rate                 series     Eq. 6 wave conflict fraction
repro.sched.lock.attempts|waits|aborts    counter    column-lock contention
repro.sched.rounds                        counter    wavefront scheduling rounds
repro.kernel.waves                        counter    kernel-equivalent launches
repro.kernel.updates                      counter    updates via kernel events (exact)
repro.kernel.wave_collision_fraction      histogram  per-wave Eq. 6 fraction
repro.transfer.h2d_bytes|d2h_bytes        counter    modelled interconnect traffic
repro.perf.updates_per_sec                gauge      modelled Eq. 7 rate (labels)
repro.perf.effective_bandwidth_gbs        gauge      modelled bandwidth (labels)
repro.sim.stream.overlap_fraction         gauge      compute-busy / makespan
repro.sim.occupancy.fraction              gauge      resident workers / hardware cap
repro.sim.sched.wait_seconds              counter    event-sim scheduling waits
========================================  =========  =================================
"""

from __future__ import annotations

from repro.metrics.throughput import effective_bandwidth
from repro.obs.hooks import BatchEvent, EpochEvent, KernelEvent, TransferEvent
from repro.obs.registry import M, MetricsRegistry
from repro.obs.tracer import WALL_PID, Tracer
from repro.sched.conflict import collision_fraction

__all__ = ["TelemetryCollector", "EPOCH_SECONDS_BUCKETS", "FRACTION_BUCKETS"]

#: Fixed bucket edges (seconds) for per-epoch wall time.
EPOCH_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)
#: Fixed bucket edges for quantities living in [0, 1].
FRACTION_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0)


class TelemetryCollector:
    """Aggregates hook events into metrics and (optionally) trace spans.

    Parameters
    ----------
    registry, tracer:
        Bring-your-own sinks; fresh ones are created by default.
    trace_kernels:
        Also emit one trace span per kernel wave. Off by default — a quick
        training run launches thousands of waves, and epoch/batch spans are
        usually the interesting granularity.
    run_label:
        Stamped on trace spans ("run" arg) so multi-run traces stay legible.
    kernel_sample_every:
        Advertised to producers as the ``kernel_stride`` hint: they emit one
        kernel event per N waves (with exact ``n_waves`` accounting), so the
        Eq. 6 collision fraction is a 1-in-N sample. A quick epoch launches
        thousands of waves and the fraction is a statistical quantity anyway
        — sampling keeps collector overhead under the 5%% budget enforced by
        ``benchmarks/bench_obs_overhead.py`` (1 = every wave, for exact
        accounting on short runs).
    """

    active = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        trace_kernels: bool = False,
        run_label: str = "",
        kernel_sample_every: int = 128,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.trace_kernels = trace_kernels
        self.run_label = run_label
        if kernel_sample_every < 1:
            raise ValueError(
                f"kernel_sample_every must be >= 1, got {kernel_sample_every}"
            )
        #: producers read this via resolve_kernel_stride()
        self.kernel_stride = kernel_sample_every
        reg = self.registry
        # hot-path metric handles, resolved once
        self._epoch_seconds = reg.histogram(
            M.TRAIN_EPOCH_SECONDS, EPOCH_SECONDS_BUCKETS
        )
        self._updates = reg.counter(M.TRAIN_UPDATES)
        self._eval_seconds = reg.counter(M.TRAIN_EVAL_SECONDS)
        self._waves = reg.counter(M.KERNEL_WAVES)
        self._kernel_updates = reg.counter(M.KERNEL_UPDATES)
        self._wave_collisions = reg.histogram(
            M.KERNEL_WAVE_COLLISION_FRACTION, FRACTION_BUCKETS
        )
        self._lock_attempts = reg.counter(M.SCHED_LOCK_ATTEMPTS)
        self._lock_waits = reg.counter(M.SCHED_LOCK_WAITS)
        self._lock_aborts = reg.counter(M.SCHED_LOCK_ABORTS)
        self._rounds = reg.counter(M.SCHED_ROUNDS)
        self._h2d = reg.counter(M.TRANSFER_H2D_BYTES)
        self._d2h = reg.counter(M.TRANSFER_D2H_BYTES)
        self._batches = reg.counter(M.SCHED_BATCHES)

    # ------------------------------------------------------------------
    # TrainerHooks protocol
    # ------------------------------------------------------------------
    def on_epoch(self, event: EpochEvent) -> None:
        reg = self.registry
        self._epoch_seconds.observe(event.seconds)
        self._updates.inc(event.n_updates)
        self._eval_seconds.inc(event.eval_seconds)
        reg.series(M.TRAIN_LR).append(event.epoch, event.lr)
        if event.train_rmse is not None:
            reg.series(M.TRAIN_RMSE, {"split": "train"}).append(
                event.epoch, event.train_rmse
            )
        if event.test_rmse is not None:
            reg.series(M.TRAIN_RMSE, {"split": "test"}).append(
                event.epoch, event.test_rmse
            )
        ups = event.updates_per_sec
        if ups > 0:
            reg.gauge(M.TRAIN_UPDATES_PER_SEC).set(ups)
            reg.series(M.TRAIN_UPDATES_PER_SEC_BY_EPOCH).append(
                event.epoch, ups
            )
            if event.k:
                reg.gauge(M.TRAIN_EFFECTIVE_BANDWIDTH_GBS).set(
                    effective_bandwidth(ups, event.k, event.feature_bytes) / 1e9
                )
        for key, value in event.extra.items():
            if isinstance(value, (int, float)):
                reg.series(f"repro.train.extra.{key}").append(event.epoch, value)
        if "conflict_rate" in event.extra:
            reg.series(M.SCHED_CONFLICT_RATE).append(
                event.epoch, event.extra["conflict_rate"]
            )
        if "lock_attempts" in event.extra:
            self._lock_attempts.inc(event.extra["lock_attempts"])
        if "sched_rounds" in event.extra:
            self._rounds.inc(event.extra["sched_rounds"])
        end = self.tracer.now()
        start = max(0.0, end - event.seconds - event.eval_seconds)
        self.tracer.name_thread(WALL_PID, 0, f"trainer:{event.scheme or 'epoch'}")
        self.tracer.add_span(
            f"epoch {event.epoch}",
            start,
            event.seconds,
            pid=WALL_PID,
            tid=0,
            cat="train",
            args={
                "lr": event.lr,
                "updates": event.n_updates,
                "test_rmse": event.test_rmse,
                "updates_per_sec": ups,
                "run": self.run_label,
                **{k: v for k, v in event.extra.items()},
            },
        )
        if event.eval_seconds:
            self.tracer.add_span(
                f"eval {event.epoch}",
                end - event.eval_seconds,
                event.eval_seconds,
                pid=WALL_PID,
                tid=0,
                cat="eval",
            )
        self.tracer.counter(
            M.TRAIN_UPDATES, {"updates": self._updates.value}, end,
            pid=WALL_PID,
        )

    def on_batch(self, event: BatchEvent) -> None:
        self._batches.inc()
        if event.waits:
            self._lock_waits.inc(event.waits)
        if event.scheme:
            self.registry.counter(
                M.SCHED_BATCH_UPDATES, {"scheme": event.scheme}
            ).inc(event.n_updates)

    def on_kernel(self, event: KernelEvent) -> None:
        self._waves.inc(event.n_waves)
        # exact for any stride: producers accumulate the true update total
        # over the waves each event stands for, so per-epoch this sums to nnz
        self._kernel_updates.inc(event.n_updates)
        if event.rows is not None and event.cols is not None and event.n_updates:
            frac = collision_fraction(event.rows, event.cols)
            self._wave_collisions.observe(frac)
        if self.trace_kernels and event.seconds:
            end = self.tracer.now()
            self.tracer.add_span(
                event.name, end - event.seconds, event.seconds,
                pid=WALL_PID, tid=1, cat="kernel",
                args={"updates": event.n_updates},
            )

    def on_transfer(self, event: TransferEvent) -> None:
        (self._h2d if event.direction == "h2d" else self._d2h).inc(event.n_bytes)
        self.registry.counter(
            M.TRANSFER_DISPATCHES, {"device": event.device}
        ).inc()

    # ------------------------------------------------------------------
    # convenience accessors for the headline quantities
    # ------------------------------------------------------------------
    def _scalar(self, name: str, labels=None) -> float | None:
        metric = self.registry.get(name, labels)
        return None if metric is None else metric.value

    @property
    def conflict_rate(self) -> float | None:
        """Mean Eq. 6 collision fraction across observed waves/epochs."""
        hist = self.registry.get(M.KERNEL_WAVE_COLLISION_FRACTION)
        if hist is not None and hist.total:
            return hist.mean
        series = self.registry.get(M.SCHED_CONFLICT_RATE)
        if series is not None and len(series):
            return sum(series.values) / len(series)
        return None

    def summary(self) -> dict:
        """Headline metrics for CLI output and artifact sidecars."""
        out: dict[str, object] = {}
        for key, name in (
            ("updates_per_sec", M.TRAIN_UPDATES_PER_SEC),
            ("effective_bandwidth_gbs", M.TRAIN_EFFECTIVE_BANDWIDTH_GBS),
        ):
            value = self._scalar(name)
            if value is not None:
                out[key] = value
        rate = self.conflict_rate
        if rate is not None:
            out["conflict_rate"] = rate
        out["lock_waits"] = self._lock_waits.value
        out["lock_attempts"] = self._lock_attempts.value
        out["transfer_bytes"] = self._h2d.value + self._d2h.value
        overlap = self.registry.family(M.SIM_STREAM_OVERLAP_FRACTION)
        if overlap:
            out["stream_overlap_fraction"] = {
                dict(g.labels).get("device", "0"): g.value for g in overlap
            }
        modelled = self.registry.family(M.PERF_UPDATES_PER_SEC)
        if modelled:
            out["modelled_updates_per_sec"] = {
                "/".join(v for _, v in g.labels): g.value for g in modelled
            }
        return out

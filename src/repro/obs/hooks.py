"""Profiling hook protocol threaded through trainer, schedulers, and gpusim.

The contract has four callbacks, mirroring the four things the paper
measures:

* ``on_epoch`` — one full pass finished (wall time, updates, RMSE; the
  per-epoch rows behind every RMSE-vs-time figure);
* ``on_batch`` — one scheduled block executed (wavefront grid block,
  multi-device staged block; carries scheduler wait counts);
* ``on_kernel`` — one kernel-equivalent launch (a Hogwild wave); carries the
  wave's row/column indices so a collector can compute Eq. 6 conflict rates;
* ``on_transfer`` — modelled bytes crossed the CPU-GPU interconnect.

**Zero-cost discipline**: every producer takes ``hooks=None`` and resolves
it via :func:`resolve_hooks` to the shared :data:`NULL_HOOKS` singleton,
whose ``active`` flag is False. Hot loops guard event *construction* with
``if hooks.active:`` — with no collector attached the per-wave cost is one
attribute load, and the numeric path is bit-identical to the uninstrumented
code (asserted by ``tests/test_obs.py``).

This module deliberately imports nothing from ``repro.core`` / ``repro.gpusim``
so both sides can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

__all__ = [
    "EpochEvent",
    "BatchEvent",
    "KernelEvent",
    "TransferEvent",
    "TrainerHooks",
    "NullHooks",
    "NULL_HOOKS",
    "CompositeHooks",
    "RecordingHooks",
    "resolve_hooks",
    "resolve_kernel_stride",
]


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EpochEvent:
    """One completed training epoch."""

    epoch: int  # 1-based
    lr: float
    n_updates: int
    train_rmse: float | None = None
    test_rmse: float | None = None
    #: wall seconds spent inside the executor (excludes RMSE evaluation)
    seconds: float = 0.0
    #: wall seconds spent evaluating train/test RMSE
    eval_seconds: float = 0.0
    #: rating-matrix nnz, for Eq. 7 updates/s
    nnz: int = 0
    k: int = 0
    feature_bytes: int = 4
    scheme: str = ""
    #: executor-specific diagnostics (lock waits, rounds, collision rate…)
    extra: dict = field(default_factory=dict)

    @property
    def updates_per_sec(self) -> float:
        return self.n_updates / self.seconds if self.seconds > 0 else 0.0


@dataclass(slots=True)
class BatchEvent:
    """One scheduled block executed by one worker/device.

    Slotted and unfrozen: batch/kernel events fire at high rate, and a
    frozen dataclass pays ``object.__setattr__`` per field on construction
    (~2x the cost — measured by ``benchmarks/bench_obs_overhead.py``).
    """

    scheme: str
    worker: int
    block: tuple[int, int]
    n_updates: int
    #: failed lock acquisitions this worker accumulated before the grant
    waits: int = 0
    seconds: float = 0.0


@dataclass(slots=True)
class KernelEvent:
    """One kernel-equivalent launch (a Hogwild/AdaGrad wave).

    Slotted and unfrozen for construction speed — see :class:`BatchEvent`.

    High-rate producers honor the consumer's ``kernel_stride`` hint (an
    optional integer attribute on the hooks object, default 1): they emit
    one event per ``stride`` waves and set :attr:`n_waves` to the number of
    launches the event stands for, so wave *counts* stay exact while the
    per-wave emission cost amortizes away. Likewise :attr:`n_updates` is
    the **exact total** of updates across those ``n_waves`` launches (not
    the last wave's size), so per-epoch update counts sum to ``nnz`` for
    any stride. Eq. 6 conflict fractions are then a 1-in-``stride`` sample
    (the event carries the last wave's coordinates) — fine for a
    statistical quantity.
    """

    name: str
    #: exact update total across the n_waves launches this event covers
    n_updates: int
    seconds: float = 0.0
    #: wave coordinates for Eq. 6 conflict accounting (may be None)
    rows: Sequence[int] | None = None
    cols: Sequence[int] | None = None
    #: launches this event represents (stride-1 of them unreported)
    n_waves: int = 1


@dataclass(frozen=True)
class TransferEvent:
    """Modelled bytes crossing the CPU-GPU interconnect."""

    direction: str  # "h2d" | "d2h"
    n_bytes: int
    device: int = 0
    block: tuple[int, int] = (0, 0)
    seconds: float = 0.0


# ----------------------------------------------------------------------
# protocol + null object
# ----------------------------------------------------------------------
@runtime_checkable
class TrainerHooks(Protocol):
    """Anything accepting the four callbacks (duck-typed; see NullHooks)."""

    active: bool

    def on_epoch(self, event: EpochEvent) -> None: ...

    def on_batch(self, event: BatchEvent) -> None: ...

    def on_kernel(self, event: KernelEvent) -> None: ...

    def on_transfer(self, event: TransferEvent) -> None: ...


class NullHooks:
    """Do-nothing hooks: the default, and the zero-cost guarantee.

    ``active`` is False so producers skip event construction entirely; the
    callbacks exist (as no-ops) so even an unguarded call site stays safe.
    """

    active = False

    def on_epoch(self, event: EpochEvent) -> None:
        pass

    def on_batch(self, event: BatchEvent) -> None:
        pass

    def on_kernel(self, event: KernelEvent) -> None:
        pass

    def on_transfer(self, event: TransferEvent) -> None:
        pass


#: Shared singleton — identity-compared by resolve_hooks and tests.
NULL_HOOKS = NullHooks()


def resolve_hooks(hooks: "TrainerHooks | None") -> "TrainerHooks":
    """None -> the ambient collector (if activated) or NULL_HOOKS."""
    if hooks is not None:
        return hooks
    from repro.obs.context import active_hooks

    return active_hooks()


def resolve_kernel_stride(hooks: "TrainerHooks") -> int:
    """The consumer's ``kernel_stride`` hint, clamped to >= 1.

    Consumers without the attribute (TrainHistory, RecordingHooks) get every
    wave; a :class:`~repro.obs.collector.TelemetryCollector` advertises its
    sampling interval so producers skip event construction entirely for the
    waves in between.
    """
    return max(1, int(getattr(hooks, "kernel_stride", 1)))


class CompositeHooks:
    """Fan one event stream out to several consumers."""

    def __init__(self, *hooks: TrainerHooks) -> None:
        self.hooks = [h for h in hooks if h is not None and h is not NULL_HOOKS]

    @property
    def active(self) -> bool:
        return any(h.active for h in self.hooks)

    def on_epoch(self, event: EpochEvent) -> None:
        for h in self.hooks:
            h.on_epoch(event)

    def on_batch(self, event: BatchEvent) -> None:
        for h in self.hooks:
            h.on_batch(event)

    def on_kernel(self, event: KernelEvent) -> None:
        for h in self.hooks:
            h.on_kernel(event)

    def on_transfer(self, event: TransferEvent) -> None:
        for h in self.hooks:
            h.on_transfer(event)


class RecordingHooks:
    """Keeps every event in plain lists — the simplest real consumer,
    used by tests and handy for notebook-style inspection."""

    active = True

    def __init__(self) -> None:
        self.epochs: list[EpochEvent] = []
        self.batches: list[BatchEvent] = []
        self.kernels: list[KernelEvent] = []
        self.transfers: list[TransferEvent] = []

    def on_epoch(self, event: EpochEvent) -> None:
        self.epochs.append(event)

    def on_batch(self, event: BatchEvent) -> None:
        self.batches.append(event)

    def on_kernel(self, event: KernelEvent) -> None:
        self.kernels.append(event)

    def on_transfer(self, event: TransferEvent) -> None:
        self.transfers.append(event)

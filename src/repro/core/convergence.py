"""Hogwild parallelism safety rules (§7.5).

Hogwild-style parallel SGD converges only while concurrent workers rarely
collide. The paper states:

* single device: ``s << min(m, n)`` (from Recht et al. [44]);
* with an ``i x j`` partition: ``s << min(floor(m/i), floor(n/j))``;
* and empirically calibrates the "<<" to a factor of 20::

      s < (1/20) * min(floor(m/i), floor(n/j))

(Hugewiki: min(m, n) ≈ 40k, s = 768 ⇒ convergence holds for j ≤ 2 and fails
at j = 4, exactly 40k/20/768 ≈ 2.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.conflict import expected_collision_fraction

__all__ = [
    "SAFETY_FACTOR",
    "hogwild_safety_bound",
    "is_safe_parallelism",
    "max_safe_partitions",
    "ParallelismCheck",
    "check_parallelism",
]

#: The paper's empirical "much less than" factor.
SAFETY_FACTOR = 20


def hogwild_safety_bound(m: int, n: int, i: int = 1, j: int = 1) -> float:
    """Max safe worker count: ``min(floor(m/i), floor(n/j)) / 20``."""
    if min(m, n, i, j) <= 0:
        raise ValueError("m, n, i, j must all be positive")
    if i > m or j > n:
        raise ValueError(f"partition ({i}, {j}) exceeds matrix shape ({m}, {n})")
    return min(m // i, n // j) / SAFETY_FACTOR


def is_safe_parallelism(s: int, m: int, n: int, i: int = 1, j: int = 1) -> bool:
    """True when ``s`` workers satisfy the §7.5 safety rule."""
    if s <= 0:
        raise ValueError(f"worker count must be positive, got {s}")
    return s < hogwild_safety_bound(m, n, i, j)


def max_safe_partitions(s: int, m: int, n: int) -> tuple[int, int]:
    """Largest (i, j) grid that keeps ``s`` workers per block safe.

    This answers the paper's Hugewiki question: how finely may R be split
    before convergence breaks?
    """
    if s <= 0:
        raise ValueError(f"worker count must be positive, got {s}")
    i_max = max(1, m // (SAFETY_FACTOR * s))
    j_max = max(1, n // (SAFETY_FACTOR * s))
    return i_max, j_max


@dataclass(frozen=True)
class ParallelismCheck:
    """Structured verdict returned by :func:`check_parallelism`."""

    s: int
    block_m: int
    block_n: int
    bound: float
    safe: bool
    expected_collisions: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "SAFE" if self.safe else "UNSAFE"
        return (
            f"{verdict}: s={self.s} vs bound {self.bound:.1f} "
            f"(block {self.block_m}x{self.block_n}, "
            f"E[collisions/wave]={self.expected_collisions:.3f})"
        )


def check_parallelism(s: int, m: int, n: int, i: int = 1, j: int = 1) -> ParallelismCheck:
    """Full diagnostic: bound, verdict, and the expected collision fraction
    of a random wave in one partition block."""
    block_m, block_n = m // i, n // j
    if block_m == 0 or block_n == 0:
        raise ValueError(f"partition ({i}, {j}) leaves an empty block for ({m}, {n})")
    return ParallelismCheck(
        s=s,
        block_m=block_m,
        block_n=block_n,
        bound=hogwild_safety_bound(m, n, i, j),
        safe=is_safe_parallelism(s, m, n, i, j),
        expected_collisions=expected_collision_fraction(s, block_m, block_n),
    )

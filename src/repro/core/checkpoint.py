"""Model persistence (Algorithm 1's ``model_save``) and training resume.

Checkpoints store the feature matrices (at their native precision, so fp16
models stay half-sized on disk too), the training epoch, and arbitrary JSON
metadata. Loading restores a :class:`~repro.core.model.FactorModel` that
``CuMFSGD.fit(warm_start=True)`` can continue training.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.model import FactorModel

__all__ = ["Checkpoint", "save_model", "load_model"]

_FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """A loaded checkpoint: the model plus its training context."""

    model: FactorModel
    epoch: int = 0
    metadata: dict = field(default_factory=dict)


def save_model(
    path: str | Path,
    model: FactorModel,
    epoch: int = 0,
    metadata: dict | None = None,
) -> Path:
    """Write a checkpoint to ``path`` (``.npz``). Returns the path written.

    The write is atomic: bytes land in a temporary sibling file which is
    fsynced and then ``os.replace``d over ``path``, so a crash mid-save can
    truncate only the temporary — the previous checkpoint (recovery's
    rollback target) survives intact.
    """
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta = dict(metadata or {})
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                p=model.p,
                q=model.q,
                epoch=np.int64(epoch),
                version=np.int64(_FORMAT_VERSION),
                metadata=np.array(json.dumps(meta)),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_model(path: str | Path) -> Checkpoint:
    """Load a checkpoint written by :func:`save_model`."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as z:
        version = int(z["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {version} unsupported (expected {_FORMAT_VERSION})"
            )
        model = FactorModel(p=z["p"].copy(), q=z["q"].copy())
        return Checkpoint(
            model=model,
            epoch=int(z["epoch"]),
            metadata=json.loads(str(z["metadata"])),
        )

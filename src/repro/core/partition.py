"""Workload partition (§6.1): the ``i x j`` grid over R and its feature
segments.

For data sets larger than one device's memory, R is divided into ``i x j``
blocks; P into ``i`` row segments and Q into ``j`` column segments. Updating
block ``(bi, bj)`` touches only segment ``bi`` of P and segment ``bj`` of Q,
so independent blocks (distinct ``bi`` AND distinct ``bj``) can be updated on
different devices concurrently, and only the two segments need to move over
the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.container import RatingMatrix, SAMPLE_BYTES

__all__ = ["GridPartition", "BlockView"]


@dataclass(frozen=True)
class BlockView:
    """One grid block: its bounds and the positions of its samples."""

    bi: int
    bj: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    sample_index: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.sample_index)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_hi - self.row_lo, self.col_hi - self.col_lo)

    def coo_bytes(self) -> int:
        """Bytes to stage this block's samples to a device."""
        return self.nnz * SAMPLE_BYTES

    def feature_bytes(self, k: int, feature_bytes: int = 4) -> int:
        """Bytes of the P and Q segments this block touches."""
        rows = self.row_hi - self.row_lo
        cols = self.col_hi - self.col_lo
        return (rows + cols) * k * feature_bytes


class GridPartition:
    """Partition of a rating matrix into an ``i x j`` block grid."""

    def __init__(self, ratings: RatingMatrix, i: int, j: int) -> None:
        if i <= 0 or j <= 0:
            raise ValueError(f"grid ({i}, {j}) must be positive")
        if i > ratings.n_rows or j > ratings.n_cols:
            raise ValueError(
                f"grid ({i}, {j}) exceeds matrix shape {ratings.shape}"
            )
        self.ratings = ratings
        self.i = i
        self.j = j
        self.row_edges = np.linspace(0, ratings.n_rows, i + 1).astype(np.int64)
        self.col_edges = np.linspace(0, ratings.n_cols, j + 1).astype(np.int64)

        bi = np.searchsorted(self.row_edges, ratings.rows, side="right") - 1
        bj = np.searchsorted(self.col_edges, ratings.cols, side="right") - 1
        flat = bi.astype(np.int64) * j + bj
        order = np.argsort(flat, kind="stable")
        bounds = np.searchsorted(flat[order], np.arange(i * j + 1))
        self._sample_index = [
            order[bounds[b] : bounds[b + 1]] for b in range(i * j)
        ]

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self.i * self.j

    def block(self, bi: int, bj: int) -> BlockView:
        """The block at grid coordinates ``(bi, bj)``."""
        if not (0 <= bi < self.i and 0 <= bj < self.j):
            raise IndexError(f"block ({bi}, {bj}) outside ({self.i}, {self.j}) grid")
        return BlockView(
            bi=bi,
            bj=bj,
            row_lo=int(self.row_edges[bi]),
            row_hi=int(self.row_edges[bi + 1]),
            col_lo=int(self.col_edges[bj]),
            col_hi=int(self.col_edges[bj + 1]),
            sample_index=self._sample_index[bi * self.j + bj],
        )

    def blocks(self) -> list[BlockView]:
        """All blocks in row-major order."""
        return [self.block(bi, bj) for bi in range(self.i) for bj in range(self.j)]

    def block_of(self, u: int, v: int) -> tuple[int, int]:
        """Grid coordinates of the block containing sample ``(u, v)``."""
        if not (0 <= u < self.ratings.n_rows and 0 <= v < self.ratings.n_cols):
            raise IndexError(f"({u}, {v}) outside matrix {self.ratings.shape}")
        bi = int(np.searchsorted(self.row_edges, u, side="right") - 1)
        bj = int(np.searchsorted(self.col_edges, v, side="right") - 1)
        return bi, bj

    # ------------------------------------------------------------------
    def independent(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        """Eq. 6 lifted to blocks: disjoint grid rows AND grid columns."""
        return a[0] != b[0] and a[1] != b[1]

    def independent_set(self, blocks: list[tuple[int, int]]) -> bool:
        """True when the blocks are pairwise independent."""
        rows = [b[0] for b in blocks]
        cols = [b[1] for b in blocks]
        return len(set(rows)) == len(rows) and len(set(cols)) == len(cols)

    def max_independent_blocks(self) -> int:
        """Largest concurrent block set: ``min(i, j)`` (one per grid row/col)."""
        return min(self.i, self.j)

    # ------------------------------------------------------------------
    def coverage_check(self) -> bool:
        """Every sample appears in exactly one block."""
        total = sum(len(ix) for ix in self._sample_index)
        if total != self.ratings.nnz:
            return False
        seen = np.concatenate([ix for ix in self._sample_index if len(ix)]) if total else np.empty(0)
        return len(np.unique(seen)) == self.ratings.nnz

    def block_nnz(self) -> np.ndarray:
        """``i x j`` array of per-block sample counts (load-balance view)."""
        return np.array(
            [len(ix) for ix in self._sample_index], dtype=np.int64
        ).reshape(self.i, self.j)

    def max_block_bytes(self, k: int, feature_bytes: int = 4) -> int:
        """Device memory needed for the largest block + its feature segments.

        This is the §6.1 sizing question: each block must fit in one GPU.
        """
        nnz = self.block_nnz()
        worst = 0
        for bi in range(self.i):
            rows = int(self.row_edges[bi + 1] - self.row_edges[bi])
            for bj in range(self.j):
                cols = int(self.col_edges[bj + 1] - self.col_edges[bj])
                total = int(nnz[bi, bj]) * SAMPLE_BYTES + (rows + cols) * k * feature_bytes
                worst = max(worst, total)
        return worst

"""Public training API: the ``CuMFSGD`` estimator.

Ties together model initialization (Algorithm 1 line 3), a scheduling scheme
(§5), the Eq. 9 learning-rate schedule, optional half-precision storage
(§4), and optional multi-device partitioning (§6), with per-epoch test-RMSE
tracking — the measurement every RMSE-vs-time figure in the paper plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import check_parallelism
from repro.core.hogwild import BatchHogwild
from repro.core.lr_schedule import (
    AdaGradSchedule,
    LearningRateSchedule,
    NomadSchedule,
)
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.wavefront import WavefrontScheduler
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse
from repro.obs.hooks import EpochEvent, TrainerHooks, resolve_hooks

__all__ = ["CuMFSGD", "TrainHistory"]

SCHEMES = ("batch_hogwild", "wavefront", "multi_device")


@dataclass
class TrainHistory:
    """Per-epoch record of one training run.

    A thin consumer of the :mod:`repro.obs.hooks` protocol: the trainer
    feeds it one :class:`~repro.obs.hooks.EpochEvent` per epoch through
    :meth:`on_epoch`, exactly like any user-supplied collector. The legacy
    :meth:`record` entry point wraps its arguments in an event and
    delegates, so existing callers keep working.
    """

    epochs: list[int] = field(default_factory=list)
    train_rmse: list[float] = field(default_factory=list)
    test_rmse: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    updates: list[int] = field(default_factory=list)
    #: epoch number of each ``test_rmse`` entry — test RMSE may be recorded
    #: intermittently (``test=None`` epochs mixed in), so ``test_rmse`` must
    #: never be paired positionally with ``epochs``
    test_epochs: list[int] = field(default_factory=list, compare=False, repr=False)
    #: wall seconds per epoch (0.0 for histories built via record());
    #: excluded from equality so instrumented reruns still compare equal
    epoch_seconds: list[float] = field(default_factory=list, compare=False, repr=False)

    active = True  # TrainerHooks protocol: always collecting

    def on_epoch(self, event: EpochEvent) -> None:
        """Consume one epoch event (the hook-protocol entry point)."""
        self.epochs.append(event.epoch)
        self.learning_rates.append(event.lr)
        self.updates.append(event.n_updates)
        self.epoch_seconds.append(event.seconds)
        if event.train_rmse is not None:
            self.train_rmse.append(event.train_rmse)
        if event.test_rmse is not None:
            self.test_rmse.append(event.test_rmse)
            self.test_epochs.append(event.epoch)

    def on_batch(self, event) -> None:  # pragma: no cover - protocol no-op
        pass

    def on_kernel(self, event) -> None:  # pragma: no cover - protocol no-op
        pass

    def on_transfer(self, event) -> None:  # pragma: no cover - protocol no-op
        pass

    def record(
        self,
        epoch: int,
        lr: float,
        n_updates: int,
        train: float | None,
        test: float | None,
        seconds: float = 0.0,
    ) -> None:
        self.on_epoch(
            EpochEvent(
                epoch=epoch,
                lr=lr,
                n_updates=n_updates,
                train_rmse=train,
                test_rmse=test,
                seconds=seconds,
            )
        )

    @property
    def total_seconds(self) -> float:
        """Total executor wall time across recorded epochs."""
        return float(sum(self.epoch_seconds))

    @property
    def final_test_rmse(self) -> float:
        if not self.test_rmse:
            raise ValueError("no test RMSE was recorded")
        return self.test_rmse[-1]

    @property
    def best_test_rmse(self) -> float:
        if not self.test_rmse:
            raise ValueError("no test RMSE was recorded")
        return min(self.test_rmse)

    def epochs_to_target(self, target: float) -> int | None:
        """First epoch (1-based) whose test RMSE <= target, else None.

        This is the quantity Table 4 combines with modelled epoch time.
        Epoch numbers come from :attr:`test_epochs`, recorded alongside each
        test RMSE — pairing ``epochs`` with ``test_rmse`` positionally would
        misalign whenever evaluation is intermittent (``test=None`` epochs
        mixed in). Histories assembled by hand (lists set directly, no
        ``test_epochs``) fall back to the positional pairing.
        """
        epochs = (
            self.test_epochs
            if len(self.test_epochs) == len(self.test_rmse)
            else self.epochs
        )
        for epoch, value in zip(epochs, self.test_rmse):
            if value <= target:
                return epoch
        return None

    @property
    def total_updates(self) -> int:
        return int(sum(self.updates))

    @property
    def diverged(self) -> bool:
        """Heuristic: RMSE became NaN or grew 5x above its starting point."""
        if not self.test_rmse:
            return False
        arr = np.asarray(self.test_rmse)
        return bool(np.isnan(arr).any() or arr[-1] > 5 * arr[0] + 1e-12)


class CuMFSGD:
    """SGD-based matrix factorization with cuMF_SGD's scheduling schemes.

    Parameters
    ----------
    k:
        Feature dimension.
    scheme:
        ``"batch_hogwild"`` (default, §5.1), ``"wavefront"`` (§5.2), or
        ``"multi_device"`` (§6).
    workers:
        Concurrent parallel workers ``s``.
    lam:
        Regularization λ (same for P and Q, as in the paper).
    schedule:
        Learning-rate schedule; defaults to Eq. 9 with Table 3's Netflix
        (α=0.08, β=0.3).
    half_precision:
        Store P and Q in fp16 (§4); compute stays fp32.
    n_devices, grid:
        Only for ``scheme="multi_device"``: device count and the (i, j)
        partition grid.
    warn_unsafe:
        Raise when the configuration violates the §7.5 safety rule and
        ``strict_safety`` is set; otherwise the check result is stored on
        :attr:`safety` for inspection.
    hooks:
        A :class:`repro.obs.hooks.TrainerHooks` consumer (e.g.
        :class:`repro.obs.TelemetryCollector`). ``None`` picks up the
        ambient collector from :func:`repro.obs.activate` scopes, falling
        back to the zero-cost null object — the numeric results are
        bit-identical either way.
    backend:
        Kernel backend for ``scheme="batch_hogwild"`` wave updates (see
        :mod:`repro.backends`); ``None`` keeps the NumPy reference path.
    """

    def __init__(
        self,
        k: int = 32,
        scheme: str = "batch_hogwild",
        workers: int = 128,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        half_precision: bool = False,
        f: int = 256,
        col_blocks: int | None = None,
        n_devices: int = 1,
        grid: tuple[int, int] = (1, 1),
        seed: int = 0,
        scale_factor: float = 1.0,
        strict_safety: bool = False,
        hooks: TrainerHooks | None = None,
        backend: object | None = None,
    ) -> None:
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.scheme = scheme
        self.workers = workers
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.half_precision = half_precision
        self.f = f
        self.col_blocks = col_blocks
        self.n_devices = n_devices
        self.grid = grid
        self.seed = seed
        self.scale_factor = scale_factor
        self.strict_safety = strict_safety
        self.hooks = hooks
        #: kernel backend for the batch-Hogwild! wave updates (name /
        #: BackendType / instance; None = numpy reference). Forwarded to
        #: BatchHogwild; the wavefront and multi-device simulators model
        #: schedules, not kernels, and ignore it.
        self.backend = backend
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        self.safety = None

    # ------------------------------------------------------------------
    def _make_executor(self):
        if self.scheme == "batch_hogwild":
            if isinstance(self.schedule, AdaGradSchedule):
                from repro.core.adagrad import AdaGradHogwild

                return AdaGradHogwild(
                    workers=self.workers, f=self.f, seed=self.seed,
                    schedule=self.schedule,
                )
            return BatchHogwild(
                workers=self.workers, f=self.f, seed=self.seed,
                backend=self.backend,
            )
        if self.scheme == "wavefront":
            return WavefrontScheduler(
                workers=self.workers, col_blocks=self.col_blocks, seed=self.seed
            )
        return MultiDeviceSGD(
            n_devices=self.n_devices,
            i=self.grid[0],
            j=self.grid[1],
            workers=self.workers,
            seed=self.seed,
        )

    def _check_safety(self, ratings: RatingMatrix) -> None:
        if not np.all(np.isfinite(ratings.vals)):
            bad = int(np.count_nonzero(~np.isfinite(ratings.vals)))
            raise ValueError(
                f"ratings contain {bad} non-finite value(s) (NaN/inf); "
                "a single poisoned sample corrupts every factor it touches — "
                "clean the data (e.g. repro.data.preprocess) before training"
            )
        i, j = self.grid if self.scheme == "multi_device" else (1, 1)
        self.safety = check_parallelism(
            self.workers, ratings.n_rows, ratings.n_cols, i, j
        )
        if self.strict_safety and not self.safety.safe:
            raise ValueError(f"unsafe parallelism: {self.safety}")

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 20,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        eval_train: bool = False,
        warm_start: bool = False,
        verbose: bool = False,
        hooks: TrainerHooks | None = None,
    ) -> TrainHistory:
        """Train for up to ``epochs`` full passes.

        Stops early when ``target_rmse`` is reached on the test set. Returns
        (and stores) the :class:`TrainHistory`. ``hooks`` overrides the
        instance-level hooks for this call only.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if target_rmse is not None and test is None:
            raise ValueError("target_rmse requires a test set")
        self._check_safety(train)
        if self.model is None or not warm_start:
            self.model = FactorModel.initialize(
                train.n_rows,
                train.n_cols,
                self.k,
                seed=self.seed,
                scale_factor=self.scale_factor,
                half_precision=self.half_precision,
            )
        executor = self._make_executor()
        active_hooks = resolve_hooks(hooks if hooks is not None else self.hooks)
        history = TrainHistory()
        feature_bytes = 2 if self.half_precision else 4
        for epoch in range(epochs):
            lr = self.schedule(epoch)
            t0 = time.perf_counter()
            n_updates = executor.run_epoch(
                self.model, train, lr, self.lam, hooks=active_hooks
            )
            t1 = time.perf_counter()
            p, q = self.model.as_float32()
            tr = rmse(p, q, train) if eval_train else None
            te = rmse(p, q, test) if test is not None else None
            event = EpochEvent(
                epoch=epoch + 1,
                lr=lr,
                n_updates=n_updates,
                train_rmse=tr,
                test_rmse=te,
                seconds=t1 - t0,
                eval_seconds=time.perf_counter() - t1,
                nnz=train.nnz,
                k=self.k,
                feature_bytes=feature_bytes,
                scheme=self.scheme,
                extra=self._executor_extras(executor) if active_hooks.active else {},
            )
            history.on_epoch(event)
            if active_hooks.active:
                active_hooks.on_epoch(event)
            if verbose:  # pragma: no cover - console output
                parts = [f"epoch {epoch + 1:3d}", f"lr {lr:.5f}"]
                if tr is not None:
                    parts.append(f"train {tr:.4f}")
                if te is not None:
                    parts.append(f"test {te:.4f}")
                print("  ".join(parts))
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    # ------------------------------------------------------------------
    @staticmethod
    def _executor_extras(executor) -> dict:
        """Scheduler-specific diagnostics for the epoch event (hooks only)."""
        extra: dict = {}
        if isinstance(executor, WavefrontScheduler):
            prev = getattr(executor, "_obs_prev_waits", 0)
            extra["lock_wait_events"] = executor.wait_events - prev
            executor._obs_prev_waits = executor.wait_events
            prev_attempts = getattr(executor, "_obs_prev_attempts", 0)
            extra["lock_attempts"] = executor.lock_stats.attempts - prev_attempts
            executor._obs_prev_attempts = executor.lock_stats.attempts
            extra["sched_rounds"] = executor.last_epoch_rounds
        elif isinstance(executor, BatchHogwild):
            if executor.track_collisions and executor.collision_history:
                extra["conflict_rate"] = executor.collision_history[-1]
            # cumulative plan-compilation and workspace counters (the hot
            # path should show cache hits / repermutes, not fresh compiles)
            extra.update(executor.plan_stats.as_extra())
            ws = executor.workspace
            extra["workspace_allocations"] = ws.allocations
            extra["workspace_plan_binds"] = ws.plan_binds
            extra["workspace_waves"] = ws.waves
            extra["workspace_bytes"] = ws.nbytes
        elif isinstance(executor, MultiDeviceSGD):
            extra["transfer_rounds"] = executor.ledger.rounds
            extra["transfer_bytes"] = executor.ledger.total_bytes
        return extra

    # ------------------------------------------------------------------
    def predict(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Predicted ratings for (u, v) pairs after :meth:`fit`."""
        if self.model is None:
            raise RuntimeError("fit() the model before predicting")
        return self.model.predict(np.asarray(rows), np.asarray(cols))

    def score(self, ratings: RatingMatrix) -> float:
        """Test RMSE on a rating set."""
        if self.model is None:
            raise RuntimeError("fit() the model before scoring")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

"""Public training API: the ``CuMFSGD`` estimator.

Ties together model initialization (Algorithm 1 line 3), a scheduling scheme
(§5), the Eq. 9 learning-rate schedule, optional half-precision storage
(§4), and optional multi-device partitioning (§6), with per-epoch test-RMSE
tracking — the measurement every RMSE-vs-time figure in the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import check_parallelism
from repro.core.hogwild import BatchHogwild
from repro.core.lr_schedule import (
    AdaGradSchedule,
    LearningRateSchedule,
    NomadSchedule,
)
from repro.core.model import FactorModel
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.wavefront import WavefrontScheduler
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse

__all__ = ["CuMFSGD", "TrainHistory"]

SCHEMES = ("batch_hogwild", "wavefront", "multi_device")


@dataclass
class TrainHistory:
    """Per-epoch record of one training run."""

    epochs: list[int] = field(default_factory=list)
    train_rmse: list[float] = field(default_factory=list)
    test_rmse: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    updates: list[int] = field(default_factory=list)

    def record(
        self,
        epoch: int,
        lr: float,
        n_updates: int,
        train: float | None,
        test: float | None,
    ) -> None:
        self.epochs.append(epoch)
        self.learning_rates.append(lr)
        self.updates.append(n_updates)
        if train is not None:
            self.train_rmse.append(train)
        if test is not None:
            self.test_rmse.append(test)

    @property
    def final_test_rmse(self) -> float:
        if not self.test_rmse:
            raise ValueError("no test RMSE was recorded")
        return self.test_rmse[-1]

    @property
    def best_test_rmse(self) -> float:
        if not self.test_rmse:
            raise ValueError("no test RMSE was recorded")
        return min(self.test_rmse)

    def epochs_to_target(self, target: float) -> int | None:
        """First epoch (1-based) whose test RMSE <= target, else None.

        This is the quantity Table 4 combines with modelled epoch time.
        """
        for epoch, value in zip(self.epochs, self.test_rmse):
            if value <= target:
                return epoch
        return None

    @property
    def total_updates(self) -> int:
        return int(sum(self.updates))

    @property
    def diverged(self) -> bool:
        """Heuristic: RMSE became NaN or grew 5x above its starting point."""
        if not self.test_rmse:
            return False
        arr = np.asarray(self.test_rmse)
        return bool(np.isnan(arr).any() or arr[-1] > 5 * arr[0] + 1e-12)


class CuMFSGD:
    """SGD-based matrix factorization with cuMF_SGD's scheduling schemes.

    Parameters
    ----------
    k:
        Feature dimension.
    scheme:
        ``"batch_hogwild"`` (default, §5.1), ``"wavefront"`` (§5.2), or
        ``"multi_device"`` (§6).
    workers:
        Concurrent parallel workers ``s``.
    lam:
        Regularization λ (same for P and Q, as in the paper).
    schedule:
        Learning-rate schedule; defaults to Eq. 9 with Table 3's Netflix
        (α=0.08, β=0.3).
    half_precision:
        Store P and Q in fp16 (§4); compute stays fp32.
    n_devices, grid:
        Only for ``scheme="multi_device"``: device count and the (i, j)
        partition grid.
    warn_unsafe:
        Raise when the configuration violates the §7.5 safety rule and
        ``strict_safety`` is set; otherwise the check result is stored on
        :attr:`safety` for inspection.
    """

    def __init__(
        self,
        k: int = 32,
        scheme: str = "batch_hogwild",
        workers: int = 128,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        half_precision: bool = False,
        f: int = 256,
        col_blocks: int | None = None,
        n_devices: int = 1,
        grid: tuple[int, int] = (1, 1),
        seed: int = 0,
        scale_factor: float = 1.0,
        strict_safety: bool = False,
    ) -> None:
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.scheme = scheme
        self.workers = workers
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.half_precision = half_precision
        self.f = f
        self.col_blocks = col_blocks
        self.n_devices = n_devices
        self.grid = grid
        self.seed = seed
        self.scale_factor = scale_factor
        self.strict_safety = strict_safety
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        self.safety = None

    # ------------------------------------------------------------------
    def _make_executor(self):
        if self.scheme == "batch_hogwild":
            if isinstance(self.schedule, AdaGradSchedule):
                from repro.core.adagrad import AdaGradHogwild

                return AdaGradHogwild(
                    workers=self.workers, f=self.f, seed=self.seed,
                    schedule=self.schedule,
                )
            return BatchHogwild(workers=self.workers, f=self.f, seed=self.seed)
        if self.scheme == "wavefront":
            return WavefrontScheduler(
                workers=self.workers, col_blocks=self.col_blocks, seed=self.seed
            )
        return MultiDeviceSGD(
            n_devices=self.n_devices,
            i=self.grid[0],
            j=self.grid[1],
            workers=self.workers,
            seed=self.seed,
        )

    def _check_safety(self, ratings: RatingMatrix) -> None:
        i, j = self.grid if self.scheme == "multi_device" else (1, 1)
        self.safety = check_parallelism(
            self.workers, ratings.n_rows, ratings.n_cols, i, j
        )
        if self.strict_safety and not self.safety.safe:
            raise ValueError(f"unsafe parallelism: {self.safety}")

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 20,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        eval_train: bool = False,
        warm_start: bool = False,
        verbose: bool = False,
    ) -> TrainHistory:
        """Train for up to ``epochs`` full passes.

        Stops early when ``target_rmse`` is reached on the test set. Returns
        (and stores) the :class:`TrainHistory`.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if target_rmse is not None and test is None:
            raise ValueError("target_rmse requires a test set")
        self._check_safety(train)
        if self.model is None or not warm_start:
            self.model = FactorModel.initialize(
                train.n_rows,
                train.n_cols,
                self.k,
                seed=self.seed,
                scale_factor=self.scale_factor,
                half_precision=self.half_precision,
            )
        executor = self._make_executor()
        history = TrainHistory()
        for epoch in range(epochs):
            lr = self.schedule(epoch)
            n_updates = executor.run_epoch(
                self.model, train, lr, self.lam
            )
            p, q = self.model.as_float32()
            tr = rmse(p, q, train) if eval_train else None
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, lr, n_updates, tr, te)
            if verbose:  # pragma: no cover - console output
                parts = [f"epoch {epoch + 1:3d}", f"lr {lr:.5f}"]
                if tr is not None:
                    parts.append(f"train {tr:.4f}")
                if te is not None:
                    parts.append(f"test {te:.4f}")
                print("  ".join(parts))
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    # ------------------------------------------------------------------
    def predict(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Predicted ratings for (u, v) pairs after :meth:`fit`."""
        if self.model is None:
            raise RuntimeError("fit() the model before predicting")
        return self.model.predict(np.asarray(rows), np.asarray(cols))

    def score(self, ratings: RatingMatrix) -> float:
        """Test RMSE on a rating set."""
        if self.model is None:
            raise RuntimeError("fit() the model before scoring")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

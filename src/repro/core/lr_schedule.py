"""Learning-rate schedules (§7.1).

The paper adopts NOMAD's schedule (Eq. 9)::

    γ_t = α / (1 + β · t^1.5)

with per-data-set (α, β) from Table 3. BIDMach instead uses ADAGRAD; the
paper lists adopting ADAGRAD inside cuMF_SGD as future work, which we
implement here as an optional extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "NomadSchedule",
    "AdaGradSchedule",
    "schedule_from_name",
]


class LearningRateSchedule:
    """Base class: maps an epoch index ``t`` (0-based) to a learning rate."""

    def rate(self, epoch: int) -> float:
        raise NotImplementedError

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        return self.rate(epoch)


@dataclass(frozen=True)
class ConstantSchedule(LearningRateSchedule):
    """Fixed learning rate (LIBMF's default initial setting is 0.1)."""

    gamma: float = 0.1

    def rate(self, epoch: int) -> float:
        return self.gamma


@dataclass(frozen=True)
class NomadSchedule(LearningRateSchedule):
    """Eq. 9: ``γ_t = α / (1 + β·t^1.5)`` — monotonically decreasing."""

    alpha: float = 0.08
    beta: float = 0.3

    def rate(self, epoch: int) -> float:
        return self.alpha / (1.0 + self.beta * epoch**1.5)


@dataclass
class AdaGradSchedule(LearningRateSchedule):
    """Element-wise ADAGRAD accumulator (BIDMach's scheme; cuMF future work).

    Unlike the epoch schedules this one is stateful: callers feed squared
    gradients via :meth:`accumulate` and read per-element rates with
    :meth:`elementwise_rate`. ``rate(epoch)`` returns the base rate so the
    object can still stand in where only a scalar is consumed.
    """

    base_rate: float = 0.1
    eps: float = 1e-6
    _accum_p: np.ndarray | None = field(default=None, repr=False)
    _accum_q: np.ndarray | None = field(default=None, repr=False)

    def rate(self, epoch: int) -> float:
        return self.base_rate

    def reset(self, p_shape: tuple[int, int], q_shape: tuple[int, int]) -> None:
        self._accum_p = np.zeros(p_shape, dtype=np.float32)
        self._accum_q = np.zeros(q_shape, dtype=np.float32)

    def accumulate(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        gp: np.ndarray,
        gq: np.ndarray,
    ) -> None:
        """Add squared gradients for the touched rows/columns."""
        if self._accum_p is None or self._accum_q is None:
            raise RuntimeError("call reset() with the model shapes first")
        np.add.at(self._accum_p, rows, gp.astype(np.float32) ** 2)
        np.add.at(self._accum_q, cols, gq.astype(np.float32) ** 2)

    def elementwise_rate(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-element step sizes ``base / sqrt(accum + eps)`` for a wave."""
        if self._accum_p is None or self._accum_q is None:
            raise RuntimeError("call reset() with the model shapes first")
        rate_p = self.base_rate / np.sqrt(self._accum_p[rows] + self.eps)
        rate_q = self.base_rate / np.sqrt(self._accum_q[cols] + self.eps)
        return rate_p, rate_q


def schedule_from_name(name: str, **kwargs) -> LearningRateSchedule:
    """Factory: ``constant`` / ``nomad`` / ``adagrad``."""
    name = name.lower()
    if name == "constant":
        return ConstantSchedule(**kwargs)
    if name == "nomad":
        return NomadSchedule(**kwargs)
    if name == "adagrad":
        return AdaGradSchedule(**kwargs)
    raise KeyError(f"unknown schedule {name!r}; choose constant, nomad, adagrad")

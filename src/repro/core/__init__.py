"""The paper's primary contribution: cuMF_SGD.

* :mod:`repro.core.kernels` — the SGD update kernel (§4), vectorized over a
  wave of concurrent parallel workers with explicit Hogwild race semantics,
  in fp32 or half-precision feature storage.
* :mod:`repro.core.lr_schedule` — Eq. 9 learning-rate schedule plus constant
  and ADAGRAD alternatives.
* :mod:`repro.core.hogwild` / :mod:`repro.core.wavefront` — the two
  GPU-specific scheduling schemes of §5.
* :mod:`repro.core.partition` / :mod:`repro.core.multi_gpu` — the §6 workload
  partition for data sets larger than one device's memory.
* :mod:`repro.core.trainer` — the public ``CuMFSGD`` estimator tying it all
  together.
"""

from repro.core.adagrad import AdaGradHogwild
from repro.core.checkpoint import Checkpoint, load_model, save_model
from repro.core.convergence import hogwild_safety_bound, is_safe_parallelism
from repro.core.hogwild import BatchHogwild
from repro.core.kernels import (
    WaveWorkspace,
    sgd_wave_update,
    sgd_serial_update,
    single_update,
)
from repro.core.lr_schedule import (
    AdaGradSchedule,
    ConstantSchedule,
    LearningRateSchedule,
    NomadSchedule,
)
from repro.core.model import FactorModel
from repro.core.partition import GridPartition
from repro.core.multi_gpu import MultiDeviceSGD
from repro.core.trainer import CuMFSGD, TrainHistory
from repro.core.wavefront import WavefrontScheduler

__all__ = [
    "sgd_wave_update",
    "sgd_serial_update",
    "single_update",
    "WaveWorkspace",
    "LearningRateSchedule",
    "ConstantSchedule",
    "NomadSchedule",
    "AdaGradSchedule",
    "FactorModel",
    "BatchHogwild",
    "WavefrontScheduler",
    "GridPartition",
    "MultiDeviceSGD",
    "CuMFSGD",
    "TrainHistory",
    "hogwild_safety_bound",
    "is_safe_parallelism",
    "AdaGradHogwild",
    "Checkpoint",
    "save_model",
    "load_model",
]

"""Multi-device SGD (§6): blocks staged to devices, independent blocks in
parallel.

The coordinator divides R into an ``i x j`` grid (:class:`GridPartition`),
and repeatedly dispatches *independent* blocks (pairwise distinct grid rows
and columns, Eq. 6) to idle devices. Each dispatch stages the block's COO
samples plus the touched P/Q segments to the device, runs the single-device
batch-Hogwild! engine on the block, and copies the segments back. Samples are
read-only and never travel back (§6.1 step 3).

Numeric semantics: blocks dispatched in the same round touch disjoint
feature segments, so executing them back-to-back is identical to running
them on parallel devices — device parallelism here changes *time*, not
*math*; the time side lives in :mod:`repro.gpusim.streams`.

A :class:`TransferLedger` records every modelled byte crossing the
interconnect so performance experiments (Fig. 16, Table 4 Hugewiki rows) can
charge PCIe/NVLink costs faithfully.

Fault tolerance: :meth:`MultiDeviceSGD.attach_faults` installs a
:class:`repro.resilience.faults.FaultInjector`. Staged transfers then pass
through a bounded retry policy (failed attempts recharge the ledger and
raise :class:`~repro.resilience.faults.TransferFaultError` on exhaustion),
and a device killed mid-epoch degrades gracefully — its refused block and
all still-pending blocks rebalance across the surviving devices, so the
epoch completes with every block processed exactly once, just slower. With
no injector attached the code path (and every RNG draw) is identical to the
fault-free implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import WaveWorkspace, sgd_wave_update
from repro.core.model import FactorModel
from repro.core.partition import BlockView, GridPartition
from repro.data.container import RatingMatrix
from repro.obs.hooks import (
    BatchEvent,
    TrainerHooks,
    TransferEvent,
    resolve_hooks,
)

__all__ = ["MultiDeviceSGD", "TransferLedger"]


@dataclass
class TransferLedger:
    """Bytes moved across the CPU-device interconnect."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    dispatches: int = 0
    rounds: int = 0
    #: bytes retransmitted after injected transfer faults (included above)
    retried_bytes: int = 0

    def charge_dispatch(self, block: BlockView, k: int, feature_bytes: int) -> None:
        feat = block.feature_bytes(k, feature_bytes)
        self.h2d_bytes += block.coo_bytes() + feat
        self.d2h_bytes += feat  # samples are read-only; only features return
        self.dispatches += 1

    def charge_retries(
        self, block: BlockView, k: int, feature_bytes: int,
        h2d_failures: int, d2h_failures: int,
    ) -> None:
        """Recharge the wire for every failed attempt's retransmission."""
        feat = block.feature_bytes(k, feature_bytes)
        h2d_extra = (block.coo_bytes() + feat) * h2d_failures
        d2h_extra = feat * d2h_failures
        self.h2d_bytes += h2d_extra
        self.d2h_bytes += d2h_extra
        self.retried_bytes += h2d_extra + d2h_extra

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes


@dataclass
class MultiDeviceSGD:
    """Multi-device epoch executor over an ``i x j`` partition.

    Parameters
    ----------
    n_devices:
        Number of (modelled) GPUs pulling independent blocks.
    i, j:
        Partition grid. The §7.6 rule of thumb: with ``g`` devices use at
        least a ``2g x 2g`` grid, otherwise forced block orders hurt
        convergence.
    workers:
        Concurrent parallel workers *per device* (thread blocks).
    """

    n_devices: int
    i: int
    j: int
    workers: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {self.n_devices}")
        if self.n_devices > min(self.i, self.j):
            raise ValueError(
                f"{self.n_devices} devices cannot all hold independent blocks "
                f"of a {self.i}x{self.j} grid; need n_devices <= min(i, j)"
            )
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        self._rng = np.random.default_rng(self.seed)
        self._partition: GridPartition | None = None
        self.ledger = TransferLedger()
        self._injector = None
        self._retry = None
        self._store = None
        #: per-coordinator kernel scratch (devices run their blocks serially
        #: here, so one workspace serves them all)
        self.workspace = WaveWorkspace()

    # ------------------------------------------------------------------
    def attach_faults(self, faults, retry=None) -> "MultiDeviceSGD":
        """Install a fault model for every subsequent epoch.

        ``faults`` is a :class:`repro.resilience.faults.FaultPlan` (wrapped
        in a fresh injector) or a ready :class:`FaultInjector` (shared
        state — e.g. one carrying an explicit registry). ``retry`` defaults
        to :class:`repro.resilience.retry.RetryPolicy()`. Device deaths
        persist across epochs, as they would on real hardware.
        """
        from repro.resilience.faults import FaultInjector
        from repro.resilience.retry import RetryPolicy

        self._injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        self._retry = retry if retry is not None else RetryPolicy()
        return self

    @property
    def injector(self):
        """The attached :class:`FaultInjector`, or None when fault-free."""
        return self._injector

    # ------------------------------------------------------------------
    def attach_store(self, store) -> "MultiDeviceSGD":
        """Stage blocks from a persisted :class:`~repro.data.blockstore.BlockStore`.

        Out-of-core mode: subsequent epochs read each block's samples from
        the store's memory-mapped shards instead of slicing an in-memory
        :class:`RatingMatrix` — the host-side analogue of §6.1's "R blocks
        live on the host, stage one block per dispatch". The store's grid
        must match this coordinator's ``i x j`` partition. Byte accounting
        is unchanged: the ledger charges the same COO + feature traffic per
        dispatch, since the staged bytes are the same either way.
        """
        if (store.i, store.j) != (self.i, self.j):
            raise ValueError(
                f"store grid {store.i}x{store.j} does not match the "
                f"coordinator's {self.i}x{self.j} partition"
            )
        self._store = store
        return self

    @property
    def store(self):
        """The attached :class:`BlockStore`, or None when in-memory."""
        return self._store

    # ------------------------------------------------------------------
    def partition_for(self, ratings: RatingMatrix) -> GridPartition:
        if self._partition is None or self._partition.ratings is not ratings:
            self._partition = GridPartition(ratings, self.i, self.j)
        return self._partition

    def _pick_round(
        self, pending: set[tuple[int, int]], limit: int | None = None
    ) -> list[tuple[int, int]]:
        """Randomly select up to ``limit`` pairwise-independent blocks
        (default: one per device)."""
        limit = self.n_devices if limit is None else limit
        chosen: list[tuple[int, int]] = []
        used_rows: set[int] = set()
        used_cols: set[int] = set()
        order = list(pending)
        self._rng.shuffle(order)
        for blk in order:
            if len(chosen) == limit:
                break
            if blk[0] not in used_rows and blk[1] not in used_cols:
                chosen.append(blk)
                used_rows.add(blk[0])
                used_cols.add(blk[1])
        return chosen

    def _device_pass(
        self,
        model: FactorModel,
        ratings: RatingMatrix,
        idx: np.ndarray,
        lr: float,
        lam_p: float,
        lam_q: float,
    ) -> int:
        """Single-device batch-Hogwild! pass over one block's samples."""
        if not len(idx):
            return 0
        idx = idx[self._rng.permutation(len(idx))]
        rows, cols, vals = ratings.rows, ratings.cols, ratings.vals
        for lo in range(0, len(idx), self.workers):
            wave = idx[lo : lo + self.workers]
            sgd_wave_update(
                model.p, model.q, rows[wave], cols[wave], vals[wave],
                lr, lam_p, lam_q, workspace=self.workspace,
            )
        return len(idx)

    def _device_pass_records(
        self,
        model: FactorModel,
        rec: np.ndarray,
        lr: float,
        lam_p: float,
        lam_q: float,
    ) -> int:
        """Single-device pass over one staged block's COO records.

        Same update schedule as :meth:`_device_pass` (one permutation draw,
        waves of ``workers``), sourced from a store shard's packed records
        instead of in-memory sample indices.
        """
        n = len(rec)
        if not n:
            return 0
        idx = self._rng.permutation(n)
        rows, cols, vals = rec["u"], rec["v"], rec["r"]
        for lo in range(0, n, self.workers):
            wave = idx[lo : lo + self.workers]
            sgd_wave_update(
                model.p, model.q, rows[wave], cols[wave], vals[wave],
                lr, lam_p, lam_q, workspace=self.workspace,
            )
        return n

    # ------------------------------------------------------------------
    def run_epoch(
        self,
        model: FactorModel,
        ratings: RatingMatrix | None,
        lr: float,
        lam_p: float,
        lam_q: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> int:
        """One epoch: every block of the grid is updated exactly once.

        With a store attached (:meth:`attach_store`) ``ratings`` may be
        ``None``: block samples stream from the store's mmap shards.

        ``hooks`` receives ``on_transfer`` events for every staged block's
        modelled H2D/D2H bytes (the :class:`TransferLedger` traffic) and one
        ``on_batch`` per block executed.

        With faults attached (:meth:`attach_faults`), staged transfers
        retry under the bounded policy (exhaustion raises
        :class:`~repro.resilience.faults.TransferFaultError`) and a device
        death mid-epoch rebalances its blocks across survivors — the epoch
        still processes every block exactly once. Losing the *last* device
        with blocks pending raises
        :class:`~repro.resilience.faults.DeviceLostError`.
        """
        lam_q = lam_p if lam_q is None else lam_q
        hooks = resolve_hooks(hooks)
        observe = hooks.active
        store = self._store
        if store is None:
            if ratings is None:
                raise ValueError("ratings is required without an attached store")
            part = self.partition_for(ratings)
        feature_bytes = 2 if model.half_precision else 4
        pending = {(bi, bj) for bi in range(self.i) for bj in range(self.j)}
        updates = 0
        injector = self._injector
        alive = (
            list(range(self.n_devices))
            if injector is None
            else [d for d in range(self.n_devices) if injector.alive(d)]
        )
        while pending:
            if injector is not None and not alive:
                from repro.resilience.faults import DeviceLostError

                raise DeviceLostError(
                    f"all {self.n_devices} devices lost with "
                    f"{len(pending)} blocks pending"
                )
            round_blocks = self._pick_round(pending, len(alive))
            if not round_blocks:
                raise RuntimeError("no independent block available — scheduling bug")
            self.ledger.rounds += 1
            if injector is not None and len(alive) < self.n_devices:
                injector.emit("degraded_rounds")
            for slot, (bi, bj) in enumerate(round_blocks):
                device = alive[slot]
                if injector is not None and not injector.begin_dispatch(device):
                    # device died: its block stays pending and, with every
                    # other unfinished block, rebalances across survivors
                    injector.emit("blocks_rebalanced", len(pending))
                    continue
                view = (
                    store.view(bi, bj) if store is not None
                    else part.block(bi, bj)
                )
                if injector is not None:
                    self._stage_with_retry(injector, device, view, model.k,
                                           feature_bytes)
                self.ledger.charge_dispatch(view, model.k, feature_bytes)
                if store is not None:
                    n = self._device_pass_records(
                        model, store.load(bi, bj), lr, lam_p, lam_q
                    )
                else:
                    n = self._device_pass(
                        model, ratings, view.sample_index, lr, lam_p, lam_q
                    )
                updates += n
                pending.discard((bi, bj))
                if injector is not None:
                    injector.complete_dispatch(device)
                if observe:
                    feat = view.feature_bytes(model.k, feature_bytes)
                    hooks.on_transfer(
                        TransferEvent(
                            direction="h2d",
                            n_bytes=view.coo_bytes() + feat,
                            device=device,
                            block=(bi, bj),
                        )
                    )
                    hooks.on_transfer(
                        TransferEvent(
                            direction="d2h", n_bytes=feat, device=device,
                            block=(bi, bj),
                        )
                    )
                    hooks.on_batch(
                        BatchEvent(
                            scheme="multi_device",
                            worker=device,
                            block=(bi, bj),
                            n_updates=n,
                        )
                    )
            if injector is not None:
                alive = [d for d in alive if injector.alive(d)]
        return updates

    # ------------------------------------------------------------------
    def _stage_with_retry(
        self, injector, device: int, view: BlockView, k: int, feature_bytes: int
    ) -> None:
        """Resolve this dispatch's planned transfer faults against the
        retry policy: count retries, recharge retransmitted bytes, raise
        ``TransferFaultError`` when a direction exhausts the budget."""
        h2d_failures = injector.transfer_failures(device, "h2d")
        d2h_failures = injector.transfer_failures(device, "d2h")
        if not (h2d_failures or d2h_failures):
            return
        backoff = 0.0
        for direction, failures in (("h2d", h2d_failures), ("d2h", d2h_failures)):
            if not failures:
                continue
            injector.emit("transfer_faults", failures)
            outcome = self._retry.charge(
                failures, what=f"{direction} transfer (device {device})"
            )  # raises TransferFaultError on exhaustion
            injector.emit("retries", outcome.failures)
            backoff += outcome.backoff_seconds
        injector.emit("retry_backoff_seconds", backoff)
        self.ledger.charge_retries(view, k, feature_bytes, h2d_failures, d2h_failures)

"""Batch-Hogwild! (§5.1): lock-free scheduling with cache-friendly batches.

Plain Hogwild! lets each worker pick one random sample at a time — no
scheduling overhead, but terrible spatial locality on the rating array.
Batch-Hogwild! keeps the lock-freedom and fixes locality: each parallel
worker fetches ``f`` **consecutive** samples (one cache-line-aligned run of
the pre-shuffled COO array) and updates them serially. Because the samples
were shuffled during preprocessing, consecutive storage order is still random
in (u, v) coordinates, so convergence behaves like true Hogwild!.

Eq. 8's locality condition: ``f >> ceil(cache_line / sizeof(sample))`` =
``ceil(128/12)`` = 11; the paper picks ``f = 256`` after observing all large
values behave the same (we expose ``f`` and sweep it in an ablation bench).

Execution model here: with ``s`` workers, wave ``t`` executes sample ``t`` of
every worker's current chunk concurrently — one call to
:func:`repro.core.kernels.sgd_wave_update` with full race semantics. After
``f`` waves all workers advance to the next group of chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import sgd_wave_update
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.obs.hooks import (
    KernelEvent,
    TrainerHooks,
    resolve_hooks,
    resolve_kernel_stride,
)
from repro.sched.conflict import collision_fraction

__all__ = ["BatchHogwild"]


@dataclass
class BatchHogwild:
    """Batch-Hogwild! epoch executor.

    Parameters
    ----------
    workers:
        Number of concurrent parallel workers ``s`` (thread blocks on the
        GPU; 768 on Maxwell, 1792 on Pascal at full occupancy).
    f:
        Consecutive samples per fetched chunk (paper default 256).
    shuffle_each_epoch:
        Re-shuffle the sample order before every epoch. The paper shuffles
        once in preprocessing; per-epoch shuffling adds randomness at no
        modelled cost and is the default here.
    track_collisions:
        Record the mean wave collision fraction per epoch (diagnostics for
        the §7.5 convergence analysis).
    """

    workers: int
    f: int = 256
    seed: int = 0
    shuffle_each_epoch: bool = True
    track_collisions: bool = False
    collision_history: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.f <= 0:
            raise ValueError(f"f must be positive, got {self.f}")
        self._rng = np.random.default_rng(self.seed)
        self._order: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _epoch_order(self, nnz: int) -> np.ndarray:
        if self._order is None or len(self._order) != nnz:
            self._order = self._rng.permutation(nnz).astype(np.int64)
        elif self.shuffle_each_epoch:
            self._rng.shuffle(self._order)
        return self._order

    def wave_indices(self, nnz: int) -> list[np.ndarray]:
        """Partition one epoch into wave index arrays (testing hook).

        Wave ``t`` of a group holds sample positions
        ``{w*f + t : w in workers}`` relative to the group start, i.e. each
        worker walks its own chunk of ``f`` consecutive samples while waves
        cut across workers.
        """
        order = self._epoch_order(nnz)
        waves: list[np.ndarray] = []
        group_span = self.workers * self.f
        for lo in range(0, nnz, group_span):
            group = order[lo : lo + group_span]
            g = len(group)
            n_chunks = -(-g // self.f)  # ceil
            pad = n_chunks * self.f - g
            if pad:
                group = np.concatenate([group, np.full(pad, -1, dtype=group.dtype)])
            grid = group.reshape(n_chunks, self.f)
            for t in range(self.f):
                wave = grid[:, t]
                wave = wave[wave >= 0]
                if len(wave):
                    waves.append(wave)
        return waves

    # ------------------------------------------------------------------
    def run_epoch(
        self,
        model: FactorModel,
        ratings: RatingMatrix,
        lr: float,
        lam_p: float,
        lam_q: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> int:
        """Execute one full pass over the rating matrix. Returns #updates.

        ``hooks`` receives one ``on_kernel`` event per wave (with the wave's
        coordinates, for Eq. 6 conflict accounting); with no collector
        attached the per-wave cost is a single attribute check.
        """
        lam_q = lam_p if lam_q is None else lam_q
        hooks = resolve_hooks(hooks)
        observe = hooks.active
        stride = resolve_kernel_stride(hooks) if observe else 1
        pending = 0
        updates = 0
        collision_acc = 0.0
        n_waves = 0
        rows, cols, vals = ratings.rows, ratings.cols, ratings.vals
        for wave in self.wave_indices(ratings.nnz):
            wr, wc = rows[wave], cols[wave]
            if self.track_collisions:
                collision_acc += collision_fraction(wr, wc)
                n_waves += 1
            sgd_wave_update(model.p, model.q, wr, wc, vals[wave], lr, lam_p, lam_q)
            updates += len(wave)
            if observe:
                pending += 1
                if pending == stride:
                    hooks.on_kernel(
                        KernelEvent(
                            name="hogwild.wave", n_updates=len(wave),
                            rows=wr, cols=wc, n_waves=pending,
                        )
                    )
                    pending = 0
        if pending:  # tail waves the stride window did not flush
            hooks.on_kernel(
                KernelEvent(name="hogwild.wave", n_updates=0, n_waves=pending)
            )
        if self.track_collisions and n_waves:
            self.collision_history.append(collision_acc / n_waves)
        return updates

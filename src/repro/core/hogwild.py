"""Batch-Hogwild! (§5.1): lock-free scheduling with cache-friendly batches.

Plain Hogwild! lets each worker pick one random sample at a time — no
scheduling overhead, but terrible spatial locality on the rating array.
Batch-Hogwild! keeps the lock-freedom and fixes locality: each parallel
worker fetches ``f`` **consecutive** samples (one cache-line-aligned run of
the pre-shuffled COO array) and updates them serially. Because the samples
were shuffled during preprocessing, consecutive storage order is still random
in (u, v) coordinates, so convergence behaves like true Hogwild!.

Eq. 8's locality condition: ``f >> ceil(cache_line / sizeof(sample))`` =
``ceil(128/12)`` = 11; the paper picks ``f = 256`` after observing all large
values behave the same (we expose ``f`` and sweep it in an ablation bench).

Execution model here: with ``s`` workers, wave ``t`` executes sample ``t`` of
every worker's current chunk concurrently — one call to the wave kernel of
:mod:`repro.core.kernels` with full race semantics. After ``f`` waves all
workers advance to the next group of chunks.

Hot-path structure: the epoch's wave schedule is compiled once into an
:class:`~repro.sched.plan.EpochPlan` (a padded ``(n_waves, s)`` index matrix,
cached across epochs and re-permuted in place under ``shuffle_each_epoch``),
and the kernel runs through a :class:`~repro.core.kernels.WaveWorkspace` of
preallocated scratch, so steady-state epochs are allocation-free. Both layers
are numerically invisible: update order, RNG draws, and every fp32 bit match
the uncompiled per-wave schedule (pinned by ``tests/test_plan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import UPDATE_ERRSTATE, WaveWorkspace
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.obs.hooks import (
    KernelEvent,
    TrainerHooks,
    resolve_hooks,
    resolve_kernel_stride,
)
from repro.san.core import active_sanitizer
from repro.sched.conflict import collision_fraction
from repro.sched.plan import EpochPlan, PlanStats

__all__ = ["BatchHogwild"]


@dataclass
class BatchHogwild:
    """Batch-Hogwild! epoch executor.

    Parameters
    ----------
    workers:
        Number of concurrent parallel workers ``s`` (thread blocks on the
        GPU; 768 on Maxwell, 1792 on Pascal at full occupancy).
    f:
        Consecutive samples per fetched chunk (paper default 256).
    shuffle_each_epoch:
        Re-shuffle the sample order before every epoch. The paper shuffles
        once in preprocessing; per-epoch shuffling adds randomness at no
        modelled cost and is the default here.
    track_collisions:
        Record the mean wave collision fraction per epoch (diagnostics for
        the §7.5 convergence analysis).
    backend:
        Kernel backend for the wave updates — a name, a
        :class:`~repro.backends.base.BackendType`, or a constructed
        :class:`~repro.backends.base.KernelBackend`. ``None`` (default)
        resolves to the NumPy reference, which binds the workspace's own
        kernel — the pre-registry code path, bit for bit.
    """

    workers: int
    f: int = 256
    seed: int = 0
    shuffle_each_epoch: bool = True
    track_collisions: bool = False
    backend: object | None = None
    collision_history: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.f <= 0:
            raise ValueError(f"f must be positive, got {self.f}")
        self._rng = np.random.default_rng(self.seed)
        self._order: np.ndarray | None = None
        self._plan: EpochPlan | None = None
        self.plan_stats = PlanStats()
        self.workspace = WaveWorkspace()
        self._backend_obj = None

    def resolved_backend(self):
        """The verified :class:`~repro.backends.base.KernelBackend` this
        executor dispatches through (resolved once, cached)."""
        if self._backend_obj is None:
            from repro.backends import get_backend

            self._backend_obj = get_backend(self.backend)
        return self._backend_obj

    # ------------------------------------------------------------------
    def compiled_plan(self, nnz: int) -> EpochPlan:
        """The epoch's compiled wave schedule, advancing the RNG exactly as
        the legacy per-wave builder did (one permutation on first use, one
        in-place shuffle per epoch under ``shuffle_each_epoch``)."""
        if self._order is None or len(self._order) != nnz:
            self._order = self._rng.permutation(nnz).astype(np.int64)
            self._plan = EpochPlan(
                self._order, self.workers, self.f, stats=self.plan_stats
            )
            return self._plan
        plan = self._plan
        if plan is None or not plan.matches(self._order, self.workers, self.f):
            if self.shuffle_each_epoch:
                self._rng.shuffle(self._order)
            self._plan = plan = EpochPlan(
                self._order, self.workers, self.f, stats=self.plan_stats
            )
        elif self.shuffle_each_epoch:
            plan.repermute(self._rng)
        else:
            plan.note_cache_hit()
        return plan

    def wave_indices(self, nnz: int) -> list[np.ndarray]:
        """Partition one epoch into wave index arrays (testing hook).

        Wave ``t`` of a group holds sample positions
        ``{w*f + t : w in workers}`` relative to the group start, i.e. each
        worker walks its own chunk of ``f`` consecutive samples while waves
        cut across workers. Returns independent copies; the executor itself
        runs straight off the compiled plan's matrix.
        """
        return self.compiled_plan(nnz).wave_arrays()

    # ------------------------------------------------------------------
    def run_epoch(
        self,
        model: FactorModel,
        ratings: RatingMatrix,
        lr: float,
        lam_p: float,
        lam_q: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> int:
        """Execute one full pass over the rating matrix. Returns #updates.

        ``hooks`` receives one ``on_kernel`` event per ``kernel_stride``
        waves; each event carries the exact number of updates and waves the
        window covered (plus the last wave's coordinates as the Eq. 6
        conflict sample). With no collector attached the per-wave cost is a
        single attribute check.
        """
        lam_q = lam_p if lam_q is None else lam_q
        hooks = resolve_hooks(hooks)
        observe = hooks.active
        stride = resolve_kernel_stride(hooks) if observe else 1
        pending_waves = 0
        pending_updates = 0
        updates = 0
        collision_acc = 0.0
        n_waves = 0
        plan = self.compiled_plan(ratings.nnz)
        # inline sanitizer hooks: the epoch's coverage is captured in one
        # O(1) record after the loop (the bound wave matrices ARE the
        # coverage), so the hot loop pays one branch per wave plus a
        # sampled residual check — begin_epoch seals the previous
        # epoch's recorded views before bind_plan regathers them
        san = active_sanitizer()
        sentry = None
        san_stride = san_epoch = 0
        if san is not None:
            san_epoch = san.begin_epoch(wid=0)
            if san.check_numeric:
                sentry = san.numeric
                san_stride = sentry.sample_stride
        ws = self.workspace
        ws.reserve(plan.width, model.p.shape[1],
                   half_precision=model.p.dtype != np.float32)
        rows_w, cols_w, vals_w = ws.bind_plan(
            plan, ratings.rows, ratings.cols, ratings.vals
        )
        p, q = model.p, model.q
        lengths = plan.lengths.tolist()
        width = plan.width
        track = self.track_collisions
        # registry dispatch: numpy resolves to ws.wave_update itself, so the
        # default path is the historical one, bit for bit
        wave_update = self.resolved_backend().bind(ws)
        if sentry is not None:
            sentry.check_dtypes(p, q, None, 0, san_epoch)
        # pre-coerced scalars: the kernel skips its per-call conversions
        lr = np.float32(lr)
        lam_p = np.float32(lam_p)
        lam_q = np.float32(lam_q)
        i = 0
        with np.errstate(**UPDATE_ERRSTATE):
            for wr, wc, wv in zip(rows_w, cols_w, vals_w):
                w = lengths[i]
                i += 1
                if w != width:
                    wr = wr[:w]
                    wc = wc[:w]
                    wv = wv[:w]
                if track:
                    collision_acc += collision_fraction(wr, wc)
                    n_waves += 1
                err = wave_update(p, q, wr, wc, wv, lr, lam_p, lam_q)
                updates += w
                if sentry is not None and not (i - 1) % san_stride:
                    sentry.check_wave(err, 0, san_epoch, i - 1)
                if observe:
                    pending_waves += 1
                    pending_updates += w
                    if pending_waves == stride:
                        hooks.on_kernel(
                            KernelEvent(
                                name="hogwild.wave", n_updates=pending_updates,
                                rows=wr.copy(), cols=wc.copy(),
                                n_waves=pending_waves,
                            )
                        )
                        pending_waves = 0
                        pending_updates = 0
        if pending_waves:  # tail waves the stride window did not flush
            hooks.on_kernel(
                KernelEvent(
                    name="hogwild.wave", n_updates=pending_updates,
                    n_waves=pending_waves,
                )
            )
        if self.track_collisions and n_waves:
            self.collision_history.append(collision_acc / n_waves)
        if san is not None:
            san.epoch_executed(
                rows_w, cols_w, plan.lengths, wid=0, epoch=san_epoch
            )
            # seals immediately, while the bound views are still live
            san.epoch_end(p, q, wid=0, epoch=san_epoch)
        return updates

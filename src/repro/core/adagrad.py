"""ADAGRAD-driven batch-Hogwild! — the paper's stated future work.

§7.2: "cuMF_SGD can also use ADAGRAD or other learning rate schedulers, for
faster convergence. We leave it as future work." This module implements it:
the same lock-free wave execution as :class:`repro.core.hogwild.BatchHogwild`
but with per-element adaptive step sizes from
:class:`repro.core.lr_schedule.AdaGradSchedule`.

Race semantics note: the accumulator updates use ``np.add.at`` (every
gradient contributes), while the parameter writes keep the last-writer-wins
Hogwild semantics — matching a GPU implementation where the accumulator is
updated with ``atomicAdd`` (cheap: one scalar per vector) but the fat vector
writes stay non-atomic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hogwild import BatchHogwild
from repro.core.kernels import UPDATE_ERRSTATE, wave_gradients
from repro.core.lr_schedule import AdaGradSchedule
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.obs.hooks import (
    KernelEvent,
    TrainerHooks,
    resolve_hooks,
    resolve_kernel_stride,
)

__all__ = ["AdaGradHogwild"]


@dataclass
class AdaGradHogwild(BatchHogwild):
    """Batch-Hogwild! with element-wise ADAGRAD step sizes."""

    schedule: AdaGradSchedule | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.schedule is None:
            self.schedule = AdaGradSchedule()
        self._initialized_for: tuple[int, int] | None = None

    def _ensure_state(self, model: FactorModel) -> None:
        shape = (model.p.shape, model.q.shape)
        if self._initialized_for != shape:
            self.schedule.reset(model.p.shape, model.q.shape)
            self._initialized_for = shape

    def run_epoch(
        self,
        model: FactorModel,
        ratings: RatingMatrix,
        lr: float,
        lam_p: float,
        lam_q: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> int:
        """One epoch; ``lr`` is ignored (ADAGRAD supplies per-element rates).

        The epoch runs off the compiled :class:`~repro.sched.plan.EpochPlan`
        shared with :class:`BatchHogwild`; each flushed ``KernelEvent``
        carries the exact update total of the waves in its stride window.
        """
        lam_q = lam_p if lam_q is None else lam_q
        hooks = resolve_hooks(hooks)
        observe = hooks.active
        stride = resolve_kernel_stride(hooks) if observe else 1
        pending_waves = 0
        pending_updates = 0
        self._ensure_state(model)
        assert self.schedule is not None
        updates = 0
        plan = self.compiled_plan(ratings.nnz)
        rows_w, cols_w, vals_w = self.workspace.bind_plan(
            plan, ratings.rows, ratings.cols, ratings.vals
        )
        lengths = plan.lengths.tolist()
        width = plan.width
        p, q = model.p, model.q
        i = 0
        with np.errstate(**UPDATE_ERRSTATE):
            for wr, wc, wv in zip(rows_w, cols_w, vals_w):
                w = lengths[i]
                i += 1
                if w != width:
                    wr = wr[:w]
                    wc = wc[:w]
                    wv = wv[:w]
                _, gp, gq = wave_gradients(p, q, wr, wc, wv, lam_p, lam_q)
                self.schedule.accumulate(wr, wc, gp, gq)
                rate_p, rate_q = self.schedule.elementwise_rate(wr, wc)
                new_p = p[wr].astype(np.float32) + rate_p * gp
                new_q = q[wc].astype(np.float32) + rate_q * gq
                p[wr] = new_p if p.dtype == np.float32 else new_p.astype(p.dtype)
                q[wc] = new_q if q.dtype == np.float32 else new_q.astype(q.dtype)
                updates += w
                if observe:
                    pending_waves += 1
                    pending_updates += w
                    if pending_waves == stride:
                        hooks.on_kernel(
                            KernelEvent(
                                name="adagrad.wave", n_updates=pending_updates,
                                rows=wr.copy(), cols=wc.copy(),
                                n_waves=pending_waves,
                            )
                        )
                        pending_waves = 0
                        pending_updates = 0
        if pending_waves:  # tail waves the stride window did not flush
            hooks.on_kernel(
                KernelEvent(
                    name="adagrad.wave", n_updates=pending_updates,
                    n_waves=pending_waves,
                )
            )
        return updates

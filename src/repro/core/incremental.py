"""Incremental training — the paper's second stated future-work item.

§9: "In future, we plan to extend cuMF_SGD to multiple nodes and
investigate how to deal with incremental training." This module implements
the standard incremental-update toolkit on top of the trained factors:

* :func:`fold_in_users` / :func:`fold_in_items` — closed-form ridge fold-in
  of brand-new entities against the *fixed* opposite factor (one ALS
  half-step restricted to the new rows), the cheap path for cold-start;
* :func:`incremental_fit` — a few batch-Hogwild! epochs over **only the new
  samples** (optionally mixed with a replay sample of old data to resist
  forgetting), warm-starting from the trained model.

The paper's own observation motivates the design: "SGD converges faster and
is easy to do incremental update" (§7.4) — new samples can be streamed
through the same lock-free update path without retraining from scratch.
"""

from __future__ import annotations

import numpy as np

from repro.core.hogwild import BatchHogwild
from repro.core.lr_schedule import ConstantSchedule, LearningRateSchedule
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix

__all__ = ["fold_in_users", "fold_in_items", "incremental_fit", "expand_model"]


def expand_model(model: FactorModel, new_m: int, new_n: int, seed: int = 0) -> FactorModel:
    """Grow P/Q to ``(new_m, new_n)`` rows, initializing the new entities
    with the Algorithm-1 distribution. Existing factors are preserved."""
    if new_m < model.m or new_n < model.n:
        raise ValueError(
            f"model can only grow: ({model.m}, {model.n}) -> ({new_m}, {new_n})"
        )
    rng = np.random.default_rng(seed)
    hi = np.sqrt(1.0 / model.k)
    dtype = model.p.dtype

    def grow(mat: np.ndarray, rows: int) -> np.ndarray:
        if rows == mat.shape[0]:
            return mat.copy()
        extra = rng.uniform(0.0, hi, size=(rows - mat.shape[0], model.k)).astype(dtype)
        return np.vstack([mat, extra])

    return FactorModel(grow(model.p, new_m), grow(model.q, new_n))


def _ridge_fold_in(
    fixed: np.ndarray,
    own_idx: np.ndarray,
    other_idx: np.ndarray,
    vals: np.ndarray,
    n_rows: int,
    lam: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``min ||r - x·fixed||² + λ·cnt·||x||²`` per new row.

    Returns ``(solutions, touched_mask)`` over ``n_rows`` rows.
    """
    k = fixed.shape[1]
    fv = fixed[other_idx].astype(np.float32)
    gram = np.zeros((n_rows, k, k), dtype=np.float32)
    rhs = np.zeros((n_rows, k), dtype=np.float32)
    np.add.at(gram, own_idx, fv[:, :, None] * fv[:, None, :])
    np.add.at(rhs, own_idx, vals.astype(np.float32)[:, None] * fv)
    counts = np.bincount(own_idx, minlength=n_rows).astype(np.float32)
    reg = np.maximum(lam * counts, lam)
    gram += reg[:, None, None] * np.eye(k, dtype=np.float32)[None]
    solved = np.linalg.solve(gram, rhs[..., None])[..., 0]
    return solved, counts > 0


def fold_in_users(
    model: FactorModel,
    ratings: RatingMatrix,
    user_ids: np.ndarray,
    lam: float = 0.05,
) -> FactorModel:
    """Closed-form fold-in of the given (new) users against fixed Q.

    ``ratings`` must contain the new users' samples (other samples are
    ignored). Returns a model with those P rows replaced; Q is untouched.
    """
    user_ids = np.unique(np.asarray(user_ids))
    if user_ids.size == 0:
        raise ValueError("no user ids given")
    if user_ids.max() >= model.m:
        raise ValueError("fold-in targets must already exist; use expand_model first")
    mask = np.isin(ratings.rows, user_ids)
    if not mask.any():
        raise ValueError("ratings contain no samples for the given users")
    q32 = model.q.astype(np.float32)
    solved, touched = _ridge_fold_in(
        q32, ratings.rows[mask], ratings.cols[mask], ratings.vals[mask],
        model.m, lam,
    )
    p = model.p.copy()
    update = user_ids[touched[user_ids]]
    p[update] = solved[update].astype(p.dtype)
    return FactorModel(p, model.q.copy())


def fold_in_items(
    model: FactorModel,
    ratings: RatingMatrix,
    item_ids: np.ndarray,
    lam: float = 0.05,
) -> FactorModel:
    """Closed-form fold-in of the given (new) items against fixed P."""
    item_ids = np.unique(np.asarray(item_ids))
    if item_ids.size == 0:
        raise ValueError("no item ids given")
    if item_ids.max() >= model.n:
        raise ValueError("fold-in targets must already exist; use expand_model first")
    mask = np.isin(ratings.cols, item_ids)
    if not mask.any():
        raise ValueError("ratings contain no samples for the given items")
    p32 = model.p.astype(np.float32)
    solved, touched = _ridge_fold_in(
        p32, ratings.cols[mask], ratings.rows[mask], ratings.vals[mask],
        model.n, lam,
    )
    q = model.q.copy()
    update = item_ids[touched[item_ids]]
    q[update] = solved[update].astype(q.dtype)
    return FactorModel(model.p.copy(), q)


def incremental_fit(
    model: FactorModel,
    new_ratings: RatingMatrix,
    epochs: int = 3,
    lam: float = 0.05,
    schedule: LearningRateSchedule | None = None,
    workers: int = 64,
    replay: RatingMatrix | None = None,
    replay_fraction: float = 0.25,
    seed: int = 0,
) -> FactorModel:
    """Stream new samples through the lock-free SGD path, in place.

    ``replay`` optionally mixes a random ``replay_fraction`` of old samples
    into each epoch so heavily-updated entities do not drift away from the
    historical data (catastrophic-forgetting guard). Returns ``model`` (the
    same object, mutated) for chaining.
    """
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    if not 0.0 <= replay_fraction <= 1.0:
        raise ValueError(f"replay_fraction must be in [0, 1], got {replay_fraction}")
    if new_ratings.n_rows > model.m or new_ratings.n_cols > model.n:
        raise ValueError("new ratings exceed the model's shape; expand_model first")
    schedule = schedule or ConstantSchedule(0.02)
    rng = np.random.default_rng(seed)
    executor = BatchHogwild(workers=workers, seed=seed)
    for epoch in range(epochs):
        batch = new_ratings
        if replay is not None and replay_fraction > 0 and replay.nnz:
            n_replay = int(replay_fraction * new_ratings.nnz)
            if n_replay:
                sel = rng.choice(replay.nnz, size=min(n_replay, replay.nnz),
                                 replace=False)
                batch = RatingMatrix(
                    rows=np.concatenate([new_ratings.rows, replay.rows[sel]]),
                    cols=np.concatenate([new_ratings.cols, replay.cols[sel]]),
                    vals=np.concatenate([new_ratings.vals, replay.vals[sel]]),
                    n_rows=model.m,
                    n_cols=model.n,
                    name="incremental-batch",
                )
        executor.run_epoch(model, batch, schedule(epoch), lam)
    return model

"""SGD update kernels (§4 of the paper), as vectorized NumPy.

On the GPU, one *parallel worker* is a 32-thread thread block that performs
one SGD update: read the sample, read ``p_u`` and ``q_v``, compute the error
via a warp-shuffle dot product, and write both feature vectors back. Hundreds
of such workers run concurrently and race on shared feature matrices
(Hogwild! semantics — no locks, lost updates allowed).

Here, one call to :func:`sgd_wave_update` executes **one concurrent wave**:
``s`` workers each perform one update *from the same snapshot* of P and Q.

Race semantics, made explicit
-----------------------------
* **Stale reads** — all workers gather ``P[rows]`` / ``Q[cols]`` before any
  worker writes, the most adversarial interleaving a real GPU can produce
  within a wave.
* **Lost updates** — the scatter ``P[rows] = new`` resolves duplicate rows
  with last-writer-wins, exactly like racing non-atomic stores.

This makes the convergence behaviour of parallel SGD (the ``s ≪ min(m, n)``
requirement of §7.5) reproducible and deterministic.

Half-precision (§4) is modelled by storing P/Q as ``float16`` and computing
in ``float32``, matching the paper's claim that fp16 storage halves feature
traffic without hurting accuracy.

Divergence semantics
--------------------
The kernels never mask numerical trouble: when a run diverges (huge learning
rate, adversarial data) the fp32 arithmetic overflows to ``inf`` and then
produces ``nan``, which propagates into every factor the poisoned samples
touch. That propagation is *intentional* — it is what the divergence guards
(:attr:`repro.core.trainer.TrainHistory.diverged`, the
:class:`repro.resilience.trainer.ResilientTrainer` NaN guard) key on. The
update arithmetic therefore runs under ``np.errstate(over="ignore",
invalid="ignore")`` so diverging runs stay warning-clean instead of spamming
``RuntimeWarning`` while producing the exact same bits.

Zero-allocation steady state
----------------------------
:class:`WaveWorkspace` preallocates every scratch buffer the wave kernel
needs (gathers, the error vector, gradient temporaries) and exposes the same
arithmetic through ``out=``-driven ufunc/einsum calls. Passing a workspace to
:func:`sgd_wave_update` / :func:`sgd_serial_update` makes the hot path
allocation-free after the first wave, with bit-identical results to the
allocating path (pinned by ``tests/test_plan.py``). A workspace is **not**
thread-safe — give each concurrent worker its own.
"""

from __future__ import annotations

import numpy as np

from repro.sched.plan import SerialPlan, prev_occurrence

try:  # np.einsum(optimize=False) forwards verbatim to this C entry point;
    # calling it directly skips ~1.5us of wrapper per wave (identical bits)
    from numpy._core._multiarray_umath import c_einsum as _c_einsum
except ImportError:  # pragma: no cover - older numpy module layout
    try:
        from numpy.core._multiarray_umath import c_einsum as _c_einsum
    except ImportError:
        _c_einsum = np.einsum

__all__ = [
    "sgd_wave_update",
    "sgd_serial_update",
    "single_update",
    "wave_gradients",
    "conflict_free_segments",
    "WaveWorkspace",
]

#: ufunc error-state under which all update arithmetic runs: divergence
#: produces inf/nan silently (see module docstring) instead of RuntimeWarning.
UPDATE_ERRSTATE = {"over": "ignore", "invalid": "ignore"}


def _gather(mat: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Snapshot-read rows of a feature matrix, promoting fp16 to fp32.

    Fancy indexing copies, which is precisely the snapshot we want.
    """
    rows = mat[idx]
    if rows.dtype != np.float32:
        rows = rows.astype(np.float32)
    return rows


def _scatter(mat: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
    """Racy write-back: duplicate indices resolve last-writer-wins."""
    if mat.dtype == np.float32:
        mat[idx] = values
    else:
        mat[idx] = values.astype(mat.dtype)


class WaveWorkspace:
    """Preallocated scratch buffers for allocation-free wave kernels.

    One workspace serves any wave width up to its reserved capacity and any
    feature dimension ``k`` (buffers grow monotonically, never shrink). Two
    kinds of buffers live here:

    * **kernel scratch** — the gathered ``p_u``/``q_v`` snapshots, the error
      vector, and two gradient temporaries consumed by :meth:`wave_update`;
    * **wave-major gathers** — :meth:`bind_plan` materializes an
      :class:`~repro.sched.plan.EpochPlan`'s per-wave row/col/value arrays as
      three ``(n_waves, s)`` matrices with one vectorized ``take`` each, so
      the epoch loop slices views instead of gathering per wave.

    Counters (surfaced as ``repro.train.extra.workspace_*`` via the trainer):
    ``allocations`` buffer (re)allocations, ``waves`` kernel launches served,
    ``plan_binds`` epoch gathers, ``nbytes`` bytes currently held.

    Not thread-safe: concurrent executors must each own one.
    """

    __slots__ = (
        "allocations", "waves", "plan_binds",
        "_capacity", "_k", "_pu", "_qv", "_t1", "_t2", "_t3",
        "_err", "_err2", "_views",
        "_pu16", "_qv16",
        "_rows_w", "_cols_w", "_vals_w", "_bound_shape", "_bound_key",
        "_cast_cache",
    )

    def __init__(self) -> None:
        self.allocations = 0
        self.waves = 0
        self.plan_binds = 0
        self._capacity = 0
        self._k = 0
        self._pu = self._qv = self._t1 = self._t2 = self._t3 = None
        self._err = self._err2 = None
        self._pu16 = self._qv16 = None
        self._views: dict[int, tuple] = {}
        self._rows_w = self._cols_w = self._vals_w = None
        self._bound_shape: tuple[int, int] | None = None
        self._bound_key: tuple | None = None
        self._cast_cache: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        total = 0
        for name in ("_pu", "_qv", "_t1", "_t2", "_t3", "_err",
                     "_pu16", "_qv16", "_rows_w", "_cols_w", "_vals_w"):
            buf = getattr(self, name)
            if buf is not None:
                total += buf.nbytes
        return total

    def reserve(self, capacity: int, k: int, half_precision: bool = False) -> None:
        """Ensure kernel scratch for waves up to ``capacity`` samples x ``k``.

        ``k`` is exact-fit (scratch rows stay contiguous, so the einsum path
        is byte-for-byte the one the allocating kernel takes); capacity only
        grows.
        """
        if capacity <= self._capacity and k == self._k and (
            not half_precision or self._pu16 is not None
        ):
            return
        capacity = max(capacity, self._capacity)
        shape = (capacity, k)
        self._pu = np.empty(shape, np.float32)
        self._qv = np.empty(shape, np.float32)
        self._t1 = np.empty(shape, np.float32)
        self._t2 = np.empty(shape, np.float32)
        self._t3 = np.empty(shape, np.float32)
        self._err = np.empty(capacity, np.float32)
        self._err2 = self._err[:, None]
        if half_precision or self._pu16 is not None:
            self._pu16 = np.empty(shape, np.float16)
            self._qv16 = np.empty(shape, np.float16)
        self._capacity = capacity
        self._k = k
        self._views = {}
        self.allocations += 1

    def _views_for(self, w: int, fp16: bool) -> tuple:
        views = self._views.get(w)
        if views is None:
            views = (
                self._pu[:w], self._qv[:w],
                self._t1[:w], self._t2[:w], self._t3[:w],
                self._err[:w], self._err2[:w],
                self._pu16[:w] if fp16 else None,
                self._qv16[:w] if fp16 else None,
            )
            self._views[w] = views
        return views

    # ------------------------------------------------------------------
    def bind_plan(
        self,
        plan,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather an epoch plan's wave-major row/col/value matrices.

        One vectorized ``take`` per array replaces one small gather per wave.
        ``-1`` padding indexes the last sample — harmless, as consumers only
        read the first ``plan.lengths[i]`` entries of each row. Returned
        arrays are views into workspace buffers, valid until the next bind.
        A bind is skipped entirely when the plan (same version — i.e. not
        re-permuted since) and data arrays are unchanged.
        """
        shape = (plan.n_waves, plan.width)
        bk = self._bound_key
        if (
            bk is not None
            and bk[0] is plan
            and bk[1] == plan.version
            and bk[2] is rows
            and bk[3] is cols
            and bk[4] is vals
        ):
            return (
                self._rows_w[: shape[0], : shape[1]],
                self._cols_w[: shape[0], : shape[1]],
                self._vals_w[: shape[0], : shape[1]],
            )
        if self._bound_shape is None or (
            shape[0] > self._bound_shape[0] or shape[1] > self._bound_shape[1]
        ):
            alloc = (
                max(shape[0], self._bound_shape[0] if self._bound_shape else 0),
                max(shape[1], self._bound_shape[1] if self._bound_shape else 0),
            )
            # row/col IDs are gathered as intp: per-wave take/scatter then
            # skips the index-cast numpy performs for narrower dtypes
            # (~4us/wave), and the IDs themselves are dtype-agnostic values
            self._rows_w = np.empty(alloc, np.intp)  # lint: hotpath-alloc -- grow-once branch, amortized across epochs
            self._cols_w = np.empty(alloc, np.intp)  # lint: hotpath-alloc -- grow-once branch, amortized across epochs
            self._vals_w = np.empty(alloc, vals.dtype)  # lint: hotpath-alloc -- grow-once branch, amortized across epochs
            self._bound_shape = alloc
            self.allocations += 1
        cast = self._cast_cache
        if cast is None or cast[0] is not rows or cast[2] is not cols:
            rows64 = rows if rows.dtype == np.intp else rows.astype(np.intp)  # lint: hotpath-alloc -- once per data array, cached below
            cols64 = cols if cols.dtype == np.intp else cols.astype(np.intp)  # lint: hotpath-alloc -- once per data array, cached below
            self._cast_cache = cast = (rows, rows64, cols, cols64)
        rw = self._rows_w[: shape[0], : shape[1]]
        cw = self._cols_w[: shape[0], : shape[1]]
        vw = self._vals_w[: shape[0], : shape[1]]
        np.take(cast[1], plan.matrix, out=rw)
        np.take(cast[3], plan.matrix, out=cw)
        np.take(vals, plan.matrix, out=vw)
        self._bound_key = (plan, plan.version, rows, cols, vals)
        self.plan_binds += 1
        return rw, cw, vw

    # ------------------------------------------------------------------
    def wave_update(
        self,
        p: np.ndarray,
        q: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        lr: float,
        lam_p: float,
        lam_q: float,
    ) -> np.ndarray:
        """Allocation-free :func:`sgd_wave_update` body.

        Identical arithmetic, identical operation order, identical bits —
        only the temporaries live in preallocated buffers. The returned error
        vector is a view into workspace scratch, overwritten by the next
        wave. Caller manages ``np.errstate`` (hot loops wrap whole epochs).
        """
        w = len(rows)
        k = p.shape[1]
        fp16 = p.dtype != np.float32 or q.dtype != np.float32
        self.reserve(w, k, half_precision=fp16)
        pu, qv, t1, t2, t3, err, err2, pu16, qv16 = self._views_for(w, fp16)
        if p.dtype == np.float32:
            p.take(rows, 0, pu)
        else:
            p.take(rows, 0, pu16)
            np.copyto(pu, pu16)
        if q.dtype == np.float32:
            q.take(cols, 0, qv)
        else:
            q.take(cols, 0, qv16)
            np.copyto(qv, qv16)
        _c_einsum("ij,ij->i", pu, qv, out=err)
        if vals.dtype == np.float32:
            np.subtract(vals, err, err)
        else:
            np.subtract(vals.astype(np.float32), err, err)  # lint: hotpath-alloc -- non-fp32 ratings fallback, cold by contract
        lr32 = lr if type(lr) is np.float32 else np.float32(lr)
        lam_p32 = lam_p if type(lam_p) is np.float32 else np.float32(lam_p)
        lam_q32 = lam_q if type(lam_q) is np.float32 else np.float32(lam_q)
        # expand err once: a contiguous (w, k) copy makes the two products
        # below contiguous multiplies, ~2x faster than broadcasting the
        # (w, 1) view twice — same values, bit for bit
        np.copyto(t3, err2)
        # new_p = pu + lr * (err*qv - lam_p*pu), exactly as the allocating path
        np.multiply(t3, qv, t1)
        np.multiply(lam_p32, pu, t2)
        np.subtract(t1, t2, t1)
        np.multiply(lr32, t1, t1)
        # new_q needs the *old* pu, so build its first factor before reusing t2
        np.multiply(t3, pu, t2)
        np.add(pu, t1, t1)
        np.multiply(lam_q32, qv, t3)
        np.subtract(t2, t3, t2)
        np.multiply(lr32, t2, t2)
        np.add(qv, t2, t2)
        if p.dtype == np.float32:
            p[rows] = t1
        else:
            np.copyto(pu16, t1)
            p[rows] = pu16
        if q.dtype == np.float32:
            q[cols] = t2
        else:
            np.copyto(qv16, t2)
            q[cols] = qv16
        self.waves += 1
        return err


def wave_gradients(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lam_p: float,
    lam_q: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-sample errors and raw gradient directions for one wave.

    Returns ``(err, gp, gq)`` where ``gp = err*q_v - λ_p*p_u`` is the ascent
    direction for ``p_u`` (line 9 of Algorithm 1) and ``gq`` likewise for
    ``q_v``. No writes are performed.
    """
    with np.errstate(**UPDATE_ERRSTATE):
        pu = _gather(p, rows)
        qv = _gather(q, cols)
        err = vals.astype(np.float32) - np.einsum("ij,ij->i", pu, qv)
        gp = err[:, None] * qv - lam_p * pu
        gq = err[:, None] * pu - lam_q * qv
    return err, gp, gq


def sgd_wave_update(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lr: float,
    lam_p: float,
    lam_q: float | None = None,
    workspace: WaveWorkspace | None = None,
) -> np.ndarray:
    """One concurrent wave of SGD updates with Hogwild race semantics.

    Every sample in the wave is one parallel worker's update. All reads use
    the pre-wave snapshot of P and Q; writes race (last writer wins on
    duplicate rows/columns). Mutates ``p`` and ``q`` in place and returns the
    per-sample prediction errors (useful for monitoring).

    With a :class:`WaveWorkspace` the kernel is allocation-free and the
    returned error vector is a scratch view (overwritten by the next wave);
    without one it is a fresh array. Both paths produce identical bits.
    Diverging arithmetic silently yields inf/nan (see module docstring).
    """
    lam_q = lam_p if lam_q is None else lam_q
    if workspace is not None:
        with np.errstate(**UPDATE_ERRSTATE):
            return workspace.wave_update(p, q, rows, cols, vals, lr, lam_p, lam_q)
    return _wave_update_allocating(p, q, rows, cols, vals, lr, lam_p, lam_q)


def _wave_update_allocating(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lr: float,
    lam_p: float,
    lam_q: float,
) -> np.ndarray:
    """Legacy allocating wave kernel — the reference the workspace path must
    match bit for bit. Not registered hot: steady-state training binds a
    :class:`WaveWorkspace`; this body allocates fresh temporaries per wave.
    """
    with np.errstate(**UPDATE_ERRSTATE):
        pu = _gather(p, rows)
        qv = _gather(q, cols)
        err = vals.astype(np.float32) - np.einsum("ij,ij->i", pu, qv)
        lr32 = np.float32(lr)
        new_p = pu + lr32 * (err[:, None] * qv - np.float32(lam_p) * pu)
        new_q = qv + lr32 * (err[:, None] * pu - np.float32(lam_q) * qv)
        _scatter(p, rows, new_p)
        _scatter(q, cols, new_q)
    return err


def single_update(
    p: np.ndarray,
    q: np.ndarray,
    u: int,
    v: int,
    r: float,
    lr: float,
    lam_p: float,
    lam_q: float | None = None,
) -> float:
    """Exactly one serial SGD update (lines 8-10 of Algorithm 1).

    The reference semantics against which the wave kernel is validated:
    ``sgd_wave_update`` on a single sample must match this bit-for-bit in
    fp32. Returns the prediction error before the update.
    """
    lam_q = lam_p if lam_q is None else lam_q
    with np.errstate(**UPDATE_ERRSTATE):
        pu = p[u].astype(np.float32)
        qv = q[v].astype(np.float32)
        err = np.float32(r) - np.float32(np.dot(pu, qv))
        lr32 = np.float32(lr)
        new_p = pu + lr32 * (err * qv - np.float32(lam_p) * pu)
        new_q = qv + lr32 * (err * pu - np.float32(lam_q) * qv)
        p[u] = new_p if p.dtype == np.float32 else new_p.astype(p.dtype)
        q[v] = new_q if q.dtype == np.float32 else new_q.astype(q.dtype)
    return float(err)


_prev_occurrence = prev_occurrence  # kept under the historical private name


def conflict_free_segments(
    rows: np.ndarray, cols: np.ndarray, max_wave: int = 64
) -> list[tuple[int, int]]:
    """Greedy partition of a sample sequence into conflict-free runs.

    Each returned ``[start, stop)`` segment contains no repeated row and no
    repeated column (Eq. 6 holds pairwise within it), and is at most
    ``max_wave`` long. Conflict-free waves commute with serial execution, so
    replaying the segments in order is numerically identical to a serial
    pass over the sequence. (Thin wrapper over
    :meth:`repro.sched.plan.SerialPlan.compile`.)
    """
    return SerialPlan.compile(rows, cols, max_wave).segments()


def sgd_serial_update(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lr: float,
    lam_p: float,
    lam_q: float | None = None,
    max_wave: int = 64,
    workspace: WaveWorkspace | None = None,
) -> None:
    """Serial-equivalent batched update for samples owned by ONE worker.

    Within a parallel worker (a block of the wavefront grid, or one
    batch-Hogwild! chunk) updates are executed serially on the GPU. Looping
    one sample at a time in Python is prohibitively slow, so the sequence is
    compiled into a :class:`~repro.sched.plan.SerialPlan` of conflict-free
    sub-waves, which are numerically faithful to per-worker serial order,
    just faster. A :class:`WaveWorkspace` makes the replay allocation-free.
    """
    lam_q = lam_p if lam_q is None else lam_q
    plan = SerialPlan.compile(rows, cols, max_wave)
    if workspace is not None:
        with np.errstate(**UPDATE_ERRSTATE):
            for start, stop in zip(plan.starts.tolist(), plan.stops.tolist()):
                workspace.wave_update(
                    p, q, rows[start:stop], cols[start:stop], vals[start:stop],
                    lr, lam_p, lam_q,
                )
        return
    for start, stop in zip(plan.starts.tolist(), plan.stops.tolist()):
        sgd_wave_update(
            p,
            q,
            rows[start:stop],
            cols[start:stop],
            vals[start:stop],
            lr,
            lam_p,
            lam_q,
        )

"""SGD update kernels (§4 of the paper), as vectorized NumPy.

On the GPU, one *parallel worker* is a 32-thread thread block that performs
one SGD update: read the sample, read ``p_u`` and ``q_v``, compute the error
via a warp-shuffle dot product, and write both feature vectors back. Hundreds
of such workers run concurrently and race on shared feature matrices
(Hogwild! semantics — no locks, lost updates allowed).

Here, one call to :func:`sgd_wave_update` executes **one concurrent wave**:
``s`` workers each perform one update *from the same snapshot* of P and Q.

Race semantics, made explicit
-----------------------------
* **Stale reads** — all workers gather ``P[rows]`` / ``Q[cols]`` before any
  worker writes, the most adversarial interleaving a real GPU can produce
  within a wave.
* **Lost updates** — the scatter ``P[rows] = new`` resolves duplicate rows
  with last-writer-wins, exactly like racing non-atomic stores.

This makes the convergence behaviour of parallel SGD (the ``s ≪ min(m, n)``
requirement of §7.5) reproducible and deterministic.

Half-precision (§4) is modelled by storing P/Q as ``float16`` and computing
in ``float32``, matching the paper's claim that fp16 storage halves feature
traffic without hurting accuracy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sgd_wave_update",
    "sgd_serial_update",
    "single_update",
    "wave_gradients",
    "conflict_free_segments",
]


def _gather(mat: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Snapshot-read rows of a feature matrix, promoting fp16 to fp32.

    Fancy indexing copies, which is precisely the snapshot we want.
    """
    rows = mat[idx]
    if rows.dtype != np.float32:
        rows = rows.astype(np.float32)
    return rows


def _scatter(mat: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
    """Racy write-back: duplicate indices resolve last-writer-wins."""
    if mat.dtype == np.float32:
        mat[idx] = values
    else:
        mat[idx] = values.astype(mat.dtype)


def wave_gradients(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lam_p: float,
    lam_q: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-sample errors and raw gradient directions for one wave.

    Returns ``(err, gp, gq)`` where ``gp = err*q_v - λ_p*p_u`` is the ascent
    direction for ``p_u`` (line 9 of Algorithm 1) and ``gq`` likewise for
    ``q_v``. No writes are performed.
    """
    pu = _gather(p, rows)
    qv = _gather(q, cols)
    err = vals.astype(np.float32) - np.einsum("ij,ij->i", pu, qv)
    gp = err[:, None] * qv - lam_p * pu
    gq = err[:, None] * pu - lam_q * qv
    return err, gp, gq


def sgd_wave_update(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lr: float,
    lam_p: float,
    lam_q: float | None = None,
) -> np.ndarray:
    """One concurrent wave of SGD updates with Hogwild race semantics.

    Every sample in the wave is one parallel worker's update. All reads use
    the pre-wave snapshot of P and Q; writes race (last writer wins on
    duplicate rows/columns). Mutates ``p`` and ``q`` in place and returns the
    per-sample prediction errors (useful for monitoring).
    """
    lam_q = lam_p if lam_q is None else lam_q
    pu = _gather(p, rows)
    qv = _gather(q, cols)
    err = vals.astype(np.float32) - np.einsum("ij,ij->i", pu, qv)
    lr32 = np.float32(lr)
    new_p = pu + lr32 * (err[:, None] * qv - np.float32(lam_p) * pu)
    new_q = qv + lr32 * (err[:, None] * pu - np.float32(lam_q) * qv)
    _scatter(p, rows, new_p)
    _scatter(q, cols, new_q)
    return err


def single_update(
    p: np.ndarray,
    q: np.ndarray,
    u: int,
    v: int,
    r: float,
    lr: float,
    lam_p: float,
    lam_q: float | None = None,
) -> float:
    """Exactly one serial SGD update (lines 8-10 of Algorithm 1).

    The reference semantics against which the wave kernel is validated:
    ``sgd_wave_update`` on a single sample must match this bit-for-bit in
    fp32. Returns the prediction error before the update.
    """
    lam_q = lam_p if lam_q is None else lam_q
    pu = p[u].astype(np.float32)
    qv = q[v].astype(np.float32)
    err = np.float32(r) - np.float32(np.dot(pu, qv))
    lr32 = np.float32(lr)
    new_p = pu + lr32 * (err * qv - np.float32(lam_p) * pu)
    new_q = qv + lr32 * (err * pu - np.float32(lam_q) * qv)
    p[u] = new_p if p.dtype == np.float32 else new_p.astype(p.dtype)
    q[v] = new_q if q.dtype == np.float32 else new_q.astype(q.dtype)
    return float(err)


def _prev_occurrence(x: np.ndarray) -> np.ndarray:
    """For each position, the previous position holding the same value (-1 if none)."""
    order = np.argsort(x, kind="stable")
    xs = x[order]
    prev = np.full(len(x), -1, dtype=np.int64)
    if len(x) > 1:
        same = xs[1:] == xs[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def conflict_free_segments(
    rows: np.ndarray, cols: np.ndarray, max_wave: int = 64
) -> list[tuple[int, int]]:
    """Greedy partition of a sample sequence into conflict-free runs.

    Each returned ``[start, stop)`` segment contains no repeated row and no
    repeated column (Eq. 6 holds pairwise within it), and is at most
    ``max_wave`` long. Conflict-free waves commute with serial execution, so
    replaying the segments in order is numerically identical to a serial
    pass over the sequence.
    """
    n = len(rows)
    if n == 0:
        return []
    prev = np.maximum(_prev_occurrence(rows), _prev_occurrence(cols))
    segments: list[tuple[int, int]] = []
    start = 0
    while start < n:
        limit = min(start + max_wave, n)
        window = prev[start + 1 : limit]
        hits = np.nonzero(window >= start)[0]
        stop = start + 1 + int(hits[0]) if len(hits) else limit
        segments.append((start, stop))
        start = stop
    return segments


def sgd_serial_update(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lr: float,
    lam_p: float,
    lam_q: float | None = None,
    max_wave: int = 64,
) -> None:
    """Serial-equivalent batched update for samples owned by ONE worker.

    Within a parallel worker (a block of the wavefront grid, or one
    batch-Hogwild! chunk) updates are executed serially on the GPU. Looping
    one sample at a time in Python is prohibitively slow, so we process the
    sequence in conflict-free sub-waves (see :func:`conflict_free_segments`),
    which are numerically faithful to per-worker serial order, just faster.
    """
    lam_q = lam_p if lam_q is None else lam_q
    for start, stop in conflict_free_segments(rows, cols, max_wave):
        sgd_wave_update(
            p,
            q,
            rows[start:stop],
            cols[start:stop],
            vals[start:stop],
            lr,
            lam_p,
            lam_q,
        )

"""Wavefront-update (§5.2): block scheduling with a 1-D column-lock array.

The rating matrix is partitioned into an ``s x c`` grid (the paper uses
``c = 2s``). Parallel worker ``w`` permanently owns grid row ``w`` — so row
conflicts are impossible by construction — and walks its own random
permutation of the ``c`` columns. Before starting the next block, a worker
checks a single entry of the column-lock array; when the column is held by
another worker it waits (that, and only that, is the synchronization).

Compared to LIBMF's global table this replaces an O(a²) critical-section
scan with an O(1) local lookup, and lets a worker start its next wave early
instead of barriering with all other workers — the two benefits called out
under Fig. 6.

Numeric model: we iterate *rounds*; in each round every unfinished worker
tries to acquire its next column. The granted set is pairwise independent
(distinct grid rows, lock-distinct columns), so executing the granted blocks
back-to-back is numerically identical to running them concurrently. Blocked
workers retry next round — reproducing the load-imbalance waits the lock
array is designed to minimize, which we count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import WaveWorkspace, sgd_serial_update
from repro.core.model import FactorModel
from repro.data.container import RatingMatrix
from repro.obs.hooks import BatchEvent, TrainerHooks, resolve_hooks
from repro.sched.column_lock import ColumnLockArray, LockContentionStats

__all__ = ["WavefrontScheduler"]


@dataclass
class WavefrontScheduler:
    """Wavefront-update epoch executor.

    Parameters
    ----------
    workers:
        Parallel workers ``s``; also the number of grid rows.
    col_blocks:
        Grid columns ``c``; defaults to ``2 * workers`` as in Fig. 6.
    intra_wave:
        Max sub-wave width used to execute a block's samples
        serial-equivalently (see :func:`repro.core.kernels.sgd_serial_update`).
    """

    workers: int
    col_blocks: int | None = None
    seed: int = 0
    intra_wave: int = 64

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        self.col_blocks = self.col_blocks or 2 * self.workers
        if self.col_blocks < 1:
            raise ValueError(f"col_blocks must be positive, got {self.col_blocks}")
        self._rng = np.random.default_rng(self.seed)
        self._block_index: list[list[np.ndarray]] | None = None
        self._prepared_for: tuple[int, int] | None = None
        #: retry events observed (a worker found its next column held)
        self.wait_events = 0
        #: rounds needed by the last epoch (load-imbalance diagnostic)
        self.last_epoch_rounds = 0
        #: cumulative column-lock contention across all epochs run
        self.lock_stats = LockContentionStats()
        #: scratch reused by every block's serial-equivalent replay
        self.workspace = WaveWorkspace()

    # ------------------------------------------------------------------
    def prepare(self, ratings: RatingMatrix) -> None:
        """Index samples by grid block; call once per data set."""
        s, c = self.workers, int(self.col_blocks)
        row_edges = np.linspace(0, ratings.n_rows, s + 1).astype(np.int64)
        col_edges = np.linspace(0, ratings.n_cols, c + 1).astype(np.int64)
        bi = np.searchsorted(row_edges, ratings.rows, side="right") - 1
        bj = np.searchsorted(col_edges, ratings.cols, side="right") - 1
        flat = bi.astype(np.int64) * c + bj
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        bounds = np.searchsorted(sorted_flat, np.arange(s * c + 1))
        self._block_index = [
            [order[bounds[i * c + j] : bounds[i * c + j + 1]] for j in range(c)]
            for i in range(s)
        ]
        self._prepared_for = (id(ratings), ratings.nnz)

    def block_samples(self, worker: int, col_block: int) -> np.ndarray:
        """Sample positions of grid block ``(worker, col_block)``."""
        if self._block_index is None:
            raise RuntimeError("call prepare(ratings) first")
        return self._block_index[worker][col_block]

    # ------------------------------------------------------------------
    def run_epoch(
        self,
        model: FactorModel,
        ratings: RatingMatrix,
        lr: float,
        lam_p: float,
        lam_q: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> int:
        """One full pass: every worker visits every column block once.

        ``hooks`` receives one ``on_batch`` event per executed grid block,
        carrying the lock waits the worker accumulated before the grant.
        """
        lam_q = lam_p if lam_q is None else lam_q
        hooks = resolve_hooks(hooks)
        observe = hooks.active
        if self._block_index is None or self._prepared_for != (id(ratings), ratings.nnz):
            self.prepare(ratings)
        s, c = self.workers, int(self.col_blocks)
        locks = ColumnLockArray(c)
        # each worker draws a private permutation of column blocks (Fig. 6)
        sequences = [self._rng.permutation(c) for _ in range(s)]
        position = np.zeros(s, dtype=np.int64)
        waits_since_grant = np.zeros(s, dtype=np.int64)
        updates = 0
        rounds = 0
        rows, cols, vals = ratings.rows, ratings.cols, ratings.vals

        remaining = set(range(s))
        while remaining:
            rounds += 1
            granted: list[tuple[int, int]] = []
            for w in self._rng.permutation(sorted(remaining)):
                col = int(sequences[w][position[w]])
                if locks.try_acquire(col, int(w)):
                    granted.append((int(w), col))
                else:
                    self.wait_events += 1
                    waits_since_grant[w] += 1
            if not granted:
                raise RuntimeError(
                    "wavefront deadlock: no worker could acquire a column"
                )
            for w, col in granted:
                idx = self._block_index[w][col]
                if len(idx):
                    # shuffle within the block; the worker then runs serially
                    idx = idx[self._rng.permutation(len(idx))]
                    sgd_serial_update(
                        model.p,
                        model.q,
                        rows[idx],
                        cols[idx],
                        vals[idx],
                        lr,
                        lam_p,
                        lam_q,
                        max_wave=self.intra_wave,
                        workspace=self.workspace,
                    )
                    updates += len(idx)
                locks.release(col, w)
                if observe:
                    hooks.on_batch(
                        BatchEvent(
                            scheme="wavefront",
                            worker=w,
                            block=(w, col),
                            n_updates=len(idx),
                            waits=int(waits_since_grant[w]),
                        )
                    )
                    waits_since_grant[w] = 0
                position[w] += 1
                if position[w] == c:
                    remaining.discard(w)
        self.last_epoch_rounds = rounds
        self.lock_stats = self.lock_stats + locks.stats()
        return updates

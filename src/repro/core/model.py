"""Factor-model container: the P and Q matrices and their storage precision.

Initialization follows Algorithm 1, line 3: entries drawn uniformly from
``[0, sqrt(1/(k * scale_factor)))``, so that the expected initial prediction
magnitude is independent of ``k``.

Half-precision storage (§4) keeps P and Q in ``float16``; all kernels compute
in ``float32``. The paper notes that after parameter scaling fp16 "is precise
enough to store the feature matrices and does not incur accuracy loss" while
halving the feature-matrix memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FactorModel"]


@dataclass
class FactorModel:
    """Dense feature matrices ``P (m x k)`` and ``Q (n x k)``.

    Q is stored row-major by *item* (the transpose of the paper's ``k x n``
    notation) so both matrices have the same coalesced-row access pattern.
    """

    p: np.ndarray
    q: np.ndarray

    def __post_init__(self) -> None:
        if self.p.ndim != 2 or self.q.ndim != 2:
            raise ValueError("P and Q must be 2-D")
        if self.p.shape[1] != self.q.shape[1]:
            raise ValueError(
                f"feature dimensions disagree: P has k={self.p.shape[1]}, "
                f"Q has k={self.q.shape[1]}"
            )
        if self.p.dtype != self.q.dtype:
            raise ValueError("P and Q must share a storage dtype")

    # ------------------------------------------------------------------
    @classmethod
    def initialize(
        cls,
        m: int,
        n: int,
        k: int,
        seed: int = 0,
        scale_factor: float = 1.0,
        half_precision: bool = False,
    ) -> "FactorModel":
        """Algorithm 1 line 3: ``P, Q ← random(0, sqrt(1/(k·scale_factor)))``."""
        if min(m, n, k) <= 0:
            raise ValueError(f"m, n, k must be positive, got ({m}, {n}, {k})")
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        rng = np.random.default_rng(seed)
        hi = np.sqrt(1.0 / (k * scale_factor))
        dtype = np.float16 if half_precision else np.float32
        p = rng.uniform(0.0, hi, size=(m, k)).astype(dtype)
        q = rng.uniform(0.0, hi, size=(n, k)).astype(dtype)
        return cls(p=p, q=q)

    @classmethod
    def from_buffers(
        cls,
        p_buf,
        q_buf,
        m: int,
        n: int,
        k: int,
        dtype=np.float32,
    ) -> "FactorModel":
        """Attach zero-copy views over externally owned buffers.

        ``p_buf`` / ``q_buf`` are writable buffer objects (e.g. the ``buf``
        of a :class:`multiprocessing.shared_memory.SharedMemory` segment)
        holding at least ``m*k`` / ``n*k`` elements of ``dtype``. The
        returned model's P and Q are plain ``ndarray`` views into those
        buffers — no bytes are copied, so every update a kernel applies is
        immediately visible to every other process attached to the same
        segment (the substrate of :class:`repro.parallel.procs.ProcessHogwild`).
        The caller owns the buffer lifetime; detach by dropping the model.
        """
        if min(m, n, k) <= 0:
            raise ValueError(f"m, n, k must be positive, got ({m}, {n}, {k})")
        p = np.ndarray((m, k), dtype=dtype, buffer=p_buf)
        q = np.ndarray((n, k), dtype=dtype, buffer=q_buf)
        return cls(p=p, q=q)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.p.shape[0]

    @property
    def n(self) -> int:
        return self.q.shape[0]

    @property
    def k(self) -> int:
        return self.p.shape[1]

    @property
    def half_precision(self) -> bool:
        return self.p.dtype == np.float16

    @property
    def nbytes(self) -> int:
        """Total feature storage, the quantity §4's half-precision halves."""
        return self.p.nbytes + self.q.nbytes

    # ------------------------------------------------------------------
    def as_float32(self) -> tuple[np.ndarray, np.ndarray]:
        """fp32 views/copies for evaluation."""
        p = self.p if self.p.dtype == np.float32 else self.p.astype(np.float32)
        q = self.q if self.q.dtype == np.float32 else self.q.astype(np.float32)
        return p, q

    def to_half(self) -> "FactorModel":
        """Convert storage to fp16 (no-op if already half precision)."""
        if self.half_precision:
            return self
        return FactorModel(self.p.astype(np.float16), self.q.astype(np.float16))

    def to_single(self) -> "FactorModel":
        """Convert storage to fp32 (no-op if already single precision)."""
        if not self.half_precision:
            return self
        return FactorModel(self.p.astype(np.float32), self.q.astype(np.float32))

    def copy(self) -> "FactorModel":
        return FactorModel(self.p.copy(), self.q.copy())

    def predict(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Predicted ratings for (u, v) index arrays, computed in fp32."""
        p, q = self.as_float32()
        return np.einsum("ij,ij->i", p[rows], q[cols])

"""NOMAD reimplementation: decentralized column-token SGD + network model.

NOMAD (Yun et al., VLDB '14) partitions the *rows* of R across nodes and
circulates the columns of Q as tokens: the node holding token ``v`` updates
all of its local samples in column ``v`` against ``q_v``, then passes the
token to a random other node. No two nodes ever hold the same column, and
row partitions are disjoint, so updates are conflict-free by construction —
at the price of moving every ``q_v`` across the network continually.

Numeric semantics: one epoch sends every token through every node once (in
a random node order per column), each visit processing that node's samples
for the column serially. Because token holders are unique per column and
rows are partitioned, serializing visits is numerically identical to the
distributed execution.

Performance: :func:`nomad_epoch_seconds` charges the cluster model — the
per-node CPU compute rate against per-node network injection bandwidth for
the token traffic — reproducing the paper's observations that NOMAD only
speeds up ~5.6x on 32 nodes (Fig. 2b's collapsing memory efficiency) and
loses to LIBMF outright on Yahoo!Music (where n is large, so token traffic
is heaviest).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import sgd_serial_update
from repro.core.lr_schedule import LearningRateSchedule, NomadSchedule
from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix, SAMPLE_BYTES
from repro.data.synthetic import DatasetSpec
from repro.gpusim.specs import ClusterSpec, NOMAD_HPC_CLUSTER
from repro.metrics.rmse import rmse

__all__ = ["NOMADSolver", "nomad_epoch_seconds", "nomad_memory_efficiency"]


class NOMADSolver:
    """Column-token decentralized SGD (numeric path)."""

    def __init__(
        self,
        k: int = 32,
        nodes: int = 4,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        seed: int = 0,
        scale_factor: float = 1.0,
    ) -> None:
        if k <= 0 or nodes <= 0:
            raise ValueError("k and nodes must be positive")
        self.k = k
        self.nodes = nodes
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.seed = seed
        self.scale_factor = scale_factor
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        #: token hops performed in the last fit (network-traffic accounting)
        self.token_hops = 0

    # ------------------------------------------------------------------
    def _index_by_node(
        self, train: RatingMatrix, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """index[node] -> sample positions of that node's row partition."""
        node_of_row = rng.integers(0, self.nodes, size=train.n_rows)
        node = node_of_row[train.rows]
        order = np.argsort(node, kind="stable")
        bounds = np.searchsorted(node[order], np.arange(self.nodes + 1))
        return [order[bounds[nd] : bounds[nd + 1]] for nd in range(self.nodes)]

    def _run_epoch(
        self,
        model: FactorModel,
        train: RatingMatrix,
        index: list[list[np.ndarray]],
        rng: np.random.Generator,
        lr: float,
    ) -> int:
        """One epoch of ring-style token circulation.

        Tokens circulate in a ring: node order is permuted per epoch, and
        each node processes every token (column) it receives in a per-epoch
        random column order before passing it on. Within a node that is one
        long serial sample sequence sorted by the column permutation, which
        we execute with one serial-equivalent call — numerically identical
        to per-token processing, since each column is exclusive to one node
        at a time and row partitions are disjoint.
        """
        updates = 0
        rows, cols, vals = train.rows, train.cols, train.vals
        col_rank = rng.permutation(train.n_cols).astype(np.int64)
        for nd in rng.permutation(self.nodes):
            node_idx = index[nd]
            self.token_hops += train.n_cols
            if not len(node_idx):
                continue
            # Round-robin across the node's resident tokens: sample t of
            # each column runs before sample t+1 of any column. This matches
            # a node whose worker cores cycle through their token queue, and
            # keeps serial-equivalent segments long (consecutive samples hit
            # different columns).
            c = col_rank[cols[node_idx]]
            order_by_col = np.argsort(c, kind="stable")
            sorted_c = c[order_by_col]
            within = np.arange(len(sorted_c)) - np.searchsorted(sorted_c, sorted_c)
            key = within.astype(np.int64) * train.n_cols + sorted_c
            idx = node_idx[order_by_col][np.argsort(key, kind="stable")]
            sgd_serial_update(
                model.p, model.q, rows[idx], cols[idx], vals[idx], lr, self.lam
            )
            updates += len(idx)
        return updates

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 20,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = np.random.default_rng(self.seed)
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        index = self._index_by_node(train, rng)
        history = TrainHistory()
        for epoch in range(epochs):
            lr = self.schedule(epoch)
            n = self._run_epoch(self.model, train, index, rng, lr)
            p, q = self.model.as_float32()
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, lr, n, None, te)
            if verbose:  # pragma: no cover
                print(f"NOMAD epoch {epoch + 1}: test={te}")
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)


# ----------------------------------------------------------------------
# performance model
# ----------------------------------------------------------------------
#: Per-token-message handling cost on a node: MPI send/recv of a ~600-byte
#: message plus queue management, ~50 us of software+wire time. This single
#: constant keeps the model in the paper's regime: strongly sub-linear
#: Netflix scaling, NOMAD losing to single-node LIBMF on Yahoo!Music (whose
#: n = 625k makes token traffic enormous), and NOMAD-64 merely "similar" to
#: one Maxwell GPU on Hugewiki.
TOKEN_OVERHEAD_US = 50.0

#: Effective per-update stall when the per-node feature working set spills
#: out of L3 and p_u reads become random DRAM accesses (partially hidden by
#: the memory-level parallelism of a node's 4 worker cores).
RANDOM_ACCESS_STALL_US = 0.35


def nomad_epoch_seconds(
    dataset: DatasetSpec,
    nodes: int,
    cluster: ClusterSpec = NOMAD_HPC_CLUSTER,
    token_overhead_us: float = TOKEN_OVERHEAD_US,
) -> float:
    """Modelled seconds per epoch for NOMAD on ``nodes`` cluster nodes.

    Compute side: each node runs ``cores_per_node`` workers whose per-update
    cost is the CPU SSE constant; the small per-node working set fits L3
    (that is NOMAD's design goal), so no cache penalty applies.

    Network side: every column token visits every node once per epoch, so
    each node receives ``n`` token messages per epoch; message handling is
    serialized on the node's communication path. Bulk bandwidth is also
    charged but per-message overhead dominates — matching the paper's
    diagnosis that "the overall performance is bound by the slow network".
    """
    if nodes <= 0:
        raise ValueError(f"nodes must be positive, got {nodes}")
    if token_overhead_us < 0:
        raise ValueError("token_overhead_us must be non-negative")
    cpu = cluster.node_cpu
    # NOMAD's design goal is a per-node working set that fits L3. When the
    # row dimension is so large that it cannot (Hugewiki: ~400 MB of P per
    # node on 64 nodes), every update stalls on a random DRAM access to
    # p_u — ~1 us effective at the limited memory-level parallelism of 4
    # cores. This is why the paper finds NOMAD-64 only "similar" to one
    # Maxwell GPU on Hugewiki.
    p_working_set = dataset.m / nodes * dataset.k * 4
    miss_fraction = max(0.0, min(1.0, (p_working_set - cpu.l3_bytes) / max(p_working_set, 1.0)))
    update_us = cpu.update_compute_us + RANDOM_ACCESS_STALL_US * miss_fraction
    compute_rate = nodes * cluster.cores_per_node / (update_us * 1e-6)
    compute_seconds = dataset.n_train / compute_rate
    if nodes == 1:
        return compute_seconds

    token_bytes = dataset.k * 4 + 64  # q_v payload + message header
    per_node_messages = dataset.n  # each column visits each node once
    network_seconds = per_node_messages * (
        token_overhead_us * 1e-6
        + token_bytes / (cluster.network_gbs_per_node * 1e9)
    )
    # compute overlaps with communication; the longer path binds
    return max(compute_seconds, network_seconds) + min(compute_seconds, network_seconds) * 0.1


def nomad_memory_efficiency(
    dataset: DatasetSpec,
    nodes: int,
    cluster: ClusterSpec = NOMAD_HPC_CLUSTER,
) -> float:
    """Fig. 2b's metric: effective bandwidth / total memory bandwidth.

    Effective bandwidth counts the bytes the compute units process per
    second (updates/s x bytes-per-update); the denominator is the aggregate
    DRAM bandwidth of all nodes. It collapses as nodes are added because the
    network, not memory, is the binding resource.
    """
    seconds = nomad_epoch_seconds(dataset, nodes, cluster)
    updates_per_sec = dataset.n_train / seconds
    processed = SAMPLE_BYTES + 4 * dataset.k * 4
    effective = updates_per_sec * processed
    total = nodes * cluster.node_cpu.dram_bw_gbs * 1e9
    return effective / total

"""Baseline reimplementations (§7.2's comparison set).

* :mod:`repro.baselines.libmf` — LIBMF: blocked shared-memory SGD with the
  contended global scheduling table (and its Fig. 14 pathology).
* :mod:`repro.baselines.nomad` — NOMAD: decentralized column-token SGD over
  a modelled cluster network.
* :mod:`repro.baselines.bidmach` — BIDMach: mini-batch SGD with ADAGRAD on
  the GPU cost model.
* :mod:`repro.baselines.als` — cuMF_ALS: exact alternating least squares
  with its O(N·k² + (m+n)·k³) per-epoch cost model.
"""

from repro.baselines.als import ALSSolver, als_epoch_seconds
from repro.baselines.bidmach import BIDMachSGD, bidmach_throughput
from repro.baselines.libmf import LIBMFSolver
from repro.baselines.nomad import NOMADSolver, nomad_epoch_seconds, nomad_memory_efficiency

__all__ = [
    "LIBMFSolver",
    "NOMADSolver",
    "nomad_epoch_seconds",
    "nomad_memory_efficiency",
    "BIDMachSGD",
    "bidmach_throughput",
    "ALSSolver",
    "als_epoch_seconds",
]

"""cuMF_ALS reimplementation: exact alternating least squares (§7.4).

ALS alternates two exact half-steps: fixing Q, every ``p_u`` solves the
ridge normal equations over the user's observed columns; then symmetrically
for every ``q_v``. Each epoch costs O(N·k²) memory and O(N·k² + (m+n)·k³)
compute — the paper's complexity argument for why ALS epochs run slower
than SGD epochs even though ALS needs fewer of them.

The normal-equation assembly is fully vectorized (scatter-added Gram
matrices, then one batched ``np.linalg.solve``), so paper-relevant problem
sizes train in seconds.

:func:`als_epoch_seconds` is the matching GPU cost model for cuMF_ALS on 1
or 4 GPUs (Fig. 12).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.data.synthetic import DatasetSpec
from repro.gpusim.specs import GPUSpec
from repro.metrics.rmse import rmse

__all__ = ["ALSSolver", "als_epoch_seconds", "als_epoch_flops"]


class ALSSolver:
    """Exact ALS for the Eq. 2 objective.

    Regularization uses the weighted-λ convention (λ scaled by each entity's
    rating count), matching cuMF_ALS and the Zhou et al. formulation.
    """

    def __init__(
        self,
        k: int = 32,
        lam: float = 0.05,
        seed: int = 0,
        weighted_reg: bool = True,
        scale_factor: float = 1.0,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if lam < 0:
            raise ValueError(f"lam must be non-negative, got {lam}")
        self.k = k
        self.lam = lam
        self.seed = seed
        self.weighted_reg = weighted_reg
        self.scale_factor = scale_factor
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        self._indicator_cache: dict = {}

    # ------------------------------------------------------------------
    #: samples per scatter-accumulation chunk; bounds the (chunk, k²) outer-
    #: product intermediate to a few hundred MB at k=128
    GRAM_CHUNK = 200_000

    def _indicators(self, own_idx: np.ndarray, n_rows: int) -> list[sp.csr_matrix]:
        """Chunked row-indicator CSR matrices (cached per index array).

        ``S[u, t] = 1`` iff chunk-sample ``t`` belongs to row ``u``; the
        grouped Gram/rhs sums then become sparse-dense matmuls, which beat
        ``np.add.at`` scatter by ~3x and dominate the ALS epoch cost.
        """
        key = (id(own_idx), len(own_idx), n_rows)
        cached = self._indicator_cache.get(key)
        if cached is not None:
            return cached
        chunks: list[sp.csr_matrix] = []
        for lo in range(0, len(own_idx), self.GRAM_CHUNK):
            idx = own_idx[lo : lo + self.GRAM_CHUNK]
            chunks.append(
                sp.csr_matrix(
                    (
                        np.ones(len(idx), dtype=np.float32),
                        (idx, np.arange(len(idx))),
                    ),
                    shape=(n_rows, len(idx)),
                )
            )
        self._indicator_cache[key] = chunks
        return chunks

    def _solve_side(
        self,
        target: np.ndarray,
        fixed: np.ndarray,
        own_idx: np.ndarray,
        other_idx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """Solve the ridge normal equations for every row of ``target``.

        ``own_idx[t]`` is the target-row index of sample t, ``other_idx[t]``
        the fixed-side row. Rows with no samples keep their current value.
        """
        n_rows, k = target.shape
        fv = fixed[other_idx].astype(np.float32)
        weighted = vals.astype(np.float32)[:, None] * fv
        gram = np.zeros((n_rows, k * k), dtype=np.float32)
        rhs = np.zeros((n_rows, k), dtype=np.float32)
        for chunk, indicator in zip(
            range(0, len(own_idx), self.GRAM_CHUNK),
            self._indicators(own_idx, n_rows),
        ):
            sl = slice(chunk, chunk + indicator.shape[1])
            fc = fv[sl]
            outer = (fc[:, :, None] * fc[:, None, :]).reshape(len(fc), k * k)
            gram += indicator @ outer
            rhs += indicator @ weighted[sl]
        gram = gram.reshape(n_rows, k, k)
        counts = np.bincount(own_idx, minlength=n_rows).astype(np.float32)
        reg = self.lam * (counts if self.weighted_reg else np.ones_like(counts))
        reg = np.maximum(reg, self.lam)  # keep systems well-posed for empty rows
        gram += reg[:, None, None] * np.eye(k, dtype=np.float32)[None]
        solved = np.linalg.solve(gram, rhs[..., None])[..., 0]
        touched = counts > 0
        target[touched] = solved[touched]

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 10,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        p = self.model.p.astype(np.float32)
        q = self.model.q.astype(np.float32)
        history = TrainHistory()
        for epoch in range(epochs):
            self._solve_side(p, q, train.rows, train.cols, train.vals)
            self._solve_side(q, p, train.cols, train.rows, train.vals)
            self.model = FactorModel(p, q)
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, 0.0, train.nnz, None, te)
            if verbose:  # pragma: no cover
                print(f"ALS epoch {epoch + 1}: test={te}")
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)


# ----------------------------------------------------------------------
# performance model
# ----------------------------------------------------------------------
#: Fraction of peak flops the batched-solve ALS kernels sustain; cuMF_ALS
#: reports roughly half of peak on its fused kernels.
ALS_FLOPS_EFFICIENCY = 0.5


def als_epoch_flops(dataset: DatasetSpec, k: int | None = None) -> float:
    """The §7.4 complexity: ``O(N·k² + (m+n)·k³)`` flops per epoch."""
    k = k or dataset.k
    return 2.0 * dataset.n_train * k * k + (dataset.m + dataset.n) * k**3 / 3.0


def als_epoch_seconds(
    spec: GPUSpec,
    dataset: DatasetSpec,
    n_gpus: int = 1,
    k: int | None = None,
) -> float:
    """Modelled seconds per ALS epoch on ``n_gpus`` GPUs.

    ALS is compute-bound (its intensity is ~k/2 flops/byte, far above the
    machine balance), so the epoch time is flops over sustained flop rate;
    multi-GPU cuMF_ALS scales near-linearly on the solve phase but pays a
    per-epoch model broadcast on the link.
    """
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    k = k or dataset.k
    flops = als_epoch_flops(dataset, k)
    rate = spec.peak_gflops * 1e9 * ALS_FLOPS_EFFICIENCY * n_gpus
    compute = flops / rate
    if n_gpus == 1:
        return compute
    model_bytes = (dataset.m + dataset.n) * k * 4
    broadcast = spec.link.transfer_seconds(model_bytes)
    return compute + broadcast

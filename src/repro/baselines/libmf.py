"""LIBMF reimplementation: blocked shared-memory SGD with a global table.

LIBMF (Chin et al.) divides R into ``a x a`` blocks and runs ``s`` CPU
threads. An idle thread enters a critical section, scans the global table
for an *independent* block (no busy row, no busy column, preferring blocks
updated least often this epoch), claims it, then processes the block's
samples serially.

Numeric semantics here follow the scheduler exactly. Because in-flight
blocks are pairwise independent (Eq. 6), serializing "release → acquire →
process" per worker is numerically identical to the concurrent execution —
which also faithfully reproduces the Fig. 14 pathology: with ``a <= s`` the
only free block when a worker releases is the one it just held, so each
worker grinds its own diagonal block forever and the factors never mix
across blocks.

The throughput side (critical-section contention, cache-efficiency collapse
on large data) lives in :mod:`repro.gpusim`.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import sgd_serial_update
from repro.core.lr_schedule import ConstantSchedule, LearningRateSchedule
from repro.core.model import FactorModel
from repro.core.partition import GridPartition
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse
from repro.sched.table import GlobalScheduleTable

__all__ = ["LIBMFSolver"]


class LIBMFSolver:
    """Blocked SGD with LIBMF's global-table scheduling.

    Parameters
    ----------
    k:
        Feature dimension.
    threads:
        Concurrent workers ``s`` (the paper uses 40 of the platform's 48).
    a:
        Grid dimension; R is split into ``a x a`` blocks. The paper selects
        100 for Netflix after sweeping 40-160; Fig. 14 shows what happens
        when ``a`` approaches ``threads``.
    policy:
        ``"table"`` = LIBMF's O(a²) scan, ``"rowcol"`` = the O(a) GPU-port
        variant. Numerically identical; kept for the contention bench.
    """

    def __init__(
        self,
        k: int = 32,
        threads: int = 8,
        a: int = 32,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        policy: str = "table",
        seed: int = 0,
        scale_factor: float = 1.0,
    ) -> None:
        if k <= 0 or threads <= 0 or a <= 0:
            raise ValueError("k, threads, a must all be positive")
        self.k = k
        self.threads = threads
        self.a = a
        self.lam = lam
        self.schedule = schedule or ConstantSchedule(0.1)
        self.policy = policy
        self.seed = seed
        self.scale_factor = scale_factor
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        self.table: GlobalScheduleTable | None = None

    # ------------------------------------------------------------------
    def _run_epoch(
        self,
        model: FactorModel,
        partition: GridPartition,
        ratings: RatingMatrix,
        table: GlobalScheduleTable,
        rng: np.random.Generator,
        lr: float,
    ) -> int:
        """One epoch: grant blocks until N samples have been processed.

        Mirrors LIBMF: workers cycle release→acquire→process; an epoch ends
        when the number of processed samples reaches nnz. With balanced
        grids this visits each block about once.
        """
        s = min(self.threads, table.a)  # more workers than rows can never run
        # initial acquisition, in worker order
        held: dict[int, tuple[int, int]] = {}
        for w in range(s):
            blk = table.acquire(w)
            if blk is None:
                break
            held[w] = blk

        processed = 0
        target = ratings.nnz
        rows, cols, vals = ratings.rows, ratings.cols, ratings.vals
        while processed < target and held:
            w = int(rng.choice(sorted(held)))
            bi, bj = held[w]
            idx = partition.block(bi, bj).sample_index
            if len(idx):
                idx = idx[rng.permutation(len(idx))]
                sgd_serial_update(
                    model.p, model.q, rows[idx], cols[idx], vals[idx], lr, self.lam
                )
                processed += len(idx)
            table.release(w)
            del held[w]
            blk = table.acquire(w)
            if blk is not None:
                held[w] = blk
        # drain remaining holders
        for w in list(held):
            table.release(w)
        return processed

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 20,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = np.random.default_rng(self.seed)
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        partition = GridPartition(train, self.a, self.a)
        self.table = GlobalScheduleTable(self.a, policy=self.policy, seed=self.seed)
        history = TrainHistory()
        for epoch in range(epochs):
            lr = self.schedule(epoch)
            self.table.reset_epoch()
            n = self._run_epoch(self.model, partition, train, self.table, rng, lr)
            p, q = self.model.as_float32()
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, lr, n, None, te)
            if verbose:  # pragma: no cover
                print(f"LIBMF epoch {epoch + 1}: test={te}")
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

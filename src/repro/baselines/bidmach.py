"""BIDMach-style baseline: mini-batch SGD with ADAGRAD on the GPU.

BIDMach (Canny & Zhao) drives MF with *mini-batch* gradient steps — a batch
of samples is gathered, per-row/column gradients are **accumulated** (not
raced), and an ADAGRAD step is applied. Model parallelism comes from dense
batch algebra, which is why its update throughput is an order of magnitude
below cuMF_SGD's (Table 5: ~25-32M vs 257-710M updates/s): every batch pays
kernel-launch and reduction overheads that the lightweight one-block-per-
update kernel of cuMF_SGD avoids.

Numeric path: faithful mini-batch ADAGRAD (gradient accumulation via
``np.add.at``, element-wise adaptive rates). Performance path:
:func:`bidmach_throughput`, a batch-overhead cost model calibrated to
Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.data.synthetic import DatasetSpec
from repro.gpusim.specs import GPUSpec
from repro.metrics.flops import bytes_per_update
from repro.metrics.rmse import rmse

__all__ = ["BIDMachSGD", "bidmach_throughput"]


class BIDMachSGD:
    """Mini-batch ADAGRAD matrix factorization."""

    def __init__(
        self,
        k: int = 32,
        batch: int = 4096,
        lam: float = 0.05,
        base_rate: float = 0.2,
        eps: float = 1e-6,
        seed: int = 0,
        scale_factor: float = 1.0,
    ) -> None:
        if k <= 0 or batch <= 0:
            raise ValueError("k and batch must be positive")
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        self.k = k
        self.batch = batch
        self.lam = lam
        self.base_rate = base_rate
        self.eps = eps
        self.seed = seed
        self.scale_factor = scale_factor
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        self._accum_p: np.ndarray | None = None
        self._accum_q: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _minibatch_step(
        self,
        model: FactorModel,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """One accumulated ADAGRAD step on a batch."""
        p, q = model.p, model.q
        pu = p[rows].astype(np.float32)
        qv = q[cols].astype(np.float32)
        err = vals.astype(np.float32) - np.einsum("ij,ij->i", pu, qv)
        gp = err[:, None] * qv - self.lam * pu
        gq = err[:, None] * pu - self.lam * qv
        # accumulate per-row gradients (mini-batch semantics: sum, no races)
        grad_p = np.zeros_like(p, dtype=np.float32)
        grad_q = np.zeros_like(q, dtype=np.float32)
        np.add.at(grad_p, rows, gp)
        np.add.at(grad_q, cols, gq)
        counts_p = np.bincount(rows, minlength=p.shape[0]).astype(np.float32)
        counts_q = np.bincount(cols, minlength=q.shape[0]).astype(np.float32)
        np.maximum(counts_p, 1.0, out=counts_p)
        np.maximum(counts_q, 1.0, out=counts_q)
        grad_p /= counts_p[:, None]
        grad_q /= counts_q[:, None]
        assert self._accum_p is not None and self._accum_q is not None
        self._accum_p += grad_p**2
        self._accum_q += grad_q**2
        step_p = self.base_rate / np.sqrt(self._accum_p + self.eps)
        step_q = self.base_rate / np.sqrt(self._accum_q + self.eps)
        p += (step_p * grad_p).astype(p.dtype, copy=False)
        q += (step_q * grad_q).astype(q.dtype, copy=False)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 20,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = np.random.default_rng(self.seed)
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        self._accum_p = np.zeros_like(self.model.p, dtype=np.float32)
        self._accum_q = np.zeros_like(self.model.q, dtype=np.float32)
        history = TrainHistory()
        for epoch in range(epochs):
            order = rng.permutation(train.nnz)
            for lo in range(0, train.nnz, self.batch):
                sel = order[lo : lo + self.batch]
                self._minibatch_step(
                    self.model, train.rows[sel], train.cols[sel], train.vals[sel]
                )
            p, q = self.model.as_float32()
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, self.base_rate, train.nnz, None, te)
            if verbose:  # pragma: no cover
                print(f"BIDMach epoch {epoch + 1}: test={te}")
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)


# ----------------------------------------------------------------------
# performance model
# ----------------------------------------------------------------------
#: Fixed cost per mini-batch on the GPU: kernel launches for gather, GEMM-ish
#: gradient, two scatter-reductions, the ADAGRAD elementwise pass, and a
#: host-side sync. ~250 us on both generations — which is why BIDMach gains
#: so little from Pascal's bandwidth in Table 5 (launch-bound, not
#: bandwidth-bound).
BATCH_OVERHEAD_US = 250.0


def bidmach_throughput(
    spec: GPUSpec,
    dataset: DatasetSpec,
    batch: int = 10_000,
    k: int | None = None,
) -> float:
    """Modelled updates/s of BIDMach's mini-batch MF on one GPU.

    Per-batch time = fixed launch/reduction overhead + memory time of the
    batch's traffic. BIDMach stores fp32 and materializes gradient and
    accumulator arrays, so each sample moves ~3x the feature traffic of the
    fused cuMF_SGD kernel. Calibrated against Table 5's 25-32M updates/s.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    k = k or dataset.k
    traffic = 3.0 * bytes_per_update(k, feature_bytes=4)
    batch_seconds = BATCH_OVERHEAD_US * 1e-6 + batch * traffic / (
        spec.achieved_bw_gbs * 1e9
    )
    return batch / batch_seconds

"""Data substrate: sparse rating containers, synthetic data set generators,
train/test splitting, and the pre-/post-processing shuffles of Algorithm 1.

The paper evaluates on Netflix, Yahoo!Music, and Hugewiki (Table 2). Those
data sets are not redistributable, so :mod:`repro.data.synthetic` generates
low-rank-plus-noise problems with the same aspect ratios at laptop scale,
and :data:`repro.data.synthetic.PAPER_DATASETS` retains the paper-scale shape
parameters for the performance model.
"""

from repro.data.blockstore import BlockPrefetcher, BlockStore
from repro.data.container import RatingMatrix
from repro.data.io import load_coo, save_coo
from repro.data.preprocess import (
    BiasModel,
    ScaleNormalizer,
    compact_ids,
    filter_min_counts,
    remove_biases,
)
from repro.data.shuffle import model_shuffle, random_shuffle
from repro.data.split import train_test_split
from repro.data.synthetic import (
    PAPER_DATASETS,
    SCALED_DATASETS,
    DatasetSpec,
    SyntheticProblem,
    dataset_registry,
    make_synthetic,
    scaled_dataset,
)

__all__ = [
    "RatingMatrix",
    "BlockStore",
    "BlockPrefetcher",
    "load_coo",
    "save_coo",
    "ScaleNormalizer",
    "BiasModel",
    "remove_biases",
    "filter_min_counts",
    "compact_ids",
    "random_shuffle",
    "model_shuffle",
    "train_test_split",
    "DatasetSpec",
    "SyntheticProblem",
    "PAPER_DATASETS",
    "SCALED_DATASETS",
    "dataset_registry",
    "make_synthetic",
    "scaled_dataset",
]

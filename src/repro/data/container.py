"""Sparse rating-matrix container in COO format.

The paper stores the rating matrix ``R`` as COO triples — two ``int32``
indices plus one ``float32`` value, i.e. 12 bytes per sample — and both the
Flops/Byte characterization (Eq. 5) and the batch-Hogwild! locality argument
(Eq. 8) rely on that layout. :class:`RatingMatrix` mirrors it exactly with
three parallel NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["RatingMatrix", "SAMPLE_BYTES"]

#: Bytes per COO sample: two int32 coordinates + one float32 rating.
SAMPLE_BYTES = 12


@dataclass
class RatingMatrix:
    """A sparse ``m x n`` rating matrix with ``nnz`` observed samples.

    Parameters
    ----------
    rows, cols:
        ``int32`` coordinate arrays, each of length ``nnz``. ``rows[t]`` is
        the user index ``u`` and ``cols[t]`` the item index ``v`` of sample
        ``t``.
    vals:
        ``float32`` ratings, length ``nnz``.
    n_rows, n_cols:
        Logical matrix shape ``(m, n)``. May exceed ``max(rows)+1`` /
        ``max(cols)+1`` when some users or items have no training sample.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    n_rows: int
    n_cols: int
    name: str = field(default="unnamed")

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int32)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int32)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float32)
        if not (self.rows.ndim == self.cols.ndim == self.vals.ndim == 1):
            raise ValueError("rows, cols, vals must be 1-D arrays")
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError(
                "coordinate arrays disagree in length: "
                f"{len(self.rows)}, {len(self.cols)}, {len(self.vals)}"
            )
        self.n_rows = int(self.n_rows)
        self.n_cols = int(self.n_cols)
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise ValueError(f"invalid shape ({self.n_rows}, {self.n_cols})")
        if len(self.rows):
            rmin, rmax = int(self.rows.min()), int(self.rows.max())
            cmin, cmax = int(self.cols.min()), int(self.cols.max())
            if rmin < 0 or rmax >= self.n_rows:
                raise ValueError(f"row index {rmax if rmax >= self.n_rows else rmin} outside [0, {self.n_rows})")
            if cmin < 0 or cmax >= self.n_cols:
                raise ValueError(f"col index {cmax if cmax >= self.n_cols else cmin} outside [0, {self.n_cols})")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of observed samples ``N``."""
        return len(self.vals)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def density(self) -> float:
        """Fraction of the ``m x n`` grid that is observed."""
        return self.nnz / (self.n_rows * self.n_cols)

    @property
    def nbytes(self) -> int:
        """COO storage footprint (12 bytes per sample, as in the paper)."""
        return self.nnz * SAMPLE_BYTES

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatingMatrix(name={self.name!r}, shape={self.shape}, "
            f"nnz={self.nnz}, density={self.density:.2e})"
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, name: str = "dense") -> "RatingMatrix":
        """Build from a dense array, treating NaN entries as unobserved."""
        dense = np.asarray(dense, dtype=np.float32)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        mask = ~np.isnan(dense)
        rows, cols = np.nonzero(mask)
        return cls(
            rows=rows.astype(np.int32),
            cols=cols.astype(np.int32),
            vals=dense[rows, cols],
            n_rows=dense.shape[0],
            n_cols=dense.shape[1],
            name=name,
        )

    def to_dense(self) -> np.ndarray:
        """Densify; unobserved entries become NaN. For small matrices only."""
        out = np.full(self.shape, np.nan, dtype=np.float32)
        out[self.rows, self.cols] = self.vals
        return out

    def copy(self) -> "RatingMatrix":
        return RatingMatrix(
            rows=self.rows.copy(),
            cols=self.cols.copy(),
            vals=self.vals.copy(),
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # reordering and selection
    # ------------------------------------------------------------------
    def take(self, index: np.ndarray, name: str | None = None) -> "RatingMatrix":
        """Select samples by position, keeping the logical shape."""
        index = np.asarray(index)
        return RatingMatrix(
            rows=self.rows[index],
            cols=self.cols[index],
            vals=self.vals[index],
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            name=name or self.name,
        )

    def shuffled(self, rng: np.random.Generator) -> "RatingMatrix":
        """Return a sample-order-randomized copy (Algorithm 1, line 2)."""
        perm = rng.permutation(self.nnz)
        return self.take(perm)

    def sorted_by_block(self, row_edges: np.ndarray, col_edges: np.ndarray) -> "RatingMatrix":
        """Sort samples so that each grid block is contiguous in memory.

        This mirrors the preprocessing the paper's wavefront and multi-GPU
        schemes need: block ``(bi, bj)`` of the partition grid occupies one
        contiguous slice of the COO arrays, so it can be staged to a device
        with a single transfer.
        """
        bi = np.searchsorted(row_edges, self.rows, side="right") - 1
        bj = np.searchsorted(col_edges, self.cols, side="right") - 1
        order = np.lexsort((self.cols, self.rows, bj, bi))
        return self.take(order)

    def block_slice(self, row_lo: int, row_hi: int, col_lo: int, col_hi: int) -> np.ndarray:
        """Positions of samples falling in ``[row_lo,row_hi) x [col_lo,col_hi)``."""
        mask = (
            (self.rows >= row_lo)
            & (self.rows < row_hi)
            & (self.cols >= col_lo)
            & (self.cols < col_hi)
        )
        return np.nonzero(mask)[0]

    def batches(self, batch: int) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(rows, cols, vals)`` chunks of at most ``batch`` samples."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        for lo in range(0, self.nnz, batch):
            hi = min(lo + batch, self.nnz)
            yield self.rows[lo:hi], self.cols[lo:hi], self.vals[lo:hi]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def row_counts(self) -> np.ndarray:
        """Samples per row (user activity histogram)."""
        return np.bincount(self.rows, minlength=self.n_rows)

    def col_counts(self) -> np.ndarray:
        """Samples per column (item popularity histogram)."""
        return np.bincount(self.cols, minlength=self.n_cols)

    def mean_rating(self) -> float:
        if self.nnz == 0:
            return 0.0
        return float(self.vals.mean())

    def validate_disjoint(self, other: "RatingMatrix") -> bool:
        """True when no (row, col) coordinate appears in both matrices."""
        key_self = self.rows.astype(np.int64) * self.n_cols + self.cols
        key_other = other.rows.astype(np.int64) * other.n_cols + other.cols
        return not bool(np.intersect1d(key_self, key_other).size)

"""Binary COO I/O.

CuMF_SGD reads its inputs in a packed binary COO layout (the same 12-byte
records whose size appears in Eq. 5). We persist the same layout with a small
NumPy structured dtype plus an ``.npz`` convenience wrapper.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.container import RatingMatrix

__all__ = ["COO_DTYPE", "save_coo", "load_coo", "to_records", "from_records"]

#: Packed 12-byte COO record: (u: int32, v: int32, r: float32).
COO_DTYPE = np.dtype([("u", "<i4"), ("v", "<i4"), ("r", "<f4")])


def to_records(ratings: RatingMatrix) -> np.ndarray:
    """Pack a :class:`RatingMatrix` into the 12-byte record array."""
    rec = np.empty(ratings.nnz, dtype=COO_DTYPE)
    rec["u"] = ratings.rows
    rec["v"] = ratings.cols
    rec["r"] = ratings.vals
    return rec


def from_records(
    rec: np.ndarray, n_rows: int, n_cols: int, name: str = "loaded"
) -> RatingMatrix:
    """Unpack a record array produced by :func:`to_records`."""
    if rec.dtype != COO_DTYPE:
        raise ValueError(f"expected dtype {COO_DTYPE}, got {rec.dtype}")
    return RatingMatrix(
        rows=rec["u"].copy(),
        cols=rec["v"].copy(),
        vals=rec["r"].copy(),
        n_rows=n_rows,
        n_cols=n_cols,
        name=name,
    )


def save_coo(path: str | Path, ratings: RatingMatrix) -> None:
    """Save to ``.npz`` with the record array and the logical shape."""
    path = Path(path)
    np.savez_compressed(
        path,
        records=to_records(ratings),
        shape=np.array(ratings.shape, dtype=np.int64),
        name=np.array(ratings.name),
    )


def load_coo(path: str | Path) -> RatingMatrix:
    """Load a matrix saved by :func:`save_coo`."""
    path = Path(path)
    with np.load(path if path.suffix == ".npz" else path.with_suffix(".npz")) as z:
        shape = z["shape"]
        return from_records(
            z["records"], int(shape[0]), int(shape[1]), name=str(z["name"])
        )

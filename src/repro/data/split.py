"""Train/test splitting.

The paper's Netflix and Yahoo!Music come with a test set; for Hugewiki the
authors "randomly sample and extract out 1% of the data as the test set"
(§2.2). :func:`train_test_split` implements exactly that sampling.
"""

from __future__ import annotations

import numpy as np

from repro.data.container import RatingMatrix

__all__ = ["train_test_split"]


def train_test_split(
    ratings: RatingMatrix,
    test_fraction: float = 0.01,
    rng: np.random.Generator | None = None,
) -> tuple[RatingMatrix, RatingMatrix]:
    """Randomly hold out ``test_fraction`` of the samples as a test set.

    Returns ``(train, test)``. Both share the logical matrix shape, and their
    coordinate sets are disjoint by construction.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = rng or np.random.default_rng()
    n_test = int(round(ratings.nnz * test_fraction))
    if n_test == 0 or n_test == ratings.nnz:
        raise ValueError(
            f"test_fraction={test_fraction} leaves an empty split for nnz={ratings.nnz}"
        )
    perm = rng.permutation(ratings.nnz)
    test = ratings.take(perm[:n_test], name=f"{ratings.name}-test")
    train = ratings.take(perm[n_test:], name=f"{ratings.name}-train")
    return train, test

"""Rating preprocessing utilities.

Real MF deployments (and the paper's data sets) need a little hygiene before
training: Yahoo!Music ratings live on a 0-100 scale while Netflix uses 1-5
(hence the very different Table 3/4 numbers), ids are sparse and need
compaction, and global/user/item biases are usually removed so the factors
model the *residual* preference signal.

Everything here returns new objects; the input matrix is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.container import RatingMatrix

__all__ = [
    "ScaleNormalizer",
    "BiasModel",
    "remove_biases",
    "filter_min_counts",
    "compact_ids",
    "IdMapping",
]


@dataclass(frozen=True)
class ScaleNormalizer:
    """Affine map of ratings onto a target interval and back.

    The §4 half-precision trick relies on "parameter scaling" keeping values
    in fp16's comfortable range; normalizing a 0-100 Yahoo-style scale onto
    [0, 1] is exactly that.
    """

    offset: float
    scale: float

    @classmethod
    def fit(cls, ratings: RatingMatrix, lo: float = 0.0, hi: float = 1.0) -> "ScaleNormalizer":
        if ratings.nnz == 0:
            raise ValueError("cannot fit a normalizer on an empty rating set")
        if hi <= lo:
            raise ValueError(f"invalid target interval [{lo}, {hi}]")
        vmin = float(ratings.vals.min())
        vmax = float(ratings.vals.max())
        spread = max(vmax - vmin, 1e-12)
        scale = (hi - lo) / spread
        return cls(offset=lo - vmin * scale, scale=scale)

    def transform(self, ratings: RatingMatrix) -> RatingMatrix:
        out = ratings.copy()
        out.vals = (ratings.vals * np.float32(self.scale) + np.float32(self.offset)).astype(
            np.float32
        )
        return out

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to the original rating scale."""
        return (np.asarray(values, dtype=np.float32) - np.float32(self.offset)) / np.float32(
            self.scale
        )


@dataclass
class BiasModel:
    """Global + per-user + per-item additive biases."""

    global_mean: float
    user_bias: np.ndarray
    item_bias: np.ndarray

    def predict(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return (
            np.float32(self.global_mean)
            + self.user_bias[rows]
            + self.item_bias[cols]
        )

    def add_back(
        self, residual_predictions: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Final prediction = bias + factor residual."""
        return residual_predictions + self.predict(rows, cols)


def remove_biases(
    ratings: RatingMatrix, damping: float = 5.0
) -> tuple[RatingMatrix, BiasModel]:
    """Strip global/user/item means (with damping) from the ratings.

    ``damping`` shrinks biases of rarely-seen users/items toward zero
    (the usual Bayesian-damped mean), keeping cold entities stable.
    Returns the residual matrix and the fitted :class:`BiasModel`.
    """
    if ratings.nnz == 0:
        raise ValueError("cannot fit biases on an empty rating set")
    if damping < 0:
        raise ValueError(f"damping must be non-negative, got {damping}")
    mu = float(ratings.vals.mean())
    resid = ratings.vals.astype(np.float64) - mu  # lint: fp64-accumulator -- bias fitting accumulates sums over nnz samples

    user_sum = np.bincount(ratings.rows, weights=resid, minlength=ratings.n_rows)
    user_cnt = np.bincount(ratings.rows, minlength=ratings.n_rows)
    bu = (user_sum / (user_cnt + damping)).astype(np.float32)

    resid_u = resid - bu[ratings.rows]
    item_sum = np.bincount(ratings.cols, weights=resid_u, minlength=ratings.n_cols)
    item_cnt = np.bincount(ratings.cols, minlength=ratings.n_cols)
    bi = (item_sum / (item_cnt + damping)).astype(np.float32)

    out = ratings.copy()
    out.vals = (resid_u - bi[ratings.cols]).astype(np.float32)
    return out, BiasModel(global_mean=mu, user_bias=bu, item_bias=bi)


def filter_min_counts(
    ratings: RatingMatrix, min_user: int = 1, min_item: int = 1
) -> RatingMatrix:
    """Drop samples of users/items with too few ratings (one pass each).

    A single pass per side, like common data-prep pipelines; apply twice for
    a fixed point if needed.
    """
    if min_user < 1 or min_item < 1:
        raise ValueError("min counts must be >= 1")
    keep = np.ones(ratings.nnz, dtype=bool)
    user_cnt = ratings.row_counts()
    keep &= user_cnt[ratings.rows] >= min_user
    item_cnt = ratings.col_counts()
    keep &= item_cnt[ratings.cols] >= min_item
    return ratings.take(np.nonzero(keep)[0])


@dataclass(frozen=True)
class IdMapping:
    """Old-id -> dense-id maps produced by :func:`compact_ids`."""

    row_old_to_new: dict[int, int]
    col_old_to_new: dict[int, int]
    row_new_to_old: np.ndarray
    col_new_to_old: np.ndarray


def compact_ids(ratings: RatingMatrix) -> tuple[RatingMatrix, IdMapping]:
    """Relabel rows/columns densely (drop ids with no samples).

    Shrinks the feature matrices to the entities that actually occur —
    important at the paper's scale, where P is sized by ``m`` whether or not
    every user has training data.
    """
    row_ids = np.unique(ratings.rows)
    col_ids = np.unique(ratings.cols)
    row_map = np.full(ratings.n_rows, -1, dtype=np.int64)
    col_map = np.full(ratings.n_cols, -1, dtype=np.int64)
    row_map[row_ids] = np.arange(len(row_ids))
    col_map[col_ids] = np.arange(len(col_ids))
    out = RatingMatrix(
        rows=row_map[ratings.rows].astype(np.int32),
        cols=col_map[ratings.cols].astype(np.int32),
        vals=ratings.vals.copy(),
        n_rows=len(row_ids),
        n_cols=len(col_ids),
        name=f"{ratings.name}-compact",
    )
    mapping = IdMapping(
        row_old_to_new={int(o): int(row_map[o]) for o in row_ids},
        col_old_to_new={int(o): int(col_map[o]) for o in col_ids},
        row_new_to_old=row_ids.astype(np.int64),
        col_new_to_old=col_ids.astype(np.int64),
    )
    return out, mapping

"""Synthetic data set generators mirroring the paper's Table 2 workloads.

The real Netflix / Yahoo!Music / Hugewiki sets are 99M-3.07B samples and not
redistributable; this module generates **low-rank-plus-noise** problems with
the same aspect-ratio structure at laptop scale. Because the ground truth is
a genuine rank-``k_true`` factorization, test RMSE has a meaningful floor
(the noise level) and convergence curves behave like the paper's.

Two registries are exposed:

* :data:`PAPER_DATASETS` — the exact Table 2 shape parameters, consumed by the
  :mod:`repro.gpusim` performance model (throughput experiments use the
  paper-scale ``N``, ``m``, ``n``, ``k``).
* :data:`SCALED_DATASETS` — the laptop-scale equivalents used by the numeric
  convergence experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.data.container import RatingMatrix
from repro.data.split import train_test_split

__all__ = [
    "DatasetSpec",
    "SyntheticProblem",
    "PAPER_DATASETS",
    "SCALED_DATASETS",
    "dataset_registry",
    "make_synthetic",
    "scaled_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of an MF workload (one column of the paper's Table 2)."""

    name: str
    m: int
    n: int
    k: int
    n_train: int
    n_test: int
    #: RMSE target used by Table 4 ("reasonable RMSE" per data set).
    target_rmse: float = 0.0
    #: λ, α, β from Table 3 (regularization and learning-rate schedule).
    lam: float = 0.05
    alpha: float = 0.08
    beta: float = 0.3

    @property
    def n_samples(self) -> int:
        return self.n_train + self.n_test

    @property
    def density(self) -> float:
        return self.n_samples / (self.m * self.n)

    @property
    def coo_bytes(self) -> int:
        """COO storage of the train set (12 bytes/sample)."""
        return self.n_train * 12

    def feature_bytes(self, half_precision: bool = False) -> int:
        """Storage of P (m x k) + Q (k x n) feature matrices."""
        elem = 2 if half_precision else 4
        return (self.m + self.n) * self.k * elem


#: Paper-scale workloads (Table 2) with Table 3 hyper-parameters and the
#: Table 4 convergence targets (0.92 / 22.0 / 0.52).
PAPER_DATASETS: Mapping[str, DatasetSpec] = {
    "netflix": DatasetSpec(
        name="netflix",
        m=480_190,
        n=17_771,
        k=128,
        n_train=99_072_112,
        n_test=1_408_395,
        target_rmse=0.92,
        lam=0.05,
        alpha=0.08,
        beta=0.3,
    ),
    "yahoo": DatasetSpec(
        name="yahoo",
        m=1_000_990,
        n=624_961,
        k=128,
        n_train=252_800_275,
        n_test=4_003_960,
        target_rmse=22.0,
        lam=1.0,
        alpha=0.08,
        beta=0.2,
    ),
    "hugewiki": DatasetSpec(
        name="hugewiki",
        m=50_082_604,
        n=39_781,
        k=128,
        n_train=3_069_817_980,
        n_test=31_327_899,
        target_rmse=0.52,
        lam=0.03,
        alpha=0.08,
        beta=0.3,
    ),
}

#: Laptop-scale equivalents preserving the aspect-ratio ordering and the
#: "n is small" property that drives the paper's multi-GPU convergence limits
#: (§7.5-7.7). The Eq. 9 decay β is retuned to 0.05: Table 3's β=0.2-0.3 is
#: calibrated for 99M-3B-sample epochs, and at laptop scale it freezes the
#: learning rate long before convergence.
SCALED_DATASETS: Mapping[str, DatasetSpec] = {
    "netflix-syn": DatasetSpec(
        name="netflix-syn",
        m=4_800,
        n=1_780,
        k=32,
        n_train=400_000,
        n_test=20_000,
        target_rmse=0.60,
        lam=0.05,
        alpha=0.08,
        beta=0.05,
    ),
    "yahoo-syn": DatasetSpec(
        name="yahoo-syn",
        m=5_000,
        n=3_120,
        k=32,
        n_train=500_000,
        n_test=25_000,
        target_rmse=0.60,
        lam=0.05,
        alpha=0.08,
        beta=0.05,
    ),
    "hugewiki-syn": DatasetSpec(
        name="hugewiki-syn",
        m=50_000,
        n=2_560,
        k=32,
        n_train=1_500_000,
        n_test=50_000,
        target_rmse=0.60,
        lam=0.03,
        alpha=0.08,
        beta=0.05,
    ),
}


def dataset_registry() -> dict[str, DatasetSpec]:
    """All known specs, paper-scale and scaled, keyed by name."""
    reg: dict[str, DatasetSpec] = {}
    reg.update(PAPER_DATASETS)
    reg.update(SCALED_DATASETS)
    return reg


@dataclass
class SyntheticProblem:
    """A generated MF problem: train/test split plus the ground truth."""

    spec: DatasetSpec
    train: RatingMatrix
    test: RatingMatrix
    p_true: np.ndarray
    q_true: np.ndarray
    noise_sigma: float

    @property
    def rmse_floor(self) -> float:
        """Best achievable test RMSE ≈ the injected noise level."""
        return self.noise_sigma


def _sample_coordinates(
    rng: np.random.Generator, m: int, n: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` unique (row, col) coordinates uniformly without replacement.

    Rejection-free for the sparse regimes we target: sample 64-bit flat keys,
    unique them, and top up until enough. Density in all registered specs is
    well below 10%, so a couple of rounds suffice.
    """
    total = m * n
    if count > total:
        raise ValueError(f"cannot draw {count} unique cells from a {m}x{n} grid")
    keys = np.empty(0, dtype=np.int64)
    want = count
    while len(keys) < count:
        draw = rng.integers(0, total, size=int(want * 1.2) + 16, dtype=np.int64)
        keys = np.unique(np.concatenate([keys, draw]))
        want = count - len(keys)
    keys = rng.permutation(keys)[:count]
    return (keys // n).astype(np.int32), (keys % n).astype(np.int32)


def make_synthetic(
    spec: DatasetSpec,
    seed: int = 0,
    k_true: int | None = None,
    noise_sigma: float = 0.5,
    rating_scale: float = 1.0,
) -> SyntheticProblem:
    """Generate a low-rank-plus-noise problem matching ``spec``'s shape.

    ``R[u, v] = p_true[u] . q_true[v] + eps``, with ``eps ~ N(0, noise_sigma)``.
    Factor entries are scaled so the clean signal has variance
    ``rating_scale² / k_true`` — O(1) magnitudes that keep the paper's
    Table 3 learning rates in a sane regime.
    """
    rng = np.random.default_rng(seed)
    k_true = k_true if k_true is not None else max(4, spec.k // 4)

    scale = rating_scale / np.sqrt(k_true)
    p_true = rng.normal(0.0, scale, size=(spec.m, k_true)).astype(np.float32)
    q_true = rng.normal(0.0, scale, size=(spec.n, k_true)).astype(np.float32)

    rows, cols = _sample_coordinates(rng, spec.m, spec.n, spec.n_samples)
    clean = np.einsum("ij,ij->i", p_true[rows], q_true[cols])
    vals = (clean + rng.normal(0.0, noise_sigma, size=len(rows))).astype(np.float32)

    full = RatingMatrix(rows, cols, vals, spec.m, spec.n, name=spec.name)
    train, test = train_test_split(full, test_fraction=spec.n_test / spec.n_samples, rng=rng)
    train.name = f"{spec.name}-train"
    test.name = f"{spec.name}-test"
    return SyntheticProblem(
        spec=spec,
        train=train,
        test=test,
        p_true=p_true,
        q_true=q_true,
        noise_sigma=noise_sigma,
    )


def scaled_dataset(name: str, seed: int = 0, **kwargs) -> SyntheticProblem:
    """Generate one of the registered laptop-scale data sets by name."""
    if name not in SCALED_DATASETS:
        raise KeyError(
            f"unknown scaled data set {name!r}; choose from {sorted(SCALED_DATASETS)}"
        )
    return make_synthetic(SCALED_DATASETS[name], seed=seed, **kwargs)

"""Pre- and post-processing shuffles from Algorithm 1.

* ``random_shuffle(R)`` (line 2) randomizes sample order in memory. This is
  what makes batch-Hogwild! correct: a worker reads ``f`` *consecutive*
  samples for cache locality, yet their (u, v) coordinates remain random.
* ``model_shuffle(P, Q)`` (line 15) undoes any row/column permutation applied
  during training so the saved model lines up with the original ids.
"""

from __future__ import annotations

import numpy as np

from repro.data.container import RatingMatrix

__all__ = ["random_shuffle", "model_shuffle", "make_permutation", "invert_permutation"]


def random_shuffle(ratings: RatingMatrix, seed: int = 0) -> RatingMatrix:
    """Return a copy of ``ratings`` with samples in uniformly random order."""
    rng = np.random.default_rng(seed)
    return ratings.shuffled(rng)


def make_permutation(size: int, rng: np.random.Generator) -> np.ndarray:
    """A random permutation of ``range(size)`` as int32."""
    return rng.permutation(size).astype(np.int32)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[i]] == i``."""
    perm = np.asarray(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=perm.dtype)
    return inv


def model_shuffle(
    p: np.ndarray,
    q: np.ndarray,
    row_perm: np.ndarray | None = None,
    col_perm: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Undo training-time row/column permutations on the feature matrices.

    If training relabelled user ``u`` as ``row_perm[u]``, the trained
    ``P[row_perm[u]]`` must be written back to slot ``u``. Passing ``None``
    leaves that side untouched.
    """
    p_out = p if row_perm is None else p[np.asarray(row_perm)]
    q_out = q if col_perm is None else q[np.asarray(col_perm)]
    return p_out, q_out

"""Out-of-core block store: the paper's i×j partition persisted on disk.

For rating matrices larger than working memory, §6.1 divides R into an
``i x j`` grid and stages one block at a time to the device while the next
block's transfer overlaps the current block's compute (§6.2, Fig. 8b — the
block-based out-of-core approach also used by Bhavana & Padmanabhan,
arXiv:2304.13724). This module is the host-side analogue:

* :class:`BlockStore` partitions a :class:`~repro.data.container.RatingMatrix`
  via :class:`~repro.core.partition.GridPartition` and persists every block
  as one ``.npy`` shard of packed 12-byte COO records
  (:data:`~repro.data.io.COO_DTYPE` — the exact Eq. 5 layout), plus a JSON
  manifest. Shards load back as zero-copy memory maps, so any number of
  worker processes can read them concurrently through the page cache.
* :class:`BlockPrefetcher` is the double-buffered staging pipeline: a
  background thread loads shard ``b+1`` into a preallocated staging buffer
  while the consumer computes on shard ``b`` — the same overlap the
  three-stream recurrence in :mod:`repro.gpusim.streams` models, with the
  disk read playing the H2D copy. Depth 2 mirrors the paper's
  two-resident-blocks choice.

Observability: :class:`PrefetchStats` counts blocks/bytes staged, load
seconds, and consumer stall seconds, and publishes them to the ambient
registry under the ``repro.stage.*`` manifest names.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.partition import GridPartition
from repro.data.container import RatingMatrix, SAMPLE_BYTES
from repro.data.io import COO_DTYPE

__all__ = ["BlockStore", "StoredBlock", "BlockPrefetcher", "PrefetchStats"]

_META_NAME = "blockstore.json"
_STORE_VERSION = 1

#: Shared names the prefetch loader thread may legitimately mutate, audited
#: by the ``race-shared-write`` lint pass: ``stats`` fields are written by
#: the loader and only read by the consumer after join(); ``ready`` /
#: ``slots`` are internally locked :class:`queue.Queue` hand-off channels;
#: ``telemetry`` buffers span records via GIL-atomic list appends and is
#: only flushed after the loader joins.
SHARED_WRITE_OK = ("stats", "ready", "slots", "telemetry")

#: Consumer stalls shorter than this render as noise, not signal — they
#: still accumulate into :attr:`PrefetchStats.wait_seconds`, but no
#: ``stage.stall`` span is emitted for them.
STALL_SPAN_MIN_S = 1e-4


@dataclass(frozen=True)
class StoredBlock:
    """Manifest view of one persisted grid block (mirror of
    :class:`~repro.core.partition.BlockView`, without the sample indices)."""

    bi: int
    bj: int
    nnz: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_hi - self.row_lo, self.col_hi - self.col_lo)

    def coo_bytes(self) -> int:
        """Bytes to stage this block's samples (12 bytes per COO record)."""
        return self.nnz * SAMPLE_BYTES

    def feature_bytes(self, k: int, feature_bytes: int = 4) -> int:
        """Bytes of the P and Q segments this block touches."""
        rows = self.row_hi - self.row_lo
        cols = self.col_hi - self.col_lo
        return (rows + cols) * k * feature_bytes


class BlockStore:
    """An ``i x j`` grid of a rating matrix persisted as mmap-able shards.

    Layout under ``root``::

        blockstore.json            # manifest: shape, grid, edges, per-block nnz
        block_<bi>_<bj>.npy        # packed COO_DTYPE records of block (bi, bj)

    Shards are written once by :meth:`create` and never mutated; readers
    attach with :meth:`open` and map shards read-only, so concurrent worker
    processes share one page-cache copy.
    """

    def __init__(self, root: str | Path, meta: dict) -> None:
        self.root = Path(root)
        if meta.get("version") != _STORE_VERSION:
            raise ValueError(
                f"unsupported blockstore version {meta.get('version')!r} "
                f"(expected {_STORE_VERSION})"
            )
        self.meta = meta
        self.i = int(meta["i"])
        self.j = int(meta["j"])
        self.n_rows = int(meta["n_rows"])
        self.n_cols = int(meta["n_cols"])
        self.nnz = int(meta["nnz"])
        self.name = str(meta.get("name", "blockstore"))
        self.row_edges = np.asarray(meta["row_edges"], dtype=np.int64)
        self.col_edges = np.asarray(meta["col_edges"], dtype=np.int64)
        self.block_nnz = np.asarray(meta["block_nnz"], dtype=np.int64)
        if self.block_nnz.shape != (self.i, self.j):
            raise ValueError(
                f"manifest block_nnz shape {self.block_nnz.shape} does not "
                f"match the {self.i}x{self.j} grid"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        ratings: RatingMatrix,
        i: int,
        j: int,
        root: str | Path,
        shuffle_within: bool = True,
        seed: int = 0,
    ) -> "BlockStore":
        """Partition ``ratings`` into an ``i x j`` grid and persist it.

        Each block's samples are written in randomized order
        (``shuffle_within``, one deterministic draw per block from ``seed``)
        so a consumer can replay a shard front-to-back and still get the
        shuffled access pattern batch-Hogwild! assumes (Algorithm 1 line 2
        moved into preprocessing, exactly as the paper does).
        """
        part = GridPartition(ratings, i, j)
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        rng = np.random.default_rng(seed)
        block_nnz = np.zeros((i, j), dtype=np.int64)
        for bi in range(i):
            for bj in range(j):
                view = part.block(bi, bj)
                idx = view.sample_index
                if shuffle_within and len(idx):
                    idx = idx[rng.permutation(len(idx))]
                rec = np.empty(len(idx), dtype=COO_DTYPE)
                rec["u"] = ratings.rows[idx]
                rec["v"] = ratings.cols[idx]
                rec["r"] = ratings.vals[idx]
                np.save(cls._block_path(root, bi, bj), rec, allow_pickle=False)
                block_nnz[bi, bj] = len(idx)
        meta = {
            "version": _STORE_VERSION,
            "name": ratings.name,
            "i": i,
            "j": j,
            "n_rows": ratings.n_rows,
            "n_cols": ratings.n_cols,
            "nnz": ratings.nnz,
            "seed": seed,
            "shuffle_within": bool(shuffle_within),
            "row_edges": part.row_edges.tolist(),
            "col_edges": part.col_edges.tolist(),
            "block_nnz": block_nnz.tolist(),
        }
        (root / _META_NAME).write_text(json.dumps(meta, indent=2) + "\n")
        return cls(root, meta)

    @classmethod
    def open(cls, root: str | Path) -> "BlockStore":
        """Attach to an existing store by reading its manifest."""
        root = Path(root)
        meta_path = root / _META_NAME
        if not meta_path.exists():
            raise FileNotFoundError(f"no blockstore manifest at {meta_path}")
        return cls(root, json.loads(meta_path.read_text()))

    @staticmethod
    def _block_path(root: Path, bi: int, bj: int) -> Path:
        return root / f"block_{bi:04d}_{bj:04d}.npy"

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self.i * self.j

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def max_block_nnz(self) -> int:
        """Largest shard, i.e. the staging-buffer capacity a consumer needs."""
        return int(self.block_nnz.max()) if self.n_blocks else 0

    def path(self, bi: int, bj: int) -> Path:
        self._check_coords(bi, bj)
        return self._block_path(self.root, bi, bj)

    def view(self, bi: int, bj: int) -> StoredBlock:
        """Manifest metadata of one block (no I/O)."""
        self._check_coords(bi, bj)
        return StoredBlock(
            bi=bi,
            bj=bj,
            nnz=int(self.block_nnz[bi, bj]),
            row_lo=int(self.row_edges[bi]),
            row_hi=int(self.row_edges[bi + 1]),
            col_lo=int(self.col_edges[bj]),
            col_hi=int(self.col_edges[bj + 1]),
        )

    def blocks(self) -> Iterator[tuple[int, int]]:
        """All grid coordinates in row-major order."""
        for bi in range(self.i):
            for bj in range(self.j):
                yield (bi, bj)

    def load(self, bi: int, bj: int, mmap: bool = True) -> np.ndarray:
        """One shard's COO records — a read-only memory map by default.

        Under an ambient sanitizer (``--sanitize races``/``all``) every
        mapping is entered in the lifecycle ledger, with the release
        observed through a ``weakref.finalize`` on the returned array —
        CPython refcounting makes the release deterministic at the end of
        :meth:`load_into`, so an un-released mapping at finalize time is a
        genuine pin (``lifecycle-mmap-leak``).
        """
        path = self.path(bi, bj)
        if not mmap:
            return np.load(path, allow_pickle=False)
        rec = np.load(path, mmap_mode="r", allow_pickle=False)
        from repro.san.core import active_sanitizer

        san = active_sanitizer()
        if san is not None and san.check_lifecycle:
            import weakref

            tracker = san.lifecycle
            tracker.note_mmap_open(str(path))
            weakref.finalize(rec, tracker.note_mmap_release, str(path))
        return rec

    def load_into(self, bi: int, bj: int, out: np.ndarray) -> int:
        """Stage one shard into a preallocated record buffer; returns nnz.

        This is the "transfer": the shard is mapped and copied into ``out``,
        forcing the page reads *now* (a plain mmap would defer I/O to page
        faults in the middle of compute, defeating the §6.2 overlap).
        """
        rec = self.load(bi, bj, mmap=True)
        n = len(rec)
        if n > len(out):
            raise ValueError(
                f"block ({bi}, {bj}) holds {n} records but the staging "
                f"buffer only {len(out)}"
            )
        np.copyto(out[:n], rec)
        return n

    def reassemble(self) -> RatingMatrix:
        """Concatenate every shard back into one in-memory matrix.

        Sample *order* is the store's block-major (shuffled-within) order,
        not the source order; the sample multiset is exactly the original.
        """
        parts = [self.load(bi, bj, mmap=False) for bi, bj in self.blocks()]
        rec = (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=COO_DTYPE)
        )
        return RatingMatrix(
            rows=rec["u"].copy(),
            cols=rec["v"].copy(),
            vals=rec["r"].copy(),
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # work assignment
    # ------------------------------------------------------------------
    def assign(self, n_workers: int) -> list[list[tuple[int, int]]]:
        """Static block-to-worker assignment, balanced by nnz.

        Deterministic longest-processing-time: blocks sorted by descending
        nnz (ties broken by coordinates) each go to the currently lightest
        worker. Every block lands on exactly one worker; workers own their
        lists for every epoch (static sharding, like the batch-Hogwild! lane
        shards — races across workers on shared P/Q are the point).
        """
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        order = sorted(
            self.blocks(), key=lambda b: (-int(self.block_nnz[b[0], b[1]]), b)
        )
        loads = [0] * n_workers
        out: list[list[tuple[int, int]]] = [[] for _ in range(n_workers)]
        for blk in order:
            w = loads.index(min(loads))
            out[w].append(blk)
            loads[w] += int(self.block_nnz[blk[0], blk[1]])
        return out

    def _check_coords(self, bi: int, bj: int) -> None:
        if not (0 <= bi < self.i and 0 <= bj < self.j):
            raise IndexError(
                f"block ({bi}, {bj}) outside ({self.i}, {self.j}) grid"
            )


# ---------------------------------------------------------------------------
# double-buffered prefetch pipeline
# ---------------------------------------------------------------------------
@dataclass
class PrefetchStats:
    """Staging-pipeline counters, published as ``repro.stage.*``.

    ``blocks_loaded`` / ``bytes_loaded`` are loader-side (what crossed the
    "wire"); ``load_seconds`` is time the loader spent inside shard reads;
    ``wait_seconds`` is consumer-side stall — time compute sat idle waiting
    for a shard, i.e. the exposed (un-overlapped) transfer residue that
    :attr:`repro.gpusim.streams.PipelineResult.exposed_transfer` models.
    """

    blocks_loaded: int = 0
    bytes_loaded: int = 0
    load_seconds: float = 0.0
    wait_seconds: float = 0.0

    def merge(self, other: "PrefetchStats") -> None:
        self.blocks_loaded += other.blocks_loaded
        self.bytes_loaded += other.bytes_loaded
        self.load_seconds += other.load_seconds
        self.wait_seconds += other.wait_seconds

    def as_dict(self) -> dict:
        return {
            "blocks_loaded": self.blocks_loaded,
            "bytes_loaded": self.bytes_loaded,
            "load_seconds": self.load_seconds,
            "wait_seconds": self.wait_seconds,
        }

    def publish(self, labels: dict | None = None) -> None:
        """Accumulate into the ambient registry (no-op when none active)."""
        from repro.obs.context import active_registry
        from repro.obs.registry import M

        registry = active_registry()
        if registry is None:
            return
        registry.counter(M.STAGE_BLOCKS_LOADED, labels).inc(self.blocks_loaded)
        registry.counter(M.STAGE_BYTES_LOADED, labels).inc(self.bytes_loaded)
        registry.counter(M.STAGE_LOAD_SECONDS, labels).inc(self.load_seconds)
        registry.counter(M.STAGE_PREFETCH_WAIT_SECONDS, labels).inc(
            self.wait_seconds
        )


class _LoaderFailure:
    """Sentinel carrying a loader-thread exception to the consumer."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class BlockPrefetcher:
    """Double-buffered shard staging: load block ``b+1`` while ``b`` computes.

    ``depth`` staging buffers (default 2 — one computing, one arriving, the
    paper's two-resident-blocks pipeline) are preallocated to the store's
    largest shard. A background loader thread fills free buffers in sequence
    order; :meth:`__iter__` yields ``((bi, bj), records)`` views in the same
    order, blocking only when the loader is behind (the stall is charged to
    :attr:`PrefetchStats.wait_seconds`). The yielded record array is a view
    into a staging buffer, valid until the next iteration step.

    ``telemetry`` (a :class:`repro.obs.relay.WorkerTelemetry`) additionally
    records one ``stage.load`` span per shard read (loader side) and a
    ``stage.stall`` span whenever the consumer blocks longer than
    :data:`STALL_SPAN_MIN_S` — the visible form of the exposed-transfer
    residue. Both sides append to the telemetry buffer under the GIL, and
    the caller only flushes after iteration completes (the loader is joined
    by then), so the hand-off needs no extra locking.

    One prefetcher serves one consumer; create one per worker.
    """

    def __init__(
        self,
        store: BlockStore,
        sequence: Iterable[tuple[int, int]],
        depth: int = 2,
        telemetry=None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self.store = store
        self.sequence = list(sequence)
        self.depth = depth
        self.telemetry = telemetry
        capacity = max(store.max_block_nnz, 1)
        self._buffers = [
            np.empty(capacity, dtype=COO_DTYPE) for _ in range(depth)
        ]
        self.stats = PrefetchStats()

    def __iter__(self) -> Iterator[tuple[tuple[int, int], np.ndarray]]:
        from repro.san.core import active_sanitizer

        san = active_sanitizer()
        sentry = san.numeric if san is not None and san.check_numeric else None
        stats = self.stats
        telemetry = self.telemetry
        slots: queue.Queue = queue.Queue()
        ready: queue.Queue = queue.Queue()
        stop = threading.Event()
        for slot in range(self.depth):
            slots.put(slot)
        store, sequence, buffers = self.store, self.sequence, self._buffers

        def loader() -> None:
            try:
                for bi, bj in sequence:
                    slot = slots.get()
                    if stop.is_set() or slot < 0:
                        return
                    t0 = time.perf_counter()
                    n = store.load_into(bi, bj, buffers[slot])
                    load_s = time.perf_counter() - t0
                    stats.load_seconds += load_s
                    stats.blocks_loaded += 1
                    stats.bytes_loaded += n * SAMPLE_BYTES
                    if telemetry is not None:
                        telemetry.add_span(
                            f"stage.load b({bi},{bj})",
                            t0 - telemetry.origin, load_s, cat="stage",
                            args={"bytes": n * SAMPLE_BYTES},
                        )
                    ready.put((slot, (bi, bj), n))
            except BaseException as exc:  # pragma: no cover - defensive
                ready.put(_LoaderFailure(exc))

        thread = threading.Thread(
            target=loader, name="block-prefetch", daemon=True
        )
        thread.start()
        try:
            for _ in range(len(self.sequence)):
                t0 = time.perf_counter()
                item = ready.get()
                wait_s = time.perf_counter() - t0
                stats.wait_seconds += wait_s
                if telemetry is not None and wait_s >= STALL_SPAN_MIN_S:
                    telemetry.add_span(
                        "stage.stall", t0 - telemetry.origin, wait_s,
                        cat="stage",
                    )
                if isinstance(item, _LoaderFailure):
                    raise item.exc
                slot, coords, n = item
                if sentry is not None:
                    # verify the staged ratings are finite before compute
                    # consumes them (catches corrupt shards at the source)
                    sentry.check_block(buffers[slot]["r"][:n], coords)
                yield coords, buffers[slot][:n]
                slots.put(slot)
            thread.join()
        finally:
            stop.set()
            slots.put(-1)  # unblock a loader waiting for a free buffer
            thread.join(timeout=5.0)

"""Typed sanitizer findings and the error reprosan raises.

Leaf module: every other ``repro.san`` module imports from here, nothing
here imports back.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["SanFinding", "SanitizerError"]


@dataclass(frozen=True)
class SanFinding:
    """One sanitizer finding, pinned to its wave coordinates.

    ``kind`` is a stable identifier (``race-overlap``, ``race-ownership``,
    ``race-double-execution``, ``race-segment-conflict``,
    ``numeric-nonfinite``, ``numeric-overflow``, ``numeric-fp64-leak``,
    ``lifecycle-shm-leak``, ``lifecycle-mmap-leak``); ``worker`` / ``epoch``
    / ``wave`` locate the offending execution point where one exists
    (lifecycle findings have none).
    """

    kind: str
    message: str
    worker: int | None = None
    epoch: int | None = None
    wave: int | None = None

    def as_dict(self) -> dict:
        return asdict(self)

    def format(self) -> str:
        where = ", ".join(
            f"{k}={v}"
            for k, v in (
                ("worker", self.worker),
                ("epoch", self.epoch),
                ("wave", self.wave),
            )
            if v is not None
        )
        loc = f" [{where}]" if where else ""
        return f"{self.kind}{loc}: {self.message}"


class SanitizerError(RuntimeError):
    """A sanitizer check failed hard (numeric checks raise immediately).

    Carries the same coordinates as :class:`SanFinding` so callers —
    including the :class:`~repro.parallel.procs.ProcessHogwild` parent
    re-raising a worker-side failure — can report exactly which worker /
    epoch / wave tripped the check.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        *,
        worker: int | None = None,
        epoch: int | None = None,
        wave: int | None = None,
    ) -> None:
        self.kind = kind
        self.worker = worker
        self.epoch = epoch
        self.wave = wave
        super().__init__(
            SanFinding(
                kind=kind, message=message,
                worker=worker, epoch=epoch, wave=wave,
            ).format()
        )

    @property
    def finding(self) -> SanFinding:
        # args[0] is the formatted message; reconstruct the plain one
        msg = str(self.args[0]).split(": ", 1)[-1]
        return SanFinding(
            kind=self.kind, message=msg,
            worker=self.worker, epoch=self.epoch, wave=self.wave,
        )

    def as_dict(self) -> dict:
        return self.finding.as_dict()

"""Sanitizer report: per-worker race-rate table + findings, StallReport-style.

Serializes (``as_dict``/``from_dict``), validates (``validate_dict`` — used
by the benchmark documents that embed it), publishes the ``repro.san.*``
metric family, and pretty-prints for the CLI.
"""

from __future__ import annotations

from typing import Mapping

from repro.san.errors import SanFinding
from repro.san.races import RaceStats, WorkerRaceStats

__all__ = ["SanReport"]


class SanReport:
    """Outcome of one sanitized run: findings + race/numeric/lifecycle stats."""

    def __init__(
        self,
        mode: str,
        findings: list,
        race_stats: RaceStats,
        numeric: dict | None = None,
        lifecycle: dict | None = None,
    ) -> None:
        self.mode = mode
        self.findings = list(findings)
        self.race_stats = race_stats
        self.numeric = dict(numeric or {})
        self.lifecycle = dict(lifecycle or {})

    @property
    def clean(self) -> bool:
        return not self.findings

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "clean": self.clean,
            "findings": [f.as_dict() for f in self.findings],
            "race": self.race_stats.as_dict(),
            "numeric": self.numeric,
            "lifecycle": self.lifecycle,
        }

    @classmethod
    def from_dict(cls, state: Mapping) -> "SanReport":
        race = state.get("race", {})
        stats = RaceStats(
            workers=[
                WorkerRaceStats(
                    wid=int(w["wid"]),
                    samples=int(w["samples"]),
                    calls=int(w.get("calls", 0)),
                    row_raced=int(w.get("row_raced", 0)),
                    col_raced=int(w.get("col_raced", 0)),
                    raced=int(w.get("raced", 0)),
                )
                for w in race.get("workers", [])
            ],
            epochs=int(race.get("epochs", 0)),
            waves=int(race.get("waves", 0)),
        )
        findings = [
            SanFinding(
                kind=str(f["kind"]), message=str(f["message"]),
                worker=f.get("worker"), epoch=f.get("epoch"),
                wave=f.get("wave"),
            )
            for f in state.get("findings", [])
        ]
        return cls(
            str(state["mode"]), findings, stats,
            numeric=state.get("numeric"), lifecycle=state.get("lifecycle"),
        )

    @staticmethod
    def validate_dict(state: Mapping) -> None:
        """Schema + invariant check for an embedded report (benchmarks)."""
        for key in ("mode", "clean", "findings", "race"):
            if key not in state:
                raise ValueError(f"sanitizer report missing key {key!r}")
        if state["clean"] is not (len(state["findings"]) == 0):
            raise ValueError(
                "sanitizer report 'clean' flag disagrees with its findings"
            )
        race = state["race"]
        for key in ("samples", "raced", "race_rate", "workers"):
            if key not in race:
                raise ValueError(f"sanitizer race block missing {key!r}")
        rate = float(race["race_rate"])
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"race_rate {rate} outside [0, 1]")
        if int(race["raced"]) > int(race["samples"]):
            raise ValueError("raced samples exceed total samples")

    # -- publication ----------------------------------------------------
    def publish(self, registry=None) -> None:
        """Emit ``repro.san.*`` into ``registry`` (default: the ambient
        one; no-op when none is active)."""
        from repro.obs.context import active_registry
        from repro.obs.registry import M

        if registry is None:
            registry = active_registry()
        if registry is None:
            return
        registry.gauge(M.SAN_FINDINGS, {"mode": self.mode}).set(
            len(self.findings)
        )
        scopes = [
            (str(w.wid), w.samples, w.raced, w.race_rate)
            for w in self.race_stats.workers
        ]
        scopes.append(
            (
                "all",
                self.race_stats.samples,
                self.race_stats.raced,
                self.race_stats.race_rate,
            )
        )
        for worker, samples, raced, rate in scopes:
            labels = {"worker": worker}
            registry.counter(M.SAN_RACE_SAMPLES, labels).inc(samples)
            registry.counter(M.SAN_RACE_RACED, labels).inc(raced)
            registry.gauge(M.SAN_RACE_RATE, labels).set(rate)
        if self.numeric:
            registry.counter(M.SAN_NUMERIC_CHECKS).inc(
                int(self.numeric.get("wave_checks", 0))
                + int(self.numeric.get("model_checks", 0))
                + int(self.numeric.get("block_checks", 0))
            )
        if self.lifecycle:
            leaked = sum(
                1 for f in self.findings if f.kind.startswith("lifecycle-")
            )
            registry.gauge(M.SAN_LIFECYCLE_LEAKS).set(leaked)

    # -- presentation ---------------------------------------------------
    def format(self) -> str:
        """Human-readable table for CLI output (StallReport idiom)."""
        stats = self.race_stats
        lines = [
            f"sanitizer report — mode={self.mode}, "
            f"{len(self.findings)} finding(s), "
            f"{stats.samples} samples over {stats.waves} concurrent waves"
        ]
        if stats.workers:
            lines.append(
                f"{'worker':>6}  {'samples':>10}  {'row-raced':>10}  "
                f"{'col-raced':>10}  {'race-rate':>10}"
            )
            rows = [
                (str(w.wid), w.samples, w.row_raced, w.col_raced, w.race_rate)
                for w in stats.workers
            ]
            rows.append(
                (
                    "all", stats.samples,
                    sum(w.row_raced for w in stats.workers),
                    sum(w.col_raced for w in stats.workers),
                    stats.race_rate,
                )
            )
            for name, samples, rr, cr, rate in rows:
                lines.append(
                    f"{name:>6}  {samples:>10}  {rr:>10}  {cr:>10}  "
                    f"{rate:>10.2%}"
                )
        if self.numeric:
            lines.append(
                "numeric: "
                f"{self.numeric.get('wave_checks', 0)} wave checks, "
                f"{self.numeric.get('model_checks', 0)} model sweeps, "
                f"{self.numeric.get('block_checks', 0)} block checks, "
                f"max|err|={self.numeric.get('max_abs_err', 0.0):.3e}"
            )
        if self.lifecycle:
            lc = self.lifecycle
            lines.append(
                "lifecycle: "
                f"{lc.get('segments_created', 0)} shm created / "
                f"{lc.get('segments_unlinked', 0)} unlinked, "
                f"{lc.get('segment_opens', 0)} opens / "
                f"{lc.get('segment_closes', 0)} closes, "
                f"{lc.get('mmaps_opened', 0)} mmaps / "
                f"{lc.get('mmaps_released', 0)} released"
            )
        for f in self.findings:
            lines.append(f"FINDING {f.format()}")
        return "\n".join(lines)

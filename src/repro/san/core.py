"""reprosan core: the Sanitizer, ambient activation, kernel instrumentation.

A :class:`Sanitizer` is activated ambiently (contextvar, mirroring
``repro.obs.context``) so the executors — serial
:class:`~repro.core.hogwild.BatchHogwild`, threaded and process Hogwild,
the :class:`~repro.data.blockstore.BlockPrefetcher` — can pick it up
without plumbing a parameter through every constructor:

    san = sanitizer_from_mode("all")
    with activate_sanitizer(san):
        trainer.fit(model, ratings)
    report = san.finalize()

Three check families, toggled by mode:

``races``
    Every instrumented kernel call appends (worker, epoch, wave,
    row-range) to a shadow :class:`~repro.san.races.AccessLog`; a
    post-fit :func:`~repro.san.races.analyze_log` pass detects
    within-wave write overlaps, cross-shard ownership violations and
    quantifies the benign cross-worker race rate. Also enables the
    shm/mmap lifecycle ledger.

``numeric``
    Sampled NaN/Inf/overflow checks on kernel residuals, an fp64-leak
    probe per (worker, epoch) and a deterministic epoch-end model sweep,
    raising :class:`~repro.san.errors.SanitizerError` immediately.

``all``
    Both.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from repro.san.errors import SanFinding, SanitizerError
from repro.san.lifecycle import LifecycleTracker
from repro.san.numeric import (
    DEFAULT_ERR_LIMIT,
    DEFAULT_SAMPLE_STRIDE,
    NumericSentry,
)
from repro.san.races import _KIND_CODES, AccessLog, analyze_log

__all__ = [
    "MODES",
    "SanFinding",
    "Sanitizer",
    "SanitizerError",
    "activate_sanitizer",
    "active_sanitizer",
    "instrument_kernel",
    "sanitizer_from_mode",
]

#: valid ``--sanitize`` values, in escalation order
MODES = ("off", "races", "numeric", "all")

_current: ContextVar = ContextVar("repro_san", default=None)


def active_sanitizer():
    """The ambient :class:`Sanitizer`, or ``None`` when not sanitizing."""
    return _current.get()


@contextmanager
def activate_sanitizer(san):
    """Make ``san`` the ambient sanitizer for the dynamic extent.

    ``None`` is accepted (and masks any outer sanitizer), so callers can
    write ``with activate_sanitizer(maybe_san):`` unconditionally.
    """
    token = _current.set(san)
    try:
        yield san
    finally:
        _current.reset(token)


def sanitizer_from_mode(mode: str | None):
    """Build a :class:`Sanitizer` for a ``--sanitize`` value.

    Returns ``None`` for ``"off"``/``None`` so call sites can feed the
    result straight into :func:`activate_sanitizer`.
    """
    if mode is None or mode == "off":
        return None
    if mode not in MODES:
        raise ValueError(
            f"unknown sanitize mode {mode!r}; expected one of {MODES}"
        )
    return Sanitizer(mode)


def instrument_kernel(inner, san, wid: int, epoch: int, kind: str):
    """Wrap a bound wave-update kernel for one worker's epoch.

    Mirrors the kernel calling convention exactly
    (``(p, q, rows, cols, vals, lr, lam_p, lam_q) -> err``) so executors
    can substitute the wrapper for the callable ``backend.bind(ws)``
    returned. Returns a mode-specialized closure — closure-cell loads
    beat attribute lookups and the dead mode's branch disappears
    entirely, which matters at one Python-level call per (wave, lane).

    Race mode does one list append of *views* per call (the index
    buffers are bundled into copies at the next epoch-boundary
    :meth:`~repro.san.races.AccessLog.seal`, one vectorized pass instead
    of two copies per wave); numeric mode runs the fp64-leak probe on
    the first call and a residual check one call in ``sample_stride``.
    Per-worker state (the wave counter) lives in the closure, unshared.
    """
    entries = san.race_log.entries if san.check_races else None
    sentry = san.numeric if san.check_numeric else None
    kind_code = _KIND_CODES[kind]
    stride = san.numeric.sample_stride
    wave = 0

    if sentry is None:
        def wrapped(p, q, rows, cols, vals, lr, lam_p, lam_q):
            nonlocal wave
            err = inner(p, q, rows, cols, vals, lr, lam_p, lam_q)
            entries.append((wid, epoch, wave, kind_code, rows, cols))
            wave += 1
            return err
    elif entries is None:
        def wrapped(p, q, rows, cols, vals, lr, lam_p, lam_q):
            nonlocal wave
            err = inner(p, q, rows, cols, vals, lr, lam_p, lam_q)
            if not wave % stride:
                if not wave:
                    sentry.check_dtypes(p, q, err, wid, epoch)
                sentry.check_wave(err, wid, epoch, wave)
            wave += 1
            return err
    else:
        def wrapped(p, q, rows, cols, vals, lr, lam_p, lam_q):
            nonlocal wave
            err = inner(p, q, rows, cols, vals, lr, lam_p, lam_q)
            entries.append((wid, epoch, wave, kind_code, rows, cols))
            if not wave % stride:
                if not wave:
                    sentry.check_dtypes(p, q, err, wid, epoch)
                sentry.check_wave(err, wid, epoch, wave)
            wave += 1
            return err

    wrapped.san = san
    wrapped.wid = wid
    wrapped.epoch = epoch
    wrapped.kind = kind
    return wrapped


class Sanitizer:
    """Runtime race/numeric/lifecycle sanitizer for the Hogwild executors.

    Cheap to carry: executors call :meth:`wave_kernel` to wrap their
    bound kernels, :meth:`epoch_end` after each epoch, and the driver
    calls :meth:`finalize` once after fit to run the post-hoc analyses
    and obtain the :class:`~repro.san.report.SanReport`.
    """

    def __init__(
        self,
        mode: str = "all",
        *,
        err_limit: float = DEFAULT_ERR_LIMIT,
        sample_stride: int = DEFAULT_SAMPLE_STRIDE,
    ) -> None:
        if mode not in MODES or mode == "off":
            raise ValueError(
                f"invalid sanitizer mode {mode!r}; expected one of "
                f"{MODES[1:]}"
            )
        self.mode = mode
        self.check_races = mode in ("races", "all")
        self.check_numeric = mode in ("numeric", "all")
        # lifecycle pairing rides with race checking: both audit the
        # parallel machinery rather than the numerics
        self.check_lifecycle = self.check_races
        self.race_log = AccessLog()
        self.numeric = NumericSentry(
            err_limit=err_limit, sample_stride=sample_stride
        )
        self.lifecycle = LifecycleTracker()
        self.findings: list[SanFinding] = []
        self.report = None
        self._epoch_by_wid: dict[int, int] = {}

    # -- executor hooks --------------------------------------------------
    def wave_kernel(
        self, inner, wid: int = 0, epoch: int | None = None,
        kind: str = "wave",
    ):
        """Wrap a bound kernel for one worker's epoch
        (:func:`instrument_kernel`).

        When ``epoch`` is omitted it auto-increments per worker, matching
        executors that rebind kernels once per epoch. Seals the access
        log first: kernels append views of the executor's index buffers,
        which the upcoming epoch's re-gather would overwrite.
        """
        if self.check_races:
            self.race_log.seal()
        if epoch is None:
            epoch = self._epoch_by_wid.get(wid, 0) + 1
        self._epoch_by_wid[wid] = epoch
        return instrument_kernel(inner, self, wid, epoch, kind)

    def begin_epoch(self, wid: int = 0) -> int:
        """Seal the log and advance this worker's epoch counter.

        The entry hook for executors that instrument *inline* (sampled
        checks in their own wave loop plus one
        :meth:`~repro.san.races.AccessLog.record_epoch` capture) rather
        than routing kernels through :meth:`wave_kernel`. Call before
        re-binding workspace buffers: the previous epoch's recorded
        views must be bundled before a regather rewrites them.
        """
        if self.check_races:
            self.race_log.seal()
        epoch = self._epoch_by_wid.get(wid, 0) + 1
        self._epoch_by_wid[wid] = epoch
        return epoch

    def epoch_executed(
        self, rows_w, cols_w, lengths, *, wid: int = 0,
        epoch: int | None = None, kind: str = "wave",
    ) -> None:
        """Record a whole epoch's wave-major coverage (race mode).

        O(1) capture for executors whose epoch coverage already exists
        as one ``(n_waves, width)`` gather — the serial hot path's
        zero-per-wave-cost alternative to :meth:`wave_kernel`.
        """
        if self.check_races:
            if epoch is None:
                epoch = self._epoch_by_wid.get(wid, 0)
            self.race_log.record_epoch(
                wid, epoch, rows_w, cols_w, lengths, kind=kind
            )

    def epoch_end(
        self, p, q, *, wid: int = 0, epoch: int | None = None
    ) -> None:
        """Seal the epoch's access log; deterministic model sweep
        (numeric mode)."""
        if self.check_races:
            self.race_log.seal()
        if self.check_numeric:
            if epoch is None:
                epoch = self._epoch_by_wid.get(wid, 0)
            self.numeric.check_model(p, q, wid=wid, epoch=epoch)

    def block_executed(self, wid, epoch, seq, rows, cols) -> None:
        """Record one out-of-core block's update coverage (race mode)."""
        if self.check_races:
            self.race_log.record(wid, epoch, seq, rows, cols, kind="block")

    def note(self, finding: SanFinding) -> None:
        """Attach an externally-detected finding to this run's report."""
        self.findings.append(finding)

    # -- post-fit analysis ----------------------------------------------
    def finalize(self, publish: bool = True):
        """Run the post-hoc analyses and build the run's report.

        Idempotent in effect: each call re-analyzes the current logs, so
        call it once after fit. Publishes ``repro.san.*`` to the ambient
        metric registry unless ``publish=False``.
        """
        from repro.san.races import RaceStats
        from repro.san.report import SanReport

        findings = list(self.findings)
        stats = RaceStats()
        if self.check_races:
            race_findings, stats = analyze_log(self.race_log.flatten())
            findings.extend(race_findings)
        if self.check_lifecycle:
            findings.extend(self.lifecycle.leaks())
        self.report = SanReport(
            self.mode,
            findings,
            stats,
            numeric=self.numeric.as_dict() if self.check_numeric else None,
            lifecycle=(
                self.lifecycle.as_dict() if self.check_lifecycle else None
            ),
        )
        if publish:
            self.report.publish()
        return self.report

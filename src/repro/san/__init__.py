"""reprosan: runtime race / numeric / lifecycle sanitizer for the executors.

reprolint (:mod:`repro.lint`) proves the *compiled schedules* conflict-free
statically; reprosan verifies the *execution*. When activated (ambiently,
like the tracer), the Hogwild executors route their wave kernels through a
thin instrumented wrapper that records per-worker shadow access logs and
runs sampled numeric checks; a post-fit checker then detects within-wave
write overlaps, cross-shard ownership violations, non-finite factors, and
leaked shared-memory segments / mmaps — and quantifies the benign
cross-worker race rate the HOGWILD! argument tolerates.

Usage::

    from repro.san import Sanitizer, activate_sanitizer

    san = Sanitizer("all")          # "races" | "numeric" | "all"
    with activate_sanitizer(san):
        estimator.fit(train, epochs=5)
    report = san.finalize()         # raises nothing; findings listed
    print(report.format())

``cumf-sgd train … --sanitize all`` and ``benchmarks/bench_parallel.py
--sanitize`` wire this end to end. Overhead is gated (< 10%) by
``benchmarks/bench_hot_path.py``.
"""

from repro.san.core import (
    MODES,
    SanFinding,
    Sanitizer,
    SanitizerError,
    activate_sanitizer,
    active_sanitizer,
    instrument_kernel,
    sanitizer_from_mode,
)
from repro.san.lifecycle import LifecycleTracker, track_shm
from repro.san.numeric import NumericSentry
from repro.san.races import AccessLog, analyze_log, dump_log, load_spools
from repro.san.report import SanReport

__all__ = [
    "MODES",
    "AccessLog",
    "LifecycleTracker",
    "NumericSentry",
    "SanFinding",
    "SanReport",
    "Sanitizer",
    "SanitizerError",
    "activate_sanitizer",
    "active_sanitizer",
    "analyze_log",
    "dump_log",
    "instrument_kernel",
    "load_spools",
    "sanitizer_from_mode",
    "track_shm",
]

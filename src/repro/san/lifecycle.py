"""Lifecycle sanitizer: shared-memory segments and BlockStore mmaps.

Tracks the create → close → unlink protocol of every
``multiprocessing.shared_memory`` segment the parent allocates
(:class:`~repro.parallel.procs._SharedCluster` reports through
:func:`repro.san.core.active_sanitizer`) and the open → release cycle of
every mmap the :class:`~repro.data.blockstore.BlockStore` hands out
(release observed via ``weakref.finalize`` on the returned memmap). At
:meth:`LifecycleTracker.leaks` time anything still open is a finding:

* a segment created but never unlinked outlives the process in
  ``/dev/shm`` (``lifecycle-shm-leak``);
* a segment never closed keeps its mapping (and pages) pinned;
* an mmap never released pins page-cache references past shutdown
  (``lifecycle-mmap-leak``).

Scope: the tracker observes the *current process*. Worker processes close
their attaches in their own ``finally`` blocks; the parent owns create
and unlink, which is exactly the pairing the ``shm-lifecycle`` static
lint pass audits in the source.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.san.errors import SanFinding

__all__ = ["LifecycleTracker", "track_shm"]


@dataclass
class _SegmentState:
    created: bool = False
    attached: int = 0
    closed: int = 0
    unlinked: bool = False


@dataclass
class _MmapState:
    opened: int = 0
    released: int = 0


@dataclass
class LifecycleTracker:
    """Create/close/unlink ledger for shm segments and BlockStore mmaps."""

    segments: dict = field(default_factory=dict)
    mmaps: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # -- shared memory --------------------------------------------------
    def _segment(self, name: str) -> _SegmentState:
        return self.segments.setdefault(name, _SegmentState())

    def note_create(self, name: str) -> None:
        with self._lock:
            self._segment(name).created = True

    def note_attach(self, name: str) -> None:
        with self._lock:
            self._segment(name).attached += 1

    def note_close(self, name: str) -> None:
        with self._lock:
            self._segment(name).closed += 1

    def note_unlink(self, name: str) -> None:
        with self._lock:
            self._segment(name).unlinked = True

    # -- mmaps ----------------------------------------------------------
    def note_mmap_open(self, path: str) -> None:
        with self._lock:
            self.mmaps.setdefault(path, _MmapState()).opened += 1

    def note_mmap_release(self, path: str) -> None:
        with self._lock:
            self.mmaps.setdefault(path, _MmapState()).released += 1

    # -- the leak report ------------------------------------------------
    def leaks(self) -> list[SanFinding]:
        with self._lock:
            findings: list[SanFinding] = []
            for name, st in sorted(self.segments.items()):
                if st.created and not st.unlinked:
                    findings.append(
                        SanFinding(
                            kind="lifecycle-shm-leak",
                            message=f"shared-memory segment {name!r} was "
                            "created but never unlinked (leaks in /dev/shm)",
                        )
                    )
                opened = int(st.created) + st.attached
                if opened > st.closed:
                    findings.append(
                        SanFinding(
                            kind="lifecycle-shm-leak",
                            message=f"segment {name!r}: {opened} "
                            f"create/attach vs {st.closed} close — "
                            "a mapping is still pinned",
                        )
                    )
            for path, st in sorted(self.mmaps.items()):
                if st.opened > st.released:
                    findings.append(
                        SanFinding(
                            kind="lifecycle-mmap-leak",
                            message=f"BlockStore mmap {path!r}: "
                            f"{st.opened} open vs {st.released} release",
                        )
                    )
            return findings

    def as_dict(self) -> dict:
        with self._lock:
            created = sum(1 for s in self.segments.values() if s.created)
            unlinked = sum(1 for s in self.segments.values() if s.unlinked)
            closes = sum(s.closed for s in self.segments.values())
            attaches = sum(
                int(s.created) + s.attached for s in self.segments.values()
            )
            opened = sum(m.opened for m in self.mmaps.values())
            released = sum(m.released for m in self.mmaps.values())
        return {
            "segments_created": created,
            "segments_unlinked": unlinked,
            "segment_opens": attaches,
            "segment_closes": closes,
            "mmaps_opened": opened,
            "mmaps_released": released,
        }


def track_shm(shm) -> object:
    """Register a :class:`multiprocessing.shared_memory.SharedMemory` with
    the ambient sanitizer and observe its close/unlink calls.

    Returns ``shm`` (instrumented in place) so call sites can wrap their
    constructor: ``shm = track_shm(SharedMemory(create=True, size=n))``.
    No-op when no sanitizer (or no lifecycle checking) is active.
    """
    from repro.san.core import active_sanitizer

    san = active_sanitizer()
    if san is None or not san.check_lifecycle:
        return shm
    tracker = san.lifecycle
    tracker.note_create(shm.name)
    name = shm.name
    orig_close, orig_unlink = shm.close, shm.unlink

    def close():
        tracker.note_close(name)
        return orig_close()

    def unlink():
        tracker.note_unlink(name)
        return orig_unlink()

    shm.close = close
    shm.unlink = unlink
    return shm

"""Race sanitizer: shadow access logs + the post-fit overlap checker.

Every instrumented kernel call appends one compact entry — ``(worker,
epoch, wave, rows, cols)`` — to an :class:`AccessLog`. After the fit the
checker replays the log and verifies the batch-Hogwild! execution
contract the static schedule checks (:mod:`repro.lint.races`) can only
prove about the *compiled plan*, not about what the workers actually ran:

* **exactly-once / ownership** — every ``(row, col)`` sample executes
  exactly once per epoch, by exactly one worker. A sample seen under two
  workers is a cross-shard ownership violation (``race-ownership``); the
  same worker executing a sample twice is ``race-double-execution``.
* **within-wave write overlap** — two workers executing the *same* sample
  inside the same concurrent wave race write-for-write on identical P and
  Q rows (``race-overlap``); this is how a tampered/duplicated plan lane
  surfaces.
* **segment conflict-freedom** — entries recorded from
  :class:`~repro.sched.plan.SerialPlan` segments (kind ``segment``) must
  repeat no row and no column within the segment (Eq. 6 at runtime).
* **benign race rate** — for concurrent waves, the fraction of samples
  whose row *or* column is simultaneously touched by another worker in
  the same wave: the HOGWILD!-tolerated races, quantified per worker and
  published as ``repro.san.*``.

Entry kinds: ``wave`` (concurrent batch-Hogwild wave — the ``wave`` index
is a cross-worker synchronization point), ``segment`` (one thread's
conflict-free SerialPlan segment), ``block`` (an out-of-core grid block —
participates in exactly-once only).

Cross-process transport mirrors the trace relay: process workers dump
their logs as one ``.npz`` per worker id (:func:`dump_log`) and the parent
folds them back with :func:`load_spools`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.san.errors import SanFinding

__all__ = [
    "KIND_SEGMENT",
    "KIND_WAVE",
    "KIND_BLOCK",
    "AccessLog",
    "RaceStats",
    "WorkerRaceStats",
    "analyze_log",
    "dump_log",
    "load_spools",
]

#: entry kinds (int8 codes in the flattened log)
KIND_SEGMENT, KIND_WAVE, KIND_BLOCK = 0, 1, 2
_KIND_CODES = {"segment": KIND_SEGMENT, "wave": KIND_WAVE, "block": KIND_BLOCK}

#: cap on per-finding example coordinates carried into messages
_MAX_EXAMPLES = 3


class AccessLog:
    """Per-worker shadow log of P/Q row writes, one entry per kernel call.

    Appends are O(copy of the wave's index arrays) and GIL-atomic, so
    thread executors share one log without locking (each thread appends
    its own entries; the list itself is the only shared structure).
    """

    __slots__ = ("entries", "_epoch_entries", "_spooled")

    def __init__(self) -> None:
        #: (wid, epoch, wave, kind_code, rows_i32, cols_i32) tuples
        self.entries: list[tuple] = []
        #: (wid, epoch, kind_code, rows_w, cols_w, lengths) whole-epoch
        #: records from inline executors (:meth:`record_epoch`)
        self._epoch_entries: list[tuple] = []
        #: pre-flattened bundles merged from worker spools
        self._spooled: list[dict] = []

    def record(
        self,
        wid: int,
        epoch: int,
        wave: int,
        rows: np.ndarray,
        cols: np.ndarray,
        kind: str = "wave",
    ) -> None:
        """Append one kernel call's write set (copies — safe for callers
        whose index buffers recycle immediately, e.g. staging slots)."""
        self.entries.append(
            (
                wid, epoch, wave, _KIND_CODES[kind],
                np.array(rows, dtype=np.int32),
                np.array(cols, dtype=np.int32),
            )
        )

    def record_epoch(
        self,
        wid: int,
        epoch: int,
        rows_w: np.ndarray,
        cols_w: np.ndarray,
        lengths: np.ndarray,
        kind: str = "wave",
    ) -> None:
        """Record one executor epoch's full wave-major coverage in O(1).

        ``rows_w``/``cols_w`` are the ``(n_waves, width)`` gathered index
        matrices the serial executor feeds its kernels (views into
        workspace buffers — the caller must :meth:`seal` before the next
        bind regathers them) and ``lengths`` the per-wave live widths:
        wave ``t``'s write set is ``rows_w[t, :lengths[t]]``. This is the
        zero-per-wave-cost capture path for executors whose epoch
        coverage already exists as one matrix.
        """
        self._epoch_entries.append(
            (
                wid, epoch, _KIND_CODES[kind], rows_w, cols_w,
                np.asarray(lengths, dtype=np.int64),
            )
        )

    def seal(self) -> None:
        """Flatten pending entries into immutable bundles.

        The hot paths (:func:`~repro.san.core.instrument_kernel`,
        :meth:`record_epoch`) append *views* of the executor's gathered
        index buffers — near-free per wave. Those buffers are rewritten
        when the next epoch re-gathers, so the coordinator must
        ``seal()`` at every epoch boundary (the ``Sanitizer`` hooks do):
        one vectorized pass per epoch replaces two small copies per
        wave. Not thread-safe — call only while no worker is appending.
        """
        if self.entries:
            self._spooled.append(self._bundle_entries())
            # in place: live instrumented kernels cache a reference
            self.entries.clear()
        if self._epoch_entries:
            for entry in self._epoch_entries:
                self._spooled.append(self._bundle_epoch(entry))
            self._epoch_entries.clear()

    def clear(self) -> None:
        self.entries.clear()
        self._epoch_entries.clear()
        self._spooled = []

    @property
    def n_calls(self) -> int:
        return (
            len(self.entries)
            + sum(len(e[5]) for e in self._epoch_entries)
            + sum(int(b["n_calls"]) for b in self._spooled)
        )

    @property
    def n_samples(self) -> int:
        return (
            sum(len(e[4]) for e in self.entries)
            + sum(int(e[5].sum()) for e in self._epoch_entries)
            + sum(len(b["row"]) for b in self._spooled)
        )

    # -- flattening -----------------------------------------------------
    def _bundle_entries(self) -> dict:
        """Pending entries as one flat bundle (one vectorized pass).

        Hot by proxy: runs once per epoch over every wave the epoch
        executed, so it transposes the entry tuples in a single
        ``zip`` pass and lets ``np.concatenate(dtype=...)`` coerce the
        index buffers in one C call instead of per-entry ``asarray``.
        """
        wids, epochs, waves, kinds, rows, cols = zip(*self.entries)
        widths = np.fromiter(map(len, rows), np.int64, len(rows))
        return {
            "wid": np.repeat(np.array(wids, np.int32), widths),
            "epoch": np.repeat(np.array(epochs, np.int32), widths),
            "wave": np.repeat(np.array(waves, np.int32), widths),
            "kind": np.repeat(np.array(kinds, np.int8), widths),
            "row": np.concatenate(rows, dtype=np.int32, casting="unsafe"),
            "col": np.concatenate(cols, dtype=np.int32, casting="unsafe"),
            "n_calls": len(widths),
        }

    def _bundle_epoch(self, entry: tuple) -> dict:
        """One :meth:`record_epoch` record as a flat bundle."""
        wid, epoch, kind_code, rows_w, cols_w, lengths = entry
        n_waves, width = rows_w.shape
        live = np.arange(width) < lengths[:, None]
        total = int(lengths.sum())
        return {
            "wid": np.full(total, wid, np.int32),
            "epoch": np.full(total, epoch, np.int32),
            "wave": np.repeat(np.arange(n_waves, dtype=np.int32), lengths),
            "kind": np.full(total, kind_code, np.int8),
            "row": rows_w[live].astype(np.int32, copy=False),
            "col": cols_w[live].astype(np.int32, copy=False),
            "n_calls": n_waves,
        }

    def flatten(self) -> dict:
        """The whole log as flat parallel arrays (wid, epoch, wave, kind,
        row, col), concatenating live entries and merged spools."""
        bundles = list(self._spooled)
        if self.entries:
            bundles.append(self._bundle_entries())
        bundles.extend(
            self._bundle_epoch(entry) for entry in self._epoch_entries
        )
        keys = ("wid", "epoch", "wave", "kind", "row", "col")
        if not bundles:
            return {
                k: np.empty(0, np.int32 if k != "kind" else np.int8)
                for k in keys
            }
        return {k: np.concatenate([b[k] for b in bundles]) for k in keys}

    def merge_arrays(self, arrays: dict) -> None:
        """Fold one worker's flattened bundle (from :func:`load_spools`)."""
        bundle = {k: np.asarray(arrays[k]) for k in
                  ("wid", "epoch", "wave", "kind", "row", "col")}
        bundle["n_calls"] = int(arrays.get("n_calls", 0))
        self._spooled.append(bundle)


# ---------------------------------------------------------------------------
# spool transport (process workers -> parent), relay-style
# ---------------------------------------------------------------------------
def dump_log(path: str | Path, log: AccessLog) -> None:
    """Spool one worker's log as a single ``.npz`` (crash = missing file,
    which the parent reads as an empty log, never an error)."""
    flat = log.flatten()
    np.savez(
        Path(path),
        wid=flat["wid"], epoch=flat["epoch"], wave=flat["wave"],
        kind=flat["kind"], row=flat["row"], col=flat["col"],
        n_calls=np.int64(log.n_calls),
    )


def load_spools(spool_dir: str | Path, log: AccessLog) -> int:
    """Merge every worker spool under ``spool_dir`` into ``log``; returns
    the number of spool files read. Unreadable spools (a worker killed
    mid-``savez``) are skipped, mirroring the trace relay's tolerance."""
    read = 0
    for path in sorted(Path(spool_dir).glob("san_*.npz")):
        try:
            with np.load(path, allow_pickle=False) as data:
                log.merge_arrays({k: data[k] for k in data.files})
        except (OSError, ValueError, KeyError):  # torn write
            continue
        read += 1
    return read


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------
@dataclass
class WorkerRaceStats:
    """One worker's share of the benign-race accounting."""

    wid: int
    samples: int = 0
    calls: int = 0
    row_raced: int = 0
    col_raced: int = 0
    raced: int = 0

    @property
    def race_rate(self) -> float:
        return self.raced / self.samples if self.samples else 0.0

    def as_dict(self) -> dict:
        return {
            "wid": self.wid,
            "samples": self.samples,
            "calls": self.calls,
            "row_raced": self.row_raced,
            "col_raced": self.col_raced,
            "raced": self.raced,
            "race_rate": self.race_rate,
        }


@dataclass
class RaceStats:
    """Aggregate + per-worker benign-race rates over concurrent waves."""

    workers: list = field(default_factory=list)
    epochs: int = 0
    waves: int = 0

    @property
    def samples(self) -> int:
        return sum(w.samples for w in self.workers)

    @property
    def raced(self) -> int:
        return sum(w.raced for w in self.workers)

    @property
    def race_rate(self) -> float:
        samples = self.samples
        return self.raced / samples if samples else 0.0

    def as_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "waves": self.waves,
            "samples": self.samples,
            "raced": self.raced,
            "race_rate": self.race_rate,
            "workers": [w.as_dict() for w in self.workers],
        }


def _pair_key(row: np.ndarray, col: np.ndarray) -> np.ndarray:
    """Collision-free int64 key for a (row, col) sample coordinate."""
    return (row.astype(np.int64) << 31) | col.astype(np.int64)


def _example(msg_parts: list, limit: int = _MAX_EXAMPLES) -> str:
    shown = "; ".join(msg_parts[:limit])
    more = len(msg_parts) - limit
    return shown + (f"; … {more} more" if more > 0 else "")


def _grouped_shared(group: np.ndarray, key: np.ndarray,
                    wid: np.ndarray) -> np.ndarray:
    """Mask of samples whose ``key`` is also used by a *different* worker
    within the same ``group`` (vectorized; no Python loop over groups)."""
    n = len(key)
    out = np.zeros(n, dtype=bool)
    if n == 0:
        return out
    order = np.lexsort((wid, key, group))
    g, k, w = group[order], key[order], wid[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    new[1:] = (g[1:] != g[:-1]) | (k[1:] != k[:-1])
    gid = np.cumsum(new) - 1
    # a (group, key) bucket is "shared" iff, sorted by wid within the
    # bucket, any adjacent pair has differing wids
    mixed_edge = np.zeros(n, dtype=bool)
    mixed_edge[1:] = (~new[1:]) & (w[1:] != w[:-1])
    mixed = np.bincount(gid[mixed_edge], minlength=int(gid[-1]) + 1) > 0
    out[order] = mixed[gid]
    return out


def analyze_log(
    flat: dict,
) -> tuple[list[SanFinding], RaceStats]:
    """Run every race check over a flattened access log.

    Returns ``(findings, stats)``. Findings carry representative wave
    coordinates; ``stats`` quantifies the benign cross-worker race rate
    over concurrent (``wave``-kind) entries. Assumes the rating data holds
    each ``(row, col)`` coordinate at most once (the synthetic pipeline
    guarantees it — :func:`repro.data.synthetic._sample_coordinates` draws
    without replacement), so a duplicated pair in the log is a duplicated
    *execution*, never duplicated data.
    """
    findings: list[SanFinding] = []
    wid = np.asarray(flat["wid"], np.int64)
    epoch = np.asarray(flat["epoch"], np.int64)
    wave = np.asarray(flat["wave"], np.int64)
    kind = np.asarray(flat["kind"], np.int8)
    row = np.asarray(flat["row"], np.int64)
    col = np.asarray(flat["col"], np.int64)
    stats = RaceStats()
    n = len(row)
    if n == 0:
        return findings, stats
    key = _pair_key(row, col)

    # -- exactly-once / ownership per epoch -----------------------------
    order = np.lexsort((wid, key, epoch))
    e, k, w, wv = epoch[order], key[order], wid[order], wave[order]
    dup = (e[1:] == e[:-1]) & (k[1:] == k[:-1])
    cross = dup & (w[1:] != w[:-1])
    same = dup & (w[1:] == w[:-1])
    for mask, fkind, label in (
        (cross, "race-ownership",
         "sample executed by multiple workers in one epoch"),
        (same, "race-double-execution",
         "sample executed twice by one worker in one epoch"),
    ):
        idx = np.flatnonzero(mask)
        if len(idx):
            parts = [
                f"({row[order][i + 1]},{col[order][i + 1]}) "
                f"epoch {e[i + 1]} workers {w[i]}/{w[i + 1]}"
                for i in idx[:_MAX_EXAMPLES]
            ]
            i0 = int(idx[0])
            findings.append(
                SanFinding(
                    kind=fkind,
                    message=f"{label}: {len(idx)} duplicate(s) — "
                    + _example(parts),
                    worker=int(w[i0 + 1]),
                    epoch=int(e[i0 + 1]),
                    wave=int(wv[i0 + 1]),
                )
            )

    # -- within-wave write overlap (concurrent waves only) --------------
    conc = kind == KIND_WAVE
    if conc.any():
        cw, ce, cv = wid[conc], epoch[conc], wave[conc]
        ck, cr, cc = key[conc], row[conc], col[conc]
        order = np.lexsort((cw, ck, cv, ce))
        e2, v2, k2, w2 = ce[order], cv[order], ck[order], cw[order]
        dup = (e2[1:] == e2[:-1]) & (v2[1:] == v2[:-1]) & (k2[1:] == k2[:-1])
        overlap = dup & (w2[1:] != w2[:-1])
        idx = np.flatnonzero(overlap)
        if len(idx):
            parts = [
                f"({cr[order][i + 1]},{cc[order][i + 1]}) epoch {e2[i + 1]} "
                f"wave {v2[i + 1]} workers {w2[i]}/{w2[i + 1]}"
                for i in idx[:_MAX_EXAMPLES]
            ]
            i0 = int(idx[0])
            findings.append(
                SanFinding(
                    kind="race-overlap",
                    message="within-wave write overlap: two workers wrote "
                    f"identical P/Q rows in the same wave — {len(idx)} "
                    "collision(s) — " + _example(parts),
                    worker=int(w2[i0 + 1]),
                    epoch=int(e2[i0 + 1]),
                    wave=int(v2[i0 + 1]),
                )
            )

        # -- benign race rate (row or column shared across workers) -----
        group = ce * (cv.max() + 1) + cv
        row_shared = _grouped_shared(group, cr, cw)
        col_shared = _grouped_shared(group, cc, cw)
        raced = row_shared | col_shared
        stats.epochs = len(np.unique(ce))
        stats.waves = len(np.unique(group))
        for u in np.unique(cw):
            m = cw == u
            stats.workers.append(
                WorkerRaceStats(
                    wid=int(u),
                    samples=int(m.sum()),
                    calls=int(len(np.unique(group[m]))),
                    row_raced=int((row_shared & m).sum()),
                    col_raced=int((col_shared & m).sum()),
                    raced=int((raced & m).sum()),
                )
            )
    else:
        stats.epochs = len(np.unique(epoch))
        for u in np.unique(wid):
            m = wid == u
            stats.workers.append(
                WorkerRaceStats(wid=int(u), samples=int(m.sum()))
            )

    # -- segment conflict-freedom (SerialPlan entries) ------------------
    seg = kind == KIND_SEGMENT
    if seg.any():
        sw, se, sv = wid[seg], epoch[seg], wave[seg]
        for label, coord in (("row", row[seg]), ("column", col[seg])):
            order = np.lexsort((coord, sv, se, sw))
            w3, e3, v3, c3 = sw[order], se[order], sv[order], coord[order]
            clash = (
                (w3[1:] == w3[:-1]) & (e3[1:] == e3[:-1])
                & (v3[1:] == v3[:-1]) & (c3[1:] == c3[:-1])
            )
            idx = np.flatnonzero(clash)
            if len(idx):
                i0 = int(idx[0])
                findings.append(
                    SanFinding(
                        kind="race-segment-conflict",
                        message=f"serial segment repeats {label} "
                        f"{int(c3[i0 + 1])} ({len(idx)} conflict(s)) — "
                        "the segment is not conflict-free at runtime",
                        worker=int(w3[i0 + 1]),
                        epoch=int(e3[i0 + 1]),
                        wave=int(v3[i0 + 1]),
                    )
                )
    return findings, stats

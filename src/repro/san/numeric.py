"""Numeric sanitizer: sampled NaN/Inf/overflow/fp64-leak checks.

The kernels deliberately run under ``UPDATE_ERRSTATE`` (overflow and
invalid silenced) so divergence experiments can *observe* blow-ups rather
than crash. That contract makes silent corruption possible everywhere
else — which is exactly what this sentry, opt-in via ``--sanitize``,
turns back into a hard, located error:

* every ``sample_stride``-th instrumented kernel call checks the wave's
  error vector for non-finite values and overflow-risk magnitudes;
* at each epoch end the executors hand the full P/Q matrices over for a
  deterministic non-finite sweep (so an injected NaN is caught on the
  epoch it appears, regardless of sampling);
* the first call per (worker, epoch) verifies no fp64 leaked into the
  fp32 kernel path (factors and error vector dtype);
* out-of-core staging verifies each block's ratings are finite before
  compute consumes them.

All failures raise :class:`~repro.san.errors.SanitizerError` with the
offending wave coordinates.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.san.errors import SanitizerError

__all__ = ["NumericSentry"]

#: |err| beyond this is treated as imminent fp32 overflow (float32 max is
#: ~3.4e38; update magnitudes in a healthy run stay within rating scale)
DEFAULT_ERR_LIMIT = 1e6

#: check one in this many kernel calls per worker (epoch-end sweeps make
#: detection deterministic regardless; sampling bounds the hot-path cost)
DEFAULT_SAMPLE_STRIDE = 16


class NumericSentry:
    """Sampled numeric checks over kernel outputs and gradient magnitudes.

    Thread-safe by construction: per-wave state lives in each worker's
    :func:`~repro.san.core.instrument_kernel` closure; this object only
    accumulates counters under a lock on the (sampled) slow path.
    """

    def __init__(
        self,
        err_limit: float = DEFAULT_ERR_LIMIT,
        sample_stride: int = DEFAULT_SAMPLE_STRIDE,
    ) -> None:
        if sample_stride < 1:
            raise ValueError(
                f"sample_stride must be >= 1, got {sample_stride}"
            )
        self.err_limit = float(err_limit)
        self.sample_stride = int(sample_stride)
        self.wave_checks = 0
        self.model_checks = 0
        self.block_checks = 0
        self.max_abs_err = 0.0
        self._lock = threading.Lock()

    # -- kernel-output checks (sampled) ---------------------------------
    def check_wave(
        self, err: np.ndarray, wid: int, epoch: int, wave: int
    ) -> None:
        """Check one wave's error vector (the kernel's residual output).

        Hot path: ndarray method reductions (no ``np.abs`` temporary, no
        ufunc-dispatch wrappers) and one combined guard — ``peak <=
        err_limit`` is False for NaN, +Inf and overflow alike, so the
        healthy case pays a single comparison.
        """
        if err is None:  # backend that does not expose residuals
            return
        if err.size:
            hi, lo = float(err.max()), float(err.min())
            peak = hi if hi >= -lo else -lo
        else:
            peak = 0.0
        with self._lock:
            self.wave_checks += 1
            if peak > self.max_abs_err:
                self.max_abs_err = peak
        if not peak <= self.err_limit:  # NaN, Inf or overflow
            if peak != peak or peak == float("inf"):
                raise SanitizerError(
                    "numeric-nonfinite",
                    "non-finite kernel residual (NaN/Inf reached the "
                    "update)",
                    worker=wid, epoch=epoch, wave=wave,
                )
            raise SanitizerError(
                "numeric-overflow",
                f"kernel residual magnitude {peak:.3e} exceeds the "
                f"overflow guard {self.err_limit:.1e}",
                worker=wid, epoch=epoch, wave=wave,
            )

    def check_dtypes(
        self, p: np.ndarray, q: np.ndarray, err, wid: int, epoch: int
    ) -> None:
        """fp64-leak check, run once per (worker, epoch)."""
        for name, arr in (("P", p), ("Q", q), ("err", err)):
            if arr is not None and arr.dtype == np.dtype("float64"):
                raise SanitizerError(
                    "numeric-fp64-leak",
                    f"{name} is float64 — fp64 leaked into the fp32 "
                    "kernel path",
                    worker=wid, epoch=epoch, wave=0,
                )

    # -- epoch-end model sweep (deterministic) --------------------------
    def check_model(
        self, p: np.ndarray, q: np.ndarray, wid: int = 0,
        epoch: int | None = None,
    ) -> None:
        """Full non-finite sweep of both factor matrices."""
        with self._lock:
            self.model_checks += 1
        for name, arr in (("P", p), ("Q", q)):
            finite = np.isfinite(arr).all(axis=1)
            if not finite.all():
                bad = np.flatnonzero(~finite)
                raise SanitizerError(
                    "numeric-nonfinite",
                    f"{name} holds non-finite factors in {len(bad)} row(s) "
                    f"(first: {int(bad[0])})",
                    worker=wid, epoch=epoch,
                )

    # -- staged-data check (out-of-core) --------------------------------
    def check_block(
        self, vals: np.ndarray, coords: tuple, wid: int = 0
    ) -> None:
        """Verify a staged block's rating values before compute eats them."""
        with self._lock:
            self.block_checks += 1
        if vals.size and not np.isfinite(vals).all():
            raise SanitizerError(
                "numeric-nonfinite",
                f"staged block {coords} holds non-finite rating values",
                worker=wid,
            )

    def as_dict(self) -> dict:
        return {
            "wave_checks": self.wave_checks,
            "model_checks": self.model_checks,
            "block_checks": self.block_checks,
            "max_abs_err": self.max_abs_err,
            "err_limit": self.err_limit,
            "sample_stride": self.sample_stride,
        }
